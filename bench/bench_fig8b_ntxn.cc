// Regenerates Figure 8(b): running time of the four variants as the
// number of transactions grows (paper: 100K..1M; scaled here).
// Expected shape: linear growth in N for every variant, with the
// pruned variants 15-20x below BASIC.

#include <iostream>

#include "bench_util.h"

namespace flipper {
namespace bench {
namespace {

void Main() {
  Banner("bench_fig8b_ntxn",
         "Figure 8(b) — runtime vs number of transactions");
  const double scale = BenchScale() * 0.2;
  std::cout << "paper sweeps 100K..1M; this run sweeps the same 1x..10x"
            << " ratio from N=" << FormatCount(
                   static_cast<int64_t>(100'000 * scale)) << "\n\n";

  TablePrinter table({"N", "BASIC", "FLIPPING", "FLIPPING+TPG",
                      "FLIPPING+TPG+SIBP"});
  CsvWriter csv({"n", "variant", "seconds", "status", "candidates",
                 "patterns"});
  for (double factor : {1.0, 2.5, 5.0, 7.5, 10.0}) {
    const auto n = static_cast<uint32_t>(100'000 * scale * factor);
    SyntheticWorkload workload = MakeQuestWorkload(n, 5.0);
    MiningConfig config = DefaultSyntheticConfig();
    std::vector<std::string> row = {FormatCount(n)};
    for (Variant variant : kAllVariants) {
      const RunOutcome out =
          RunVariant(variant, workload.db, workload.taxonomy, config);
      row.push_back(OutcomeCell(out));
      csv.AddRow({std::to_string(n), VariantName(variant),
                  FormatDouble(out.seconds, 4),
                  out.ok ? "ok" : (out.exhausted ? "exhausted" : "error"),
                  std::to_string(out.candidates),
                  std::to_string(out.num_patterns)});
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\nShape check (paper): every series is linear in N;\n"
            << "full Flipper runs 15-20x faster than BASIC.\n";
  WriteCsv(csv, "fig8b_ntxn.csv");
}

}  // namespace
}  // namespace bench
}  // namespace flipper

int main() {
  flipper::bench::Main();
  return 0;
}
