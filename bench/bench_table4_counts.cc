// Regenerates Table 4: the number of positive, negative and flipping
// patterns for the three (simulated) real datasets under the paper's
// per-dataset thresholds. Pos/Neg are counted by the BASIC per-level
// Apriori (all frequent labeled itemsets); Flips by the full Flipper.

#include <iostream>

#include "bench_util.h"
#include "datagen/census_sim.h"
#include "datagen/groceries_sim.h"
#include "datagen/medline_sim.h"

namespace flipper {
namespace bench {
namespace {

void RunDataset(const SimulatedDataset& data, TablePrinter* table,
                CsvWriter* csv) {
  const MiningConfig& config = data.paper_config;
  std::string thresholds = "(" + FormatDouble(config.gamma, 2) + ", " +
                           FormatDouble(config.epsilon, 2);
  for (double theta : config.min_support) {
    thresholds += ", " + FormatDouble(theta, 4);
  }
  thresholds += ")";

  const RunOutcome basic =
      RunVariant(Variant::kBasic, data.db, data.taxonomy, config);
  const RunOutcome full =
      RunVariant(Variant::kFull, data.db, data.taxonomy, config);
  table->AddRow({data.name, thresholds,
                 basic.ok ? FormatCount(static_cast<int64_t>(
                                basic.num_positive))
                          : OutcomeCell(basic),
                 basic.ok ? FormatCount(static_cast<int64_t>(
                                basic.num_negative))
                          : OutcomeCell(basic),
                 std::to_string(full.num_patterns)});
  csv->AddRow({data.name, FormatDouble(config.gamma, 2),
               FormatDouble(config.epsilon, 2),
               std::to_string(basic.num_positive),
               std::to_string(basic.num_negative),
               std::to_string(full.num_patterns)});
}

void Main() {
  Banner("bench_table4_counts",
         "Table 4 — flipping patterns vs all positive/negative patterns");
  const double scale = BenchScale();

  TablePrinter table({"dataset", "(gamma,eps,theta_h)", "Pos", "Neg",
                      "Flips"});
  CsvWriter csv({"dataset", "gamma", "epsilon", "positive", "negative",
                 "flips"});

  GroceriesParams groceries;
  groceries.num_transactions = static_cast<uint32_t>(9'800 * scale);
  auto g = GenerateGroceries(groceries);
  FLIPPER_CHECK(g.ok()) << g.status();
  RunDataset(*g, &table, &csv);

  CensusParams census;
  census.num_records = static_cast<uint32_t>(32'000 * scale);
  auto c = GenerateCensus(census);
  FLIPPER_CHECK(c.ok()) << c.status();
  RunDataset(*c, &table, &csv);

  MedlineParams medline;
  medline.num_citations = static_cast<uint32_t>(64'000 * scale);
  auto m = GenerateMedline(medline);
  FLIPPER_CHECK(m.ok()) << m.status();
  RunDataset(*m, &table, &csv);

  table.Print(std::cout);
  std::cout
      << "\nShape check (paper): flipping patterns are orders of\n"
      << "magnitude rarer than the positive/negative pools they hide\n"
      << "in (paper: G 174 flips vs 8.0e4 negatives; M 430 flips vs\n"
      << "1.6e6 negatives); MEDLINE has by far the most negatives.\n";
  WriteCsv(csv, "table4_counts.csv");
}

}  // namespace
}  // namespace bench
}  // namespace flipper

int main() {
  flipper::bench::Main();
  return 0;
}
