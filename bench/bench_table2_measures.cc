// Regenerates Table 2's structure: the five null-invariant measures as
// generalized means of the conditional probabilities, and verifies
// their fixed ordering (min <= harmonic <= geometric <= arithmetic <=
// max) on a random sweep, printing a few illustrative rows.

#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "measures/measure.h"

namespace flipper {
namespace bench {
namespace {

void Main() {
  Banner("bench_table2_measures",
         "Table 2 — the five null-invariant measures & their ordering");

  TablePrinter table({"sup(AB)", "sup(A)", "sup(B)", "all_conf",
                      "coherence", "cosine", "kulc", "max_conf"});
  CsvWriter csv({"sup_ab", "sup_a", "sup_b", "all_conf", "coherence",
                 "cosine", "kulc", "max_conf"});
  struct Row {
    uint32_t ab, a, b;
  };
  // Illustrative rows: balanced, unbalanced, weak, Table-1's pairs.
  const Row rows[] = {{50, 100, 100}, {50, 100, 1000}, {5, 100, 100},
                      {400, 1000, 1000}, {4, 200, 200}, {99, 100, 100}};
  for (const Row& r : rows) {
    std::vector<std::string> cells = {
        std::to_string(r.ab), std::to_string(r.a), std::to_string(r.b)};
    for (MeasureKind kind : kAllMeasures) {
      cells.push_back(
          FormatDouble(Correlation2(kind, r.ab, r.a, r.b), 4));
    }
    table.AddRow(cells);
    csv.AddRow(cells);
  }
  table.Print(std::cout);

  // Ordering sweep.
  Rng rng(2024);
  const int trials = static_cast<int>(200'000 * BenchScale());
  int violations = 0;
  for (int t = 0; t < trials; ++t) {
    const int k = 2 + static_cast<int>(rng.Below(4));
    std::vector<uint32_t> sups;
    uint32_t min_sup = 0;
    for (int i = 0; i < k; ++i) {
      const auto s = static_cast<uint32_t>(rng.Uniform(1, 100000));
      sups.push_back(s);
      min_sup = i == 0 ? s : std::min(min_sup, s);
    }
    const auto sup =
        static_cast<uint32_t>(rng.Uniform(0, min_sup));
    double prev = -1.0;
    for (MeasureKind kind : kAllMeasures) {
      const double v = Correlation(kind, sup, sups);
      if (v + 1e-9 < prev) ++violations;
      prev = v;
    }
  }
  std::cout << "\nordering sweep: " << FormatCount(trials)
            << " random support configurations, " << violations
            << " ordering violations (expected 0)\n";
  WriteCsv(csv, "table2_measures.csv");
}

}  // namespace
}  // namespace bench
}  // namespace flipper

int main() {
  flipper::bench::Main();
  return 0;
}
