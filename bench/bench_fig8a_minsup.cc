// Regenerates Figure 8(a): running time of the four variants (BASIC,
// FLIPPING, FLIPPING+TPG, FLIPPING+TPG+SIBP) across the ten
// minimum-support profiles of Table 3 on the default Quest synthetic
// workload. The expected shape: all variants cheap at thr1; BASIC
// blows up as theta_4 drops (thr2, thr6, thr10 being the cliffs) while
// the pruned variants degrade gracefully — up to ~30x apart.

#include <iostream>

#include "bench_util.h"

namespace flipper {
namespace bench {
namespace {

struct Profile {
  const char* name;
  double t1, t2, t3, t4;
};

// Table 3, verbatim.
constexpr Profile kProfiles[] = {
    {"thr1", 0.05, 0.05, 0.05, 0.05},
    {"thr2", 0.05, 0.001, 0.0005, 0.0001},
    {"thr3", 0.01, 0.001, 0.0005, 0.0001},
    {"thr4", 0.01, 0.0005, 0.0005, 0.0001},
    {"thr5", 0.01, 0.0005, 0.0001, 0.0001},
    {"thr6", 0.01, 0.0005, 0.0001, 0.00005},
    {"thr7", 0.001, 0.0005, 0.0001, 0.00005},
    {"thr8", 0.001, 0.0001, 0.0001, 0.00005},
    {"thr9", 0.001, 0.0001, 0.00006, 0.00005},
    {"thr10", 0.001, 0.0001, 0.00006, 0.00003},
};

void Main() {
  Banner("bench_fig8a_minsup",
         "Figure 8(a) — runtime vs minimum-support profile (Table 3)");
  const uint32_t n = DefaultN();
  std::cout << "workload: Quest N=" << FormatCount(n)
            << " W=5 |I|=1250 H=4 (paper: N=100,000)\n\n";
  SyntheticWorkload workload = MakeQuestWorkload(n, 5.0);

  TablePrinter table({"profile", "BASIC", "FLIPPING", "FLIPPING+TPG",
                      "FLIPPING+TPG+SIBP", "flips"});
  CsvWriter csv({"profile", "variant", "seconds", "status",
                 "candidates", "patterns"});
  for (const Profile& profile : kProfiles) {
    MiningConfig config = DefaultSyntheticConfig();
    config.min_support = {profile.t1, profile.t2, profile.t3,
                          profile.t4};
    std::vector<std::string> row = {profile.name};
    uint64_t flips = 0;
    for (Variant variant : kAllVariants) {
      const RunOutcome out =
          RunVariant(variant, workload.db, workload.taxonomy, config);
      row.push_back(OutcomeCell(out));
      if (out.ok) flips = out.num_patterns;
      csv.AddRow({profile.name, VariantName(variant),
                  FormatDouble(out.seconds, 4),
                  out.ok ? "ok" : (out.exhausted ? "exhausted" : "error"),
                  std::to_string(out.candidates),
                  std::to_string(out.num_patterns)});
    }
    row.push_back(std::to_string(flips));
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout
      << "\nShape check (paper): near-flat at thr1; BASIC jumps at\n"
      << "thr2/thr6/thr10 when theta_4 drops; the full pruning stack\n"
      << "stays up to ~30x faster at the lowest-support profiles.\n";
  WriteCsv(csv, "fig8a_minsup.csv");
}

}  // namespace
}  // namespace bench
}  // namespace flipper

int main() {
  flipper::bench::Main();
  return 0;
}
