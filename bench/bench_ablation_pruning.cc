// Ablation A2 (ours): per-layer candidate accounting. For the default
// synthetic workload, reports how many candidates each pruning layer
// evaluates, how often TPG fires and how many items SIBP bans — the
// mechanism behind Figure 8's speedups.

#include <iostream>

#include "bench_util.h"

namespace flipper {
namespace bench {
namespace {

void Main() {
  Banner("bench_ablation_pruning",
         "ablation — candidate counts per pruning layer (DESIGN.md A2)");
  const uint32_t n = DefaultN();
  SyntheticWorkload workload = MakeQuestWorkload(n, 5.0);
  std::cout << "workload: Quest N=" << FormatCount(n) << " W=5\n\n";

  TablePrinter table({"variant", "generated", "counted", "seconds",
                      "tpg stop col", "sibp bans", "flips"});
  CsvWriter csv({"variant", "generated", "counted", "seconds",
                 "tpg_stop", "sibp_bans", "patterns"});
  MiningConfig config = DefaultSyntheticConfig();
  for (PruningOptions pruning :
       {PruningOptions::Basic(), PruningOptions::FlippingOnly(),
        PruningOptions::FlippingTpg(), PruningOptions::Full()}) {
    config.pruning = pruning;
    auto result =
        FlipperMiner::Run(workload.db, workload.taxonomy, config);
    if (!result.ok()) {
      table.AddRow({pruning.ToString(), "error"});
      continue;
    }
    const MiningStats& stats = result->stats;
    table.AddRow(
        {pruning.ToString(),
         FormatCount(static_cast<int64_t>(stats.total_generated)),
         FormatCount(static_cast<int64_t>(stats.total_counted)),
         FormatDouble(stats.total_seconds, 3),
         stats.tpg_stopped_at > 0 ? std::to_string(stats.tpg_stopped_at)
                                  : "-",
         std::to_string(stats.sibp_banned_items),
         std::to_string(result->patterns.size())});
    csv.AddRow({pruning.ToString(),
                std::to_string(stats.total_generated),
                std::to_string(stats.total_counted),
                FormatDouble(stats.total_seconds, 4),
                std::to_string(stats.tpg_stopped_at),
                std::to_string(stats.sibp_banned_items),
                std::to_string(result->patterns.size())});
  }
  table.Print(std::cout);
  std::cout << "\nEach added layer may only shrink the candidate\n"
            << "workload while the flipping output stays identical\n"
            << "(verified by the differential test suite).\n";
  WriteCsv(csv, "ablation_pruning.csv");
}

}  // namespace
}  // namespace bench
}  // namespace flipper

int main() {
  flipper::bench::Main();
  return 0;
}
