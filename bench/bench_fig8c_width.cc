// Regenerates Figure 8(c): running time of the four variants as the
// average transaction width W grows from 5 to 10. Expected shape:
// BASIC explodes with density (up to ~300x slower than full Flipper at
// W=10) while the pruned variants degrade gracefully.

#include <iostream>

#include "bench_util.h"

namespace flipper {
namespace bench {
namespace {

void Main() {
  Banner("bench_fig8c_width",
         "Figure 8(c) — runtime vs average transaction width");
  const uint32_t n = static_cast<uint32_t>(DefaultN() * 0.25);
  std::cout << "workload: Quest N=" << FormatCount(n)
            << ", W swept 5..10 (paper: N=100,000)\n"
            << "BASIC runs under a 3M-candidate guard: where the paper's\n"
            << "BASIC needed tens of GB / thousands of seconds, ours\n"
            << "reports 'exhausted' (same blow-up, bounded machine).\n\n";

  TablePrinter table({"W", "BASIC", "FLIPPING", "FLIPPING+TPG",
                      "FLIPPING+TPG+SIBP"});
  CsvWriter csv({"w", "variant", "seconds", "status", "candidates",
                 "patterns"});
  for (int width = 5; width <= 10; ++width) {
    SyntheticWorkload workload =
        MakeQuestWorkload(n, static_cast<double>(width));
    MiningConfig config = DefaultSyntheticConfig();
    config.max_candidates_per_cell = 3'000'000;
    std::vector<std::string> row = {std::to_string(width)};
    for (Variant variant : kAllVariants) {
      const RunOutcome out =
          RunVariant(variant, workload.db, workload.taxonomy, config);
      row.push_back(OutcomeCell(out));
      csv.AddRow({std::to_string(width), VariantName(variant),
                  FormatDouble(out.seconds, 4),
                  out.ok ? "ok" : (out.exhausted ? "exhausted" : "error"),
                  std::to_string(out.candidates),
                  std::to_string(out.num_patterns)});
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout
      << "\nShape check (paper): BASIC's runtime grows dramatically\n"
      << "with density (up to ~300x the full stack at W=10); the new\n"
      << "prunings 'handle the increasing density gracefully'.\n";
  WriteCsv(csv, "fig8c_width.csv");
}

}  // namespace
}  // namespace bench
}  // namespace flipper

int main() {
  flipper::bench::Main();
  return 0;
}
