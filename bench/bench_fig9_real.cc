// Regenerates Figure 9(a) runtime and 9(b) candidate-memory for the
// three real-dataset stand-ins (GROCERIES / CENSUS / MEDLINE), naive
// flipping-based pruning vs. the full Flipper stack. The BASIC Apriori
// baseline is excluded exactly as in the paper ("runs longer than 10
// hours even for the smallest dataset").

#include <iostream>

#include "bench_util.h"
#include "datagen/census_sim.h"
#include "datagen/groceries_sim.h"
#include "datagen/medline_sim.h"

namespace flipper {
namespace bench {
namespace {

void RunDataset(const SimulatedDataset& data, TablePrinter* time_table,
                TablePrinter* mem_table, CsvWriter* csv) {
  MiningConfig config = data.paper_config;
  const RunOutcome naive = RunVariant(Variant::kFlipping, data.db,
                                      data.taxonomy, config);
  const RunOutcome full =
      RunVariant(Variant::kFull, data.db, data.taxonomy, config);
  time_table->AddRow({data.name, OutcomeCell(naive), OutcomeCell(full)});
  mem_table->AddRow({data.name, FormatBytes(naive.peak_bytes),
                     FormatBytes(full.peak_bytes)});
  for (const auto& [variant, out] :
       {std::pair{"naive_flipping", &naive}, {"full_flipper", &full}}) {
    csv->AddRow({data.name, variant, FormatDouble(out->seconds, 4),
                 std::to_string(out->peak_bytes),
                 std::to_string(out->candidates),
                 std::to_string(out->num_patterns)});
  }
}

void Main() {
  Banner("bench_fig9_real",
         "Figure 9(a,b) — real datasets: naive flipping vs full Flipper");
  const double scale = BenchScale();
  std::cout << "datasets (simulated substitutes, see DESIGN.md §4):\n"
            << "  GROCERIES " << FormatCount(
                   static_cast<int64_t>(9'800 * scale))
            << " txns, CENSUS " << FormatCount(
                   static_cast<int64_t>(32'000 * scale))
            << " records, MEDLINE " << FormatCount(
                   static_cast<int64_t>(64'000 * scale))
            << " citations (paper: 640,000 at scale 10)\n\n";

  TablePrinter time_table({"dataset", "naive flipping (s)",
                           "full Flipper (s)"});
  TablePrinter mem_table({"dataset", "naive flipping (peak)",
                          "full Flipper (peak)"});
  CsvWriter csv({"dataset", "variant", "seconds", "peak_bytes",
                 "candidates", "patterns"});

  GroceriesParams groceries;
  groceries.num_transactions =
      static_cast<uint32_t>(9'800 * scale);
  auto g = GenerateGroceries(groceries);
  FLIPPER_CHECK(g.ok()) << g.status();
  RunDataset(*g, &time_table, &mem_table, &csv);

  CensusParams census;
  census.num_records = static_cast<uint32_t>(32'000 * scale);
  auto c = GenerateCensus(census);
  FLIPPER_CHECK(c.ok()) << c.status();
  RunDataset(*c, &time_table, &mem_table, &csv);

  MedlineParams medline;
  medline.num_citations = static_cast<uint32_t>(64'000 * scale);
  auto m = GenerateMedline(medline);
  FLIPPER_CHECK(m.ok()) << m.status();
  RunDataset(*m, &time_table, &mem_table, &csv);

  std::cout << "--- Figure 9(a): running time ---\n";
  time_table.Print(std::cout);
  std::cout << "\n--- Figure 9(b): candidate-store memory ---\n";
  mem_table.Print(std::cout);
  std::cout
      << "\nShape check (paper): the full stack wins on both time and\n"
      << "memory on every dataset; MEDLINE (largest) shows the widest\n"
      << "gap. The paper's full version never exceeded 2 GB while\n"
      << "naive variants needed several GB.\n";
  WriteCsv(csv, "fig9_real.csv");
}

}  // namespace
}  // namespace bench
}  // namespace flipper

int main() {
  flipper::bench::Main();
  return 0;
}
