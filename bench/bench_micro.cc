// Micro-benchmarks (google-benchmark): correlation measure evaluation,
// TID-set intersections, candidate-trie counting, itemset operations.

#include <benchmark/benchmark.h>

#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "core/candidate_trie.h"
#include "data/itemset.h"
#include "data/tidset.h"
#include "data/transaction_db.h"
#include "measures/measure.h"

namespace flipper {
namespace {

void BM_CorrelationKulc(benchmark::State& state) {
  const auto k = static_cast<size_t>(state.range(0));
  std::vector<uint32_t> sups(k);
  Rng rng(1);
  for (auto& s : sups) s = static_cast<uint32_t>(rng.Uniform(100, 10000));
  const uint32_t sup = 90;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Correlation(MeasureKind::kKulczynski, sup, sups));
  }
}
BENCHMARK(BM_CorrelationKulc)->Arg(2)->Arg(4)->Arg(8);

void BM_CorrelationCosine(benchmark::State& state) {
  const auto k = static_cast<size_t>(state.range(0));
  std::vector<uint32_t> sups(k);
  Rng rng(1);
  for (auto& s : sups) s = static_cast<uint32_t>(rng.Uniform(100, 10000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Correlation(MeasureKind::kCosine, 90, sups));
  }
}
BENCHMARK(BM_CorrelationCosine)->Arg(2)->Arg(8);

TidSet MakeRandomTidSet(Rng* rng, uint32_t universe, double density,
                        bool dense) {
  std::vector<TxnId> tids;
  for (TxnId t = 0; t < universe; ++t) {
    if (rng->Bernoulli(density)) tids.push_back(t);
  }
  return dense ? TidSet::BuildDense(tids, universe)
               : TidSet::BuildSparse(tids, universe);
}

void BM_TidSetIntersectDense(benchmark::State& state) {
  Rng rng(7);
  const auto universe = static_cast<uint32_t>(state.range(0));
  TidSet a = MakeRandomTidSet(&rng, universe, 0.2, true);
  TidSet b = MakeRandomTidSet(&rng, universe, 0.2, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TidSet::IntersectCount(a, b));
  }
  state.SetItemsProcessed(state.iterations() * universe);
}
BENCHMARK(BM_TidSetIntersectDense)->Arg(100'000)->Arg(1'000'000);

void BM_TidSetIntersectSparse(benchmark::State& state) {
  Rng rng(7);
  const auto universe = static_cast<uint32_t>(state.range(0));
  TidSet a = MakeRandomTidSet(&rng, universe, 0.01, false);
  TidSet b = MakeRandomTidSet(&rng, universe, 0.01, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TidSet::IntersectCount(a, b));
  }
}
BENCHMARK(BM_TidSetIntersectSparse)->Arg(100'000)->Arg(1'000'000);

void BM_TrieCounting(benchmark::State& state) {
  Rng rng(11);
  const auto num_candidates = static_cast<size_t>(state.range(0));
  const ItemId alphabet = 1000;
  TransactionDb db;
  std::vector<ItemId> txn;
  for (int t = 0; t < 5000; ++t) {
    txn.clear();
    for (int i = 0; i < 8; ++i) {
      txn.push_back(static_cast<ItemId>(rng.Below(alphabet)));
    }
    db.Add(txn);
  }
  std::vector<Itemset> candidates;
  std::unordered_set<Itemset, ItemsetHash> seen;
  while (candidates.size() < num_candidates) {
    Itemset s;
    while (s.size() < 3) {
      s.Insert(static_cast<ItemId>(rng.Below(alphabet)));
    }
    if (seen.insert(s).second) candidates.push_back(s);
  }
  for (auto _ : state) {
    CandidateTrie trie(candidates);
    for (TxnId t = 0; t < db.size(); ++t) {
      trie.CountTransaction(db.Get(t));
    }
    benchmark::DoNotOptimize(trie.CountOf(0));
  }
  state.SetItemsProcessed(state.iterations() * db.size());
}
BENCHMARK(BM_TrieCounting)->Arg(1000)->Arg(10'000);

void BM_ItemsetInsertHash(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    Itemset s;
    for (int i = 0; i < 8; ++i) {
      s.Insert(static_cast<ItemId>(rng.Below(100000)));
    }
    benchmark::DoNotOptimize(s.Hash());
  }
}
BENCHMARK(BM_ItemsetInsertHash);

void BM_PrefixJoin(benchmark::State& state) {
  Itemset a{1, 2, 3, 4, 5, 6, 7};
  Itemset b{1, 2, 3, 4, 5, 6, 9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Itemset::PrefixJoin(a, b));
  }
}
BENCHMARK(BM_PrefixJoin);

}  // namespace
}  // namespace flipper

BENCHMARK_MAIN();
