// Micro-benchmarks: correlation measure evaluation, TID-set
// intersections, candidate-trie counting, itemset operations, and the
// thread-scaling series for the sharded counting engine.
//
// Self-contained harness (no external benchmark dependency): every case
// runs a warm-up pass plus FLIPPER_BENCH_REPS timed repetitions and
// reports the median wall-clock ms and a rows/s throughput. Results are
// printed as a table and written as machine-readable JSON to
// ./bench_results/bench_micro.json so future PRs have a perf
// trajectory to compare against.

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/env.h"
#include "common/memory_tracker.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"
#include "core/candidate_trie.h"
#include "core/flipper_miner.h"
#include "core/pipeline_metrics.h"
#include "core/scan_cell.h"
#include "core/scan_counter.h"
#include "core/support_counting.h"
#include "data/db_io.h"
#include "data/item_dictionary.h"
#include "data/itemset.h"
#include "data/tidset.h"
#include "data/transaction_db.h"
#include "data/vertical_index.h"
#include "datagen/census_sim.h"
#include "datagen/groceries_sim.h"
#include "datagen/medline_sim.h"
#include "datagen/quest_gen.h"
#include "datagen/taxonomy_gen.h"
#include "measures/measure.h"
#include "storage/store_reader.h"
#include "storage/store_writer.h"

namespace flipper {
namespace {

struct CaseResult {
  std::string name;
  int threads = 1;
  int reps = 0;
  double median_ms = 0.0;
  /// Upper-tail repetition (p95 over the timed reps; the max at the
  /// smoke rep counts) — recorded so the trajectory file can catch
  /// variance regressions that leave the median flat.
  double p95_ms = 0.0;
  /// Process high-water RSS after this case ran (getrusage; monotone
  /// across cases, so the trajectory shows which case first reached
  /// each plateau).
  int64_t peak_rss_bytes = 0;
  /// Case-defined work items per second (transactions for scans,
  /// evaluations for the arithmetic kernels).
  double rows_per_sec = 0.0;
  /// Speedup over the series' baseline case (0 = n/a); `speedup_key`
  /// names the baseline in the JSON so cases with different baselines
  /// (1-thread scan vs staged-serial miner) are not conflated.
  double speedup = 0.0;
  const char* speedup_key = "speedup_vs_1t";
  /// Extra `"key": value` JSON fields for this case (pre-rendered,
  /// comma-prefixed on emit), e.g. scan_skip's skipped-segment counts.
  std::string extra_json;
};

int NumReps() {
  const double scale = BenchScale();
  return scale >= 1.0 ? 5 : 3;
}

/// Times `fn` (one warm-up + `reps` timed runs) and derives rows/s from
/// the median repetition.
CaseResult RunCase(const std::string& name, int threads,
                   double rows_per_rep,
                   const std::function<void()>& fn) {
  CaseResult out;
  out.name = name;
  out.threads = threads;
  out.reps = NumReps();
  fn();  // warm-up
  std::vector<double> ms;
  ms.reserve(static_cast<size_t>(out.reps));
  for (int r = 0; r < out.reps; ++r) {
    WallTimer timer;
    fn();
    ms.push_back(timer.ElapsedSeconds() * 1e3);
  }
  std::sort(ms.begin(), ms.end());
  out.median_ms = ms[ms.size() / 2];
  out.p95_ms = ms[(ms.size() * 95 + 99) / 100 - 1];
  out.peak_rss_bytes = PeakRssBytes();
  if (out.median_ms > 0.0) {
    out.rows_per_sec = rows_per_rep / (out.median_ms / 1e3);
  }
  return out;
}

void EmitResults(const std::vector<CaseResult>& results,
                 const std::string& extra_blocks) {
  TablePrinter table({"case", "threads", "reps", "median_ms", "p95_ms",
                      "rows/s", "speedup", "peak_rss"});
  for (const CaseResult& r : results) {
    table.AddRow({r.name, std::to_string(r.threads),
                  std::to_string(r.reps), FormatDouble(r.median_ms, 3),
                  FormatDouble(r.p95_ms, 3),
                  FormatDouble(r.rows_per_sec, 0),
                  r.speedup > 0.0 ? FormatDouble(r.speedup, 2) : "-",
                  FormatBytes(r.peak_rss_bytes)});
  }
  table.Print(std::cout);

  std::string json = "{\n  \"bench\": \"bench_micro\",\n  \"scale\": " +
                     FormatDouble(BenchScale(), 2) +
                     ",\n  \"hardware_threads\": " +
                     std::to_string(ThreadPool::ResolveThreadCount(0)) +
                     ",\n  \"cases\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    json += "    {\"name\": \"" + JsonEscape(r.name) +
            "\", \"threads\": " + std::to_string(r.threads) +
            ", \"reps\": " + std::to_string(r.reps) +
            ", \"median_ms\": " + FormatDouble(r.median_ms, 4) +
            ", \"p95_ms\": " + FormatDouble(r.p95_ms, 4) +
            ", \"peak_rss_bytes\": " + std::to_string(r.peak_rss_bytes) +
            ", \"rows_per_sec\": " + FormatDouble(r.rows_per_sec, 1);
    if (r.speedup > 0.0) {
      json += ", \"" + std::string(r.speedup_key) +
              "\": " + FormatDouble(r.speedup, 3);
    }
    if (!r.extra_json.empty()) json += ", " + r.extra_json;
    json += i + 1 < results.size() ? "},\n" : "}\n";
  }
  json += "  ]";
  if (!extra_blocks.empty()) json += ",\n" + extra_blocks;
  json += "\n}\n";

  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (ec) {
    std::cout << "\n[json] skipped: cannot create bench_results/: "
              << ec.message() << "\n";
    return;
  }
  const std::string path = "bench_results/bench_micro.json";
  std::ofstream out(path);
  if (out) {
    out << json;
    std::cout << "\n[json] " << path << "\n";
  } else {
    std::cout << "\n[json] skipped: cannot open " << path << "\n";
  }
}

TidSet MakeRandomTidSet(Rng* rng, uint32_t universe, double density,
                        bool dense) {
  std::vector<TxnId> tids;
  for (TxnId t = 0; t < universe; ++t) {
    if (rng->Bernoulli(density)) tids.push_back(t);
  }
  return dense ? TidSet::BuildDense(tids, universe)
               : TidSet::BuildSparse(tids, universe);
}

void BenchCorrelation(std::vector<CaseResult>* results) {
  for (const auto& [kind, kind_name] :
       {std::pair{MeasureKind::kKulczynski, "kulc"},
        std::pair{MeasureKind::kCosine, "cosine"}}) {
    for (size_t k : {size_t{2}, size_t{8}}) {
      std::vector<uint32_t> sups(k);
      Rng rng(1);
      for (auto& s : sups) {
        s = static_cast<uint32_t>(rng.Uniform(100, 10000));
      }
      constexpr int kEvals = 2'000'000;
      results->push_back(RunCase(
          std::string("correlation_") + kind_name + "_k" +
              std::to_string(k),
          1, kEvals, [&] {
            double acc = 0.0;
            for (int i = 0; i < kEvals; ++i) {
              acc += Correlation(kind, 90, sups);
            }
            if (acc < 0.0) std::abort();  // keep the loop observable
          }));
    }
  }
}

void BenchTidSetIntersect(std::vector<CaseResult>* results) {
  Rng rng(7);
  const auto universe = static_cast<uint32_t>(1'000'000 * BenchScale());
  TidSet dense_a = MakeRandomTidSet(&rng, universe, 0.2, true);
  TidSet dense_b = MakeRandomTidSet(&rng, universe, 0.2, true);
  TidSet sparse_a = MakeRandomTidSet(&rng, universe, 0.01, false);
  TidSet sparse_b = MakeRandomTidSet(&rng, universe, 0.01, false);
  constexpr int kIters = 200;
  results->push_back(
      RunCase("tidset_intersect_dense", 1,
              static_cast<double>(universe) * kIters, [&] {
                uint32_t acc = 0;
                for (int i = 0; i < kIters; ++i) {
                  acc += TidSet::IntersectCount(dense_a, dense_b);
                }
                if (acc == 0) std::abort();
              }));
  results->push_back(
      RunCase("tidset_intersect_sparse", 1,
              static_cast<double>(sparse_a.cardinality()) * kIters, [&] {
                uint32_t acc = 0;
                for (int i = 0; i < kIters; ++i) {
                  acc += TidSet::IntersectCount(sparse_a, sparse_b);
                }
                // The sparse intersection can legitimately be empty at
                // small scales; keep the loop observable without an
                // abort guard that could misfire.
                volatile uint32_t sink = acc;
                (void)sink;
              }));

  // Many-way intersection with the reusable scratch (the vertical
  // engine's hot path).
  std::vector<TidSet> sets;
  for (int i = 0; i < 4; ++i) {
    sets.push_back(MakeRandomTidSet(&rng, universe, 0.05, false));
  }
  std::vector<const TidSet*> ptrs;
  for (const TidSet& s : sets) ptrs.push_back(&s);
  results->push_back(RunCase(
      "tidset_intersect_4way_scratch", 1,
      static_cast<double>(sets[0].cardinality()) * kIters, [&] {
        TidSet::IntersectScratch scratch;
        uint32_t acc = 0;
        for (int i = 0; i < kIters; ++i) {
          acc += TidSet::IntersectCountMany(ptrs, &scratch);
        }
        // A 4-way sparse intersection can legitimately be empty, so an
        // abort guard would misfire; a volatile sink keeps the loop
        // observable instead.
        volatile uint32_t sink = acc;
        (void)sink;
      }));
}

void BenchItemsetOps(std::vector<CaseResult>* results) {
  constexpr int kIters = 2'000'000;
  results->push_back(RunCase("itemset_insert_hash", 1, kIters, [&] {
    Rng rng(3);
    uint64_t acc = 0;
    for (int i = 0; i < kIters; ++i) {
      Itemset s;
      for (int j = 0; j < 8; ++j) {
        s.Insert(static_cast<ItemId>(rng.Below(100000)));
      }
      acc += s.Hash();
    }
    if (acc == 0) std::abort();
  }));
  results->push_back(RunCase("prefix_join", 1, kIters, [&] {
    const Itemset a{1, 2, 3, 4, 5, 6, 7};
    const Itemset b{1, 2, 3, 4, 5, 6, 9};
    int acc = 0;
    for (int i = 0; i < kIters; ++i) {
      acc += Itemset::PrefixJoin(a, b).has_value() ? 1 : 0;
    }
    if (acc == 0) std::abort();
  }));
}

/// Fixed synthetic counting workload shared by the serial trie case and
/// the thread-scaling series.
struct ScanWorkload {
  TransactionDb db;
  std::vector<Itemset> candidates;
};

ScanWorkload MakeScanWorkload(uint32_t num_txns, size_t num_candidates) {
  ScanWorkload out;
  Rng rng(11);
  const ItemId alphabet = 1000;
  std::vector<ItemId> txn;
  for (uint32_t t = 0; t < num_txns; ++t) {
    txn.clear();
    for (int i = 0; i < 8; ++i) {
      txn.push_back(static_cast<ItemId>(rng.Below(alphabet)));
    }
    out.db.Add(txn);
  }
  std::unordered_set<Itemset, ItemsetHash> seen;
  while (out.candidates.size() < num_candidates) {
    Itemset s;
    while (s.size() < 3) {
      s.Insert(static_cast<ItemId>(rng.Below(alphabet)));
    }
    if (seen.insert(s).second) out.candidates.push_back(s);
  }
  return out;
}

void BenchTrieCounting(std::vector<CaseResult>* results) {
  const auto num_txns = static_cast<uint32_t>(20'000 * BenchScale());
  for (size_t num_candidates : {size_t{1000}, size_t{10'000}}) {
    ScanWorkload w = MakeScanWorkload(num_txns, num_candidates);
    std::vector<uint32_t> supports(w.candidates.size());
    results->push_back(RunCase(
        "trie_count_" + std::to_string(num_candidates) + "c", 1,
        w.db.size(), [&] {
          CountBatchWithTrie(w.db, w.candidates, nullptr, supports);
        }));
  }
}

/// Flat SoA trie (packed/galloping probes + prefilter) vs the legacy
/// AoS layer trie on quest-shaped counting workloads — stationary and
/// temporally skewed (the two scenarios the scan paths care about).
/// Candidates are 3-subsets drawn from real transactions so supports
/// are non-trivial. The flat cases report speedup_vs_legacy.
void BenchTrieLayouts(std::vector<CaseResult>* results) {
  ItemDictionary dict;
  auto taxonomy = GenerateBalancedTaxonomy(TaxonomyGenParams(), &dict);
  if (!taxonomy.ok()) std::abort();
  struct Scenario {
    const char* tag;
    uint32_t phases;
  };
  for (const Scenario scenario :
       {Scenario{"quest", 0}, Scenario{"skewed_quest", 50}}) {
    QuestParams params;
    params.num_transactions =
        static_cast<uint32_t>(20'000 * std::max(0.25, BenchScale()));
    params.phases = scenario.phases;
    params.seed = 7;
    auto db = GenerateQuest(params, *taxonomy);
    if (!db.ok()) std::abort();

    Rng rng(5);
    std::unordered_set<Itemset, ItemsetHash> seen;
    std::vector<Itemset> candidates;
    for (int attempts = 0;
         candidates.size() < 4000 && attempts < 200'000; ++attempts) {
      const auto txn = db->Get(static_cast<TxnId>(rng.Below(db->size())));
      if (txn.size() < 3) continue;
      Itemset s;
      while (s.size() < 3) {
        s.Insert(txn[rng.Below(txn.size())]);
      }
      if (seen.insert(s).second) candidates.push_back(s);
    }
    if (candidates.empty()) std::abort();
    std::vector<uint32_t> supports(candidates.size());

    CountBatchOptions legacy_options;
    legacy_options.trie.flat = false;
    legacy_options.trie.prefilter = false;
    const CaseResult legacy = RunCase(
        std::string("trie_legacy_") + scenario.tag, 1, db->size(), [&] {
          CountBatchWithTrie(*db, candidates, nullptr, supports, nullptr,
                             nullptr, legacy_options);
        });
    results->push_back(legacy);

    CountBatchOptions flat_options;  // pure layout A/B: prefilter has
    flat_options.trie.prefilter = false;  // its own bench cases
    CaseResult flat = RunCase(
        std::string("trie_flat_vs_legacy_") + scenario.tag, 1,
        db->size(), [&] {
          CountBatchWithTrie(*db, candidates, nullptr, supports, nullptr,
                             nullptr, flat_options);
        });
    if (legacy.median_ms > 0.0 && flat.median_ms > 0.0) {
      flat.speedup = legacy.median_ms / flat.median_ms;
      flat.speedup_key = "speedup_vs_legacy";
    }
    flat.extra_json = std::string("\"packed_kernel\": \"") +
                      trie_probe::PackedKernelName() + "\"";
    results->push_back(flat);
  }
}

/// Transaction prefilter on a workload where it has bite: candidates
/// concentrated on a narrow item band, transactions spread over the
/// whole alphabet — most transactions keep fewer than k candidate
/// items and skip the walk entirely. The on-case records the rejected
/// transaction count in the JSON.
void BenchTxnPrefilter(std::vector<CaseResult>* results) {
  Rng rng(23);
  const auto num_txns =
      static_cast<uint32_t>(30'000 * std::max(0.25, BenchScale()));
  const ItemId alphabet = 4000;
  const ItemId band = 150;  // candidate items live in [0, band)
  TransactionDb db;
  std::vector<ItemId> txn;
  for (uint32_t t = 0; t < num_txns; ++t) {
    txn.clear();
    for (int i = 0; i < 10; ++i) {
      txn.push_back(static_cast<ItemId>(rng.Below(alphabet)));
    }
    db.Add(txn);
  }
  std::unordered_set<Itemset, ItemsetHash> seen;
  std::vector<Itemset> candidates;
  while (candidates.size() < 2000) {
    Itemset s;
    while (s.size() < 3) {
      s.Insert(static_cast<ItemId>(rng.Below(band)));
    }
    if (seen.insert(s).second) candidates.push_back(s);
  }
  std::vector<uint32_t> supports(candidates.size());

  uint64_t prefiltered = 0;
  double off_ms = 0.0;
  for (const bool prefilter : {false, true}) {
    CountBatchOptions options;
    options.trie.prefilter = prefilter;
    prefiltered = 0;
    options.txns_prefiltered = &prefiltered;
    CaseResult r = RunCase(
        prefilter ? "txn_prefilter_on" : "txn_prefilter_off", 1,
        db.size(), [&] {
          prefiltered = 0;
          CountBatchWithTrie(db, candidates, nullptr, supports, nullptr,
                             nullptr, options);
        });
    if (!prefilter) {
      off_ms = r.median_ms;
      if (prefiltered != 0) std::abort();  // disabled must never reject
    } else {
      if (off_ms > 0.0 && r.median_ms > 0.0) {
        r.speedup = off_ms / r.median_ms;
        r.speedup_key = "speedup_vs_no_prefilter";
      }
      r.extra_json =
          "\"txns_prefiltered\": " + std::to_string(prefiltered) +
          ", \"txns_total\": " + std::to_string(db.size());
      std::cout << "txn_prefilter: " << prefiltered << " of " << db.size()
                << " transactions rejected before the walk\n";
    }
    results->push_back(r);
  }
}

/// Probe-kernel shoot-out on synthetic sibling fanouts: scalar linear
/// scan vs the packed compare (SSE2/AVX2/portable word mask) vs
/// galloping, each resolving the same lower-bound queries.
void BenchProbeKernels(std::vector<CaseResult>* results) {
  Rng rng(31);
  for (const uint32_t fanout : {uint32_t{16}, uint32_t{256},
                                uint32_t{4096}}) {
    // Strictly increasing id stream with random gaps.
    std::vector<ItemId> items(fanout);
    ItemId next = 0;
    for (auto& item : items) {
      next += 1 + static_cast<ItemId>(rng.Below(8));
      item = next;
    }
    std::vector<ItemId> targets(1024);
    for (auto& t : targets) {
      t = static_cast<ItemId>(rng.Below(next + 8));
    }
    const int probes = static_cast<int>(
        std::max<uint32_t>(50'000, 4'000'000 / fanout));

    struct Kernel {
      const char* name;
      uint32_t (*fn)(const ItemId*, uint32_t, uint32_t, ItemId);
    };
    const Kernel kernels[] = {
        {"scalar", &trie_probe::LowerBoundScalar},
        {"packed", &trie_probe::LowerBoundPacked},
        {"gallop", &trie_probe::LowerBoundGallop},
    };
    double scalar_ms = 0.0;
    for (const Kernel& kernel : kernels) {
      CaseResult r = RunCase(
          std::string("trie_probe_kernels_") + kernel.name + "_f" +
              std::to_string(fanout),
          1, probes, [&] {
            uint64_t acc = 0;
            for (int i = 0; i < probes; ++i) {
              acc += kernel.fn(items.data(), 0,
                               static_cast<uint32_t>(items.size()),
                               targets[static_cast<size_t>(i) &
                                       (targets.size() - 1)]);
            }
            volatile uint64_t sink = acc;
            (void)sink;
          });
      if (kernel.name == kernels[0].name) {
        scalar_ms = r.median_ms;
      } else if (scalar_ms > 0.0 && r.median_ms > 0.0) {
        r.speedup = scalar_ms / r.median_ms;
        r.speedup_key = "speedup_vs_scalar";
      }
      if (std::string(kernel.name) == "packed") {
        r.extra_json = std::string("\"packed_kernel\": \"") +
                       trie_probe::PackedKernelName() + "\"";
      }
      results->push_back(r);
    }
  }
}

/// Row-level trie reuse: several consecutive batches (a row's cells)
/// counted against one database — a fresh trie + buffers per call vs
/// one warm CountBatchScratch rebuilt in place.
void BenchRowTrieReuse(std::vector<CaseResult>* results) {
  // Many small cells against a modest database: the shape where the
  // per-cell trie build + buffer setup is a visible fraction of the
  // scan, i.e. where the reuse seam pays.
  const auto num_txns = static_cast<uint32_t>(
      2'000 * std::max(0.25, BenchScale()));
  ScanWorkload w = MakeScanWorkload(num_txns, 4096);
  constexpr size_t kBatches = 16;
  const size_t per_batch = w.candidates.size() / kBatches;
  std::vector<uint32_t> supports(per_batch);
  const double rows_per_rep =
      static_cast<double>(w.db.size()) * kBatches;

  double fresh_ms = 0.0;
  for (const bool reuse : {false, true}) {
    CountBatchScratch scratch;
    CaseResult r = RunCase(
        reuse ? "row_trie_reuse_on" : "row_trie_reuse_off", 1,
        rows_per_rep, [&] {
          for (size_t b = 0; b < kBatches; ++b) {
            CountBatchOptions options;
            if (reuse) options.scratch = &scratch;
            const std::span<const Itemset> batch(
                w.candidates.data() + b * per_batch, per_batch);
            CountBatchWithTrie(w.db, batch, nullptr, supports, nullptr,
                               nullptr, options);
          }
        });
    if (!reuse) {
      fresh_ms = r.median_ms;
    } else if (fresh_ms > 0.0 && r.median_ms > 0.0) {
      r.speedup = fresh_ms / r.median_ms;
      r.speedup_key = "speedup_vs_fresh";
    }
    results->push_back(r);
  }
}

/// Scan-cell counter shoot-out: the exact hot loop of the scan-driven
/// cell (every 3-subset of each filtered transaction bumped into a
/// counter) against the unordered_map baseline and the open-addressed
/// bump-arena table, both warm across reps as in the pipeline's steady
/// state. The arena case reports speedup_vs_map plus its warm-rep grow
/// events — which must be zero: a warm table recounting the same data
/// performs no allocation at all.
void BenchScanCounters(std::vector<CaseResult>* results) {
  Rng rng(17);
  const auto num_txns =
      static_cast<uint32_t>(8'000 * std::max(0.25, BenchScale()));
  const ItemId alphabet = 600;
  TransactionDb db;
  std::vector<ItemId> txn;
  for (uint32_t t = 0; t < num_txns; ++t) {
    txn.clear();
    for (int i = 0; i < 10; ++i) {
      txn.push_back(static_cast<ItemId>(rng.Below(alphabet)));
    }
    std::sort(txn.begin(), txn.end());
    txn.erase(std::unique(txn.begin(), txn.end()), txn.end());
    db.Add(txn);
  }
  constexpr int kSubset = 3;
  Itemset combo;
  const auto scan_into = [&](auto&& bump) {
    for (TxnId t = 0; t < db.size(); ++t) {
      const auto items = db.Get(t);
      if (items.size() < static_cast<size_t>(kSubset)) continue;
      ForEachCombination(items, kSubset, &combo, bump);
    }
  };

  ScanCellScratch::CountMap map_counts;
  const CaseResult map_case =
      RunCase("scan_counter_map", 1, db.size(), [&] {
        map_counts.clear();
        scan_into([&](const Itemset& c) { ++map_counts[c]; });
      });
  results->push_back(map_case);

  ScanCounterTable table;
  uint64_t warm_grow_events = 0;
  CaseResult arena_case =
      RunCase("scan_counter_arena", 1, db.size(), [&] {
        const uint64_t before = table.grow_events();
        table.Reset(kSubset);
        scan_into([&](const Itemset& c) { table.Increment(c); });
        warm_grow_events = table.grow_events() - before;
      });
  // Every timed rep ran after RunCase's warm-up pass, so the table's
  // capacity was already sized for this workload: any growth here
  // means the warm path allocates, which it must not.
  if (warm_grow_events != 0) std::abort();
  if (table.size() != map_counts.size()) std::abort();
  if (map_case.median_ms > 0.0 && arena_case.median_ms > 0.0) {
    arena_case.speedup = map_case.median_ms / arena_case.median_ms;
    arena_case.speedup_key = "speedup_vs_map";
  }
  arena_case.extra_json =
      "\"warm_grow_events\": " + std::to_string(warm_grow_events) +
      ", \"distinct_combos\": " + std::to_string(table.size()) +
      ", \"counter_bytes\": " + std::to_string(table.MemoryBytes());
  results->push_back(arena_case);
}

/// Thread-scaling series: the sharded horizontal counting scan on a
/// fixed synthetic DB at 1..N threads. The JSON records speedup_vs_1t
/// so cross-PR runs can track the scaling curve.
void BenchThreadScaling(std::vector<CaseResult>* results) {
  const auto num_txns = static_cast<uint32_t>(50'000 * BenchScale());
  ScanWorkload w = MakeScanWorkload(num_txns, 5000);
  std::vector<uint32_t> supports(w.candidates.size());

  std::vector<int> thread_counts = {1, 2, 4};
  const int hw = ThreadPool::ResolveThreadCount(0);
  if (std::find(thread_counts.begin(), thread_counts.end(), hw) ==
      thread_counts.end()) {
    thread_counts.push_back(hw);
  }

  double ms_1t = 0.0;
  for (int threads : thread_counts) {
    ThreadPool pool(threads);
    CaseResult r = RunCase(
        "horizontal_scan_threads_" + std::to_string(threads), threads,
        w.db.size(), [&] {
          CountBatchWithTrie(w.db, w.candidates, &pool, supports);
        });
    if (threads == 1) ms_1t = r.median_ms;
    if (ms_1t > 0.0 && r.median_ms > 0.0) {
      r.speedup = ms_1t / r.median_ms;
    }
    results->push_back(r);
  }

  // The vertical engine's candidate sharding on the same workload.
  VerticalIndex index(w.db);
  double vert_ms_1t = 0.0;
  for (int threads : thread_counts) {
    ThreadPool pool(threads);
    ThreadPool* pool_ptr = threads == 1 ? nullptr : &pool;
    CaseResult r = RunCase(
        "vertical_intersect_threads_" + std::to_string(threads), threads,
        w.candidates.size(), [&] {
          ParallelFor(pool_ptr, 0, w.candidates.size(), threads,
                      [&](int, size_t lo, size_t hi) {
                        TidSet::IntersectScratch scratch;
                        for (size_t i = lo; i < hi; ++i) {
                          supports[i] =
                              index.Support(w.candidates[i], &scratch);
                        }
                      });
        });
    if (threads == 1) vert_ms_1t = r.median_ms;
    if (vert_ms_1t > 0.0 && r.median_ms > 0.0) {
      r.speedup = vert_ms_1t / r.median_ms;
    }
    results->push_back(r);
  }
}

/// Per-stage wall-clock sums from a run's metrics snapshot as a
/// `"stages": {...}` JSON object (stage.<name>_ms histograms only; the
/// _cpu_ms twins are omitted — the trajectory cares about where the
/// wall time went).
std::string StagesJson(const MetricsRegistry::Snapshot& snap) {
  std::string out = "\"stages\": {";
  bool first = true;
  for (const auto& [name, hist] : snap.histograms) {
    constexpr const char kPrefix[] = "stage.";
    constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
    constexpr const char kSuffix[] = "_ms";
    constexpr size_t kSuffixLen = sizeof(kSuffix) - 1;
    if (name.rfind(kPrefix, 0) != 0) continue;
    if (name.size() <= kPrefixLen + kSuffixLen ||
        name.compare(name.size() - kSuffixLen, kSuffixLen, kSuffix) !=
            0) {
      continue;
    }
    if (name.size() >= 7 &&
        name.compare(name.size() - 7, 7, "_cpu_ms") == 0) {
      continue;
    }
    const std::string stage = name.substr(
        kPrefixLen, name.size() - kPrefixLen - kSuffixLen);
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(stage) +
           "\": " + FormatDouble(hist.sum_ms, 3);
  }
  out += "}";
  return out;
}

/// Staged-serial vs pipelined cell execution on a multi-cell quest
/// workload (several rows and columns stay alive, so the driver has
/// planning work to overlap with the pool's support scans). Three
/// rungs: staged serial, intra-row pipelining only, and the full
/// config with cross-row overlap; the pipelined cases report their
/// speedup over the staged-serial median at the same thread count in
/// the speedup column/JSON field.
void BenchMinerPipeline(std::vector<CaseResult>* results) {
  ItemDictionary dict;
  TaxonomyGenParams tax_params;  // the paper's 10 roots x fanout 5, H=4
  auto taxonomy = GenerateBalancedTaxonomy(tax_params, &dict);
  if (!taxonomy.ok()) std::abort();
  QuestParams quest;
  quest.num_transactions =
      static_cast<uint32_t>(10'000 * BenchScale());
  quest.avg_width = 5.0;
  quest.seed = 42;
  auto db = GenerateQuest(quest, *taxonomy);
  if (!db.ok()) std::abort();

  MiningConfig config;
  config.gamma = 0.3;
  config.epsilon = 0.1;
  config.min_support = {0.01, 0.001, 0.0005, 0.0001};
  config.num_threads = 0;
  const int hw = ThreadPool::ResolveThreadCount(0);
  struct Mode {
    const char* name;
    bool pipelining;
    bool row_overlap;
  };
  constexpr Mode kModes[] = {
      {"miner_staged_serial", false, false},
      {"miner_pipelined_no_row_overlap", true, false},
      {"miner_pipelined", true, true},
  };
  double serial_ms = 0.0;
  for (const Mode& mode : kModes) {
    config.enable_pipelining = mode.pipelining;
    config.enable_row_overlap = mode.row_overlap;
    // Every mode mines with a registry attached (a fresh one per rep,
    // so stage sums describe one run, not the series); the recorded
    // snapshot is the last timed rep's. The registry's cost is part of
    // what the miner cases measure — the dedicated A/B pair below
    // bounds it.
    MetricsRegistry::Snapshot snap;
    double utilization = 0.0;
    CaseResult r = RunCase(mode.name, hw, db->size(), [&] {
      MetricsRegistry metrics;
      MiningConfig run_config = config;
      run_config.metrics = &metrics;
      auto result = FlipperMiner::Run(*db, *taxonomy, run_config);
      if (!result.ok()) std::abort();
      utilization = metrics.gauge("pool.utilization");
      snap = metrics.Snap();
    });
    if (!mode.pipelining) {
      serial_ms = r.median_ms;
    } else if (serial_ms > 0.0 && r.median_ms > 0.0) {
      r.speedup = serial_ms / r.median_ms;
      r.speedup_key = "speedup_vs_serial";
    }
    r.extra_json = "\"pool_utilization\": " + FormatDouble(utilization, 4) +
                   ", \"packed_kernel\": \"" +
                   JsonEscape(trie_probe::PackedKernelName()) + "\", " +
                   StagesJson(snap);
    results->push_back(r);
  }

  // Observability overhead A/B on the same workload: the full
  // pipelined configuration with tracing + metrics completely off vs
  // both on (span recording AND the registry). The on-case records
  // overhead_pct so the trajectory catches instrumentation creep; the
  // acceptance bar is < 2% on the median.
  config.enable_pipelining = true;
  config.enable_row_overlap = true;
  double obs_off_ms = 0.0;
  for (const bool obs : {false, true}) {
    CaseResult r = RunCase(
        obs ? "miner_observability_on" : "miner_observability_off", hw,
        db->size(), [&] {
          MetricsRegistry metrics;
          MiningConfig run_config = config;
          run_config.metrics = obs ? &metrics : nullptr;
          if (obs) trace::SetEnabled(true);
          auto result = FlipperMiner::Run(*db, *taxonomy, run_config);
          if (obs) {
            trace::SetEnabled(false);
            trace::Clear();  // bound span memory across reps
          }
          if (!result.ok()) std::abort();
        });
    if (!obs) {
      obs_off_ms = r.median_ms;
    } else if (obs_off_ms > 0.0 && r.median_ms > 0.0) {
      const double overhead_pct =
          (r.median_ms / obs_off_ms - 1.0) * 100.0;
      r.extra_json =
          "\"overhead_pct\": " + FormatDouble(overhead_pct, 2);
      std::cout << "observability: tracing+metrics overhead "
                << FormatDouble(overhead_pct, 2) << "% of median\n";
    }
    results->push_back(r);
  }
}

/// Dataset load paths on the groceries-sim dataset: basket-text
/// parsing (the legacy ingestion, now block-buffered) vs FlipperStore
/// open — v1 (zero-copy mmap) and v2 (varint decode + catalog), each
/// with and without the payload validation scan. The fdb cases report
/// their speedup over the parse baseline in the speedup column/JSON
/// field.
/// Scratch dir unique to this process: ctest runs bench_smoke and
/// bench_record_smoke concurrently, and a shared fixed path would let
/// one process rewrite a store while the other mmaps it.
std::filesystem::path UniqueScratchDir(const char* tag,
                                       std::error_code& ec) {
  static const auto nonce =
      std::chrono::steady_clock::now().time_since_epoch().count();
  return std::filesystem::temp_directory_path(ec) /
         (std::string(tag) + "_" + std::to_string(nonce));
}

void BenchStorage(std::vector<CaseResult>* results) {
  GroceriesParams params;
  params.num_transactions =
      static_cast<uint32_t>(9'800 * std::max(1.0, BenchScale()));
  auto dataset = GenerateGroceries(params);
  if (!dataset.ok()) std::abort();

  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path dir = UniqueScratchDir("flipper_bench_storage", ec);
  fs::create_directories(dir, ec);
  if (ec) {
    std::cout << "[storage] skipped: cannot create " << dir << "\n";
    return;
  }
  const std::string basket = (dir / "groceries.basket").string();
  const std::string store_v1 = (dir / "groceries_v1.fdb").string();
  const std::string store_v2 = (dir / "groceries_v2.fdb").string();
  storage::StoreWriter::Options v1_options;
  v1_options.version = storage::kFormatVersionV1;
  storage::StoreWriter::Options v2_options;
  v2_options.version = storage::kFormatVersionV2;
  if (!WriteBasketFile(dataset->db, dataset->dict, basket).ok() ||
      !storage::WriteStoreFile(store_v1, dataset->db, dataset->dict,
                               dataset->taxonomy, v1_options)
           .ok() ||
      !storage::WriteStoreFile(store_v2, dataset->db, dataset->dict,
                               dataset->taxonomy, v2_options)
           .ok()) {
    std::abort();
  }

  const double rows = dataset->db.size();
  const CaseResult parse =
      RunCase("basket_parse_groceries", 1, rows, [&] {
        ItemDictionary dict;
        auto db = ReadBasketFile(basket, &dict);
        if (!db.ok() || db->size() != dataset->db.size()) std::abort();
      });
  results->push_back(parse);

  const auto bench_open = [&](const std::string& name,
                              const std::string& store, bool validate) {
    storage::OpenOptions open_options;
    open_options.validate = validate;
    CaseResult r = RunCase(name, 1, rows, [&] {
      auto reader = storage::StoreReader::Open(store, open_options);
      if (!reader.ok() || reader->db().size() != dataset->db.size()) {
        std::abort();
      }
    });
    if (parse.median_ms > 0.0 && r.median_ms > 0.0) {
      r.speedup = parse.median_ms / r.median_ms;
      r.speedup_key = "speedup_vs_parse";
    }
    results->push_back(r);
  };
  bench_open("fdb_open_groceries", store_v1, true);
  bench_open("fdb_open_trusted_groceries", store_v1, false);
  bench_open("fdb_v2_open", store_v2, true);
  bench_open("fdb_v2_open_trusted", store_v2, false);
  fs::remove_all(dir, ec);
}

/// v1 vs v2 file sizes across every datagen scenario (container-sized
/// datasets). Returned as a "store_sizes" JSON block so cross-PR runs
/// can track the compression ratio; the v2 file must come out smaller
/// on each scenario.
std::string BenchStoreSizes() {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path dir = UniqueScratchDir("flipper_bench_sizes", ec);
  fs::create_directories(dir, ec);
  if (ec) {
    std::cout << "[store_sizes] skipped: cannot create " << dir << "\n";
    return "";
  }

  struct Scenario {
    const char* name;
    ItemDictionary dict;
    Taxonomy taxonomy;
    TransactionDb db;
  };
  std::vector<Scenario> scenarios;
  // Floors keep every generator above its minimum size when
  // FLIPPER_BENCH_SCALE is small (MedlineSim needs >= 1000 citations).
  {
    GroceriesParams params;
    params.num_transactions = std::max<uint32_t>(
        500, static_cast<uint32_t>(9'800 * BenchScale()));
    auto generated = GenerateGroceries(params);
    if (!generated.ok()) std::abort();
    scenarios.push_back({"groceries", std::move(generated->dict),
                         std::move(generated->taxonomy),
                         std::move(generated->db)});
  }
  {
    CensusParams params;
    params.num_records = std::max<uint32_t>(
        500, static_cast<uint32_t>(10'000 * BenchScale()));
    auto generated = GenerateCensus(params);
    if (!generated.ok()) std::abort();
    scenarios.push_back({"census", std::move(generated->dict),
                         std::move(generated->taxonomy),
                         std::move(generated->db)});
  }
  {
    MedlineParams params;
    params.num_citations = std::max<uint32_t>(
        2'000, static_cast<uint32_t>(10'000 * BenchScale()));
    auto generated = GenerateMedline(params);
    if (!generated.ok()) std::abort();
    scenarios.push_back({"medline", std::move(generated->dict),
                         std::move(generated->taxonomy),
                         std::move(generated->db)});
  }
  {
    ItemDictionary dict;
    auto taxonomy = GenerateBalancedTaxonomy(TaxonomyGenParams(), &dict);
    if (!taxonomy.ok()) std::abort();
    QuestParams params;
    params.num_transactions = std::max<uint32_t>(
        500, static_cast<uint32_t>(10'000 * BenchScale()));
    auto db = GenerateQuest(params, *taxonomy);
    if (!db.ok()) std::abort();
    scenarios.push_back({"quest", std::move(dict),
                         std::move(*taxonomy), std::move(*db)});
  }

  std::string json = "  \"store_sizes\": [\n";
  std::cout << "\nstore sizes (v1 vs v2):\n";
  for (size_t i = 0; i < scenarios.size(); ++i) {
    Scenario& s = scenarios[i];
    const std::string v1_path =
        (dir / (std::string(s.name) + "_v1.fdb")).string();
    const std::string v2_path =
        (dir / (std::string(s.name) + "_v2.fdb")).string();
    storage::StoreWriter::Options options;
    options.version = storage::kFormatVersionV1;
    if (!storage::WriteStoreFile(v1_path, s.db, s.dict, s.taxonomy,
                                 options)
             .ok()) {
      std::abort();
    }
    options.version = storage::kFormatVersionV2;
    if (!storage::WriteStoreFile(v2_path, s.db, s.dict, s.taxonomy,
                                 options)
             .ok()) {
      std::abort();
    }
    const auto v1_bytes =
        static_cast<int64_t>(fs::file_size(v1_path, ec));
    const auto v2_bytes =
        static_cast<int64_t>(fs::file_size(v2_path, ec));
    const double ratio =
        v1_bytes > 0 ? static_cast<double>(v2_bytes) / v1_bytes : 0.0;
    std::cout << "  " << s.name << ": v1 " << FormatBytes(v1_bytes)
              << ", v2 " << FormatBytes(v2_bytes) << " ("
              << FormatDouble(ratio * 100.0, 1) << "% of v1"
              << (v2_bytes < v1_bytes ? "" : " — NOT smaller!") << ")\n";
    json += "    {\"scenario\": \"" + std::string(s.name) +
            "\", \"v1_bytes\": " + std::to_string(v1_bytes) +
            ", \"v2_bytes\": " + std::to_string(v2_bytes) +
            ", \"v2_over_v1\": " + FormatDouble(ratio, 4) + "}";
    json += i + 1 < scenarios.size() ? ",\n" : "\n";
  }
  json += "  ]";
  fs::remove_all(dir, ec);
  return json;
}

/// Scan skipping on the skewed quest scenario (phased pattern pool:
/// item populations drift across the file, so whole segments hold no
/// live candidate). Mines the same v2 store with the segment catalog
/// consulted and force-disabled; the JSON records the skipped-segment
/// count so the skip fraction is tracked across PRs. Patterns are
/// identical either way — skipping is exact.
void BenchScanSkip(std::vector<CaseResult>* results) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path dir = UniqueScratchDir("flipper_bench_skip", ec);
  fs::create_directories(dir, ec);
  if (ec) {
    std::cout << "[scan_skip] skipped: cannot create " << dir << "\n";
    return;
  }
  ItemDictionary dict;
  auto taxonomy = GenerateBalancedTaxonomy(TaxonomyGenParams(), &dict);
  if (!taxonomy.ok()) std::abort();
  QuestParams quest;
  quest.num_transactions =
      static_cast<uint32_t>(20'000 * std::max(1.0, BenchScale()));
  quest.phases = 50;
  quest.seed = 11;
  auto db = GenerateQuest(quest, *taxonomy);
  if (!db.ok()) std::abort();

  const std::string store = (dir / "skew.fdb").string();
  storage::StoreWriter::Options write_options;
  write_options.version = storage::kFormatVersionV2;
  write_options.segment_txns = 512;
  if (!storage::WriteStoreFile(store, *db, dict, *taxonomy,
                               write_options)
           .ok()) {
    std::abort();
  }
  auto reader = storage::StoreReader::Open(store);
  if (!reader.ok()) std::abort();
  const uint64_t segments_total = reader->segments().size() - 1;

  MiningConfig config;
  config.gamma = 0.3;
  config.epsilon = 0.1;
  config.min_support = {0.01, 0.006, 0.004, 0.002};
  config.num_threads = 0;
  uint64_t skipped = 0;
  double off_ms = 0.0;
  for (const bool skipping : {false, true}) {
    config.enable_segment_skipping = skipping;
    CaseResult r = RunCase(
        skipping ? "scan_skip" : "scan_skip_off",
        ThreadPool::ResolveThreadCount(0), reader->db().size(), [&] {
          auto result = FlipperMiner::Run(reader->db(),
                                          reader->taxonomy(), config);
          if (!result.ok()) std::abort();
          skipped = result->stats.segments_skipped;
        });
    if (!skipping) {
      off_ms = r.median_ms;
      if (skipped != 0) std::abort();  // disabled must never skip
    } else {
      if (off_ms > 0.0 && r.median_ms > 0.0) {
        r.speedup = off_ms / r.median_ms;
        r.speedup_key = "speedup_vs_no_skip";
      }
      r.extra_json = "\"segments_skipped\": " + std::to_string(skipped) +
                     ", \"segments_total\": " +
                     std::to_string(segments_total);
      std::cout << "scan_skip: " << skipped
                << " segment-scans skipped (catalog of "
                << segments_total << " segments)\n";
    }
    results->push_back(r);
  }
  fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace flipper

int main() {
  using namespace flipper;
  std::cout << "bench_micro — kernel micro-benchmarks + thread scaling\n"
            << "scale: " << FormatDouble(BenchScale(), 2)
            << " (set FLIPPER_BENCH_SCALE to change), hardware threads: "
            << ThreadPool::ResolveThreadCount(0) << "\n\n";
  std::vector<CaseResult> results;
  BenchCorrelation(&results);
  BenchTidSetIntersect(&results);
  BenchItemsetOps(&results);
  BenchTrieCounting(&results);
  BenchTrieLayouts(&results);
  BenchTxnPrefilter(&results);
  BenchProbeKernels(&results);
  BenchRowTrieReuse(&results);
  BenchScanCounters(&results);
  BenchThreadScaling(&results);
  BenchMinerPipeline(&results);
  BenchStorage(&results);
  BenchScanSkip(&results);
  const std::string store_sizes = BenchStoreSizes();
  EmitResults(results, store_sizes);
  return 0;
}
