// Shared helpers for the bench harness. Every bench binary regenerates
// one of the paper's tables/figures: it prints the same rows/series the
// paper reports and drops a CSV next to the binary (./bench_results/).
//
// Sizes are scaled for a laptop-class container by default; export
// FLIPPER_BENCH_SCALE to grow workloads toward the paper's sizes (the
// *shape* of every series is preserved at any scale).

#ifndef FLIPPER_BENCH_BENCH_UTIL_H_
#define FLIPPER_BENCH_BENCH_UTIL_H_

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/config.h"
#include "core/flipper_miner.h"
#include "core/mining_result.h"
#include "core/naive_miner.h"
#include "data/transaction_db.h"
#include "datagen/quest_gen.h"
#include "datagen/taxonomy_gen.h"
#include "taxonomy/taxonomy.h"

namespace flipper {
namespace bench {

/// One mining execution's headline numbers.
struct RunOutcome {
  bool ok = false;
  bool exhausted = false;  // hit the candidate guard (paper: BASIC OOM)
  double seconds = 0.0;
  int64_t peak_bytes = 0;
  uint64_t candidates = 0;
  uint64_t num_patterns = 0;
  uint64_t num_positive = 0;
  uint64_t num_negative = 0;
  std::string error;
};

/// Variants of the paper's Figure-8 series.
enum class Variant { kBasic, kFlipping, kFlippingTpg, kFull };

inline const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kBasic:
      return "BASIC";
    case Variant::kFlipping:
      return "FLIPPING";
    case Variant::kFlippingTpg:
      return "FLIPPING+TPG";
    case Variant::kFull:
      return "FLIPPING+TPG+SIBP";
  }
  return "?";
}

inline constexpr Variant kAllVariants[] = {
    Variant::kBasic, Variant::kFlipping, Variant::kFlippingTpg,
    Variant::kFull};

/// Runs one variant. BASIC is the NaiveMiner (per-level Apriori +
/// post-processing); the others are FlipperMiner pruning stacks.
inline RunOutcome RunVariant(Variant variant, const TransactionDb& db,
                             const Taxonomy& taxonomy,
                             MiningConfig config) {
  RunOutcome out;
  Result<MiningResult> result = [&]() -> Result<MiningResult> {
    switch (variant) {
      case Variant::kBasic:
        return NaiveMiner::Run(db, taxonomy, config);
      case Variant::kFlipping:
        config.pruning = PruningOptions::FlippingOnly();
        return FlipperMiner::Run(db, taxonomy, config);
      case Variant::kFlippingTpg:
        config.pruning = PruningOptions::FlippingTpg();
        return FlipperMiner::Run(db, taxonomy, config);
      case Variant::kFull:
        config.pruning = PruningOptions::Full();
        return FlipperMiner::Run(db, taxonomy, config);
    }
    return Status::Internal("unknown variant");
  }();
  if (!result.ok()) {
    out.exhausted =
        result.status().code() == StatusCode::kResourceExhausted;
    out.error = result.status().ToString();
    return out;
  }
  out.ok = true;
  out.seconds = result->stats.total_seconds;
  out.peak_bytes = result->stats.peak_candidate_bytes;
  out.candidates = result->stats.total_counted;
  out.num_patterns = result->patterns.size();
  out.num_positive = result->stats.num_positive;
  out.num_negative = result->stats.num_negative;
  return out;
}

/// "12.345" seconds, "exhausted" when the candidate guard fired, or
/// "error" otherwise.
inline std::string OutcomeCell(const RunOutcome& out) {
  if (out.ok) return FormatDouble(out.seconds, 3);
  return out.exhausted ? "exhausted" : "error";
}

/// The paper's default synthetic workload (§5.1): N = 100K, W = 5,
/// |I| ~ 1000 leaves, H = 4, 10 level-1 categories, fanout 5 — scaled
/// by FLIPPER_BENCH_SCALE.
struct SyntheticWorkload {
  ItemDictionary dict;
  Taxonomy taxonomy;
  TransactionDb db;
};

inline SyntheticWorkload MakeQuestWorkload(uint32_t num_txns,
                                           double avg_width,
                                           uint64_t seed = 42) {
  SyntheticWorkload out;
  TaxonomyGenParams tax_params;
  tax_params.num_roots = 10;
  tax_params.fanout = 5;
  tax_params.depth = 4;
  auto tax = GenerateBalancedTaxonomy(tax_params, &out.dict);
  FLIPPER_CHECK(tax.ok()) << tax.status();
  out.taxonomy = std::move(tax).value();

  QuestParams quest;
  quest.num_transactions = num_txns;
  quest.avg_width = avg_width;
  quest.num_patterns = 500;
  quest.seed = seed;
  auto db = GenerateQuest(quest, out.taxonomy);
  FLIPPER_CHECK(db.ok()) << db.status();
  out.db = std::move(db).value();
  return out;
}

/// Paper defaults, pre-scaled.
inline uint32_t DefaultN() {
  return static_cast<uint32_t>(100'000 * BenchScale() * 0.2);
}

/// The paper's default threshold set for Figure 8 (§5.1).
inline MiningConfig DefaultSyntheticConfig() {
  MiningConfig config;
  config.gamma = 0.3;
  config.epsilon = 0.1;
  config.min_support = {0.01, 0.001, 0.0005, 0.0001};
  config.measure = MeasureKind::kKulczynski;
  return config;
}

/// Writes the CSV under ./bench_results/, creating the directory.
inline void WriteCsv(const CsvWriter& csv, const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  const std::string path = "bench_results/" + name;
  Status s = csv.WriteFile(path);
  if (s.ok()) {
    std::cout << "\n[csv] " << path << "\n";
  } else {
    std::cout << "\n[csv] skipped: " << s.ToString() << "\n";
  }
}

/// Standard bench banner.
inline void Banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "==============================================\n";
  std::cout << title << "\n";
  std::cout << "reproduces: " << paper_ref << "\n";
  std::cout << "scale: " << FormatDouble(BenchScale(), 2)
            << " (set FLIPPER_BENCH_SCALE to change)\n";
  std::cout << "==============================================\n\n";
}

}  // namespace bench
}  // namespace flipper

#endif  // FLIPPER_BENCH_BENCH_UTIL_H_
