// Ablation A4 (ours): cartesian vertical expansion vs the scan-driven
// cell strategy on low-support workloads. At very low theta the
// cartesian children product materializes combinations that never
// co-occur; the scan-driven strategy enumerates only the k-subsets the
// data contains. Patterns are identical either way (tested).

#include <iostream>

#include "bench_util.h"

namespace flipper {
namespace bench {
namespace {

void Main() {
  Banner("bench_ablation_scan",
         "ablation — cartesian vs scan-driven cell strategy "
         "(DESIGN.md A4)");
  const uint32_t n = static_cast<uint32_t>(DefaultN() * 0.5);
  SyntheticWorkload workload = MakeQuestWorkload(n, 5.0);
  std::cout << "workload: Quest N=" << FormatCount(n)
            << " W=5, FLIPPING-only pruning (worst case for "
               "cartesian growth)\n\n";

  // Table-3 profiles from mild to extreme.
  struct Profile {
    const char* name;
    std::vector<double> thresholds;
  };
  const Profile profiles[] = {
      {"thr3", {0.01, 0.001, 0.0005, 0.0001}},
      {"thr7", {0.001, 0.0005, 0.0001, 0.00005}},
      {"thr10", {0.001, 0.0001, 0.00006, 0.00003}},
  };

  TablePrinter table({"profile", "cartesian (s)", "scan-driven (s)",
                      "cartesian cand", "scan cand", "flips"});
  CsvWriter csv({"profile", "strategy", "seconds", "candidates",
                 "patterns"});
  for (const Profile& profile : profiles) {
    MiningConfig config = DefaultSyntheticConfig();
    config.min_support = profile.thresholds;
    config.pruning = PruningOptions::FlippingOnly();

    std::vector<std::string> row = {profile.name};
    std::vector<std::string> cand_cells;
    uint64_t flips = 0;
    for (bool scan : {false, true}) {
      config.enable_scan_cells = scan;
      auto result =
          FlipperMiner::Run(workload.db, workload.taxonomy, config);
      const char* strategy = scan ? "scan" : "cartesian";
      if (!result.ok()) {
        row.push_back("exhausted");
        cand_cells.push_back("-");
        csv.AddRow({profile.name, strategy, "-", "-", "-"});
        continue;
      }
      row.push_back(FormatDouble(result->stats.total_seconds, 3));
      cand_cells.push_back(
          FormatCount(static_cast<int64_t>(result->stats.total_counted)));
      flips = result->patterns.size();
      csv.AddRow({profile.name, strategy,
                  FormatDouble(result->stats.total_seconds, 4),
                  std::to_string(result->stats.total_counted),
                  std::to_string(result->patterns.size())});
    }
    row.insert(row.end(), cand_cells.begin(), cand_cells.end());
    row.push_back(std::to_string(flips));
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\nThe lower the support thresholds, the more absent\n"
            << "combinations the cartesian strategy wastes work on;\n"
            << "the scan-driven strategy's cost tracks the data.\n";
  WriteCsv(csv, "ablation_scan.csv");
}

}  // namespace
}  // namespace bench
}  // namespace flipper

int main() {
  flipper::bench::Main();
  return 0;
}
