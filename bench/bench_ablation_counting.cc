// Ablation A1 (ours): horizontal (scan + candidate trie) vs vertical
// (TID-set intersection) support counting across workload densities.

#include <iostream>

#include "bench_util.h"

namespace flipper {
namespace bench {
namespace {

void Main() {
  Banner("bench_ablation_counting",
         "ablation — horizontal scan vs vertical TID-set counting "
         "(DESIGN.md A1)");
  const uint32_t n = DefaultN();

  TablePrinter table({"W", "horizontal (s)", "vertical (s)", "flips"});
  CsvWriter csv({"w", "counter", "seconds", "patterns"});
  for (int width : {5, 8, 10}) {
    SyntheticWorkload workload =
        MakeQuestWorkload(n, static_cast<double>(width));
    MiningConfig config = DefaultSyntheticConfig();

    std::vector<std::string> row = {std::to_string(width)};
    uint64_t flips = 0;
    for (CounterKind counter :
         {CounterKind::kHorizontal, CounterKind::kVertical}) {
      config.counter = counter;
      auto result =
          FlipperMiner::Run(workload.db, workload.taxonomy, config);
      if (!result.ok()) {
        row.push_back("error");
        continue;
      }
      row.push_back(FormatDouble(result->stats.total_seconds, 3));
      flips = result->patterns.size();
      csv.AddRow({std::to_string(width), CounterKindToString(counter),
                  FormatDouble(result->stats.total_seconds, 4),
                  std::to_string(result->patterns.size())});
    }
    row.push_back(std::to_string(flips));
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\nBoth engines return identical patterns (tested); the\n"
            << "crossover depends on candidate volume per cell vs\n"
            << "database size.\n";
  WriteCsv(csv, "ablation_counting.csv");
}

}  // namespace
}  // namespace bench
}  // namespace flipper

int main() {
  flipper::bench::Main();
  return 0;
}
