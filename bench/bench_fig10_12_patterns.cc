// Regenerates Figures 10-12: example flipping patterns from each
// (simulated) real dataset, printed with their full generalization
// chains — the qualitative "reality check" of §5.2.

#include <iostream>

#include "bench_util.h"
#include "core/topk.h"
#include "datagen/census_sim.h"
#include "datagen/groceries_sim.h"
#include "datagen/medline_sim.h"

namespace flipper {
namespace bench {
namespace {

void ShowDataset(const SimulatedDataset& data, const char* figure,
                 CsvWriter* csv) {
  std::cout << "--- " << figure << ": " << data.name << " ---\n";
  auto result =
      FlipperMiner::Run(data.db, data.taxonomy, data.paper_config);
  if (!result.ok()) {
    std::cout << "mining failed: " << result.status() << "\n\n";
    return;
  }
  std::cout << result->patterns.size()
            << " flipping patterns; the planted Figure examples:\n\n";
  for (const PlantedFlip& plant : data.planted) {
    Itemset target;
    for (const std::string& name : plant.leaf_names) {
      auto id = data.dict.Find(name);
      if (id.ok()) target.Insert(*id);
    }
    bool found = false;
    for (const FlippingPattern& p : result->patterns) {
      if (p.leaf_itemset == target) {
        std::cout << "* " << plant.description << "\n"
                  << p.ToString(&data.dict) << "\n";
        csv->AddRow({data.name, data.dict.Render(p.leaf_itemset),
                     LabelToString(p.chain[0].label),
                     FormatDouble(p.FlipGap(), 4)});
        found = true;
        break;
      }
    }
    if (!found) {
      std::cout << "* " << plant.description << " -- NOT FOUND\n\n";
    }
  }
  // The widest flips beyond the planted ones (top-K extension).
  auto top = TopKMostFlipping(result->patterns, 3);
  std::cout << "top-3 by flip gap:\n";
  for (const FlippingPattern& p : top) {
    std::cout << "  " << data.dict.Render(p.leaf_itemset)
              << "  gap=" << FormatDouble(p.FlipGap(), 3) << "\n";
  }
  std::cout << "\n";
}

void Main() {
  Banner("bench_fig10_12_patterns",
         "Figures 10-12 — example flipping patterns per dataset");
  const double scale = BenchScale();
  CsvWriter csv({"dataset", "pattern", "level1_label", "flip_gap"});

  GroceriesParams groceries;
  groceries.num_transactions = static_cast<uint32_t>(9'800 * scale);
  auto g = GenerateGroceries(groceries);
  FLIPPER_CHECK(g.ok()) << g.status();
  ShowDataset(*g, "Figure 10", &csv);

  CensusParams census;
  census.num_records = static_cast<uint32_t>(32'000 * scale);
  auto c = GenerateCensus(census);
  FLIPPER_CHECK(c.ok()) << c.status();
  ShowDataset(*c, "Figure 11", &csv);

  MedlineParams medline;
  medline.num_citations = static_cast<uint32_t>(64'000 * scale);
  auto m = GenerateMedline(medline);
  FLIPPER_CHECK(m.ok()) << m.status();
  ShowDataset(*m, "Figure 12", &csv);

  WriteCsv(csv, "fig10_12_patterns.csv");
}

}  // namespace
}  // namespace bench
}  // namespace flipper

int main() {
  flipper::bench::Main();
  return 0;
}
