// Regenerates Table 1 (Example 2): the expectation-based correlation
// verdict for the same support counts flips with the total number of
// transactions N, while Kulc (null-invariant) does not. Two synthetic
// databases are materialized with exactly the paper's counts and the
// measures are computed from actual scans.

#include <iostream>

#include "bench_util.h"
#include "data/transaction_db.h"
#include "measures/expectation_based.h"
#include "measures/measure.h"

namespace flipper {
namespace bench {
namespace {

/// Builds a database with the requested marginals: sup(X)=sup(Y)=
/// `single`, sup(XY)=`joint`, total `n` transactions. Item ids:
/// X=0, Y=1, filler=2.
TransactionDb BuildCounts(uint32_t single, uint32_t joint, uint32_t n) {
  TransactionDb db;
  for (uint32_t i = 0; i < joint; ++i) db.Add({0, 1});
  for (uint32_t i = 0; i < single - joint; ++i) db.Add({0});
  for (uint32_t i = 0; i < single - joint; ++i) db.Add({1});
  while (db.size() < n) db.Add({2});
  return db;
}

void Report(const char* pair_name, uint32_t single, uint32_t joint,
            CsvWriter* csv) {
  const double kulc = Correlation2(MeasureKind::kKulczynski, joint,
                                   single, single);
  std::cout << "Kulc(" << pair_name << ") = " << FormatDouble(kulc, 2)
            << "  (identical for any N — null-invariant)\n";
  TablePrinter table({"DB", "sup(X)", "sup(Y)", "sup(XY)", "Total N",
                      "E(sup(XY))", "Expectation verdict"});
  for (uint32_t n : {20'000u, 2'000u}) {
    TransactionDb db = BuildCounts(single, joint, n);
    const uint32_t sup_x = db.CountSupport(Itemset{0});
    const uint32_t sup_y = db.CountSupport(Itemset{1});
    const uint32_t sup_xy = db.CountSupport(Itemset{0, 1});
    const std::vector<uint32_t> sups = {sup_x, sup_y};
    const double expected = ExpectedSupport(sups, db.size());
    const int verdict = ExpectationVerdict(sup_xy, sups, db.size());
    const char* verdict_name =
        verdict > 0 ? "positive" : (verdict < 0 ? "negative" : "tie");
    table.AddRow({n == 20'000u ? "DB1" : "DB2", std::to_string(sup_x),
                  std::to_string(sup_y), std::to_string(sup_xy),
                  FormatCount(db.size()), FormatDouble(expected, 0),
                  verdict_name});
    csv->AddRow({pair_name, std::to_string(n), std::to_string(sup_xy),
                 FormatDouble(expected, 2), verdict_name,
                 FormatDouble(kulc, 4)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void Main() {
  Banner("bench_table1_expectation",
         "Table 1 — instability of expectation-based correlation");
  CsvWriter csv({"pair", "N", "sup_joint", "expected_sup",
                 "expectation_verdict", "kulc"});
  // Rows exactly as in Table 1.
  Report("A,B", 1000, 400, &csv);
  Report("C,D", 200, 4, &csv);
  std::cout
      << "Shape check (paper): both pairs are judged positive in DB1\n"
      << "and negative in DB2 by the expectation-based measure, while\n"
      << "Kulc stays 0.40 / 0.02 regardless of N.\n";
  WriteCsv(csv, "table1_expectation.csv");
}

}  // namespace
}  // namespace bench
}  // namespace flipper

int main() {
  flipper::bench::Main();
  return 0;
}
