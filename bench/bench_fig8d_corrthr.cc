// Regenerates Figure 8(d): running time across the seven correlation
// threshold profiles (gamma, epsilon). Expected shape: BASIC is flat
// (it ignores correlation values); the pruned variants get faster as
// gamma grows because correlation-based pruning is driven by
// non-positivity.

#include <iostream>

#include "bench_util.h"

namespace flipper {
namespace bench {
namespace {

void Main() {
  Banner("bench_fig8d_corrthr",
         "Figure 8(d) — runtime vs correlation thresholds");
  const uint32_t n = DefaultN();
  SyntheticWorkload workload = MakeQuestWorkload(n, 5.0);
  std::cout << "workload: Quest N=" << FormatCount(n) << " W=5\n\n";

  struct Profile {
    double gamma, epsilon;
  };
  // The paper's value-increasing sequence.
  const Profile profiles[] = {{0.2, 0.1}, {0.3, 0.1}, {0.4, 0.1},
                              {0.5, 0.1}, {0.6, 0.1}, {0.6, 0.3},
                              {0.6, 0.5}};

  TablePrinter table({"(gamma,eps)", "BASIC", "FLIPPING", "FLIPPING+TPG",
                      "FLIPPING+TPG+SIBP"});
  CsvWriter csv({"gamma", "epsilon", "variant", "seconds", "status",
                 "candidates", "patterns"});
  for (const Profile& p : profiles) {
    MiningConfig config = DefaultSyntheticConfig();
    config.gamma = p.gamma;
    config.epsilon = p.epsilon;
    std::string label = "(" + FormatDouble(p.gamma, 1) + "," +
                        FormatDouble(p.epsilon, 1) + ")";
    std::vector<std::string> row = {label};
    for (Variant variant : kAllVariants) {
      const RunOutcome out =
          RunVariant(variant, workload.db, workload.taxonomy, config);
      row.push_back(OutcomeCell(out));
      csv.AddRow({FormatDouble(p.gamma, 2), FormatDouble(p.epsilon, 2),
                  VariantName(variant), FormatDouble(out.seconds, 4),
                  out.ok ? "ok" : (out.exhausted ? "exhausted" : "error"),
                  std::to_string(out.candidates),
                  std::to_string(out.num_patterns)});
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout
      << "\nShape check (paper): BASIC does not depend on the\n"
      << "thresholds; the larger gamma is, the more candidates the\n"
      << "correlation-based prunings remove and the faster the pruned\n"
      << "variants run.\n";
  WriteCsv(csv, "fig8d_corrthr.csv");
}

}  // namespace
}  // namespace bench
}  // namespace flipper

int main() {
  flipper::bench::Main();
  return 0;
}
