// Census scenario: compare income correlations of population segments
// against their generalizations (the paper's Figure 11). A flipping
// pattern here reads: "sub-population X bucks the trend of its parent
// group" — e.g. craft-repair workers correlate negatively with income
// >= $50K/yr unless they hold a bachelor degree.
//
//   ./build/examples/census_analysis [num_records]

#include <cstdlib>
#include <iostream>

#include "core/flipper_miner.h"
#include "datagen/census_sim.h"

using namespace flipper;

int main(int argc, char** argv) {
  CensusParams params;
  if (argc > 1) {
    params.num_records =
        static_cast<uint32_t>(std::strtoul(argv[1], nullptr, 10));
  }
  auto data = GenerateCensus(params);
  if (!data.ok()) {
    std::cerr << "generation failed: " << data.status() << "\n";
    return 1;
  }
  std::cout << "CENSUS: " << data->db.size()
            << " records as transactions {occupation|education, "
               "age|occupation, income}\n"
            << "hierarchies: occupation -> occupation|education, "
               "age -> age|occupation; income self-copies\n\n";

  auto result =
      FlipperMiner::Run(data->db, data->taxonomy, data->paper_config);
  if (!result.ok()) {
    std::cerr << "mining failed: " << result.status() << "\n";
    return 1;
  }

  std::cout << result->patterns.size() << " flipping patterns\n\n";
  int shown = 0;
  for (const FlippingPattern& p : result->patterns) {
    // Focus the report on income-related flips, as the paper does.
    bool touches_income = false;
    for (ItemId item : p.leaf_itemset) {
      if (data->dict.Name(item).rfind("income:", 0) == 0) {
        touches_income = true;
      }
    }
    if (!touches_income) continue;
    std::cout << data->dict.Render(p.leaf_itemset) << "\n"
              << p.ToString(&data->dict);
    const Label top = p.chain.front().label;
    const Label leaf = p.chain.back().label;
    if (top == Label::kNegative && leaf == Label::kPositive) {
      std::cout << "  -> this sub-population is positively associated "
                   "with the income bracket\n"
                   "     although its parent group is not.\n";
    } else if (top == Label::kPositive && leaf == Label::kNegative) {
      std::cout << "  -> this sub-population falls behind the income "
                   "trend of its parent group.\n";
    }
    std::cout << "\n";
    if (++shown >= 6) break;
  }
  if (shown == 0) {
    std::cout << "(no income-related flips at these thresholds; try "
                 "loosening gamma/epsilon)\n";
  }
  return 0;
}
