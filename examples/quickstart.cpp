// Quickstart: the paper's running example (Figures 4-5) end to end.
//
// Builds the 10-transaction toy database and its 3-level taxonomy,
// mines flipping correlations with gamma = 0.6 / epsilon = 0.35, and
// prints the single pattern {a11, b11} whose correlation flips
// POS -> NEG -> POS across the levels.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "core/flipper_miner.h"
#include "data/item_dictionary.h"
#include "data/transaction_db.h"
#include "taxonomy/taxonomy_builder.h"

using namespace flipper;

int main() {
  // --- 1. Item dictionary + taxonomy (Figure 4, left). ---
  ItemDictionary dict;
  TaxonomyBuilder builder;
  auto root = [&](const char* name) {
    ItemId id = dict.Intern(name);
    builder.AddRoot(id);
    return id;
  };
  auto child = [&](ItemId parent, const char* name) {
    ItemId id = dict.Intern(name);
    Status s = builder.AddEdge(parent, id);
    if (!s.ok()) {
      std::cerr << "taxonomy error: " << s << "\n";
      std::exit(1);
    }
    return id;
  };
  ItemId a = root("a");
  ItemId b = root("b");
  ItemId a1 = child(a, "a1");
  ItemId a2 = child(a, "a2");
  ItemId b1 = child(b, "b1");
  ItemId b2 = child(b, "b2");
  child(a1, "a11");
  child(a1, "a12");
  child(a2, "a21");
  child(a2, "a22");
  child(b1, "b11");
  child(b1, "b12");
  child(b2, "b21");
  child(b2, "b22");
  auto taxonomy = builder.Build();
  if (!taxonomy.ok()) {
    std::cerr << "taxonomy error: " << taxonomy.status() << "\n";
    return 1;
  }

  // --- 2. Transactions (Figure 4, right). ---
  TransactionDb db;
  auto add = [&](std::initializer_list<const char*> names) {
    std::vector<ItemId> items;
    for (const char* name : names) items.push_back(*dict.Find(name));
    db.Add(items);
  };
  add({"a11", "a22", "b11", "b22"});
  add({"a11", "a21", "b11"});
  add({"a12", "a21"});
  add({"a12", "a22", "b21"});
  add({"a12", "a22", "b21"});
  add({"a12", "a21", "b22"});
  add({"a21", "b12"});
  add({"b12", "b21", "b22"});
  add({"b12", "b21"});
  add({"a22", "b12", "b22"});

  // --- 3. Mine flipping correlations (Example 3 thresholds). ---
  MiningConfig config;
  config.gamma = 0.6;
  config.epsilon = 0.35;
  config.min_support = {0.1, 0.1, 0.1};
  config.measure = MeasureKind::kKulczynski;

  auto result = FlipperMiner::Run(db, *taxonomy, config);
  if (!result.ok()) {
    std::cerr << "mining failed: " << result.status() << "\n";
    return 1;
  }

  // --- 4. Report. ---
  std::cout << "transactions: " << db.size()
            << ", taxonomy height: " << taxonomy->height() << "\n";
  std::cout << "flipping patterns found: " << result->patterns.size()
            << "\n\n";
  for (const FlippingPattern& pattern : result->patterns) {
    std::cout << "pattern " << dict.Render(pattern.leaf_itemset)
              << " (flip gap " << pattern.FlipGap() << "):\n"
              << pattern.ToString(&dict) << "\n";
  }
  std::cout << "candidates evaluated: "
            << result->stats.total_counted << " across "
            << result->stats.cells.size() << " search-space cells\n";
  return 0;
}
