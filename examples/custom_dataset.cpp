// File-based workflow: write a basket file and a taxonomy file, load
// them back through the I/O layer, and mine — the path a downstream
// user takes with their own data.
//
// Basket format: one transaction per line, whitespace-separated item
// names. Taxonomy format: "root <name>" and "edge <parent> <child>"
// lines. '#' starts a comment in both.
//
//   ./build/examples/custom_dataset [work_dir]

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/flipper_miner.h"
#include "data/db_io.h"
#include "taxonomy/taxonomy_io.h"

using namespace flipper;

namespace {

constexpr const char* kTaxonomyText = R"(# store taxonomy
root beverages
root snacks
edge beverages coffee
edge beverages tea
edge coffee espresso
edge coffee filter_coffee
edge tea green_tea
edge tea black_tea
edge snacks sweet
edge snacks savory
edge sweet cookies
edge sweet chocolate
edge savory crisps
edge savory crackers
)";

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp/flipper_example";
  const std::string tax_path = dir + "/store.taxonomy";
  const std::string basket_path = dir + "/store.basket";
  if (std::system(("mkdir -p " + dir).c_str()) != 0) {
    std::cerr << "cannot create " << dir << "\n";
    return 1;
  }

  // --- 1. Write the input files (a user would bring their own). ---
  {
    std::ofstream tax(tax_path, std::ios::trunc);
    tax << kTaxonomyText;
    std::ofstream basket(basket_path, std::ios::trunc);
    basket << "# espresso and cookies sell together although coffee\n"
           << "# and sweet snacks do not; beverages and snacks pair.\n";
    for (int i = 0; i < 12; ++i) basket << "espresso cookies\n";
    for (int i = 0; i < 60; ++i) basket << "filter_coffee crackers\n";
    for (int i = 0; i < 60; ++i) basket << "green_tea chocolate\n";
    for (int i = 0; i < 80; ++i) basket << "filter_coffee\n";
    for (int i = 0; i < 80; ++i) basket << "chocolate\n";
    for (int i = 0; i < 30; ++i) basket << "black_tea crisps\n";
  }

  // --- 2. Load through the public I/O API. ---
  ItemDictionary dict;
  auto taxonomy = ReadTaxonomyFile(tax_path, &dict);
  if (!taxonomy.ok()) {
    std::cerr << "taxonomy load failed: " << taxonomy.status() << "\n";
    return 1;
  }
  auto db = ReadBasketFile(basket_path, &dict);
  if (!db.ok()) {
    std::cerr << "basket load failed: " << db.status() << "\n";
    return 1;
  }
  std::cout << "loaded " << db->size() << " transactions, taxonomy height "
            << taxonomy->height() << " from " << dir << "\n\n";

  // --- 3. Mine. ---
  MiningConfig config;
  config.gamma = 0.30;
  config.epsilon = 0.15;
  config.min_support = {0.02, 0.01, 0.005};
  auto result = FlipperMiner::Run(*db, *taxonomy, config);
  if (!result.ok()) {
    std::cerr << "mining failed: " << result.status() << "\n";
    return 1;
  }
  std::cout << result->patterns.size() << " flipping patterns:\n\n";
  for (const FlippingPattern& p : result->patterns) {
    std::cout << dict.Render(p.leaf_itemset) << "\n"
              << p.ToString(&dict) << "\n";
  }
  return 0;
}
