// Market-basket scenario: mine a month of (simulated) grocery
// point-of-sale data for actionable flipping correlations — the §5.2
// GROCERIES reality check. Demonstrates dataset simulation, mining
// with the paper's Table-4 thresholds and interpreting the output
// (store-layout suggestions, miscategorized products).
//
//   ./build/examples/market_basket [num_transactions]

#include <cstdlib>
#include <iostream>

#include "core/flipper_miner.h"
#include "core/topk.h"
#include "datagen/groceries_sim.h"

using namespace flipper;

int main(int argc, char** argv) {
  GroceriesParams params;
  if (argc > 1) {
    params.num_transactions =
        static_cast<uint32_t>(std::strtoul(argv[1], nullptr, 10));
  }
  auto data = GenerateGroceries(params);
  if (!data.ok()) {
    std::cerr << "generation failed: " << data.status() << "\n";
    return 1;
  }
  std::cout << "GROCERIES: " << data->db.size()
            << " transactions, taxonomy height "
            << data->taxonomy.height() << ", avg basket width "
            << data->db.avg_width() << "\n";
  std::cout << "thresholds: gamma=" << data->paper_config.gamma
            << " epsilon=" << data->paper_config.epsilon << "\n\n";

  auto result =
      FlipperMiner::Run(data->db, data->taxonomy, data->paper_config);
  if (!result.ok()) {
    std::cerr << "mining failed: " << result.status() << "\n";
    return 1;
  }

  std::cout << result->patterns.size()
            << " flipping patterns; the widest flips:\n\n";
  for (const FlippingPattern& p :
       TopKMostFlipping(result->patterns, 5)) {
    std::cout << data->dict.Render(p.leaf_itemset) << "\n"
              << p.ToString(&data->dict);
    // Actionability commentary in the spirit of the paper's §5.2.
    const Label leaf = p.chain.back().label;
    const Label mid = p.chain[p.chain.size() - 2].label;
    if (leaf == Label::kPositive && mid == Label::kNegative) {
      std::cout << "  -> these products sell together although their "
                   "categories do not:\n"
                   "     consider placing them closer, or check for a "
                   "miscategorized product.\n";
    } else if (leaf == Label::kNegative && mid == Label::kPositive) {
      std::cout << "  -> the categories pair up but these two products "
                   "avoid each other:\n"
                   "     substitution effect or an assortment gap worth "
                   "investigating.\n";
    }
    std::cout << "\n";
  }
  std::cout << "mining time: " << result->stats.total_seconds << " s, "
            << "peak candidate memory: "
            << result->stats.peak_candidate_bytes << " bytes\n";
  return 0;
}
