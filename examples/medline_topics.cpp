// Literature-mining scenario: find research-topic combinations whose
// correlation flips between MeSH hierarchy levels (the paper's Figure
// 12) — underrepresented combinations of otherwise co-studied areas
// (research-gap suggestions) and surprisingly co-studied leaves under
// rarely combined disciplines (collaboration bridges). Uses the top-K
// "most flipping" extension (§7 future work) to rank the output.
//
//   ./build/examples/medline_topics [num_citations]

#include <cstdlib>
#include <iostream>

#include "core/flipper_miner.h"
#include "core/topk.h"
#include "datagen/medline_sim.h"

using namespace flipper;

int main(int argc, char** argv) {
  MedlineParams params;
  params.num_citations = 64'000;  // laptop-friendly; paper uses 640K
  if (argc > 1) {
    params.num_citations =
        static_cast<uint32_t>(std::strtoul(argv[1], nullptr, 10));
  }
  auto data = GenerateMedline(params);
  if (!data.ok()) {
    std::cerr << "generation failed: " << data.status() << "\n";
    return 1;
  }
  std::cout << "MEDLINE: " << data->db.size()
            << " citations, 3-level MeSH-like topic tree ("
            << data->taxonomy.Level1().size() << " top categories, "
            << data->taxonomy.Leaves().size() << " leaf topics)\n\n";

  auto result =
      FlipperMiner::Run(data->db, data->taxonomy, data->paper_config);
  if (!result.ok()) {
    std::cerr << "mining failed: " << result.status() << "\n";
    return 1;
  }

  std::cout << result->patterns.size()
            << " flipping patterns; top 5 by flip gap:\n\n";
  for (const FlippingPattern& p :
       TopKMostFlipping(result->patterns, 5)) {
    std::cout << data->dict.Render(p.leaf_itemset) << "\n"
              << p.ToString(&data->dict);
    const Label leaf = p.chain.back().label;
    if (leaf == Label::kNegative) {
      std::cout << "  -> research gap: the subtopics above are often "
                   "studied together,\n"
                   "     but this specific combination is "
                   "underrepresented.\n";
    } else {
      std::cout << "  -> collaboration bridge: rarely combined "
                   "disciplines meet in\n"
                   "     this well-studied topic pair.\n";
    }
    std::cout << "\n";
  }
  std::cout << "stats:\n" << result->stats.ToString();
  return 0;
}
