#!/usr/bin/env bash
# Developer inner loop: build and run every suite except the
# randomized fuzz harnesses (`ctest -LE fuzz`). The fuzz label stays in
# the full `ctest` run and in CI; this script is for quick iteration.
#
# Usage: tools/run_fast.sh [label]
#   label — optional ctest label to restrict to (unit, storage,
#           parallel, e2e); default runs everything but fuzz.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"

cd "$BUILD_DIR"
if [[ $# -ge 1 ]]; then
  exec ctest --output-on-failure -j "$(nproc)" -L "$1" -LE fuzz
fi
exec ctest --output-on-failure -j "$(nproc)" -LE fuzz
