#!/usr/bin/env bash
# Developer inner loop: build and run every suite except the
# randomized fuzz harnesses (`ctest -LE fuzz`). The fuzz label stays in
# the full `ctest` run and in CI; this script is for quick iteration.
# New suites are picked up automatically (tests/*_test.cc are globbed
# into ctest — the observability suites trace_test,
# pipeline_metrics_test and stats_test, plus the
# compare_bench_selftest tooling fixtures, are all in this run); the
# `bench` label (the bench_micro smoke) stays in this run too — it is
# CI-sized via FLIPPER_BENCH_SCALE.
#
# Usage: tools/run_fast.sh [label]
#   label — optional ctest label to restrict to (unit, storage,
#           parallel, e2e, bench); default runs everything but fuzz.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"

cd "$BUILD_DIR"
if [[ $# -ge 1 ]]; then
  exec ctest --output-on-failure -j "$(nproc)" -L "$1" -LE fuzz
fi
exec ctest --output-on-failure -j "$(nproc)" -LE fuzz
