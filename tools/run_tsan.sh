#!/usr/bin/env bash
# Race-checks the parallel paths (thread pool, sharded counting, the
# cell pipeline's cross-cell overlap and cross-row overlap — the
# early-started Q(h+1,2) scan racing Q(h,max_k)'s evaluation is
# exactly the shape TSan is for) under ThreadSanitizer. Uses the
# `tsan` CMake preset when available, falling back to explicit -D
# flags on older CMake.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build-tsan

# The parallel suites (cell_pipeline_test sweeps serial/pipelined/
# row-overlap/map-counter modes at 1/2/4/hw threads — row overlap and
# arena counters are on by default everywhere else too; storage_test
# mines borrowed mmap views at 4 threads; segment_skipping_test and
# the fuzz harness drive the catalog-guided sharded scans;
# trie_invariance_test exercises the flat-trie/prefilter/row-overlap
# grid, every forced probe kernel, and the counter's pooled trie
# reuse across async counts; trace_test and pipeline_metrics_test
# hammer the observability layer's concurrent span recording and the
# pool-task observer from many threads — the lock-free per-thread
# buffers MUST go through TSan; service_test runs the serve daemon's
# accept/connection threads, FIFO admission and concurrent queries
# over shared store views end to end; service_robustness_test races
# cancel tokens against mid-count deadline checks, hangup watchers
# against connection threads, and graceful drain against in-flight
# queries — the cancellation plumbing's relaxed atomics MUST go
# through TSan); everything else is single-threaded and only slows
# the instrumented run down.
SUITES=(thread_pool_test parallel_counting_test cell_pipeline_test
        storage_test segment_skipping_test fuzz_differential_test
        trie_invariance_test trace_test pipeline_metrics_test
        service_test service_robustness_test)

# Instrumented fuzz rounds are ~20x slower; a few are enough to race-
# check the catalog paths (override by exporting FLIPPER_FUZZ_ITERS).
export FLIPPER_FUZZ_ITERS="${FLIPPER_FUZZ_ITERS:-3}"

if cmake --preset tsan >/dev/null 2>&1; then
  cmake --build --preset tsan -j "$(nproc)" --target "${SUITES[@]}"
else
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DFLIPPER_SANITIZE=thread
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${SUITES[@]}"
fi

status=0
for suite in "${SUITES[@]}"; do
  echo "== tsan: $suite =="
  # halt_on_error keeps the first race's report readable.
  if ! TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
      "$BUILD_DIR/$suite"; then
    status=1
  fi
done
exit $status
