#!/usr/bin/env bash
# Memory-checks the storage and recovery paths (mmap'd reader views,
# the varint block cursor, the fault-injected crash sweeps) under
# AddressSanitizer + UBSan. Uses the `asan` CMake preset when
# available, falling back to explicit -D flags on older CMake.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build-asan

# The byte-pushing suites: storage_test parses adversarial section
# tables and multi-block columns, crash_recovery_test replays every
# torn prefix a crash can leave (each one is a fresh parse of attacker-
# shaped bytes), tools_test drives validate/repair over corrupt files,
# and the fuzz harness stirs random datasets through every store
# format including append sessions. The service suites push network-
# shaped bytes instead: protocol_fuzz_test mutates wire payloads and
# torn frames, service_test runs the daemon end to end, and
# service_robustness_test adds deadline unwinds, mid-mine hangups and
# a fault-injected connection storm — all paths where a leak or
# over-read would hide behind "the query just failed".
SUITES=(storage_test crash_recovery_test tools_test
        fuzz_differential_test protocol_fuzz_test service_test
        service_robustness_test)

# Instrumented fuzz rounds are slower; a few are enough to cover the
# decode paths (override by exporting FLIPPER_FUZZ_ITERS).
export FLIPPER_FUZZ_ITERS="${FLIPPER_FUZZ_ITERS:-3}"

if cmake --preset asan >/dev/null 2>&1; then
  cmake --build --preset asan -j "$(nproc)" --target "${SUITES[@]}"
else
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DFLIPPER_SANITIZE=address,undefined
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${SUITES[@]}"
fi

status=0
for suite in "${SUITES[@]}"; do
  echo "== asan: $suite =="
  # halt_on_error keeps the first report readable; detect_leaks guards
  # the reader/writer cleanup paths exercised by the crash sweeps.
  if ! ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}" \
      UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
      "$BUILD_DIR/$suite"; then
    status=1
  fi
done
exit $status
