// flipper_cli — mine flipping correlations from basket + taxonomy
// files on the command line.
//
//   flipper_cli data.basket data.taxonomy
//     --gamma=0.3 --epsilon=0.1 --minsup=0.01,0.001,0.0005
//     --measure=kulczynski --pruning=full --format=text
//
// Formats: text (default, human-readable chains), csv, json.
// --baseline runs the per-level Apriori NaiveMiner instead of Flipper
// (useful for cross-checking); --topk=N keeps only the N widest flips.

#include <iostream>
#include <limits>

#include "common/arg_parser.h"
#include "common/string_util.h"
#include "flipper.h"

namespace flipper {
namespace {

Result<std::vector<double>> ParseThresholds(const std::string& csv) {
  std::vector<double> out;
  for (const std::string& token : Split(csv, ',')) {
    FLIPPER_ASSIGN_OR_RETURN(double v, ParseDouble(token));
    out.push_back(v);
  }
  if (out.empty()) {
    return Status::InvalidArgument("--minsup needs at least one value");
  }
  return out;
}

Result<PruningOptions> ParsePruning(const std::string& name) {
  if (name == "full") return PruningOptions::Full();
  if (name == "tpg") return PruningOptions::FlippingTpg();
  if (name == "flipping") return PruningOptions::FlippingOnly();
  if (name == "support") return PruningOptions::Basic();
  return Status::InvalidArgument(
      "--pruning must be one of full|tpg|flipping|support, got '" +
      name + "'");
}

int Run(int argc, char** argv) {
  ArgParser args("flipper_cli",
                 "Mine flipping correlation patterns (Barsky et al., "
                 "VLDB 2011) from a basket file and a taxonomy file.");
  args.AddPositional("basket", "transactions, one per line (item names)");
  args.AddPositional("taxonomy",
                     "'root <name>' / 'edge <parent> <child>' lines");
  args.AddFlag("gamma", "positive correlation threshold (default 0.3)",
               "FLOAT");
  args.AddFlag("epsilon", "negative correlation threshold (default 0.1)",
               "FLOAT");
  args.AddFlag("minsup",
               "comma-separated per-level minimum supports, most "
               "general level first (default 0.01,0.001,0.0005)",
               "F1,F2,...");
  args.AddFlag("measure",
               "all_confidence|coherence|cosine|kulczynski|"
               "max_confidence (default kulczynski)",
               "NAME");
  args.AddFlag("pruning", "full|tpg|flipping|support (default full)",
               "NAME");
  args.AddFlag("counter", "horizontal|vertical (default horizontal)",
               "NAME");
  args.AddFlag("threads",
               "worker threads for counting (default 0 = all hardware "
               "threads)",
               "N");
  args.AddFlag("pipeline",
               "on|off — overlap candidate generation with the "
               "previous cell's support scan (default on; results "
               "are identical either way)",
               "MODE");
  args.AddFlag("topk", "keep only the K widest flips", "K");
  args.AddFlag("format", "text|csv|json (default text)", "NAME");
  args.AddFlag("out", "write patterns to a file instead of stdout",
               "PATH");
  args.AddSwitch("baseline",
                 "run the per-level Apriori baseline (NaiveMiner)");
  args.AddSwitch("stats", "print mining statistics to stderr");

  Status parse_status = args.Parse(argc, argv);
  if (!parse_status.ok()) {
    std::cerr << "error: " << parse_status << "\n\n"
              << args.HelpText();
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.HelpText();
    return 0;
  }

  // --- Load inputs. ---
  ItemDictionary dict;
  auto taxonomy = ReadTaxonomyFile(args.GetPositional("taxonomy"), &dict);
  if (!taxonomy.ok()) {
    std::cerr << "error: " << taxonomy.status() << "\n";
    return 1;
  }
  auto db = ReadBasketFile(args.GetPositional("basket"), &dict);
  if (!db.ok()) {
    std::cerr << "error: " << db.status() << "\n";
    return 1;
  }

  // --- Assemble the config. ---
  MiningConfig config;
  auto gamma = args.GetDouble("gamma", 0.3);
  auto epsilon = args.GetDouble("epsilon", 0.1);
  if (!gamma.ok() || !epsilon.ok()) {
    std::cerr << "error: "
              << (!gamma.ok() ? gamma.status() : epsilon.status()) << "\n";
    return 2;
  }
  config.gamma = *gamma;
  config.epsilon = *epsilon;
  auto thresholds =
      ParseThresholds(args.GetString("minsup", "0.01,0.001,0.0005"));
  if (!thresholds.ok()) {
    std::cerr << "error: " << thresholds.status() << "\n";
    return 2;
  }
  config.min_support = *thresholds;
  auto measure =
      ParseMeasureKind(args.GetString("measure", "kulczynski"));
  if (!measure.ok()) {
    std::cerr << "error: " << measure.status() << "\n";
    return 2;
  }
  config.measure = *measure;
  auto pruning = ParsePruning(args.GetString("pruning", "full"));
  if (!pruning.ok()) {
    std::cerr << "error: " << pruning.status() << "\n";
    return 2;
  }
  config.pruning = *pruning;
  const std::string counter = args.GetString("counter", "horizontal");
  if (counter == "vertical") {
    config.counter = CounterKind::kVertical;
  } else if (counter != "horizontal") {
    std::cerr << "error: --counter must be horizontal|vertical\n";
    return 2;
  }
  auto threads = args.GetInt("threads", 0);
  if (!threads.ok()) {
    std::cerr << "error: " << threads.status() << "\n";
    return 2;
  }
  if (*threads < 0 || *threads > std::numeric_limits<int>::max()) {
    std::cerr << "error: --threads must be in [0, "
              << std::numeric_limits<int>::max() << "]\n";
    return 2;
  }
  config.num_threads = static_cast<int>(*threads);
  const std::string pipeline = args.GetString("pipeline", "on");
  if (pipeline == "off") {
    config.enable_pipelining = false;
  } else if (pipeline != "on") {
    std::cerr << "error: --pipeline must be on|off\n";
    return 2;
  }

  // --- Mine. ---
  auto result = args.GetSwitch("baseline")
                    ? NaiveMiner::Run(*db, *taxonomy, config)
                    : FlipperMiner::Run(*db, *taxonomy, config);
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    return 1;
  }
  std::vector<FlippingPattern> patterns = std::move(result->patterns);
  auto topk = args.GetInt("topk", 0);
  if (!topk.ok()) {
    std::cerr << "error: " << topk.status() << "\n";
    return 2;
  }
  if (*topk > 0) {
    patterns = TopKMostFlipping(std::move(patterns),
                                static_cast<size_t>(*topk));
  }

  // --- Emit. ---
  const std::string format = args.GetString("format", "text");
  const std::string out_path = args.GetString("out", "");
  Status emit;
  if (format == "csv") {
    emit = out_path.empty()
               ? WritePatternsCsv(patterns, &dict, std::cout)
               : WritePatternsCsvFile(patterns, &dict, out_path);
  } else if (format == "json") {
    emit = out_path.empty()
               ? WritePatternsJson(patterns, &dict, std::cout)
               : WritePatternsJsonFile(patterns, &dict, out_path);
  } else if (format == "text") {
    std::ostream& os = std::cout;
    os << patterns.size() << " flipping patterns\n\n";
    for (const FlippingPattern& p : patterns) {
      os << dict.Render(p.leaf_itemset) << "  (flip gap "
         << FormatDouble(p.FlipGap(), 4) << ")\n"
         << p.ToString(&dict) << "\n";
    }
    if (!out_path.empty()) {
      emit = WritePatternsCsvFile(patterns, &dict, out_path);
    }
  } else {
    std::cerr << "error: --format must be text|csv|json\n";
    return 2;
  }
  if (!emit.ok()) {
    std::cerr << "error: " << emit << "\n";
    return 1;
  }
  if (args.GetSwitch("stats")) {
    std::cerr << result->stats.ToString();
  }
  return 0;
}

}  // namespace
}  // namespace flipper

int main(int argc, char** argv) { return flipper::Run(argc, argv); }
