// flipper_cli — mine flipping correlations, convert/inspect binary
// FlipperStore datasets, and generate synthetic workloads. All logic
// lives in src/cli/cli.cc so the test suite can drive it in-process;
// run `flipper_cli --help` for the command list.

#include <iostream>

#include "cli/cli.h"

int main(int argc, char** argv) {
  return flipper::RunFlipperCli(argc, argv, std::cout, std::cerr);
}
