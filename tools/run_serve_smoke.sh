#!/usr/bin/env bash
# Serve smoke: end-to-end daemon lifecycle check. Generates a store,
# starts `flipper_cli serve` in the background (with a pidfile), waits
# for readiness via `query --op ping` and asserts the daemon speaks
# the expected protocol schema, drives `loadgen` with
# byte-verification against solo in-process mines (--expect-from),
# requires at least one verified cache hit, storms the socket with
# fault-injected connections (`loadgen --chaos`) and requires the
# daemon to stay healthy, parses the daemon's `stats` JSON (latency
# percentiles included), asks for `shutdown` over the protocol and
# asserts the daemon exits cleanly with zero failed queries and a
# removed pidfile. A second short-lived daemon then checks the other
# shutdown path: SIGTERM must drain gracefully, write the same
# shutdown summary, and clean up its pidfile.
#
# Usage:
#   tools/run_serve_smoke.sh                # configure+build, then run
#   tools/run_serve_smoke.sh --cli <path>   # use this binary directly
#                                           # (what the ctest does)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"

CLI_BIN=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --cli)
      CLI_BIN="${2:?--cli needs a path}"
      shift 2
      ;;
    *)
      echo "unknown argument: $1" >&2
      exit 2
      ;;
  esac
done

if [[ -z "$CLI_BIN" ]]; then
  BUILD_DIR="$REPO_ROOT/build"
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" >/dev/null
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target flipper_cli >/dev/null
  CLI_BIN="$BUILD_DIR/flipper_cli"
fi

WORK_DIR="$(mktemp -d "${TMPDIR:-/tmp}/flipper_serve_smoke.XXXXXX")"
SOCKET="$WORK_DIR/serve.sock"
SERVE_PID=""
cleanup() {
  if [[ -n "$SERVE_PID" ]] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

echo "== serve smoke: datagen =="
"$CLI_BIN" datagen groceries "$WORK_DIR/g.fdb" --txns 3000

echo "== serve smoke: start daemon =="
PIDFILE="$WORK_DIR/serve.pid"
"$CLI_BIN" serve --socket "$SOCKET" --stores "g=$WORK_DIR/g.fdb" \
  --pidfile "$PIDFILE" --max-deadline-ms 600000 \
  >"$WORK_DIR/serve.log" 2>&1 &
SERVE_PID=$!

# Readiness: retry-connect until the daemon answers a ping, then
# assert it speaks the protocol schema this client was built against
# (ping meta lines land on stderr as `# key value`).
PING_OUT="$("$CLI_BIN" query --socket "$SOCKET" --op ping \
  --wait-ms 30000 2>&1)"
grep -q "^# schema 1$" <<<"$PING_OUT" || {
  echo "FAIL: ping did not advertise protocol schema 1:" >&2
  echo "$PING_OUT" >&2
  exit 1
}
grep -q "^# uptime_s " <<<"$PING_OUT" || {
  echo "FAIL: ping carried no uptime" >&2
  exit 1
}
if [[ ! -s "$PIDFILE" ]] || ! kill -0 "$(cat "$PIDFILE")" 2>/dev/null
then
  echo "FAIL: pidfile missing or names a dead process" >&2
  exit 1
fi

echo "== serve smoke: loadgen (byte-verified against solo mines) =="
LOADGEN_OUT="$("$CLI_BIN" loadgen --socket "$SOCKET" --store g \
  --requests 48 --connections 8 --expect-from "$WORK_DIR/g.fdb")"
echo "$LOADGEN_OUT"
grep -q " 0 failed, 0 mismatched, " <<<"$LOADGEN_OUT" || {
  echo "FAIL: loadgen reported failures or body mismatches" >&2
  exit 1
}
CACHE_HITS="$(sed -n 's/.*mismatched, \([0-9]*\) cache hits.*/\1/p' \
  <<<"$LOADGEN_OUT")"
if [[ -z "$CACHE_HITS" || "$CACHE_HITS" -lt 1 ]]; then
  echo "FAIL: expected at least one verified cache hit, got" \
    "'${CACHE_HITS:-none}'" >&2
  exit 1
fi

echo "== serve smoke: chaos (fault-injected connections) =="
# Kill and stall connections at random byte offsets in both
# directions; the daemon must shrug every one off and still answer a
# byte-verified query afterwards (loadgen's post-storm health check).
CHAOS_OUT="$("$CLI_BIN" loadgen --socket "$SOCKET" --store g \
  --requests 16 --connections 4 --deadline-ms 60000 \
  --chaos 64 --chaos-seed 7 --expect-from "$WORK_DIR/g.fdb")"
echo "$CHAOS_OUT"
grep -q " 0 failed, 0 mismatched, " <<<"$CHAOS_OUT" || {
  echo "FAIL: chaos loadgen reported failures or mismatches" >&2
  exit 1
}
grep -q "daemon healthy$" <<<"$CHAOS_OUT" || {
  echo "FAIL: daemon unhealthy after the fault-injection storm" >&2
  exit 1
}

echo "== serve smoke: stats =="
STATS_JSON="$WORK_DIR/stats.json"
"$CLI_BIN" query --socket "$SOCKET" --op stats 2>/dev/null \
  >"$STATS_JSON"
python3 - "$STATS_JSON" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    stats = json.load(f)
assert stats["schema_version"] == 1, stats
counters = stats["counters"]
assert counters["queries.total"] >= 48, counters
assert counters.get("queries.failed", 0) == 0, counters
assert counters["cache.hits"] >= 1, counters
latency = stats["histograms"]["query.latency_ms"]
assert latency["count"] >= 48, latency
assert 0 <= latency["p50_ms"] <= latency["p95_ms"] <= latency["max_ms"], \
    latency
print(f"stats ok: {counters['queries.total']} queries, "
      f"{counters['cache.hits']} cache hits, latency p50 "
      f"{latency['p50_ms']:.3f} ms / p95 {latency['p95_ms']:.3f} ms")
EOF

echo "== serve smoke: shutdown =="
"$CLI_BIN" query --socket "$SOCKET" --op shutdown
if ! wait "$SERVE_PID"; then
  echo "FAIL: daemon exited non-zero" >&2
  cat "$WORK_DIR/serve.log" >&2
  exit 1
fi
SERVE_PID=""
grep -q "^shutdown: " "$WORK_DIR/serve.log" || {
  echo "FAIL: daemon wrote no shutdown summary" >&2
  cat "$WORK_DIR/serve.log" >&2
  exit 1
}
if [[ -e "$PIDFILE" ]]; then
  echo "FAIL: pidfile survived a clean shutdown" >&2
  exit 1
fi

echo "== serve smoke: SIGTERM drains gracefully =="
SOCKET2="$WORK_DIR/serve2.sock"
PIDFILE2="$WORK_DIR/serve2.pid"
"$CLI_BIN" serve --socket "$SOCKET2" --stores "g=$WORK_DIR/g.fdb" \
  --pidfile "$PIDFILE2" >"$WORK_DIR/serve2.log" 2>&1 &
SERVE_PID=$!
"$CLI_BIN" query --socket "$SOCKET2" --op ping --wait-ms 30000 \
  >/dev/null 2>&1
kill -TERM "$(cat "$PIDFILE2")"
if ! wait "$SERVE_PID"; then
  echo "FAIL: daemon exited non-zero after SIGTERM" >&2
  cat "$WORK_DIR/serve2.log" >&2
  exit 1
fi
SERVE_PID=""
grep -q "^shutdown: " "$WORK_DIR/serve2.log" || {
  echo "FAIL: SIGTERM left no shutdown summary" >&2
  cat "$WORK_DIR/serve2.log" >&2
  exit 1
}
if [[ -e "$PIDFILE2" ]]; then
  echo "FAIL: pidfile survived SIGTERM shutdown" >&2
  exit 1
fi
echo "serve smoke OK"
