#!/usr/bin/env python3
"""Perf-trajectory tooling for the bench_micro JSON output.

Two modes:

  record   Distill bench_results/bench_micro.json into a committed,
           schema-versioned trajectory snapshot (BENCH_<pr>.json): per
           case the median and p95 wall-clock plus the process peak
           RSS, alongside a host fingerprint so numbers from a
           different machine are never silently compared.

             tools/compare_bench.py record \
                 --source bench_results/bench_micro.json \
                 --out BENCH_7.json

  compare  Gate a fresh run against a committed snapshot: any case
           whose current median exceeds the baseline median by more
           than --threshold (default 10%) fails the gate (exit 1).
           Sub-floor baselines (--min-ms, default 0.25 ms) are
           reported but never gate — at that scale the median is
           timer noise, not a trajectory.

             tools/compare_bench.py compare BENCH_7.json \
                 bench_results/bench_micro.json

           Comparing a snapshot against itself always passes — the
           self-check CI uses after recording.
"""

import argparse
import json
import os
import platform
import sys

SCHEMA_VERSION = 1


def load(path):
    with open(path) as f:
        return json.load(f)


def cpu_model():
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or "unknown"


def case_key(case):
    return (case["name"], int(case.get("threads", 1)))


def distill(case):
    return {
        "name": case["name"],
        "threads": int(case.get("threads", 1)),
        "median_ms": float(case["median_ms"]),
        "p95_ms": float(case.get("p95_ms", case["median_ms"])),
        "peak_rss_bytes": int(case.get("peak_rss_bytes", 0)),
    }


def cmd_record(args):
    doc = load(args.source)
    cases = [distill(c) for c in doc.get("cases", [])]
    if len(cases) < args.min_cases:
        print(
            f"record FAILED: only {len(cases)} cases in {args.source}, "
            f"need >= {args.min_cases}",
            file=sys.stderr,
        )
        return 1
    threads_seen = {c["threads"] for c in cases}
    for required in (1, 4):
        if required not in threads_seen:
            print(
                f"record FAILED: no case ran at {required} threads "
                f"(saw {sorted(threads_seen)})",
                file=sys.stderr,
            )
            return 1
    packed_kernel = next(
        (
            c.get("packed_kernel")
            for c in doc.get("cases", [])
            if c.get("packed_kernel")
        ),
        "unknown",
    )
    snapshot = {
        "schema_version": SCHEMA_VERSION,
        "bench": doc.get("bench", "bench_micro"),
        "scale": doc.get("scale", 1.0),
        "host": {
            "platform": platform.platform(),
            "cpu_model": cpu_model(),
            "hardware_threads": os.cpu_count(),
            "packed_kernel": packed_kernel,
        },
        "cases": cases,
    }
    with open(args.out, "w") as f:
        json.dump(snapshot, f, indent=2)
        f.write("\n")
    print(f"recorded {len(cases)} cases -> {args.out}")
    return 0


def median_of(doc):
    return {case_key(c): distill(c) for c in doc.get("cases", [])}


def cmd_compare(args):
    base_doc = load(args.baseline)
    cur_doc = load(args.current)
    base_schema = base_doc.get("schema_version")
    if base_schema is not None and base_schema != SCHEMA_VERSION:
        print(
            f"compare FAILED: baseline schema_version {base_schema} != "
            f"{SCHEMA_VERSION}; re-record the snapshot",
            file=sys.stderr,
        )
        return 1
    base_scale = base_doc.get("scale")
    cur_scale = cur_doc.get("scale")
    if base_scale is not None and cur_scale is not None and \
            float(base_scale) != float(cur_scale):
        print(
            f"compare FAILED: scale mismatch (baseline {base_scale}, "
            f"current {cur_scale}) — medians are not comparable",
            file=sys.stderr,
        )
        return 1

    base = median_of(base_doc)
    cur = median_of(cur_doc)
    matched = sorted(set(base) & set(cur))
    if not matched:
        print("compare FAILED: no cases in common", file=sys.stderr)
        return 1

    regressions = []
    noisy = []
    improved = 0
    for key in matched:
        b, c = base[key], cur[key]
        if b["median_ms"] <= 0.0:
            continue
        ratio = c["median_ms"] / b["median_ms"]
        if ratio > 1.0 + args.threshold:
            if b["median_ms"] < args.min_ms:
                noisy.append((key, b["median_ms"], c["median_ms"], ratio))
            else:
                regressions.append(
                    (key, b["median_ms"], c["median_ms"], ratio)
                )
        elif ratio < 1.0 - args.threshold:
            improved += 1

    only_base = sorted(set(base) - set(cur))
    only_cur = sorted(set(cur) - set(base))
    print(
        f"compared {len(matched)} cases "
        f"(baseline-only {len(only_base)}, current-only {len(only_cur)}, "
        f"improved >{args.threshold:.0%}: {improved})"
    )
    for key, b_ms, c_ms, ratio in noisy:
        print(
            f"  noise (sub-{args.min_ms}ms baseline, not gating): "
            f"{key[0]} @{key[1]}t {b_ms:.4f} -> {c_ms:.4f} ms "
            f"({ratio - 1.0:+.1%})"
        )
    if regressions:
        print(
            f"compare FAILED: {len(regressions)} median regression(s) "
            f"beyond {args.threshold:.0%}:",
            file=sys.stderr,
        )
        for key, b_ms, c_ms, ratio in regressions:
            print(
                f"  {key[0]} @{key[1]}t: {b_ms:.4f} -> {c_ms:.4f} ms "
                f"({ratio - 1.0:+.1%})",
                file=sys.stderr,
            )
        return 1
    print("compare OK: no median regression beyond "
          f"{args.threshold:.0%}")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="mode", required=True)

    rec = sub.add_parser("record", help="distill a trajectory snapshot")
    rec.add_argument("--source", default="bench_results/bench_micro.json")
    rec.add_argument("--out", required=True)
    rec.add_argument("--min-cases", type=int, default=8)
    rec.set_defaults(fn=cmd_record)

    cmp_ = sub.add_parser("compare", help="gate a run against a snapshot")
    cmp_.add_argument("baseline")
    cmp_.add_argument("current")
    cmp_.add_argument("--threshold", type=float, default=0.10)
    cmp_.add_argument("--min-ms", type=float, default=0.25)
    cmp_.set_defaults(fn=cmd_compare)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
