#!/usr/bin/env python3
"""Perf-trajectory tooling for the bench_micro JSON output.

Two modes:

  record   Distill bench_results/bench_micro.json into a committed,
           schema-versioned trajectory snapshot (BENCH_<pr>.json): per
           case the median and p95 wall-clock plus the process peak
           RSS, alongside a host fingerprint so numbers from a
           different machine are never silently compared.

             tools/compare_bench.py record \
                 --source bench_results/bench_micro.json \
                 --out BENCH_7.json

  compare  Gate a fresh run against a committed snapshot: any case
           whose current median exceeds the baseline median by more
           than --threshold (default 10%) fails the gate (exit 1).
           Sub-floor baselines (--min-ms, default 0.25 ms) are
           reported but never gate — at that scale the median is
           timer noise, not a trajectory.

             tools/compare_bench.py compare BENCH_7.json \
                 bench_results/bench_micro.json

           Comparing a snapshot against itself always passes — the
           self-check CI uses after recording.

  --self-test  Schema round-trip plus regression-detection fixtures
           (runs record + compare against synthetic inputs in a temp
           dir; exercises the observability fields and the per-stage
           gate). Registered as a ctest so the tooling cannot rot.

             tools/compare_bench.py --self-test

Cases may additively carry observability fields from the run's
metrics registry — "pool_utilization", "packed_kernel", a "stages"
object of per-stage wall-clock sums, and "overhead_pct" — which are
distilled into the snapshot when present and per-stage regressions
gate like medians (with their own threshold, since stage sums are
noisier). Snapshots without them (earlier PRs) remain valid:
SCHEMA_VERSION stays 1 because every new field is optional.
"""

import argparse
import json
import os
import platform
import sys

SCHEMA_VERSION = 1

# Per-case observability fields distilled verbatim when present.
OPTIONAL_CASE_FIELDS = ("pool_utilization", "packed_kernel",
                        "overhead_pct")


def load(path):
    with open(path) as f:
        return json.load(f)


def cpu_model():
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or "unknown"


def case_key(case):
    return (case["name"], int(case.get("threads", 1)))


def distill(case):
    out = {
        "name": case["name"],
        "threads": int(case.get("threads", 1)),
        "median_ms": float(case["median_ms"]),
        "p95_ms": float(case.get("p95_ms", case["median_ms"])),
        "peak_rss_bytes": int(case.get("peak_rss_bytes", 0)),
    }
    for field in OPTIONAL_CASE_FIELDS:
        if field in case:
            out[field] = case[field]
    stages = case.get("stages")
    if isinstance(stages, dict) and stages:
        out["stages"] = {k: float(v) for k, v in sorted(stages.items())}
    return out


def cmd_record(args):
    doc = load(args.source)
    cases = [distill(c) for c in doc.get("cases", [])]
    if len(cases) < args.min_cases:
        print(
            f"record FAILED: only {len(cases)} cases in {args.source}, "
            f"need >= {args.min_cases}",
            file=sys.stderr,
        )
        return 1
    threads_seen = {c["threads"] for c in cases}
    for required in (1, 4):
        if required not in threads_seen:
            print(
                f"record FAILED: no case ran at {required} threads "
                f"(saw {sorted(threads_seen)})",
                file=sys.stderr,
            )
            return 1
    packed_kernel = next(
        (
            c.get("packed_kernel")
            for c in doc.get("cases", [])
            if c.get("packed_kernel")
        ),
        "unknown",
    )
    snapshot = {
        "schema_version": SCHEMA_VERSION,
        "bench": doc.get("bench", "bench_micro"),
        "scale": doc.get("scale", 1.0),
        "host": {
            "platform": platform.platform(),
            "cpu_model": cpu_model(),
            "hardware_threads": os.cpu_count(),
            "packed_kernel": packed_kernel,
        },
        "cases": cases,
    }
    with open(args.out, "w") as f:
        json.dump(snapshot, f, indent=2)
        f.write("\n")
    print(f"recorded {len(cases)} cases -> {args.out}")
    return 0


def median_of(doc):
    return {case_key(c): distill(c) for c in doc.get("cases", [])}


def cmd_compare(args):
    base_doc = load(args.baseline)
    cur_doc = load(args.current)
    base_schema = base_doc.get("schema_version")
    if base_schema is not None and base_schema != SCHEMA_VERSION:
        print(
            f"compare FAILED: baseline schema_version {base_schema} != "
            f"{SCHEMA_VERSION}; re-record the snapshot",
            file=sys.stderr,
        )
        return 1
    base_scale = base_doc.get("scale")
    cur_scale = cur_doc.get("scale")
    if base_scale is not None and cur_scale is not None and \
            float(base_scale) != float(cur_scale):
        print(
            f"compare FAILED: scale mismatch (baseline {base_scale}, "
            f"current {cur_scale}) — medians are not comparable",
            file=sys.stderr,
        )
        return 1

    base = median_of(base_doc)
    cur = median_of(cur_doc)
    matched = sorted(set(base) & set(cur))
    if not matched:
        print("compare FAILED: no cases in common", file=sys.stderr)
        return 1

    regressions = []
    noisy = []
    improved = 0
    for key in matched:
        b, c = base[key], cur[key]
        if b["median_ms"] <= 0.0:
            continue
        ratio = c["median_ms"] / b["median_ms"]
        if ratio > 1.0 + args.threshold:
            if b["median_ms"] < args.min_ms:
                noisy.append((key, b["median_ms"], c["median_ms"], ratio))
            else:
                regressions.append(
                    (key, b["median_ms"], c["median_ms"], ratio)
                )
        elif ratio < 1.0 - args.threshold:
            improved += 1

    # Per-stage gate: when both sides carry a "stages" object, each
    # stage's wall-clock sum gates like a median, against the (looser)
    # stage threshold — stage sums are one run, not a median of reps,
    # so they are noisier. Stages absent on either side never gate;
    # old snapshots without stages are unaffected.
    stage_regressions = []
    for key in matched:
        b_stages = base[key].get("stages") or {}
        c_stages = cur[key].get("stages") or {}
        for stage in sorted(set(b_stages) & set(c_stages)):
            b_ms = float(b_stages[stage])
            c_ms = float(c_stages[stage])
            if b_ms < args.min_ms or b_ms <= 0.0:
                continue
            ratio = c_ms / b_ms
            if ratio > 1.0 + args.stage_threshold:
                stage_regressions.append((key, stage, b_ms, c_ms, ratio))

    only_base = sorted(set(base) - set(cur))
    only_cur = sorted(set(cur) - set(base))
    print(
        f"compared {len(matched)} cases "
        f"(baseline-only {len(only_base)}, current-only {len(only_cur)}, "
        f"improved >{args.threshold:.0%}: {improved})"
    )
    for key, b_ms, c_ms, ratio in noisy:
        print(
            f"  noise (sub-{args.min_ms}ms baseline, not gating): "
            f"{key[0]} @{key[1]}t {b_ms:.4f} -> {c_ms:.4f} ms "
            f"({ratio - 1.0:+.1%})"
        )
    failed = False
    if regressions:
        failed = True
        print(
            f"compare FAILED: {len(regressions)} median regression(s) "
            f"beyond {args.threshold:.0%}:",
            file=sys.stderr,
        )
        for key, b_ms, c_ms, ratio in regressions:
            print(
                f"  {key[0]} @{key[1]}t: {b_ms:.4f} -> {c_ms:.4f} ms "
                f"({ratio - 1.0:+.1%})",
                file=sys.stderr,
            )
    if stage_regressions:
        failed = True
        print(
            f"compare FAILED: {len(stage_regressions)} stage "
            f"regression(s) beyond {args.stage_threshold:.0%}:",
            file=sys.stderr,
        )
        for key, stage, b_ms, c_ms, ratio in stage_regressions:
            print(
                f"  {key[0]} @{key[1]}t stage {stage}: "
                f"{b_ms:.4f} -> {c_ms:.4f} ms ({ratio - 1.0:+.1%})",
                file=sys.stderr,
            )
    if failed:
        return 1
    print("compare OK: no median regression beyond "
          f"{args.threshold:.0%}")
    return 0


def fixture_case(name, threads, median_ms, stages=None, **extra):
    case = {
        "name": name,
        "threads": threads,
        "reps": 5,
        "median_ms": median_ms,
        "p95_ms": median_ms * 1.1,
        "peak_rss_bytes": 1 << 20,
        "rows_per_sec": 1000.0,
    }
    if stages is not None:
        case["stages"] = stages
    case.update(extra)
    return case


def fixture_doc(cases):
    return {
        "bench": "bench_micro",
        "scale": 1.0,
        "hardware_threads": 4,
        "cases": cases,
    }


def cmd_selftest(_args):
    """Schema round-trip + regression-detection fixtures in a temp dir."""
    import tempfile

    failures = []

    def check(label, cond):
        print(f"  [{'ok' if cond else 'FAIL'}] {label}")
        if not cond:
            failures.append(label)

    def run(argv):
        return main(argv)

    base_cases = [
        fixture_case("kernel_a", 1, 10.0),
        fixture_case("kernel_b", 1, 0.01),  # sub-floor: noise, not gate
        fixture_case(
            "miner_pipelined", 4, 50.0,
            stages={"plan": 5.0, "count_wait": 20.0, "evaluate": 8.0},
            pool_utilization=0.82, packed_kernel="sse2",
        ),
        fixture_case("miner_observability_on", 4, 51.0,
                     overhead_pct=1.3),
    ]

    with tempfile.TemporaryDirectory() as tmp:
        def path(name):
            return os.path.join(tmp, name)

        def dump(name, doc):
            with open(path(name), "w") as f:
                json.dump(doc, f)
            return path(name)

        # --- record: schema round-trip incl. observability fields ---
        src = dump("source.json", fixture_doc(base_cases))
        snap_path = path("snap.json")
        rc = run(["record", "--source", src, "--out", snap_path,
                  "--min-cases", "4"])
        check("record succeeds on fixture", rc == 0)
        snap = load(snap_path)
        check("snapshot schema_version matches",
              snap.get("schema_version") == SCHEMA_VERSION)
        by_name = {c["name"]: c for c in snap.get("cases", [])}
        pipelined = by_name.get("miner_pipelined", {})
        check("stages survive the distill",
              pipelined.get("stages", {}).get("count_wait") == 20.0)
        check("pool_utilization survives the distill",
              pipelined.get("pool_utilization") == 0.82)
        check("packed_kernel survives the distill",
              pipelined.get("packed_kernel") == "sse2")
        check("host packed_kernel picked up",
              snap.get("host", {}).get("packed_kernel") == "sse2")
        check("overhead_pct survives the distill",
              by_name.get("miner_observability_on", {})
              .get("overhead_pct") == 1.3)

        # --- compare: self-comparison passes ---
        rc = run(["compare", snap_path, src])
        check("snapshot vs its own source passes", rc == 0)

        # --- compare: median regression detected ---
        regressed = [dict(c) for c in base_cases]
        regressed[0] = fixture_case("kernel_a", 1, 13.0)  # +30%
        cur = dump("regressed.json", fixture_doc(regressed))
        rc = run(["compare", snap_path, cur])
        check("median regression fails the gate", rc == 1)

        # --- compare: sub-floor baseline never gates ---
        noisy = [dict(c) for c in base_cases]
        noisy[1] = fixture_case("kernel_b", 1, 0.05)  # 5x, but sub-floor
        cur = dump("noisy.json", fixture_doc(noisy))
        rc = run(["compare", snap_path, cur])
        check("sub-floor regression is noise, not a failure", rc == 0)

        # --- compare: per-stage regression detected ---
        stage_reg = [dict(c) for c in base_cases]
        stage_reg[2] = fixture_case(
            "miner_pipelined", 4, 50.0,  # median flat...
            stages={"plan": 5.0, "count_wait": 32.0,  # ...stage +60%
                    "evaluate": 8.0},
            pool_utilization=0.82, packed_kernel="sse2",
        )
        cur = dump("stage_reg.json", fixture_doc(stage_reg))
        rc = run(["compare", snap_path, cur])
        check("stage regression fails the gate", rc == 1)

        # --- compare: baseline without stages ignores current stages ---
        legacy_cases = [fixture_case("kernel_a", 1, 10.0),
                        fixture_case("kernel_c", 4, 5.0)]
        legacy = dump("legacy_snap.json", {
            "schema_version": SCHEMA_VERSION,
            "bench": "bench_micro",
            "scale": 1.0,
            "cases": [distill(c) for c in legacy_cases],
        })
        cur = dump("legacy_cur.json", fixture_doc(
            [fixture_case("kernel_a", 1, 10.2,
                          stages={"plan": 99.0}),
             fixture_case("kernel_c", 4, 5.0)]))
        rc = run(["compare", legacy, cur])
        check("stage-less baseline still compares", rc == 0)

        # --- compare: scale mismatch refuses ---
        scaled = fixture_doc([dict(c) for c in base_cases])
        scaled["scale"] = 0.25
        cur = dump("scaled.json", scaled)
        rc = run(["compare", snap_path, cur])
        check("scale mismatch refuses to compare", rc == 1)

    if failures:
        print(f"self-test FAILED: {len(failures)} check(s)",
              file=sys.stderr)
        return 1
    print("self-test OK")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--self-test", action="store_true",
        help="run schema round-trip + regression-detection fixtures")
    sub = parser.add_subparsers(dest="mode")

    rec = sub.add_parser("record", help="distill a trajectory snapshot")
    rec.add_argument("--source", default="bench_results/bench_micro.json")
    rec.add_argument("--out", required=True)
    rec.add_argument("--min-cases", type=int, default=8)
    rec.set_defaults(fn=cmd_record)

    cmp_ = sub.add_parser("compare", help="gate a run against a snapshot")
    cmp_.add_argument("baseline")
    cmp_.add_argument("current")
    cmp_.add_argument("--threshold", type=float, default=0.10)
    cmp_.add_argument("--min-ms", type=float, default=0.25)
    cmp_.add_argument("--stage-threshold", type=float, default=0.25)
    cmp_.set_defaults(fn=cmd_compare)

    args = parser.parse_args(argv)
    if args.self_test:
        return cmd_selftest(args)
    if args.mode is None:
        parser.error("a mode (record/compare) or --self-test is required")
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
