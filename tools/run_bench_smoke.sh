#!/usr/bin/env bash
# Bench smoke: build Release (unless handed an already-built binary via
# --bench, as the `bench_smoke` CTest does), run bench_micro at a small
# scale, and validate that bench_results/bench_micro.json parses and
# contains the perf-trajectory cases this repo tracks — in particular
# the trie_flat_vs_legacy, txn_prefilter, trie_probe_kernels,
# row_trie_reuse and scan_counter series with non-zero measurements.
#
# With --record the validated run is additionally distilled into a
# committed trajectory snapshot (median/p95 wall + peak RSS per case,
# host fingerprint; see tools/compare_bench.py) and self-compared
# through the regression gate, so the recorded file is known-good.
#
# Usage:
#   tools/run_bench_smoke.sh                  # configure+build, run
#   tools/run_bench_smoke.sh --bench <path>   # run this binary directly
#   tools/run_bench_smoke.sh --record [<out>] # ... + snapshot (default
#                                             #     <repo>/BENCH_7.json)
#   tools/run_bench_smoke.sh --record --force # overwrite an existing
#                                             # snapshot deliberately
#
# --record refuses to overwrite an existing snapshot unless --force is
# given: committed BENCH_<n>.json files are the perf trajectory, and
# clobbering one by rerunning the smoke on a different machine would
# silently rewrite history.
#
# FLIPPER_BENCH_SCALE (default 0.05 here) shrinks the workloads so the
# smoke stays CI-sized; rerun without it for real numbers.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"

BENCH_BIN=""
RECORD_OUT=""
FORCE=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --bench)
      BENCH_BIN="${2:?--bench needs a path}"
      shift 2
      ;;
    --record)
      if [[ $# -gt 1 && "${2:0:2}" != "--" ]]; then
        RECORD_OUT="$2"
        shift 2
      else
        RECORD_OUT="$REPO_ROOT/BENCH_7.json"
        shift
      fi
      ;;
    --force)
      FORCE=1
      shift
      ;;
    *)
      echo "unknown argument: $1" >&2
      exit 2
      ;;
  esac
done

if [[ -n "$RECORD_OUT" && -e "$RECORD_OUT" && "$FORCE" -ne 1 ]]; then
  echo "bench record FAILED: $RECORD_OUT already exists;" \
       "pass --force to overwrite the committed snapshot" >&2
  exit 1
fi

export FLIPPER_BENCH_SCALE="${FLIPPER_BENCH_SCALE:-0.05}"

if [[ -z "$BENCH_BIN" ]]; then
  cd "$REPO_ROOT"
  BUILD_DIR=build
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_micro
  cd "$BUILD_DIR"
  BENCH_BIN=./bench_micro
fi

"$BENCH_BIN"

JSON=bench_results/bench_micro.json
if [[ ! -f "$JSON" ]]; then
  echo "bench smoke FAILED: $JSON was not written" >&2
  exit 1
fi

# Validation: parse the JSON and check the tracked cases exist with
# non-zero measurements. python3 when available, a grep fallback
# otherwise (the repo vendors no JSON parser).
if command -v python3 >/dev/null 2>&1; then
  python3 - "$JSON" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

cases = {c["name"]: c for c in doc["cases"]}
required_prefixes = [
    "trie_flat_vs_legacy",
    "txn_prefilter",
    "trie_probe_kernels",
    "row_trie_reuse",
    "scan_counter_map",
    "scan_counter_arena",
    "miner_pipelined",
    "horizontal_scan_threads_1",
]
failures = []
for prefix in required_prefixes:
    hits = [c for name, c in cases.items() if name.startswith(prefix)]
    if not hits:
        failures.append(f"no case named {prefix}*")
        continue
    if all(c.get("median_ms", 0) <= 0 or c.get("rows_per_sec", 0) <= 0
           for c in hits):
        failures.append(f"{prefix}*: every case measured zero")
    if any("p95_ms" not in c or "peak_rss_bytes" not in c for c in hits):
        failures.append(f"{prefix}*: missing p95_ms/peak_rss_bytes")

pf = [c for name, c in cases.items() if name == "txn_prefilter_on"]
if pf and pf[0].get("txns_prefiltered", 0) <= 0:
    failures.append("txn_prefilter_on: txns_prefiltered is zero")

arena = cases.get("scan_counter_arena")
if arena is not None and arena.get("warm_grow_events", -1) != 0:
    failures.append("scan_counter_arena: warm reps allocated")

if failures:
    print("bench smoke FAILED:")
    for f in failures:
        print(" -", f)
    sys.exit(1)
print(f"bench smoke OK: {len(cases)} cases validated")
EOF
else
  echo "python3 unavailable; falling back to grep validation" >&2
  for prefix in trie_flat_vs_legacy txn_prefilter trie_probe_kernels \
                row_trie_reuse scan_counter; do
    if ! grep -q "\"name\": \"$prefix" "$JSON"; then
      echo "bench smoke FAILED: no case named $prefix*" >&2
      exit 1
    fi
  done
  echo "bench smoke OK (grep validation)"
fi

if [[ -n "$RECORD_OUT" ]]; then
  if ! command -v python3 >/dev/null 2>&1; then
    echo "bench record FAILED: python3 required for --record" >&2
    exit 1
  fi
  python3 "$REPO_ROOT/tools/compare_bench.py" record \
    --source "$JSON" --out "$RECORD_OUT"
  # A snapshot must pass its own gate before it is worth committing.
  python3 "$REPO_ROOT/tools/compare_bench.py" compare \
    "$RECORD_OUT" "$RECORD_OUT"
  echo "bench record OK: $RECORD_OUT"
fi
