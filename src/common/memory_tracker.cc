#include "common/memory_tracker.h"

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace flipper {

MemoryTracker& GlobalCandidateMemory() {
  static MemoryTracker tracker;
  return tracker;
}

int64_t CurrentRssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long total_pages = 0;
  long rss_pages = 0;
  int n = std::fscanf(f, "%ld %ld", &total_pages, &rss_pages);
  std::fclose(f);
  if (n != 2) return 0;
  return static_cast<int64_t>(rss_pages) * 4096;
}

int64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<int64_t>(usage.ru_maxrss);  // bytes on Darwin
#else
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace flipper
