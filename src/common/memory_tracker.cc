#include "common/memory_tracker.h"

#include <cstdio>

namespace flipper {

MemoryTracker& GlobalCandidateMemory() {
  static MemoryTracker tracker;
  return tracker;
}

int64_t CurrentRssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long total_pages = 0;
  long rss_pages = 0;
  int n = std::fscanf(f, "%ld %ld", &total_pages, &rss_pages);
  std::fclose(f);
  if (n != 2) return 0;
  return static_cast<int64_t>(rss_pages) * 4096;
}

}  // namespace flipper
