#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace flipper {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Result<int64_t> ParseInt(std::string_view s) {
  std::string t(Trim(s));
  if (t.empty()) return Status::InvalidArgument("empty integer token");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(t.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: '" + t + "'");
  }
  if (end == t.c_str() || *end != '\0') {
    return Status::InvalidArgument("not an integer: '" + t + "'");
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  std::string t(Trim(s));
  if (t.empty()) return Status::InvalidArgument("empty double token");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(t.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("double out of range: '" + t + "'");
  }
  if (end == t.c_str() || *end != '\0') {
    return Status::InvalidArgument("not a double: '" + t + "'");
  }
  return v;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatBytes(int64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while ((v >= 1024.0 || v <= -1024.0) && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%lld B",
                  static_cast<long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[u]);
  }
  return buf;
}

std::string FormatCount(int64_t n) {
  std::string digits = std::to_string(n < 0 ? -n : n);
  std::string out;
  int c = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (c > 0 && c % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++c;
  }
  if (n < 0) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace flipper
