// Tabular text tokenization and CSV emission: a buffered block-wise
// line scanner shared by the bulk text readers (basket files load
// through it), a whitespace tokenizer, and the CSV writer the bench
// harness uses so figure series can be re-plotted.

#ifndef FLIPPER_COMMON_CSV_H_
#define FLIPPER_COMMON_CSV_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace flipper {

/// Reads a stream in fixed-size blocks and yields complete lines,
/// replacing the per-line getline + stream-extraction pattern on bulk
/// loads (one virtual read per block instead of per line). Returned
/// views point into the internal buffer and are invalidated by the
/// next call. A final line without a trailing newline is yielded too.
class LineScanner {
 public:
  explicit LineScanner(std::istream& in, size_t block_bytes = 1 << 18);

  /// Advances to the next line ('\n' not included). Returns false at
  /// end of input or on a stream error (check bad()).
  bool Next(std::string_view* line);

  /// True if the underlying stream failed with a read error (as
  /// opposed to clean end-of-file).
  bool bad() const { return bad_; }

 private:
  /// Pulls another block, compacting the unconsumed tail first.
  /// Returns false when no new bytes arrived.
  bool Refill();

  std::istream& in_;
  std::string buffer_;
  size_t pos_ = 0;   // start of the unconsumed region
  size_t end_ = 0;   // end of the valid region
  bool eof_ = false;
  bool bad_ = false;
};

inline bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

/// Calls fn(token) for every maximal run of non-whitespace characters,
/// left to right, without allocating.
template <typename Fn>
void ForEachWhitespaceToken(std::string_view s, Fn&& fn) {
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsAsciiSpace(s[i])) ++i;
    const size_t start = i;
    while (i < s.size() && !IsAsciiSpace(s[i])) ++i;
    if (i > start) fn(s.substr(start, i - start));
  }
}

/// Accumulates rows and writes an RFC-4180-ish CSV file (quotes fields
/// containing separators/quotes/newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Serializes all rows.
  std::string ToString() const;

  /// Writes to a file, overwriting it.
  Status WriteFile(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace flipper

#endif  // FLIPPER_COMMON_CSV_H_
