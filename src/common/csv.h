// CSV emission for bench outputs so figure series can be re-plotted.

#ifndef FLIPPER_COMMON_CSV_H_
#define FLIPPER_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace flipper {

/// Accumulates rows and writes an RFC-4180-ish CSV file (quotes fields
/// containing separators/quotes/newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Serializes all rows.
  std::string ToString() const;

  /// Writes to a file, overwriting it.
  Status WriteFile(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace flipper

#endif  // FLIPPER_COMMON_CSV_H_
