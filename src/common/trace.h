// Low-overhead pipeline tracing: RAII spans recorded into per-thread
// buffers owned by a Session and exported as Chrome trace-event JSON
// (chrome://tracing / ui.perfetto.dev).
//
// Design constraints, in order:
//   - near-zero cost when disabled: every span site is one thread-local
//     pointer read plus one relaxed atomic load, no clock reads, no
//     stores;
//   - no cross-thread contention when enabled: each thread appends to
//     its own buffer (chunked arrays, so recording never moves spans);
//     the only locks are per-buffer chunk rollover (every 4096 spans)
//     and per-session thread registration (once per thread/session);
//   - no heap allocation per span: names and categories must be string
//     literals (the buffer stores the pointers), arguments are two
//     plain integers;
//   - no process-global mutable recording state: spans land in the
//     Session attached to the recording thread, so concurrent queries
//     with separate sessions never interleave and one query's export
//     can never contain another's spans.
//
// A Session is the per-query (or per-run) recording context. Attach it
// with SessionScope, enable it, run, export:
//
//   trace::Session session;
//   session.SetEnabled(true);
//   {
//     trace::SessionScope scope(&session);
//     ... FlipperMiner::Run(...) ...   // spans land in `session`
//   }
//   session.ExportChromeJson(out);
//
// ThreadPool propagates the submitter's attached session to its
// workers for the duration of each task, so the mining stages and the
// pool need no explicit plumbing. The session must outlive every task
// submitted while it was attached (the pipeline joins all counting
// futures before returning, so attaching around a miner call is safe).
//
// The free functions (SetEnabled, Clear, SpanCount, ExportChromeJson,
// ForEachSpan, RecordSpan) operate on the calling thread's attached
// session, falling back to a process-wide default session when none is
// attached — the one-shot CLI and single-run tests keep working with
// zero setup, while any code that needs isolation attaches its own
// session. Export is safe while recording continues (it reads each
// buffer up to its published span count), but the usual discipline is
// enable -> run -> disable -> export. Session::Clear() must only be
// called while no thread is recording into that session.

#ifndef FLIPPER_COMMON_TRACE_H_
#define FLIPPER_COMMON_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace flipper {
namespace trace {

/// One closed span. `name` and `cat` must point at string literals
/// (or otherwise outlive the trace buffer).
struct Span {
  const char* name = nullptr;
  const char* cat = nullptr;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  /// Argument payload, interpreted per `arg_kind`.
  int64_t arg0 = 0;
  int64_t arg1 = 0;
  enum class ArgKind : uint8_t {
    kNone,   // no args emitted
    kCell,   // arg0 = h, arg1 = k (cell coordinates)
    kWaitNs  // arg0 = submit->start queue latency in ns
  };
  ArgKind arg_kind = ArgKind::kNone;
};

namespace internal {
class ThreadBuffer;
}  // namespace internal

/// An isolated span store: per-thread chunked buffers plus its own
/// enable flag. Every method is safe to call from any thread; Append
/// (via RecordSpan) is contention-free across threads.
class Session {
 public:
  Session();
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Turns recording into this session on/off. Returns the previous
  /// state. Enabling is cheap; buffers persist across enable/disable
  /// cycles until Clear().
  bool SetEnabled(bool enabled);

  /// Whether span sites attached to this session record.
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Appends one closed span to the calling thread's buffer of this
  /// session (registering the thread on first use). Records even when
  /// the session is disabled — the enabled() check is the span site's
  /// job (RecordSpan / ScopedSpan do it).
  void Append(const Span& span);

  /// Registers the calling thread now (buffer allocated and the first
  /// chunk prewarmed, so no allocation lands between later spans) and
  /// labels it in the export. Idempotent; last name wins.
  void RegisterThread(const char* name);

  /// Stable, small id of the calling thread within this session
  /// (assigned on first use, in registration order; the exporter uses
  /// it as the Chrome `tid`).
  int ThreadId();

  /// Applies `name` to the calling thread's buffer if (and only if) it
  /// is already registered — unlike RegisterThread, never creates one.
  void RenameThreadIfRegistered(const char* name);

  /// Total spans currently recorded across all threads.
  size_t SpanCount() const;

  /// Drops all recorded spans (buffers stay registered and keep their
  /// chunk storage). Only call while no thread is recording into this
  /// session.
  void Clear();

  /// Writes every recorded span as Chrome trace-event JSON
  /// ({"traceEvents": [...]}): one "X" (complete) event per span plus
  /// one thread-name metadata event per thread, timestamps in
  /// microseconds relative to the process trace epoch, one event per
  /// line (the structural validators rely on that). Safe to call with
  /// recording still enabled; spans published after the call started
  /// may be missed.
  void ExportChromeJson(std::ostream& out) const;

  /// Invokes `fn(tid, thread_name, span)` for every recorded span, in
  /// per-thread recording order (threads in registration order). The
  /// coverage checks and tests use this instead of re-parsing JSON.
  void ForEachSpan(const std::function<void(int, const std::string&,
                                            const Span&)>& fn) const;

 private:
  internal::ThreadBuffer* BufferForThisThread();
  std::vector<std::shared_ptr<internal::ThreadBuffer>> SnapshotBuffers()
      const;

  /// Process-unique session id; the per-thread buffer cache keys on it
  /// so a recycled Session address can never alias a dead session.
  const uint64_t id_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<internal::ThreadBuffer>> buffers_;
};

namespace internal {
/// The calling thread's attached session (null = none; the free
/// functions then fall back to the default session). Managed by
/// SessionScope; read directly by the Enabled() fast path. Defined
/// inline (constant-initialized) so every TU sees the definition and
/// no TLS init wrapper is emitted — the wrapper's extern-TLS load is
/// exactly what UBSan's null check misfires on.
inline thread_local Session* g_current = nullptr;
/// Mirror of the default session's enable flag, so the disabled fast
/// path is one atomic load even without an attached session.
extern std::atomic<bool> g_default_enabled;
}  // namespace internal

/// The process-wide fallback session the free functions use when the
/// calling thread has none attached (one-shot CLI, simple tests).
Session& DefaultSession();

/// The session span sites on this thread record into: the attached
/// one, else the default session. Never null.
Session* CurrentSession();

/// Attaches `session` to the calling thread for the scope's lifetime
/// (restores the previous attachment on destruction). Pass nullptr to
/// detach (span sites fall back to the default session).
class SessionScope {
 public:
  explicit SessionScope(Session* session) : prev_(internal::g_current) {
    internal::g_current = session;
  }
  ~SessionScope() { internal::g_current = prev_; }

  SessionScope(const SessionScope&) = delete;
  SessionScope& operator=(const SessionScope&) = delete;

 private:
  Session* prev_;
};

/// Whether span sites on the calling thread record. The single check
/// every disabled span site pays.
inline bool Enabled() {
  Session* s = internal::g_current;
  return s != nullptr
             ? s->enabled()
             : internal::g_default_enabled.load(
                   std::memory_order_relaxed);
}

/// Turns the DEFAULT session's recording on/off (the free-function
/// compatibility surface; attached sessions use Session::SetEnabled).
/// Returns the previous state.
bool SetEnabled(bool enabled);

/// Monotonic nanoseconds since the process trace epoch.
uint64_t NowNanos();

/// Stable, small id of the calling thread within the effective
/// session (see Session::ThreadId).
int CurrentThreadId();

/// Labels the calling thread in exported traces ("driver",
/// "pool-worker", ...). The name is remembered thread-locally and
/// applied to every session this thread later records into; when the
/// effective session is enabled the thread is also registered (and its
/// first chunk prewarmed) immediately. Idempotent; last writer wins.
void SetThreadName(const char* name);

/// Appends one closed span to the effective session's buffer for this
/// thread. No-op when that session is disabled. `name`/`cat` must be
/// string literals.
void RecordSpan(const Span& span);

/// Total spans recorded in the effective session.
size_t SpanCount();

/// Clears the effective session (see Session::Clear).
void Clear();

/// Exports the effective session (see Session::ExportChromeJson).
void ExportChromeJson(std::ostream& out);

/// Iterates the effective session (see Session::ForEachSpan).
void ForEachSpan(
    const std::function<void(int, const std::string&, const Span&)>& fn);

/// RAII span: captures the start time if tracing was enabled at
/// construction and records on destruction. Cheap to construct when
/// disabled (one thread-local read + one relaxed load).
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat) {
    if (Enabled()) Arm(name, cat);
  }
  ScopedSpan(const char* name, const char* cat, int h, int k) {
    if (Enabled()) {
      Arm(name, cat);
      span_.arg_kind = Span::ArgKind::kCell;
      span_.arg0 = h;
      span_.arg1 = k;
    }
  }
  ~ScopedSpan() {
    if (span_.name != nullptr) {
      span_.dur_ns = NowNanos() - span_.start_ns;
      RecordSpan(span_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void Arm(const char* name, const char* cat) {
    span_.name = name;
    span_.cat = cat;
    span_.start_ns = NowNanos();
  }
  Span span_;
};

}  // namespace trace
}  // namespace flipper

// Span-site macros. `cat` conventions used by the mining pipeline:
//   "run"    the per-run root span ("mine");
//   "stage"  non-overlapping driver-thread stages (plan, count_wait,
//            evaluate, ...) — the coverage checks sum these;
//   "detail" nested refinements (trie_build, shard_merge, ...);
//   "task"   spans executing on pool workers (count_shard, ...);
//   "pool"   the thread pool's own task envelopes.
#define FLIPPER_TRACE_CONCAT_(a, b) a##b
#define FLIPPER_TRACE_CONCAT(a, b) FLIPPER_TRACE_CONCAT_(a, b)
#define FLIPPER_TRACE_SPAN(name, cat)                       \
  ::flipper::trace::ScopedSpan FLIPPER_TRACE_CONCAT(        \
      flipper_trace_span_, __LINE__)(name, cat)
#define FLIPPER_TRACE_SPAN_HK(name, cat, h, k)              \
  ::flipper::trace::ScopedSpan FLIPPER_TRACE_CONCAT(        \
      flipper_trace_span_, __LINE__)(name, cat, (h), (k))

#endif  // FLIPPER_COMMON_TRACE_H_
