// Low-overhead pipeline tracing: RAII spans recorded into per-thread
// buffers and exported as Chrome trace-event JSON (chrome://tracing /
// ui.perfetto.dev).
//
// Design constraints, in order:
//   - near-zero cost when disabled: every span site is one relaxed
//     atomic load and a branch, no clock reads, no stores;
//   - no cross-thread contention when enabled: each thread appends to
//     its own buffer (chunked arrays, so recording never moves spans);
//     the only locks are per-buffer chunk rollover (every 4096 spans)
//     and thread registration (once per thread);
//   - no heap allocation per span: names and categories must be string
//     literals (the buffer stores the pointers), arguments are two
//     plain integers.
//
// Recording is process-global so the mining stages, the thread pool
// and the CLI need no plumbing: enable with SetEnabled(true), run,
// then ExportChromeJson(). Export is safe while recording continues
// (it reads each buffer up to its published span count), but the
// usual discipline is enable -> run -> disable -> export. Clear()
// must only be called while no thread is recording.

#ifndef FLIPPER_COMMON_TRACE_H_
#define FLIPPER_COMMON_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace flipper {
namespace trace {

/// One closed span. `name` and `cat` must point at string literals
/// (or otherwise outlive the trace buffer).
struct Span {
  const char* name = nullptr;
  const char* cat = nullptr;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  /// Argument payload, interpreted per `arg_kind`.
  int64_t arg0 = 0;
  int64_t arg1 = 0;
  enum class ArgKind : uint8_t {
    kNone,   // no args emitted
    kCell,   // arg0 = h, arg1 = k (cell coordinates)
    kWaitNs  // arg0 = submit->start queue latency in ns
  };
  ArgKind arg_kind = ArgKind::kNone;
};

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// Whether span sites record. The single check every disabled span
/// site pays.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Turns recording on/off. Returns the previous state. Enabling is
/// cheap; buffers persist across enable/disable cycles until Clear().
bool SetEnabled(bool enabled);

/// Monotonic nanoseconds since the process trace epoch.
uint64_t NowNanos();

/// Stable, small id of the calling thread (assigned on first use, in
/// registration order; the exporter uses it as the Chrome `tid`).
int CurrentThreadId();

/// Labels the calling thread in the exported trace ("driver",
/// "pool-worker", ...). Idempotent; last writer wins.
void SetThreadName(const char* name);

/// Appends one closed span to the calling thread's buffer. No-op when
/// disabled. `name`/`cat` must be string literals.
void RecordSpan(const Span& span);

/// Total spans currently recorded across all threads.
size_t SpanCount();

/// Drops all recorded spans (buffers stay registered and keep their
/// chunk storage). Only call while no thread is recording.
void Clear();

/// Writes every recorded span as Chrome trace-event JSON
/// ({"traceEvents": [...]}): one "X" (complete) event per span plus
/// one thread-name metadata event per thread, timestamps in
/// microseconds relative to the trace epoch, one event per line (the
/// structural validators rely on that). Safe to call with recording
/// still enabled; spans published after the call started may be
/// missed.
void ExportChromeJson(std::ostream& out);

/// Invokes `fn(tid, thread_name, span)` for every recorded span, in
/// per-thread recording order (threads in registration order). The
/// coverage checks and tests use this instead of re-parsing JSON.
void ForEachSpan(
    const std::function<void(int, const std::string&, const Span&)>& fn);

/// RAII span: captures the start time if tracing was enabled at
/// construction and records on destruction. Cheap to construct when
/// disabled (one relaxed load).
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat) {
    if (Enabled()) Arm(name, cat);
  }
  ScopedSpan(const char* name, const char* cat, int h, int k) {
    if (Enabled()) {
      Arm(name, cat);
      span_.arg_kind = Span::ArgKind::kCell;
      span_.arg0 = h;
      span_.arg1 = k;
    }
  }
  ~ScopedSpan() {
    if (span_.name != nullptr) {
      span_.dur_ns = NowNanos() - span_.start_ns;
      RecordSpan(span_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void Arm(const char* name, const char* cat) {
    span_.name = name;
    span_.cat = cat;
    span_.start_ns = NowNanos();
  }
  Span span_;
};

}  // namespace trace
}  // namespace flipper

// Span-site macros. `cat` conventions used by the mining pipeline:
//   "run"    the per-run root span ("mine");
//   "stage"  non-overlapping driver-thread stages (plan, count_wait,
//            evaluate, ...) — the coverage checks sum these;
//   "detail" nested refinements (trie_build, shard_merge, ...);
//   "task"   spans executing on pool workers (count_shard, ...);
//   "pool"   the thread pool's own task envelopes.
#define FLIPPER_TRACE_CONCAT_(a, b) a##b
#define FLIPPER_TRACE_CONCAT(a, b) FLIPPER_TRACE_CONCAT_(a, b)
#define FLIPPER_TRACE_SPAN(name, cat)                       \
  ::flipper::trace::ScopedSpan FLIPPER_TRACE_CONCAT(        \
      flipper_trace_span_, __LINE__)(name, cat)
#define FLIPPER_TRACE_SPAN_HK(name, cat, h, k)              \
  ::flipper::trace::ScopedSpan FLIPPER_TRACE_CONCAT(        \
      flipper_trace_span_, __LINE__)(name, cat, (h), (k))

#endif  // FLIPPER_COMMON_TRACE_H_
