#include "common/cancellation.h"

namespace flipper {

Status CancelToken::ToStatus() const {
  const bool explicit_cancel =
      cancelled_.load(std::memory_order_relaxed) ||
      (parent_ != nullptr && parent_->Fired());
  if (explicit_cancel) {
    return Status::Cancelled("cancelled: query abandoned");
  }
  if (has_deadline_ &&
      std::chrono::steady_clock::now() >= deadline_) {
    return Status::DeadlineExceeded("deadline_exceeded: query deadline passed");
  }
  return Status::OK();
}

}  // namespace flipper
