// Minimal leveled logger. Defaults to stderr; both the sink and the
// threshold are process-global and overridable (tests silence it).

#ifndef FLIPPER_COMMON_LOGGING_H_
#define FLIPPER_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace flipper {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

const char* LogLevelToString(LogLevel level);

/// Sets the minimum level that is emitted. Returns the previous level.
LogLevel SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Redirects log output. Pass nullptr to restore stderr.
void SetLogSink(std::ostream* sink);

namespace internal {

/// Stream-style message collector; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define FLIPPER_LOG(level)                                              \
  if (::flipper::LogLevel::k##level < ::flipper::GetLogLevel()) {       \
  } else                                                                \
    ::flipper::internal::LogMessage(::flipper::LogLevel::k##level,      \
                                    __FILE__, __LINE__)

/// Invariant check that is active in all build types.
#define FLIPPER_CHECK(cond)                                              \
  if (cond) {                                                            \
  } else                                                                 \
    ::flipper::internal::CheckFailure(#cond, __FILE__, __LINE__).stream()

namespace internal {

/// Aborts the process after streaming the failure context.
class CheckFailure {
 public:
  CheckFailure(const char* cond, const char* file, int line);
  [[noreturn]] ~CheckFailure();
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace flipper

#endif  // FLIPPER_COMMON_LOGGING_H_
