#include "common/arg_parser.h"

#include "common/string_util.h"

namespace flipper {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser& ArgParser::AddFlag(const std::string& name,
                              const std::string& help,
                              const std::string& value_hint) {
  specs_[name] = {help, value_hint, /*is_switch=*/false};
  return *this;
}

ArgParser& ArgParser::AddSwitch(const std::string& name,
                                const std::string& help) {
  specs_[name] = {help, "", /*is_switch=*/true};
  return *this;
}

ArgParser& ArgParser::AddPositional(const std::string& name,
                                    const std::string& help) {
  positional_names_.push_back(name);
  positional_help_[name] = help;
  return *this;
}

Status ArgParser::Parse(int argc, const char* const* argv) {
  size_t next_positional = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return Status::OK();
    }
    if (StartsWith(arg, "--")) {
      std::string name = arg.substr(2);
      std::string value;
      bool has_value = false;
      const size_t eq = name.find('=');
      if (eq != std::string::npos) {
        value = name.substr(eq + 1);
        name = name.substr(0, eq);
        has_value = true;
      }
      auto it = specs_.find(name);
      if (it == specs_.end()) {
        return Status::InvalidArgument("unknown flag --" + name);
      }
      if (it->second.is_switch) {
        if (has_value) {
          return Status::InvalidArgument("switch --" + name +
                                         " takes no value");
        }
        values_[name] = "true";
        continue;
      }
      if (!has_value) {
        if (i + 1 >= argc) {
          return Status::InvalidArgument("flag --" + name +
                                         " needs a value");
        }
        value = argv[++i];
      }
      values_[name] = value;
    } else {
      if (next_positional >= positional_names_.size()) {
        return Status::InvalidArgument("unexpected argument '" + arg +
                                       "'");
      }
      positionals_[positional_names_[next_positional++]] = arg;
    }
  }
  if (next_positional < positional_names_.size()) {
    return Status::InvalidArgument(
        "missing required argument <" +
        positional_names_[next_positional] + ">");
  }
  return Status::OK();
}

std::string ArgParser::HelpText() const {
  std::string out = program_;
  for (const std::string& p : positional_names_) out += " <" + p + ">";
  out += " [flags]\n\n" + description_ + "\n\n";
  if (!positional_names_.empty()) {
    out += "arguments:\n";
    for (const std::string& p : positional_names_) {
      out += "  <" + p + ">  " + positional_help_.at(p) + "\n";
    }
    out += "\n";
  }
  out += "flags:\n";
  for (const auto& [name, spec] : specs_) {
    out += "  --" + name;
    if (!spec.is_switch) out += "=" + spec.value_hint;
    out += "\n      " + spec.help + "\n";
  }
  out += "  --help\n      show this message\n";
  return out;
}

bool ArgParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string ArgParser::GetString(const std::string& name,
                                 const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

Result<int64_t> ArgParser::GetInt(const std::string& name,
                                  int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  auto parsed = ParseInt(it->second);
  if (!parsed.ok()) {
    return Status::InvalidArgument("flag --" + name +
                                   ": " + parsed.status().message());
  }
  return *parsed;
}

Result<double> ArgParser::GetDouble(const std::string& name,
                                    double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  auto parsed = ParseDouble(it->second);
  if (!parsed.ok()) {
    return Status::InvalidArgument("flag --" + name +
                                   ": " + parsed.status().message());
  }
  return *parsed;
}

bool ArgParser::GetSwitch(const std::string& name) const {
  return values_.count(name) > 0;
}

const std::string& ArgParser::GetPositional(
    const std::string& name) const {
  return positionals_.at(name);
}

}  // namespace flipper
