// Deterministic pseudo-random number generation for data generators and
// property tests. All generators are seeded explicitly; the library
// never consults global entropy, so every experiment is reproducible.

#ifndef FLIPPER_COMMON_RNG_H_
#define FLIPPER_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace flipper {

/// SplitMix64: used for seeding and as a cheap standalone generator.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256** — fast, high-quality 64-bit generator (Blackman/Vigna).
/// Satisfies UniformRandomBitGenerator, so it plugs into <random> too.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }
  result_type operator()() { return Next(); }

  uint64_t Next();

  /// Uniform in [0, bound). bound must be > 0. Uses rejection sampling
  /// (Lemire-style) to avoid modulo bias.
  uint64_t Below(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Poisson-distributed count with the given mean (Knuth for small
  /// means, normal approximation above 30).
  uint32_t Poisson(double mean);

  /// Exponential with the given rate lambda (> 0).
  double Exponential(double lambda);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(Below(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_[4];
};

/// Zipf(s) sampler over {0, ..., n-1} using the inverse-CDF table.
/// Rank 0 is the most probable element.
class ZipfDistribution {
 public:
  /// n >= 1; exponent s >= 0 (s == 0 degenerates to uniform).
  ZipfDistribution(uint32_t n, double exponent);

  uint32_t Sample(Rng* rng) const;

  uint32_t n() const { return n_; }
  double exponent() const { return exponent_; }

  /// Probability mass of a given rank.
  double Pmf(uint32_t rank) const;

 private:
  uint32_t n_;
  double exponent_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i)
};

}  // namespace flipper

#endif  // FLIPPER_COMMON_RNG_H_
