// Environment-variable helpers for the bench harness (e.g.
// FLIPPER_BENCH_SCALE scales workload sizes toward the paper's).

#ifndef FLIPPER_COMMON_ENV_H_
#define FLIPPER_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace flipper {

/// Returns the environment value or `fallback` when unset/invalid.
int64_t GetEnvInt(const char* name, int64_t fallback);
double GetEnvDouble(const char* name, double fallback);
std::string GetEnvString(const char* name, const std::string& fallback);

/// Bench scale factor (FLIPPER_BENCH_SCALE, default 1.0, clamped to
/// [0.05, 100]). 1.0 = container-friendly sizes; larger approaches the
/// paper's sizes.
double BenchScale();

/// FLIPPER_FORCE_PROBE_KERNEL: pins the candidate-trie packed probe
/// kernel ("avx2", "sse2", "portable" or "scalar") instead of the
/// cpuid auto-dispatch; empty = unset. An unknown or CPU-unsupported
/// name is a hard error at first dispatch — never a silent fallback.
std::string ForcedProbeKernel();

}  // namespace flipper

#endif  // FLIPPER_COMMON_ENV_H_
