// Byte accounting for candidate storage. The mining engine reports how
// much memory its candidate tables hold so that the paper's Figure 9(b)
// (memory consumption of naive flipping vs. full Flipper) can be
// regenerated deterministically, independent of allocator behaviour.

#ifndef FLIPPER_COMMON_MEMORY_TRACKER_H_
#define FLIPPER_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace flipper {

/// Thread-safe live/peak byte counter.
class MemoryTracker {
 public:
  MemoryTracker() = default;

  void Add(int64_t bytes) {
    int64_t live = live_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    // Racy max update is fine: peaks only ever grow.
    int64_t peak = peak_.load(std::memory_order_relaxed);
    while (live > peak &&
           !peak_.compare_exchange_weak(peak, live,
                                        std::memory_order_relaxed)) {
    }
  }

  void Sub(int64_t bytes) {
    live_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  int64_t live_bytes() const {
    return live_.load(std::memory_order_relaxed);
  }
  int64_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }

  void Reset() {
    live_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> live_{0};
  std::atomic<int64_t> peak_{0};
};

/// Process-wide tracker used by the mining engines.
MemoryTracker& GlobalCandidateMemory();

/// RAII registration of a block of tracked bytes.
class ScopedTrackedBytes {
 public:
  ScopedTrackedBytes(MemoryTracker* tracker, int64_t bytes)
      : tracker_(tracker), bytes_(bytes) {
    tracker_->Add(bytes_);
  }
  ~ScopedTrackedBytes() { tracker_->Sub(bytes_); }

  ScopedTrackedBytes(const ScopedTrackedBytes&) = delete;
  ScopedTrackedBytes& operator=(const ScopedTrackedBytes&) = delete;

 private:
  MemoryTracker* tracker_;
  int64_t bytes_;
};

/// Current resident-set size of the process in bytes (Linux /proc),
/// or 0 when unavailable. Used for coarse sanity output only; the
/// Figure-9(b) numbers come from MemoryTracker.
int64_t CurrentRssBytes();

/// High-water resident-set size of the process in bytes
/// (getrusage ru_maxrss), or 0 when unavailable. Monotone over the
/// process lifetime — bench cases record it per case so the trajectory
/// file tracks which workload first reached each plateau.
int64_t PeakRssBytes();

}  // namespace flipper

#endif  // FLIPPER_COMMON_MEMORY_TRACKER_H_
