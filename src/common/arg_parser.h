// Small command-line flag parser for the tools: --name=value and
// --name value forms, typed accessors with defaults, positional
// arguments, generated --help text.

#ifndef FLIPPER_COMMON_ARG_PARSER_H_
#define FLIPPER_COMMON_ARG_PARSER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace flipper {

class ArgParser {
 public:
  /// `program` and `description` feed the --help text.
  ArgParser(std::string program, std::string description);

  /// Declares a flag. Call before Parse(). `value_hint` renders in the
  /// help text (e.g. "PATH", "FLOAT").
  ArgParser& AddFlag(const std::string& name, const std::string& help,
                     const std::string& value_hint = "VALUE");
  /// Declares a boolean switch (no value; presence = true).
  ArgParser& AddSwitch(const std::string& name, const std::string& help);
  /// Declares a required positional argument.
  ArgParser& AddPositional(const std::string& name,
                           const std::string& help);

  /// Parses argv. Fails on unknown flags, missing values, or missing
  /// positionals. On "--help" returns OK with help_requested() set.
  Status Parse(int argc, const char* const* argv);

  bool help_requested() const { return help_requested_; }
  std::string HelpText() const;

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  Result<int64_t> GetInt(const std::string& name, int64_t fallback) const;
  Result<double> GetDouble(const std::string& name,
                           double fallback) const;
  bool GetSwitch(const std::string& name) const;
  const std::string& GetPositional(const std::string& name) const;

 private:
  struct FlagSpec {
    std::string help;
    std::string value_hint;
    bool is_switch = false;
  };
  std::string program_;
  std::string description_;
  std::map<std::string, FlagSpec> specs_;          // by flag name
  std::vector<std::string> positional_names_;
  std::map<std::string, std::string> positional_help_;
  std::map<std::string, std::string> values_;
  std::map<std::string, std::string> positionals_;
  bool help_requested_ = false;
};

}  // namespace flipper

#endif  // FLIPPER_COMMON_ARG_PARSER_H_
