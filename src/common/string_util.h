// Small string helpers used by I/O, table printing and the bench
// harness.

#ifndef FLIPPER_COMMON_STRING_UTIL_H_
#define FLIPPER_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace flipper {

/// Splits on a single character; empty fields are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on any run of ASCII whitespace; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strict parsers: the whole trimmed token must be consumed.
Result<int64_t> ParseInt(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// Formats a double with fixed precision (printf "%.*f").
std::string FormatDouble(double v, int precision);

/// Human-readable byte count ("1.5 MiB").
std::string FormatBytes(int64_t bytes);

/// Thousands-separated integer ("1,234,567").
std::string FormatCount(int64_t n);

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& s);

}  // namespace flipper

#endif  // FLIPPER_COMMON_STRING_UTIL_H_
