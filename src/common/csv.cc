#include "common/csv.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>

namespace flipper {

LineScanner::LineScanner(std::istream& in, size_t block_bytes)
    : in_(in), buffer_(std::max<size_t>(block_bytes, 64), '\0') {}

bool LineScanner::Refill() {
  if (eof_ || bad_) return false;
  // Keep the unconsumed tail (a partial line) at the front.
  const size_t tail = end_ - pos_;
  if (tail > 0 && pos_ > 0) {
    std::copy(buffer_.begin() + static_cast<ptrdiff_t>(pos_),
              buffer_.begin() + static_cast<ptrdiff_t>(end_),
              buffer_.begin());
  }
  pos_ = 0;
  end_ = tail;
  if (end_ == buffer_.size()) {
    // A single line longer than the buffer: grow so it can complete.
    buffer_.resize(buffer_.size() * 2);
  }
  in_.read(buffer_.data() + end_,
           static_cast<std::streamsize>(buffer_.size() - end_));
  const auto got = static_cast<size_t>(in_.gcount());
  end_ += got;
  if (in_.bad()) bad_ = true;
  if (in_.eof()) eof_ = true;
  return got > 0;
}

bool LineScanner::Next(std::string_view* line) {
  while (true) {
    const char* begin = buffer_.data() + pos_;
    const auto* nl = static_cast<const char*>(
        memchr(begin, '\n', end_ - pos_));
    if (nl != nullptr) {
      *line = std::string_view(begin, static_cast<size_t>(nl - begin));
      pos_ = static_cast<size_t>(nl - buffer_.data()) + 1;
      return true;
    }
    if (!Refill()) {
      // Refill compacted the buffer; recompute the view.
      if (bad_ || pos_ == end_) return false;
      // Final line without a trailing newline.
      *line = std::string_view(buffer_.data() + pos_, end_ - pos_);
      pos_ = end_;
      return true;
    }
  }
}

namespace {

std::string EscapeField(const std::string& f) {
  bool needs_quotes = f.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return f;
  std::string out = "\"";
  for (char c : f) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string CsvWriter::ToString() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += EscapeField(row[i]);
    }
    out.push_back('\n');
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return out;
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IoError("cannot open for writing: " + path);
  f << ToString();
  if (!f) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace flipper
