#include "common/csv.h"

#include <fstream>

namespace flipper {
namespace {

std::string EscapeField(const std::string& f) {
  bool needs_quotes = f.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return f;
  std::string out = "\"";
  for (char c : f) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string CsvWriter::ToString() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += EscapeField(row[i]);
    }
    out.push_back('\n');
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return out;
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IoError("cannot open for writing: " + path);
  f << ToString();
  if (!f) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace flipper
