// Cooperative cancellation for long-running mining work.
//
// A CancelToken combines an explicit cancel flag (set by a watcher
// thread, e.g. on client disconnect or daemon drain) with an optional
// steady-clock deadline. Work loops poll Fired() at segment/batch
// granularity; an un-fired token is a single relaxed atomic load (plus
// one clock read when a deadline is set), so plumbing a token through
// a run is byte-identity-preserving and near-free. A fired token makes
// the pipeline unwind through the normal error path: futures are
// joined, pooled scratch returns to its pool, and the caller sees
// Status::DeadlineExceeded or Status::Cancelled.
//
// Thread-safety: SetDeadline()/ChainTo() configure the token and must
// happen-before the token is shared with workers (they write plain
// fields). Cancel() and Fired() are safe from any thread at any time.

#ifndef FLIPPER_COMMON_CANCELLATION_H_
#define FLIPPER_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace flipper {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Fires the token explicitly. Idempotent; safe from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms the deadline. Call before sharing the token with workers.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  void SetDeadlineAfterMs(int64_t ms) {
    SetDeadline(std::chrono::steady_clock::now() +
                std::chrono::milliseconds(ms));
  }

  /// Links this token to a parent: this token fires whenever the
  /// parent does (used for daemon-wide drain). Call before sharing.
  void ChainTo(const CancelToken* parent) { parent_ = parent; }

  bool has_deadline() const { return has_deadline_; }
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }

  /// True once the token has been cancelled (directly or via a parent)
  /// or its deadline has passed. Cheap enough for inner scan loops.
  bool Fired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (parent_ != nullptr && parent_->Fired()) return true;
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  /// OK while un-fired; Cancelled for an explicit cancel,
  /// DeadlineExceeded when only the deadline has passed.
  Status ToStatus() const;

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  const CancelToken* parent_ = nullptr;
};

}  // namespace flipper

#endif  // FLIPPER_COMMON_CANCELLATION_H_
