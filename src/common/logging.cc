#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace flipper {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<std::ostream*> g_log_sink{nullptr};
std::mutex g_log_mutex;

std::ostream& Sink() {
  std::ostream* s = g_log_sink.load(std::memory_order_acquire);
  return s != nullptr ? *s : std::cerr;
}

}  // namespace

const char* LogLevelToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

LogLevel SetLogLevel(LogLevel level) {
  return static_cast<LogLevel>(
      g_log_level.exchange(static_cast<int>(level)));
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogSink(std::ostream* sink) {
  g_log_sink.store(sink, std::memory_order_release);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LogLevelToString(level_) << " " << base << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  Sink() << stream_.str() << "\n";
}

CheckFailure::CheckFailure(const char* cond, const char* file, int line) {
  stream_ << "CHECK failed at " << file << ":" << line << ": " << cond
          << " ";
}

CheckFailure::~CheckFailure() {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    Sink() << stream_.str() << std::endl;
  }
  std::abort();
}

}  // namespace internal
}  // namespace flipper
