#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <mutex>
#include <thread>

namespace flipper {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<std::ostream*> g_log_sink{nullptr};
std::mutex g_log_mutex;

std::ostream& Sink() {
  std::ostream* s = g_log_sink.load(std::memory_order_acquire);
  return s != nullptr ? *s : std::cerr;
}

/// ISO-8601 UTC wall time with millisecond precision, e.g.
/// "2026-08-08T14:03:09.123Z".
void AppendTimestamp(std::ostream& out) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm_utc{};
#if defined(_WIN32)
  gmtime_s(&tm_utc, &secs);
#else
  gmtime_r(&secs, &tm_utc);
#endif
  char buf[64];
  std::snprintf(buf, sizeof(buf),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec,
                static_cast<int>(ms));
  out << buf;
}

/// Small per-process thread id (registration order), so log lines are
/// grep-able without 16-hex-digit native ids.
int LogThreadId() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

const char* LogLevelToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

LogLevel SetLogLevel(LogLevel level) {
  return static_cast<LogLevel>(
      g_log_level.exchange(static_cast<int>(level)));
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogSink(std::ostream* sink) {
  g_log_sink.store(sink, std::memory_order_release);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[";
  AppendTimestamp(stream_);
  stream_ << " " << LogLevelToString(level_) << " T" << LogThreadId()
          << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  // The newline joins the message before the single sink write:
  // concurrent writers (even through sinks that ignore g_log_mutex)
  // then cannot interleave a partial line.
  stream_ << "\n";
  std::lock_guard<std::mutex> lock(g_log_mutex);
  Sink() << stream_.str();
}

CheckFailure::CheckFailure(const char* cond, const char* file, int line) {
  stream_ << "CHECK failed at " << file << ":" << line << ": " << cond
          << " ";
}

CheckFailure::~CheckFailure() {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    Sink() << stream_.str() << std::endl;
  }
  std::abort();
}

}  // namespace internal
}  // namespace flipper
