// Exponential backoff with full jitter, shared by every client-side
// retry loop (Client::ConnectWithRetry, the query/loadgen CLI retry
// policy). Jitter decorrelates a herd of clients hammering a daemon
// that just answered "overloaded": each delay is drawn uniformly from
// [base/2, base] where base doubles per attempt up to a cap.
//
// The sequence is driven by the project's deterministic Rng; callers
// pick the seed, so tests can replay a retry schedule exactly.

#ifndef FLIPPER_COMMON_BACKOFF_H_
#define FLIPPER_COMMON_BACKOFF_H_

#include <cstdint>

#include "common/rng.h"

namespace flipper {

class JitteredBackoff {
 public:
  struct Options {
    int initial_ms = 10;    // base delay of the first retry
    int max_ms = 1000;      // cap on the (pre-jitter) base delay
    double multiplier = 2.0;
  };

  JitteredBackoff(uint64_t seed, Options options)
      : rng_(seed), options_(options), base_ms_(options.initial_ms) {}
  explicit JitteredBackoff(uint64_t seed)
      : JitteredBackoff(seed, Options{}) {}

  /// Delay before the next attempt, in milliseconds: uniform in
  /// [base/2, base], then base <- min(base * multiplier, max).
  int NextDelayMs() {
    const int base = base_ms_;
    const int lo = base / 2;
    const int delay =
        lo + static_cast<int>(rng_.Below(static_cast<uint64_t>(base - lo + 1)));
    double next = static_cast<double>(base_ms_) * options_.multiplier;
    if (next > options_.max_ms) next = options_.max_ms;
    base_ms_ = static_cast<int>(next);
    return delay;
  }

  /// Resets the schedule to the first-attempt delay.
  void Reset() { base_ms_ = options_.initial_ms; }

 private:
  Rng rng_;
  Options options_;
  int base_ms_;
};

}  // namespace flipper

#endif  // FLIPPER_COMMON_BACKOFF_H_
