// ThreadPool: a fixed-size worker pool plus a ParallelFor helper with
// deterministic static range-sharding. The counting engines shard work
// so that every shard writes into private state and shards are reduced
// in shard-index order, which keeps results bit-identical to the serial
// path regardless of thread count.

#ifndef FLIPPER_COMMON_THREAD_POOL_H_
#define FLIPPER_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace flipper {

namespace trace {
class Session;
}  // namespace trace

/// Observes every task the pool runs: `queue_ns` is the submit→start
/// latency, `run_ns` the task's execution time. Implementations must
/// be thread-safe (workers call concurrently) and must not call back
/// into the pool. MetricsRegistry (core/pipeline_metrics.h) is the
/// production implementation; the interface lives here so common/
/// needs no dependency on core/.
class PoolTaskObserver {
 public:
  virtual ~PoolTaskObserver() = default;
  virtual void OnPoolTask(uint64_t queue_ns, uint64_t run_ns) = 0;
};

class ThreadPool {
 public:
  /// Maps a requested thread count to an effective one: 0 means "all
  /// hardware threads", anything else is clamped to >= 1.
  static int ResolveThreadCount(int requested);

  /// Starts `ResolveThreadCount(num_threads) - 1` workers; the calling
  /// thread is the remaining executor (a 1-thread pool spawns nothing
  /// and runs every task inline).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Effective parallelism (workers + the calling thread).
  int num_threads() const { return num_threads_; }

  /// Enqueues one task. Pair with Wait(); tasks must not themselves
  /// call Submit/Wait on the same pool.
  void Submit(std::function<void()> fn);

  /// Runs queued tasks on the calling thread until the queue drains and
  /// every in-flight task has finished. Rethrows the first exception
  /// any task raised.
  void Wait();

  /// Completion handle for one batch of tasks enqueued with
  /// SubmitBatch. Copyable; all copies refer to the same batch.
  class Completion {
   public:
    /// A default handle is already complete (no batch attached).
    Completion() = default;

    /// Blocks until every task of the batch has finished. The calling
    /// thread helps run queued pool tasks while it waits, so joining
    /// is safe (and required) even on a 1-thread pool, whose batches
    /// only run here. Rethrows the first exception a batch task
    /// raised, once across all copies of the handle.
    void Wait();

   private:
    friend class ThreadPool;
    struct State;
    ThreadPool* pool_ = nullptr;
    std::shared_ptr<State> state_;
  };

  /// Enqueues `tasks` as one batch whose completion can be awaited
  /// independently of the rest of the queue. Unlike Submit/Wait,
  /// exceptions surface through the returned handle, not Wait().
  /// Overlapping batches are allowed; each joins only its own tasks.
  Completion SubmitBatch(std::vector<std::function<void()>> tasks);

  /// Attaches/detaches a task observer. Must be called while no task
  /// is queued or in flight (typically right after construction /
  /// right before destruction); the pool's queue mutex publishes the
  /// pointer to workers. Pass nullptr to detach.
  void set_observer(PoolTaskObserver* observer);

 private:
  /// A queued task plus its submit timestamp (trace::NowNanos clock;
  /// 0 when neither tracing nor an observer needs timing) and the
  /// submitter's trace session, re-attached around execution so a
  /// task's spans land in the query that submitted it even when
  /// several queries share the pool. The session must outlive the
  /// task (guaranteed by the submitter joining via Wait/Completion
  /// before its session dies).
  struct Task {
    std::function<void()> fn;
    uint64_t submit_ns = 0;
    trace::Session* session = nullptr;
  };

  void WorkerLoop();
  /// Pops and runs one task; returns false if the queue was empty.
  bool RunOneTask(std::unique_lock<std::mutex>* lock);

  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_ready_;   // workers wait here
  std::condition_variable batch_done_;   // Wait() waits here
  std::deque<Task> queue_;
  PoolTaskObserver* observer_ = nullptr;
  int in_flight_ = 0;
  std::exception_ptr first_error_;
  bool shutdown_ = false;
};

/// Number of shards for `total_items` work items: one per pool thread,
/// reduced so every shard keeps at least `min_items_per_shard` (below
/// that, per-shard buffer and merge overhead beats the parallelism).
int ShardCount(size_t total_items, const ThreadPool* pool,
               size_t min_items_per_shard);

/// Deterministic static sharding: splits [begin, end) into `num_shards`
/// contiguous ranges whose sizes differ by at most one. Returns the
/// half-open range of shard `shard` (empty ranges are possible when
/// there are more shards than elements).
std::pair<size_t, size_t> ShardRange(size_t begin, size_t end,
                                     int num_shards, int shard);

/// Invokes `fn(shard, lo, hi)` for every non-empty shard of
/// [begin, end), distributing shards over `pool` and blocking until all
/// complete. A null pool or a 1-thread pool runs the shards inline on
/// the calling thread, in shard order.
void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 int num_shards,
                 const std::function<void(int, size_t, size_t)>& fn);

}  // namespace flipper

#endif  // FLIPPER_COMMON_THREAD_POOL_H_
