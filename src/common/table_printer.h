// Fixed-width text tables for the bench harness: each bench prints the
// same rows/series the paper's tables and figures report.

#ifndef FLIPPER_COMMON_TABLE_PRINTER_H_
#define FLIPPER_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace flipper {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds a row. Rows shorter than the header are right-padded with "".
  void AddRow(std::vector<std::string> row);

  /// Renders to `os` with a rule under the header.
  void Print(std::ostream& os) const;

  /// Renders to a string.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace flipper

#endif  // FLIPPER_COMMON_TABLE_PRINTER_H_
