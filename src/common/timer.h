// Wall-clock timing helpers used by the mining engine and the bench
// harness.

#ifndef FLIPPER_COMMON_TIMER_H_
#define FLIPPER_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace flipper {

/// Monotonic stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in whole milliseconds.
  int64_t ElapsedMillis() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now() - start_)
        .count();
  }

  /// Elapsed time in whole microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed seconds into a caller-owned double on scope exit.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* accumulator) : accumulator_(accumulator) {}
  ~ScopedTimer() { *accumulator_ += timer_.ElapsedSeconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* accumulator_;
  WallTimer timer_;
};

}  // namespace flipper

#endif  // FLIPPER_COMMON_TIMER_H_
