#include "common/trace.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace flipper {
namespace trace {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

constexpr size_t kChunkSpans = 4096;

// Per-thread span storage. Appends happen only from the owning thread;
// `count_` is the publication point: the owner release-stores it after
// writing a span, readers acquire-load it and may then read the first
// `count_` spans. Chunks are never reallocated (the chunk vector holds
// unique_ptrs to fixed arrays), so published spans stay at stable
// addresses. `mu_` guards the chunk vector's growth and Clear()
// against concurrent export walks.
class ThreadBuffer {
 public:
  explicit ThreadBuffer(int tid) : tid_(tid) {}

  void Append(const Span& span) {
    size_t n = count_.load(std::memory_order_relaxed);
    size_t chunk = n / kChunkSpans;
    if (chunk >= num_chunks_) {
      std::lock_guard<std::mutex> lock(mu_);
      chunks_.push_back(std::make_unique<Span[]>(kChunkSpans));
      num_chunks_ = chunks_.size();
    }
    chunks_[chunk][n % kChunkSpans] = span;
    count_.store(n + 1, std::memory_order_release);
  }

  void SetName(const char* name) {
    std::lock_guard<std::mutex> lock(mu_);
    name_ = name;
  }

  // Owner-thread only. Allocating (and zeroing) the first ~200KB chunk
  // lazily would land between the first two spans and show up as an
  // untraced gap; naming a thread is the natural point to pay it.
  void Prewarm() {
    if (num_chunks_ > 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    chunks_.push_back(std::make_unique<Span[]>(kChunkSpans));
    num_chunks_ = chunks_.size();
  }

  int tid() const { return tid_; }

  size_t Count() const { return count_.load(std::memory_order_acquire); }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    size_t n = Count();
    std::string name;
    {
      std::lock_guard<std::mutex> lock(mu_);
      name = name_;
    }
    for (size_t i = 0; i < n; ++i) {
      // Chunk pointers are stable once published; reading under the
      // lock each iteration would serialize exports for no benefit.
      fn(tid_, name, chunks_[i / kChunkSpans][i % kChunkSpans]);
    }
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    count_.store(0, std::memory_order_release);
  }

 private:
  const int tid_;
  mutable std::mutex mu_;
  std::string name_;
  std::vector<std::unique_ptr<Span[]>> chunks_;
  // Owner-thread cache of chunks_.size(); only the owner appends, so
  // no other thread ever grows the vector.
  size_t num_chunks_ = 0;
  std::atomic<size_t> count_{0};
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives TLS dtors
  return *registry;
}

std::shared_ptr<ThreadBuffer> RegisterThread() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto buf = std::make_shared<ThreadBuffer>(static_cast<int>(reg.buffers.size()));
  reg.buffers.push_back(buf);
  return buf;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = RegisterThread();
  return *buffer;
}

std::chrono::steady_clock::time_point Epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

void AppendJsonEscaped(std::ostream& out, const char* s) {
  for (; *s; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << ' ';
    } else {
      out << c;
    }
  }
}

}  // namespace

bool SetEnabled(bool enabled) {
  if (enabled) Epoch();  // pin the epoch before the first span
  return internal::g_enabled.exchange(enabled, std::memory_order_relaxed);
}

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Epoch())
          .count());
}

int CurrentThreadId() { return LocalBuffer().tid(); }

void SetThreadName(const char* name) {
  ThreadBuffer& buf = LocalBuffer();
  buf.SetName(name);
  buf.Prewarm();
}

void RecordSpan(const Span& span) {
  if (!Enabled()) return;
  LocalBuffer().Append(span);
}

size_t SpanCount() {
  Registry& reg = GetRegistry();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    buffers = reg.buffers;
  }
  size_t total = 0;
  for (const auto& buf : buffers) total += buf->Count();
  return total;
}

void Clear() {
  Registry& reg = GetRegistry();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    buffers = reg.buffers;
  }
  for (const auto& buf : buffers) buf->Clear();
}

void ForEachSpan(
    const std::function<void(int, const std::string&, const Span&)>& fn) {
  Registry& reg = GetRegistry();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    buffers = reg.buffers;
  }
  for (const auto& buf : buffers) buf->ForEach(fn);
}

void ExportChromeJson(std::ostream& out) {
  out << "{\"traceEvents\":[\n";
  bool first = true;
  Registry& reg = GetRegistry();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    buffers = reg.buffers;
  }
  // Thread-name metadata events first, then one complete ("X") event
  // per span. One event per line: downstream structural checks parse
  // line-by-line instead of needing a JSON parser.
  for (const auto& buf : buffers) {
    bool named = false;
    buf->ForEach([&](int tid, const std::string& name, const Span&) {
      if (named) return;
      named = true;
      if (!first) out << ",\n";
      first = false;
      out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
          << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
      AppendJsonEscaped(out, name.empty() ? "thread" : name.c_str());
      out << "\"}}";
    });
  }
  for (const auto& buf : buffers) {
    buf->ForEach([&](int tid, const std::string&, const Span& span) {
      if (!first) out << ",\n";
      first = false;
      out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tid << ",\"name\":\"";
      AppendJsonEscaped(out, span.name);
      out << "\",\"cat\":\"";
      AppendJsonEscaped(out, span.cat);
      // Chrome-trace timestamps are microseconds; keep sub-us tails by
      // rendering three decimal places.
      uint64_t ts_int = span.start_ns / 1000;
      uint64_t ts_frac = span.start_ns % 1000;
      uint64_t dur_int = span.dur_ns / 1000;
      uint64_t dur_frac = span.dur_ns % 1000;
      char frac[8];
      std::snprintf(frac, sizeof(frac), "%03llu",
                    static_cast<unsigned long long>(ts_frac));
      out << "\",\"ts\":" << ts_int << "." << frac;
      std::snprintf(frac, sizeof(frac), "%03llu",
                    static_cast<unsigned long long>(dur_frac));
      out << ",\"dur\":" << dur_int << "." << frac;
      switch (span.arg_kind) {
        case Span::ArgKind::kCell:
          out << ",\"args\":{\"h\":" << span.arg0 << ",\"k\":" << span.arg1
              << "}";
          break;
        case Span::ArgKind::kWaitNs:
          out << ",\"args\":{\"queue_wait_us\":" << (span.arg0 / 1000) << "}";
          break;
        case Span::ArgKind::kNone:
          break;
      }
      out << "}";
    });
  }
  out << "\n]}\n";
}

}  // namespace trace
}  // namespace flipper
