#include "common/trace.h"

#include <chrono>
#include <cstdio>

namespace flipper {
namespace trace {

namespace internal {

std::atomic<bool> g_default_enabled{false};

constexpr size_t kChunkSpans = 4096;

// Per-thread span storage. Appends happen only from the owning thread;
// `count_` is the publication point: the owner release-stores it after
// writing a span, readers acquire-load it and may then read the first
// `count_` spans. Chunks are never reallocated (the chunk vector holds
// unique_ptrs to fixed arrays), so published spans stay at stable
// addresses. `mu_` guards the chunk vector's growth and Clear()
// against concurrent export walks.
class ThreadBuffer {
 public:
  ThreadBuffer(int tid, int owner_key) : tid_(tid), owner_key_(owner_key) {}

  void Append(const Span& span) {
    size_t n = count_.load(std::memory_order_relaxed);
    size_t chunk = n / kChunkSpans;
    if (chunk >= num_chunks_) {
      std::lock_guard<std::mutex> lock(mu_);
      chunks_.push_back(std::make_unique<Span[]>(kChunkSpans));
      num_chunks_ = chunks_.size();
    }
    chunks_[chunk][n % kChunkSpans] = span;
    count_.store(n + 1, std::memory_order_release);
  }

  void SetName(const char* name) {
    std::lock_guard<std::mutex> lock(mu_);
    name_ = name;
  }

  // Owner-thread only. Allocating (and zeroing) the first ~200KB chunk
  // lazily would land between the first two spans and show up as an
  // untraced gap; naming a thread is the natural point to pay it.
  void Prewarm() {
    if (num_chunks_ > 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    chunks_.push_back(std::make_unique<Span[]>(kChunkSpans));
    num_chunks_ = chunks_.size();
  }

  int tid() const { return tid_; }
  int owner_key() const { return owner_key_; }

  size_t Count() const { return count_.load(std::memory_order_acquire); }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    size_t n = Count();
    std::string name;
    // The chunk arrays themselves never move, but the pointer table
    // (chunks_) reallocates when the owner appends past it — snapshot
    // the raw chunk pointers under the lock, then walk lock-free. The
    // acquire on count_ guarantees the chunks holding the first n
    // spans are already in the table.
    std::vector<const Span*> chunks;
    {
      std::lock_guard<std::mutex> lock(mu_);
      name = name_;
      size_t want = (n + kChunkSpans - 1) / kChunkSpans;
      chunks.reserve(want);
      for (size_t i = 0; i < want; ++i) chunks.push_back(chunks_[i].get());
    }
    for (size_t i = 0; i < n; ++i) {
      fn(tid_, name, chunks[i / kChunkSpans][i % kChunkSpans]);
    }
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    count_.store(0, std::memory_order_release);
  }

 private:
  const int tid_;
  // Process-wide id of the owning thread; sessions find a thread's
  // existing buffer by it when the thread re-attaches.
  const int owner_key_;
  mutable std::mutex mu_;
  std::string name_;
  std::vector<std::unique_ptr<Span[]>> chunks_;
  // Owner-thread cache of chunks_.size(); only the owner appends, so
  // no other thread ever grows the vector.
  size_t num_chunks_ = 0;
  std::atomic<size_t> count_{0};
};

}  // namespace internal

namespace {

using internal::ThreadBuffer;

// One-entry per-thread cache of the buffer lookup: valid only while
// the cached session id matches, so a destroyed session (whose id
// never recurs) can never be dereferenced through a stale entry.
thread_local uint64_t t_cached_session_id = 0;
thread_local ThreadBuffer* t_cached_buffer = nullptr;
// Sticky per-thread display name, applied whenever this thread
// registers with a session.
thread_local const char* t_thread_name = nullptr;

uint64_t NextSessionId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Small process-wide per-thread id, used only as the buffer ownership
// key (the exported tid is per-session registration order instead, so
// traces stay stable run-to-run).
int ThisThreadKey() {
  static std::atomic<int> next{0};
  thread_local const int key = next.fetch_add(1, std::memory_order_relaxed);
  return key;
}

std::chrono::steady_clock::time_point Epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

void AppendJsonEscaped(std::ostream& out, const char* s) {
  for (; *s; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << ' ';
    } else {
      out << c;
    }
  }
}

}  // namespace

Session::Session() : id_(NextSessionId()) {}

Session::~Session() = default;

bool Session::SetEnabled(bool enabled) {
  if (enabled) Epoch();  // pin the epoch before the first span
  bool prev = enabled_.exchange(enabled, std::memory_order_relaxed);
  if (this == &DefaultSession()) {
    internal::g_default_enabled.store(enabled, std::memory_order_relaxed);
  }
  return prev;
}

internal::ThreadBuffer* Session::BufferForThisThread() {
  if (t_cached_session_id == id_) return t_cached_buffer;
  const int key = ThisThreadKey();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    if (buf->owner_key() == key) {
      t_cached_session_id = id_;
      t_cached_buffer = buf.get();
      return buf.get();
    }
  }
  auto buf = std::make_shared<ThreadBuffer>(
      static_cast<int>(buffers_.size()), key);
  if (t_thread_name != nullptr) buf->SetName(t_thread_name);
  buffers_.push_back(buf);
  t_cached_session_id = id_;
  t_cached_buffer = buf.get();
  return buf.get();
}

std::vector<std::shared_ptr<internal::ThreadBuffer>>
Session::SnapshotBuffers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffers_;
}

void Session::Append(const Span& span) {
  BufferForThisThread()->Append(span);
}

void Session::RegisterThread(const char* name) {
  if (name != nullptr) t_thread_name = name;
  ThreadBuffer* buf = BufferForThisThread();
  if (name != nullptr) buf->SetName(name);
  buf->Prewarm();
}

int Session::ThreadId() { return BufferForThisThread()->tid(); }

void Session::RenameThreadIfRegistered(const char* name) {
  if (t_cached_session_id == id_ && t_cached_buffer != nullptr) {
    t_cached_buffer->SetName(name);
    return;
  }
  const int key = ThisThreadKey();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    if (buf->owner_key() == key) {
      buf->SetName(name);
      return;
    }
  }
}

size_t Session::SpanCount() const {
  size_t total = 0;
  for (const auto& buf : SnapshotBuffers()) total += buf->Count();
  return total;
}

void Session::Clear() {
  for (const auto& buf : SnapshotBuffers()) buf->Clear();
}

void Session::ForEachSpan(
    const std::function<void(int, const std::string&, const Span&)>& fn)
    const {
  for (const auto& buf : SnapshotBuffers()) buf->ForEach(fn);
}

void Session::ExportChromeJson(std::ostream& out) const {
  out << "{\"traceEvents\":[\n";
  bool first = true;
  auto buffers = SnapshotBuffers();
  // Thread-name metadata events first, then one complete ("X") event
  // per span. One event per line: downstream structural checks parse
  // line-by-line instead of needing a JSON parser.
  for (const auto& buf : buffers) {
    bool named = false;
    buf->ForEach([&](int tid, const std::string& name, const Span&) {
      if (named) return;
      named = true;
      if (!first) out << ",\n";
      first = false;
      out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
          << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
      AppendJsonEscaped(out, name.empty() ? "thread" : name.c_str());
      out << "\"}}";
    });
  }
  for (const auto& buf : buffers) {
    buf->ForEach([&](int tid, const std::string&, const Span& span) {
      if (!first) out << ",\n";
      first = false;
      out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tid << ",\"name\":\"";
      AppendJsonEscaped(out, span.name);
      out << "\",\"cat\":\"";
      AppendJsonEscaped(out, span.cat);
      // Chrome-trace timestamps are microseconds; keep sub-us tails by
      // rendering three decimal places.
      uint64_t ts_int = span.start_ns / 1000;
      uint64_t ts_frac = span.start_ns % 1000;
      uint64_t dur_int = span.dur_ns / 1000;
      uint64_t dur_frac = span.dur_ns % 1000;
      char frac[8];
      std::snprintf(frac, sizeof(frac), "%03llu",
                    static_cast<unsigned long long>(ts_frac));
      out << "\",\"ts\":" << ts_int << "." << frac;
      std::snprintf(frac, sizeof(frac), "%03llu",
                    static_cast<unsigned long long>(dur_frac));
      out << ",\"dur\":" << dur_int << "." << frac;
      switch (span.arg_kind) {
        case Span::ArgKind::kCell:
          out << ",\"args\":{\"h\":" << span.arg0 << ",\"k\":" << span.arg1
              << "}";
          break;
        case Span::ArgKind::kWaitNs:
          out << ",\"args\":{\"queue_wait_us\":" << (span.arg0 / 1000) << "}";
          break;
        case Span::ArgKind::kNone:
          break;
      }
      out << "}";
    });
  }
  out << "\n]}\n";
}

Session& DefaultSession() {
  static Session* session = new Session();  // leaked: outlives TLS dtors
  return *session;
}

Session* CurrentSession() {
  Session* s = internal::g_current;
  return s != nullptr ? s : &DefaultSession();
}

bool SetEnabled(bool enabled) { return DefaultSession().SetEnabled(enabled); }

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Epoch())
          .count());
}

int CurrentThreadId() { return CurrentSession()->ThreadId(); }

void SetThreadName(const char* name) {
  t_thread_name = name;
  Session* s = CurrentSession();
  if (s->enabled()) {
    // Register (and prewarm) eagerly so the allocation doesn't land
    // between this thread's first two spans.
    s->RegisterThread(name);
  } else {
    // Disabled: rename an already-registered buffer but don't grow the
    // session's registry for a thread that may never record.
    s->RenameThreadIfRegistered(name);
  }
}

void RecordSpan(const Span& span) {
  if (!Enabled()) return;
  CurrentSession()->Append(span);
}

size_t SpanCount() { return CurrentSession()->SpanCount(); }

void Clear() { CurrentSession()->Clear(); }

void ForEachSpan(
    const std::function<void(int, const std::string&, const Span&)>& fn) {
  CurrentSession()->ForEachSpan(fn);
}

void ExportChromeJson(std::ostream& out) {
  CurrentSession()->ExportChromeJson(out);
}

}  // namespace trace
}  // namespace flipper
