#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace flipper {
namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) s = sm.Next();
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Below(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling on the top of the range to remove modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Below(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint32_t Rng::Poisson(double mean) {
  assert(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplicative method.
    const double limit = std::exp(-mean);
    double prod = NextDouble();
    uint32_t n = 0;
    while (prod > limit) {
      ++n;
      prod *= NextDouble();
    }
    return n;
  }
  // Normal approximation with continuity correction.
  double v = mean + std::sqrt(mean) * Gaussian() + 0.5;
  if (v < 0.0) return 0;
  return static_cast<uint32_t>(v);
}

double Rng::Exponential(double lambda) {
  assert(lambda > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::Gaussian() {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

ZipfDistribution::ZipfDistribution(uint32_t n, double exponent)
    : n_(n), exponent_(exponent), cdf_(n) {
  assert(n >= 1);
  double total = 0.0;
  for (uint32_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = total;
  }
  for (uint32_t i = 0; i < n; ++i) cdf_[i] /= total;
  cdf_[n - 1] = 1.0;  // guard against FP drift
}

uint32_t ZipfDistribution::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint32_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(uint32_t rank) const {
  assert(rank < n_);
  const double lo = rank == 0 ? 0.0 : cdf_[rank - 1];
  return cdf_[rank] - lo;
}

}  // namespace flipper
