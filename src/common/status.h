// Status / Result<T>: exception-free error propagation for libflipper.
//
// Library code never throws; fallible operations return Status (or
// Result<T> when they also produce a value). The style follows
// absl::Status / arrow::Result conventions scaled down to what this
// project needs.

#ifndef FLIPPER_COMMON_STATUS_H_
#define FLIPPER_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace flipper {

/// Canonical error space for the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kIoError = 6,
  kCorruptedData = 7,
  kResourceExhausted = 8,
  kInternal = 9,
  kDeadlineExceeded = 10,
  kCancelled = 11,
};

/// Human-readable name of a status code ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Value-semantic error carrier. A default-constructed Status is OK and
/// carries no allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status CorruptedData(std::string msg) {
    return Status(StatusCode::kCorruptedData, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Result<T> is either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirror absl::StatusOr.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  /// Requires ok(). Asserts in debug builds.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// Propagates a non-OK Status to the caller.
#define FLIPPER_RETURN_IF_ERROR(expr)          \
  do {                                         \
    ::flipper::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (false)

#define FLIPPER_CONCAT_IMPL_(a, b) a##b
#define FLIPPER_CONCAT_(a, b) FLIPPER_CONCAT_IMPL_(a, b)

/// Evaluates a Result<T> expression; on error returns its Status,
/// otherwise moves the value into `lhs` (a declaration or assignable).
#define FLIPPER_ASSIGN_OR_RETURN(lhs, expr)                              \
  FLIPPER_ASSIGN_OR_RETURN_IMPL_(FLIPPER_CONCAT_(_res_, __LINE__), lhs,  \
                                 expr)
#define FLIPPER_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

}  // namespace flipper

#endif  // FLIPPER_COMMON_STATUS_H_
