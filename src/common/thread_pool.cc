#include "common/thread_pool.h"

#include <algorithm>

#include "common/trace.h"

namespace flipper {

int ThreadPool::ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(ResolveThreadCount(num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::set_observer(PoolTaskObserver* observer) {
  std::lock_guard<std::mutex> lock(mu_);
  observer_ = observer;
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Task task{std::move(fn), 0, trace::CurrentSession()};
    // Only pay the clock read when someone consumes the timing.
    if (observer_ != nullptr || trace::Enabled()) {
      task.submit_ns = trace::NowNanos();
    }
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

bool ThreadPool::RunOneTask(std::unique_lock<std::mutex>* lock) {
  if (queue_.empty()) return false;
  Task task = std::move(queue_.front());
  queue_.pop_front();
  PoolTaskObserver* observer = observer_;
  ++in_flight_;
  lock->unlock();
  // Run under the submitter's trace session so the task's spans (and
  // the pool_task envelope below) land in the right query even when
  // the pool is shared across concurrent queries.
  trace::SessionScope session_scope(task.session);
  const uint64_t start_ns = task.submit_ns != 0 ? trace::NowNanos() : 0;
  std::exception_ptr error;
  try {
    task.fn();
  } catch (...) {
    error = std::current_exception();
  }
  if (task.submit_ns != 0) {
    const uint64_t end_ns = trace::NowNanos();
    const uint64_t queue_ns = start_ns - task.submit_ns;
    if (observer != nullptr) observer->OnPoolTask(queue_ns, end_ns - start_ns);
    if (trace::Enabled()) {
      trace::Span span;
      span.name = "pool_task";
      span.cat = "pool";
      span.start_ns = start_ns;
      span.dur_ns = end_ns - start_ns;
      span.arg_kind = trace::Span::ArgKind::kWaitNs;
      span.arg0 = static_cast<int64_t>(queue_ns);
      trace::RecordSpan(span);
    }
  }
  lock->lock();
  if (error != nullptr && first_error_ == nullptr) first_error_ = error;
  --in_flight_;
  if (queue_.empty() && in_flight_ == 0) batch_done_.notify_all();
  return true;
}

void ThreadPool::WorkerLoop() {
  // Stashes the display name (and registers with the current session
  // only if it is already recording); sessions attached later register
  // this thread lazily on its first span, picking the name up then —
  // short-lived pools in benches don't grow any registry for nothing.
  trace::SetThreadName("pool-worker");
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_ready_.wait(lock,
                     [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    RunOneTask(&lock);
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  // Help drain the queue, then wait for stragglers running on workers.
  while (RunOneTask(&lock)) {
  }
  batch_done_.wait(lock,
                   [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

struct ThreadPool::Completion::State {
  std::mutex mu;
  std::condition_variable done;
  size_t pending = 0;
  std::exception_ptr first_error;
};

ThreadPool::Completion ThreadPool::SubmitBatch(
    std::vector<std::function<void()>> tasks) {
  Completion handle;
  if (tasks.empty()) return handle;
  handle.pool_ = this;
  handle.state_ = std::make_shared<Completion::State>();
  handle.state_->pending = tasks.size();
  for (auto& fn : tasks) {
    Submit([state = handle.state_, fn = std::move(fn)] {
      std::exception_ptr error;
      try {
        fn();
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(state->mu);
      if (error != nullptr && state->first_error == nullptr) {
        state->first_error = error;
      }
      if (--state->pending == 0) state->done.notify_all();
    });
  }
  return handle;
}

void ThreadPool::Completion::Wait() {
  if (state_ == nullptr) return;
  // Help drain the shared queue first: on a pool with no idle workers
  // (notably num_threads == 1) the batch's tasks only ever run here.
  // The queue may also hold tasks of other batches; running them on
  // this thread is harmless — their own handles still see completion.
  {
    std::unique_lock<std::mutex> lock(pool_->mu_);
    while (pool_->RunOneTask(&lock)) {
    }
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->done.wait(lock, [this] { return state_->pending == 0; });
  if (state_->first_error != nullptr) {
    std::exception_ptr error = state_->first_error;
    state_->first_error = nullptr;
    std::rethrow_exception(error);
  }
}

int ShardCount(size_t total_items, const ThreadPool* pool,
               size_t min_items_per_shard) {
  if (pool == nullptr || pool->num_threads() <= 1) return 1;
  const size_t cap = std::max<size_t>(1, total_items / min_items_per_shard);
  return static_cast<int>(
      std::min<size_t>(static_cast<size_t>(pool->num_threads()), cap));
}

std::pair<size_t, size_t> ShardRange(size_t begin, size_t end,
                                     int num_shards, int shard) {
  const size_t total = end - begin;
  const auto shards = static_cast<size_t>(num_shards);
  const auto s = static_cast<size_t>(shard);
  const size_t chunk = total / shards;
  const size_t remainder = total % shards;
  const size_t lo = begin + s * chunk + std::min(s, remainder);
  const size_t extent = chunk + (s < remainder ? 1 : 0);
  return {lo, lo + extent};
}

void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 int num_shards,
                 const std::function<void(int, size_t, size_t)>& fn) {
  if (begin >= end || num_shards < 1) return;
  num_shards = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(num_shards), end - begin));
  if (pool == nullptr || pool->num_threads() <= 1 || num_shards == 1) {
    for (int s = 0; s < num_shards; ++s) {
      const auto [lo, hi] = ShardRange(begin, end, num_shards, s);
      fn(s, lo, hi);
    }
    return;
  }
  for (int s = 0; s < num_shards; ++s) {
    const auto [lo, hi] = ShardRange(begin, end, num_shards, s);
    pool->Submit([&fn, s, lo = lo, hi = hi] { fn(s, lo, hi); });
  }
  pool->Wait();
}

}  // namespace flipper
