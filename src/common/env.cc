#include "common/env.h"

#include <algorithm>
#include <cstdlib>

#include "common/string_util.h"

namespace flipper {

int64_t GetEnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  auto parsed = ParseInt(v);
  return parsed.ok() ? *parsed : fallback;
}

double GetEnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  auto parsed = ParseDouble(v);
  return parsed.ok() ? *parsed : fallback;
}

std::string GetEnvString(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::string(v);
}

double BenchScale() {
  double s = GetEnvDouble("FLIPPER_BENCH_SCALE", 1.0);
  return std::clamp(s, 0.05, 100.0);
}

std::string ForcedProbeKernel() {
  return GetEnvString("FLIPPER_FORCE_PROBE_KERNEL", "");
}

}  // namespace flipper
