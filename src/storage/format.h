// FlipperStore on-disk format (.fdb): a single versioned binary file
// holding a complete mining input — the CSR transaction database, the
// item-name dictionary, and the taxonomy — so datasets load in O(mmap)
// instead of O(parse).
//
// Layout (all integers little-endian, fixed width):
//
//   [FileHeader]      104 bytes, checksummed (FNV-1a 64)
//   [SectionTable]    section_count x SectionEntry (32 bytes each)
//   [section payloads ...]  each 8-byte aligned, padded with zeros
//
// Version-1 sections (exactly these seven, in any physical order; the
// table records where each one lives):
//
//   kTxnOffsets   (num_transactions + 1) x u64   CSR boundaries
//   kTxnItems     num_items x u32                flattened sorted items
//   kSegments     (num_segments + 1) x u64       shard txn boundaries
//   kDictOffsets  (dict_size + 1) x u64          byte offsets into blob
//   kDictBlob     raw bytes                      concatenated names
//   kTaxParents   taxonomy_id_space x u32        parent per id
//   kTaxRoots     taxonomy_num_roots x u32       level-1 node ids
//
// Segments partition the transactions into contiguous shards (the
// writer cuts one every Options::segment_txns transactions) so
// sharded scans — LevelViews::ScanShards and future distributed
// readers — can split the file without touching the offsets section.
//
// Versioning rules: readers reject a different `version`; any layout
// or semantic change bumps it. Reserved fields are written as zero and
// ignored on read, so compatible additions can reuse them without a
// bump.

#ifndef FLIPPER_STORAGE_FORMAT_H_
#define FLIPPER_STORAGE_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace flipper {
namespace storage {

inline constexpr char kMagic[8] = {'F', 'L', 'I', 'P', 'F', 'D', 'B', '\0'};
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr uint64_t kSectionAlignment = 8;

enum class SectionId : uint32_t {
  kTxnOffsets = 1,
  kTxnItems = 2,
  kSegments = 3,
  kDictOffsets = 4,
  kDictBlob = 5,
  kTaxParents = 6,
  kTaxRoots = 7,
};

inline constexpr uint32_t kNumSections = 7;

/// Human-readable section name ("txn_offsets", ...); "unknown" for ids
/// outside the version-1 set.
const char* SectionIdName(SectionId id);

#pragma pack(push, 1)

/// One row of the section table.
struct SectionEntry {
  uint32_t id = 0;        // SectionId
  uint32_t reserved = 0;  // zero
  uint64_t offset = 0;    // absolute byte offset, 8-aligned
  uint64_t size = 0;      // payload bytes (excluding padding)
  uint64_t checksum = 0;  // FNV-1a 64 of the payload bytes
};
static_assert(sizeof(SectionEntry) == 32);

struct FileHeader {
  char magic[8] = {};
  uint32_t version = 0;
  uint32_t section_count = 0;
  uint64_t file_size = 0;  // total bytes; guards against truncation
  uint64_t num_transactions = 0;
  uint64_t num_items = 0;     // total flattened items
  uint64_t num_segments = 0;  // shard count (>= 1 unless empty)
  uint32_t alphabet_size = 0;
  uint32_t max_width = 0;
  uint32_t dict_size = 0;          // number of interned names
  uint32_t taxonomy_id_space = 0;  // length of the parent array
  uint32_t taxonomy_num_roots = 0;
  uint32_t flags = 0;          // reserved, zero
  uint64_t reserved[2] = {};   // zero
  uint64_t table_checksum = 0;  // FNV-1a 64 of the section table bytes
  uint64_t header_checksum = 0;  // FNV-1a 64 of this struct with
                                 // header_checksum itself zeroed
};
static_assert(sizeof(FileHeader) == 104);

#pragma pack(pop)

inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;

/// FNV-1a 64. Pass a previous return value as `state` to checksum data
/// arriving in chunks.
uint64_t Fnv1a64(const void* data, size_t size,
                 uint64_t state = kFnvOffsetBasis);

/// Checksum of a header with its `header_checksum` field zeroed.
uint64_t HeaderChecksum(const FileHeader& header);

/// `n` rounded up to the section alignment.
inline constexpr uint64_t AlignUp(uint64_t n) {
  return (n + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

}  // namespace storage
}  // namespace flipper

#endif  // FLIPPER_STORAGE_FORMAT_H_
