// FlipperStore on-disk format (.fdb): a single versioned binary file
// holding a complete mining input — the CSR transaction database, the
// item-name dictionary, and the taxonomy — so datasets load in O(mmap)
// (v1) or one bounds-checked decode pass (v2).
//
// Layout (all integers little-endian, fixed width unless marked):
//
//   [FileHeader]      104 bytes, checksummed (FNV-1a 64)
//   [SectionTable]    section_count x SectionEntry (32 bytes each),
//                     located by header.table_offset (0 = directly
//                     after the header — every fresh file; appended
//                     files keep theirs in the commit trailer)
//   [section payloads ...]  each 8-byte aligned, padded with zeros
//
// Version-1 sections (exactly these seven, in any physical order; the
// table records where each one lives):
//
//   kTxnOffsets   (num_transactions + 1) x u64   CSR boundaries
//   kTxnItems     num_items x u32                flattened sorted items
//   kSegments     (num_segments + 1) x u64       shard txn boundaries
//   kDictOffsets  (dict_size + 1) x u64          byte offsets into blob
//   kDictBlob     raw bytes                      concatenated names
//   kTaxParents   taxonomy_id_space x u32        parent per id
//   kTaxRoots     taxonomy_num_roots x u32       level-1 node ids
//
// Version 2 keeps the container (header, table, checksums, alignment)
// and the dictionary/taxonomy/segments sections unchanged, but
// compresses the two big columns and adds a segment catalog:
//
//   kTxnOffsets   num_transactions varints       per-txn width (delta
//                                                of the CSR boundary)
//   kTxnItems     per txn: varint first item,    sorted items as gaps
//                 then varint gaps (>= 1)
//   kSegCatalog   fixed-width catalog (below)    scan-skipping metadata
//
// kSegCatalog payload:
//
//   u32 tracked_count K      top-frequency items with exact per-segment
//   u32 bitset_words  W      supports; W 64-bit bitset words per segment
//   K x u32 tracked item ids (global frequency desc, id asc)
//   num_segments x { u32 min_item; u32 max_item;
//                    W x u64 bits; K x u32 tracked supports }
//
// An unset bitset bit / out-of-range id / zero tracked support proves
// an item absent from a segment, so readers can skip segments that
// cannot contain any live candidate while staying exact.
//
// Segments partition the transactions into contiguous shards (the
// writer cuts one every Options::segment_txns transactions) so
// sharded scans — LevelViews::ScanShards and future distributed
// readers — can split the file without touching the offsets section.
//
// Append sessions (v2 only): StoreWriter::OpenAppend extends a
// committed v2 store without rewriting it. Each session appends, past
// the committed end of the file,
//
//   [new kTxnItems block]     the session's transactions, same varint
//   [new kTxnOffsets block]   encoding as a fresh store
//   [kSegments, kDictOffsets, kDictBlob, kTaxParents, kTaxRoots,
//    kSegCatalog]             small sections, rewritten in full
//   [commit trailer]          section table + FileHeader copy (below)
//
// so an appended store carries one kTxnOffsets/kTxnItems block pair
// per session; readers treat the blocks, concatenated in section-table
// order, as one logical column (blocks end on transaction boundaries —
// a varint never straddles two blocks). section_count therefore grows
// by 2 per session: a v2 file holds >= 8 sections, always 6 singletons
// plus equally many offsets and items blocks. The superseded copies of
// the small sections become dead bytes (reclaimed by
// `flipper_cli convert --from-fdb`, which compacts). v1 files are
// read-only: no append, ever.
//
// Commit protocol: the trailer is [section table][FileHeader] with
// header.table_offset pointing at that trailing table and
// header.file_size covering the whole file, so the header copy sits
// exactly at file_size - 104 and is self-validating (magic + checksum
// + file_size == physical size). The writer fsyncs the data, fsyncs
// the trailer (THE commit point), and only then rewrites the header at
// offset 0 with the same bytes. A crash at any byte offset leaves
// either (a) a torn tail after a valid front header — recovery
// truncates to the front header's file_size — or (b) a valid trailer
// with a stale/torn front header — recovery rewrites the front header
// from the trailer. Either way the last committed state survives
// byte-exactly; `flipper_cli repair` applies exactly these two rules.
//
// Versioning rules: readers accept exactly the versions they know
// (currently 1 and 2); any other layout or semantic change bumps the
// version. Reserved fields are written as zero and ignored on read, so
// compatible additions can reuse them without a bump (table_offset
// reused one such field: old readers would reject appended files on
// section_count, not misread them).

#ifndef FLIPPER_STORAGE_FORMAT_H_
#define FLIPPER_STORAGE_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace flipper {
namespace storage {

inline constexpr char kMagic[8] = {'F', 'L', 'I', 'P', 'F', 'D', 'B', '\0'};
inline constexpr uint32_t kFormatVersionV1 = 1;
inline constexpr uint32_t kFormatVersionV2 = 2;
/// The version new files are written with by default.
inline constexpr uint32_t kFormatVersionLatest = kFormatVersionV2;
inline constexpr uint64_t kSectionAlignment = 8;
/// Upper bound on the per-segment catalog bitset (64-bit words);
/// writer option validation and reader corruption checks share it.
inline constexpr uint32_t kMaxCatalogBitsetWords = 1024;

enum class SectionId : uint32_t {
  kTxnOffsets = 1,
  kTxnItems = 2,
  kSegments = 3,
  kDictOffsets = 4,
  kDictBlob = 5,
  kTaxParents = 6,
  kTaxRoots = 7,
  kSegCatalog = 8,  // v2 only
};

inline constexpr uint32_t kNumSectionsV1 = 7;
inline constexpr uint32_t kNumSectionsV2 = 8;

/// Section count a fresh file of `version` carries (0 for unknown
/// versions). v1 files hold exactly this many; v2 files hold at least
/// this many — each append session adds one kTxnOffsets and one
/// kTxnItems block.
inline constexpr uint32_t SectionCountForVersion(uint32_t version) {
  if (version == kFormatVersionV1) return kNumSectionsV1;
  if (version == kFormatVersionV2) return kNumSectionsV2;
  return 0;
}

/// Sanity bound on section_count before the reader sizes its table
/// buffer (2 blocks per append session: this admits ~32k sessions).
inline constexpr uint32_t kMaxSectionCount = 1u << 16;

/// Human-readable section name ("txn_offsets", ...); "unknown" for ids
/// outside the known set.
const char* SectionIdName(SectionId id);

#pragma pack(push, 1)

/// One row of the section table.
struct SectionEntry {
  uint32_t id = 0;        // SectionId
  uint32_t reserved = 0;  // zero
  uint64_t offset = 0;    // absolute byte offset, 8-aligned
  uint64_t size = 0;      // payload bytes (excluding padding)
  uint64_t checksum = 0;  // FNV-1a 64 of the payload bytes
};
static_assert(sizeof(SectionEntry) == 32);

struct FileHeader {
  char magic[8] = {};
  uint32_t version = 0;
  uint32_t section_count = 0;
  uint64_t file_size = 0;  // total bytes; guards against truncation
  uint64_t num_transactions = 0;
  uint64_t num_items = 0;     // total flattened items (logical count,
                              // not encoded bytes)
  uint64_t num_segments = 0;  // shard count (>= 1 unless empty)
  uint32_t alphabet_size = 0;
  uint32_t max_width = 0;
  uint32_t dict_size = 0;          // number of interned names
  uint32_t taxonomy_id_space = 0;  // length of the parent array
  uint32_t taxonomy_num_roots = 0;
  uint32_t flags = 0;  // reserved, zero
  /// Absolute byte offset of the section table; 0 means "immediately
  /// after this header" (the only layout v1 and fresh v2 files use, so
  /// their bytes are unchanged from when this field was reserved).
  /// Append sessions point it at the commit trailer near the end of
  /// the file.
  uint64_t table_offset = 0;
  uint64_t reserved = 0;        // zero
  uint64_t table_checksum = 0;  // FNV-1a 64 of the section table bytes
  uint64_t header_checksum = 0;  // FNV-1a 64 of this struct with
                                 // header_checksum itself zeroed
};
static_assert(sizeof(FileHeader) == 104);

/// Fixed-width prefix of the kSegCatalog payload.
struct SegCatalogHeader {
  uint32_t tracked_count = 0;  // K
  uint32_t bitset_words = 0;   // W (64-bit words per segment)
};
static_assert(sizeof(SegCatalogHeader) == 8);

#pragma pack(pop)

/// Bytes of one per-segment catalog record for K tracked items and W
/// bitset words: min/max + bitset + tracked supports.
inline constexpr uint64_t SegCatalogRecordBytes(uint64_t tracked_count,
                                                uint64_t bitset_words) {
  return 2 * sizeof(uint32_t) + bitset_words * sizeof(uint64_t) +
         tracked_count * sizeof(uint32_t);
}

inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;

/// FNV-1a 64. Pass a previous return value as `state` to checksum data
/// arriving in chunks.
uint64_t Fnv1a64(const void* data, size_t size,
                 uint64_t state = kFnvOffsetBasis);

/// Checksum of a header with its `header_checksum` field zeroed.
uint64_t HeaderChecksum(const FileHeader& header);

/// `n` rounded up to the section alignment.
inline constexpr uint64_t AlignUp(uint64_t n) {
  return (n + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

}  // namespace storage
}  // namespace flipper

#endif  // FLIPPER_STORAGE_FORMAT_H_
