// Crash recovery for FlipperStore files: analysis of what a physical
// .fdb holds, the repair actions that restore the last committed
// state, and a byte-offset diagnosis report for `flipper_cli validate`
// and `inspect`.
//
// The commit protocol (format.h) guarantees a crashed write leaves one
// of two recoverable shapes — a torn tail after a valid front header,
// or a complete commit trailer whose front-header rewrite never
// landed. AnalyzeStore() classifies the file; ApplyRepair() performs
// the one in-place action the plan prescribes (truncate, or rewrite
// the front header from the trailer) and verifies the result with a
// strict reopen. Repair never invents data: every byte it keeps was
// already committed.

#ifndef FLIPPER_STORAGE_RECOVERY_H_
#define FLIPPER_STORAGE_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/file_io.h"
#include "storage/format.h"
#include "storage/store_reader.h"

namespace flipper {
namespace storage {

/// What ApplyRepair would do to make StoreReader::Open succeed.
struct RepairPlan {
  enum class Action {
    kNone,                // already clean; nothing to do
    kTruncateTail,        // drop torn bytes after the committed state
    kRewriteFrontHeader,  // redo the front header from the trailer
    kUnrecoverable,       // no committed state survives in the file
  };
  Action action = Action::kNone;
  uint64_t physical_size = 0;
  /// Bytes of committed state (== physical_size when clean; 0 when
  /// unrecoverable).
  uint64_t committed_size = 0;
  /// Torn bytes past the committed state that kTruncateTail drops.
  uint64_t torn_bytes = 0;
  /// Header of the committed state (what kRewriteFrontHeader writes to
  /// offset 0). Valid whenever committed_size > 0 — including an
  /// unrecoverable file whose committed *payload* is corrupt, so
  /// diagnosis can still walk its section table.
  FileHeader header;
  std::string detail;  // human-readable classification
};

/// Classifies `path` without modifying it. Returns a plan even for
/// unrecoverable files (action kUnrecoverable + detail); only I/O
/// failures (unreadable file) surface as errors. A kNone/kTruncateTail
/// /kRewriteFrontHeader plan additionally proves the committed payload
/// itself opens and validates.
Result<RepairPlan> AnalyzeStore(const std::string& path);

/// Executes `plan` on `path` (in place, then fsync) and verifies the
/// repaired file with a strict validated StoreReader::Open. kNone is a
/// no-op; kUnrecoverable is an error — repair never deletes data it
/// cannot restore.
Status ApplyRepair(const std::string& path, const RepairPlan& plan,
                   FileSystem* fs = nullptr);

/// One observation of the diagnosis pass, anchored to a byte range of
/// the physical file.
struct Finding {
  std::string section;  // "front_header", "section_table", "txn_items", ...
  uint64_t offset = 0;  // byte offset of the inspected region
  uint64_t size = 0;    // bytes inspected
  bool ok = true;
  std::string detail;
};

/// Full diagnosis for tooling: the strict-open verdict, the repair
/// plan, and per-region findings with byte offsets (header, commit
/// trailer, section table, every section's bounds and checksum,
/// payload validation).
struct Diagnosis {
  bool valid = false;       // strict Open + checksums + validation pass
  RepairPlan plan;          // how to recover if !valid
  std::vector<Finding> findings;
};

/// Inspects every layer of `path` and reports findings even when the
/// file is badly corrupt (errors only for unreadable files).
Result<Diagnosis> DiagnoseStore(const std::string& path);

}  // namespace storage
}  // namespace flipper

#endif  // FLIPPER_STORAGE_RECOVERY_H_
