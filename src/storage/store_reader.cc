#include "storage/store_reader.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>

#include "storage/varint.h"
#include "taxonomy/taxonomy_builder.h"

namespace flipper {
namespace storage {
namespace {

Status Corrupt(const std::string& what) {
  return Status::CorruptedData("store file: " + what);
}

std::span<const uint64_t> U64Span(const std::byte* base,
                                  const SectionEntry& e) {
  return {reinterpret_cast<const uint64_t*>(base + e.offset),
          static_cast<size_t>(e.size / sizeof(uint64_t))};
}

std::span<const uint32_t> U32Span(const std::byte* base,
                                  const SectionEntry& e) {
  return {reinterpret_cast<const uint32_t*>(base + e.offset),
          static_cast<size_t>(e.size / sizeof(uint32_t))};
}

/// Requires the section to hold exactly `count` elements of
/// `elem_size` bytes.
Status CheckElementCount(const SectionEntry& e, uint64_t count,
                         uint64_t elem_size) {
  if (e.size % elem_size != 0 || e.size / elem_size != count) {
    return Corrupt(std::string(SectionIdName(SectionId(e.id))) +
                   " section holds " + std::to_string(e.size) +
                   " bytes, expected " + std::to_string(count) +
                   " x " + std::to_string(elem_size));
  }
  return Status::OK();
}

/// Parses and checks a FileHeader at `at` (magic, version, checksum —
/// everything that can be judged from the 104 bytes alone).
Result<FileHeader> ParseHeaderAt(const std::byte* at, uint64_t avail,
                                 const std::string& path) {
  if (avail < sizeof(FileHeader)) {
    return Corrupt("truncated header (" + std::to_string(avail) +
                   " bytes, need " + std::to_string(sizeof(FileHeader)) +
                   "): " + path);
  }
  FileHeader h;
  std::memcpy(&h, at, sizeof(h));
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt("bad magic, not a FlipperStore file: " + path);
  }
  if (SectionCountForVersion(h.version) == 0) {
    return Status::InvalidArgument(
        "unsupported store version " + std::to_string(h.version) +
        " (this build reads versions " +
        std::to_string(kFormatVersionV1) + " and " +
        std::to_string(kFormatVersionV2) + "): " + path);
  }
  if (HeaderChecksum(h) != h.header_checksum) {
    return Corrupt("header checksum mismatch: " + path);
  }
  return h;
}

/// Sequential varint reader over a chain of column blocks (table
/// order). Blocks end on transaction boundaries, so a varint that
/// would straddle two blocks is corruption and decodes as truncated.
class BlockCursor {
 public:
  BlockCursor(const std::byte* base,
              std::span<const SectionEntry* const> blocks)
      : base_(base), blocks_(blocks) {}

  bool Get(uint64_t* value) {
    SkipExhausted();
    return GetVarint(&pos_, end_, value);
  }

  /// True when every block's bytes have been consumed.
  bool Exhausted() {
    SkipExhausted();
    return pos_ == end_;
  }

 private:
  void SkipExhausted() {
    while (pos_ == end_ && idx_ < blocks_.size()) {
      const SectionEntry& e = *blocks_[idx_++];
      pos_ = reinterpret_cast<const uint8_t*>(base_ + e.offset);
      end_ = pos_ + e.size;
    }
  }

  const std::byte* base_;
  std::span<const SectionEntry* const> blocks_;
  size_t idx_ = 0;
  const uint8_t* pos_ = nullptr;
  const uint8_t* end_ = nullptr;
};

}  // namespace

Status StoreReader::DecodeColumnsV2(
    const std::byte* base,
    std::span<const SectionEntry* const> offsets_blocks,
    std::span<const SectionEntry* const> items_blocks, bool validate) {
  const FileHeader& h = header_;

  // Every varint occupies at least one byte, so the header counts are
  // bounded by the section sizes. Checking first keeps the reserve()
  // calls below from ballooning on a corrupt header (allocation
  // failure would escape as bad_alloc, not a Status).
  uint64_t offsets_bytes = 0;
  for (const SectionEntry* e : offsets_blocks) offsets_bytes += e->size;
  uint64_t items_bytes = 0;
  for (const SectionEntry* e : items_blocks) items_bytes += e->size;
  if (h.num_transactions > offsets_bytes) {
    return Corrupt("txn_offsets section is too small for " +
                   std::to_string(h.num_transactions) + " transactions");
  }
  if (h.num_items > items_bytes) {
    return Corrupt("txn_items section is too small for " +
                   std::to_string(h.num_items) + " items");
  }

  // --- Widths column -> CSR offsets. ---
  decoded_offsets_.clear();
  decoded_offsets_.reserve(h.num_transactions + 1);
  decoded_offsets_.push_back(0);
  {
    BlockCursor cursor(base, offsets_blocks);
    uint32_t max_width = 0;
    for (uint64_t t = 0; t < h.num_transactions; ++t) {
      uint64_t width = 0;
      if (!cursor.Get(&width)) {
        return Corrupt("truncated varint in txn_offsets at txn " +
                       std::to_string(t));
      }
      if (width > std::numeric_limits<uint32_t>::max()) {
        return Corrupt("transaction width overflows at txn " +
                       std::to_string(t));
      }
      decoded_offsets_.push_back(decoded_offsets_.back() + width);
      max_width = std::max(max_width, static_cast<uint32_t>(width));
    }
    if (!cursor.Exhausted()) {
      return Corrupt("txn_offsets section has trailing bytes");
    }
    if (decoded_offsets_.back() != h.num_items) {
      return Corrupt("transaction offsets do not span the items");
    }
    if (max_width != h.max_width) {
      return Corrupt("max_width mismatch: header records " +
                     std::to_string(h.max_width) + ", data has " +
                     std::to_string(max_width));
    }
  }

  // --- Delta-encoded items column. ---
  decoded_items_.clear();
  decoded_items_.reserve(h.num_items);
  {
    BlockCursor cursor(base, items_blocks);
    uint64_t max_item = 0;
    bool any_item = false;
    for (uint64_t t = 0; t < h.num_transactions; ++t) {
      const uint64_t width =
          decoded_offsets_[t + 1] - decoded_offsets_[t];
      uint64_t item = 0;
      for (uint64_t i = 0; i < width; ++i) {
        uint64_t delta = 0;
        if (!cursor.Get(&delta)) {
          return Corrupt("truncated varint in txn_items at txn " +
                         std::to_string(t));
        }
        if (i == 0) {
          item = delta;
        } else {
          if (delta == 0) {
            return Corrupt("items of txn " + std::to_string(t) +
                           " are not sorted and duplicate-free");
          }
          // In-range items make every true gap < alphabet_size; a
          // larger delta is either out of range or a 64-bit wraparound
          // crafted to decode as an unsorted transaction — reject it
          // before the addition can wrap.
          if (delta >= h.alphabet_size) {
            return Corrupt("item gap " + std::to_string(delta) +
                           " out of range in txn " + std::to_string(t));
          }
          item += delta;
        }
        if (item >= h.alphabet_size) {
          return Corrupt("item id " + std::to_string(item) +
                         " out of range in txn " + std::to_string(t));
        }
        decoded_items_.push_back(static_cast<ItemId>(item));
        max_item = std::max(max_item, item);
        any_item = true;
      }
    }
    if (!cursor.Exhausted()) {
      return Corrupt("txn_items section has trailing bytes");
    }
    const uint64_t actual_alphabet = any_item ? max_item + 1 : 0;
    if (actual_alphabet != h.alphabet_size) {
      return Corrupt("alphabet_size mismatch: header records " +
                     std::to_string(h.alphabet_size) + ", data has " +
                     std::to_string(actual_alphabet));
    }
  }
  (void)validate;  // the v2 decode is always fully checked
  return Status::OK();
}

Status StoreReader::DecodeCatalogV2(const std::byte* base,
                                    const SectionEntry& entry,
                                    bool validate) {
  const FileHeader& h = header_;
  if (entry.size < sizeof(SegCatalogHeader)) {
    return Corrupt("seg_catalog section is too small for its header");
  }
  SegCatalogHeader ch;
  std::memcpy(&ch, base + entry.offset, sizeof(ch));
  if (ch.bitset_words == 0 || ch.bitset_words > kMaxCatalogBitsetWords) {
    return Corrupt("seg_catalog bitset length is invalid (" +
                   std::to_string(ch.bitset_words) + " words)");
  }
  if (ch.tracked_count > h.alphabet_size) {
    return Corrupt("seg_catalog tracks more items than the alphabet");
  }
  const uint64_t expected =
      sizeof(SegCatalogHeader) +
      uint64_t{ch.tracked_count} * sizeof(uint32_t) +
      h.num_segments *
          SegCatalogRecordBytes(ch.tracked_count, ch.bitset_words);
  if (entry.size != expected) {
    return Corrupt(
        "seg_catalog section holds " + std::to_string(entry.size) +
        " bytes, expected " + std::to_string(expected) + " for " +
        std::to_string(h.num_segments) + " segments (bitset/tracked "
        "length mismatch?)");
  }

  const auto* cursor = reinterpret_cast<const uint8_t*>(
      base + entry.offset + sizeof(SegCatalogHeader));
  const auto read_u32 = [&cursor]() {
    uint32_t v;
    std::memcpy(&v, cursor, sizeof(v));
    cursor += sizeof(v);
    return v;
  };
  const auto read_u64 = [&cursor]() {
    uint64_t v;
    std::memcpy(&v, cursor, sizeof(v));
    cursor += sizeof(v);
    return v;
  };

  std::vector<ItemId> tracked_ids(ch.tracked_count);
  for (uint32_t i = 0; i < ch.tracked_count; ++i) {
    tracked_ids[i] = read_u32();
    if (tracked_ids[i] >= h.alphabet_size) {
      return Corrupt("seg_catalog tracked item id out of range");
    }
  }

  std::vector<ItemId> min_item(h.num_segments);
  std::vector<ItemId> max_item(h.num_segments);
  std::vector<uint64_t> bits;
  bits.reserve(h.num_segments * ch.bitset_words);
  std::vector<uint32_t> tracked_supports;
  tracked_supports.reserve(h.num_segments * ch.tracked_count);
  for (uint64_t seg = 0; seg < h.num_segments; ++seg) {
    min_item[seg] = read_u32();
    max_item[seg] = read_u32();
    const bool empty_segment =
        min_item[seg] == kInvalidItem && max_item[seg] == 0;
    if (!empty_segment &&
        (min_item[seg] > max_item[seg] ||
         max_item[seg] >= h.alphabet_size)) {
      return Corrupt("seg_catalog segment " + std::to_string(seg) +
                     " has out-of-range item bounds");
    }
    for (uint32_t w = 0; w < ch.bitset_words; ++w) {
      bits.push_back(read_u64());
    }
    const uint64_t seg_txns = segments_[seg + 1] - segments_[seg];
    for (uint32_t i = 0; i < ch.tracked_count; ++i) {
      const uint32_t support = read_u32();
      if (support > seg_txns) {
        return Corrupt("seg_catalog segment " + std::to_string(seg) +
                       " records a support above its size");
      }
      tracked_supports.push_back(support);
    }
  }

  auto catalog = std::make_shared<SegmentCatalog>(SegmentCatalog::FromParts(
      std::vector<uint64_t>(segments_.begin(), segments_.end()),
      ch.bitset_words, std::move(tracked_ids), std::move(min_item),
      std::move(max_item), std::move(bits),
      std::move(tracked_supports)));

  if (validate) {
    // Rebuild the catalog from the decoded transactions; any
    // disagreement means the section could mislead scan skipping into
    // wrong supports, so it is rejected outright. (Bitwise equality
    // holds because writer and rebuild share the top-K selection and
    // the bit hash.)
    const SegmentCatalog reference = SegmentCatalog::Build(
        db_, std::vector<uint64_t>(segments_.begin(), segments_.end()),
        ch.tracked_count, ch.bitset_words);
    const auto mismatch = [&](const std::string& what) {
      return Corrupt("seg_catalog disagrees with the items column (" +
                     what + ")");
    };
    if (!std::equal(reference.tracked_ids().begin(),
                    reference.tracked_ids().end(),
                    catalog->tracked_ids().begin(),
                    catalog->tracked_ids().end())) {
      return mismatch("tracked items");
    }
    for (size_t seg = 0; seg < catalog->num_segments(); ++seg) {
      if (catalog->min_item(seg) != reference.min_item(seg) ||
          catalog->max_item(seg) != reference.max_item(seg)) {
        return mismatch("segment item bounds");
      }
      const auto a = catalog->segment_bits(seg);
      const auto b = reference.segment_bits(seg);
      if (!std::equal(a.begin(), a.end(), b.begin(), b.end())) {
        return mismatch("segment bitsets");
      }
      const auto sa = catalog->segment_tracked_supports(seg);
      const auto sb = reference.segment_tracked_supports(seg);
      if (!std::equal(sa.begin(), sa.end(), sb.begin(), sb.end())) {
        return mismatch("tracked supports");
      }
    }
  }

  catalog_ = std::move(catalog);
  return Status::OK();
}

Result<StoreReader> StoreReader::Open(const std::string& path,
                                      const OpenOptions& options) {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::Internal(
        "FlipperStore requires a little-endian host (fixed LE format)");
  }
  MmapFile file;
  FLIPPER_ASSIGN_OR_RETURN(file, MmapFile::Open(path, options.force_heap));
  FLIPPER_ASSIGN_OR_RETURN(
      FileHeader h, ParseHeaderAt(file.data(), file.size(), path));
  if (h.file_size > file.size()) {
    return Corrupt("file size mismatch (truncated?): header records " +
                   std::to_string(h.file_size) + " bytes, file has " +
                   std::to_string(file.size()));
  }
  if (h.file_size < file.size()) {
    return Corrupt(
        "file has " + std::to_string(file.size() - h.file_size) +
        " trailing bytes past the committed store (torn append "
        "session?): header records " + std::to_string(h.file_size) +
        " bytes, file has " + std::to_string(file.size()) +
        " — run `flipper_cli repair` to truncate the torn tail");
  }
  return OpenParsed(std::move(file), h, options, path);
}

Result<StoreReader> StoreReader::OpenPrefix(const std::string& path,
                                            PrefixInfo* info,
                                            const OpenOptions& options) {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::Internal(
        "FlipperStore requires a little-endian host (fixed LE format)");
  }
  MmapFile file;
  FLIPPER_ASSIGN_OR_RETURN(file, MmapFile::Open(path, options.force_heap));
  const std::byte* base = file.data();
  const uint64_t physical = file.size();

  PrefixInfo local;
  PrefixInfo& out = info != nullptr ? *info : local;
  out = PrefixInfo{};
  out.physical_size = physical;

  const Result<FileHeader> front = ParseHeaderAt(base, physical, path);

  // A commit trailer ends with a header copy whose file_size equals
  // the physical size — self-validating, so a partial trailer (or the
  // tail of an ordinary fresh store) never masquerades as one.
  bool tail_valid = false;
  FileHeader tail;
  if (physical >= sizeof(FileHeader)) {
    const Result<FileHeader> t = ParseHeaderAt(
        base + (physical - sizeof(FileHeader)), sizeof(FileHeader), path);
    if (t.ok() && t->file_size == physical) {
      tail = *t;
      tail_valid = true;
    }
  }

  if (tail_valid) {
    const bool front_matches =
        front.ok() &&
        std::memcmp(base, base + (physical - sizeof(FileHeader)),
                    sizeof(FileHeader)) == 0;
    out.committed_size = physical;
    out.committed_header = tail;
    if (front_matches) {
      out.recovery = PrefixInfo::Recovery::kClean;
      out.detail = "front header and commit trailer agree";
    } else {
      // The commit point was reached; only the front-header rewrite is
      // missing (or tore). Redo it from the trailer.
      out.recovery = PrefixInfo::Recovery::kRewriteFrontHeader;
      out.detail = front.ok()
                       ? "front header is stale (crash between the "
                         "commit trailer and the front-header rewrite)"
                       : "front header is torn but the commit trailer "
                         "is intact";
    }
    return OpenParsed(std::move(file), tail, options, path);
  }

  if (front.ok()) {
    const FileHeader& h = *front;
    out.committed_size = h.file_size;
    out.committed_header = h;
    if (h.file_size == physical) {
      out.recovery = PrefixInfo::Recovery::kClean;
      out.detail = "header spans the file exactly";
      return OpenParsed(std::move(file), h, options, path);
    }
    if (h.file_size < physical) {
      out.recovery = PrefixInfo::Recovery::kTruncateTail;
      out.detail = std::to_string(physical - h.file_size) +
                   " torn bytes past the committed store "
                   "(crashed append session)";
      return OpenParsed(std::move(file), h, options, path);
    }
    out.committed_size = 0;
    return Corrupt("header records " + std::to_string(h.file_size) +
                   " bytes but the file holds only " +
                   std::to_string(physical) +
                   " — the committed data itself is incomplete: " + path);
  }

  return Status(front.status().code(),
                "no committed state found (front header: " +
                    front.status().message() +
                    "; no valid commit trailer)");
}

Result<StoreReader> StoreReader::OpenParsed(MmapFile file,
                                            const FileHeader& header,
                                            const OpenOptions& options,
                                            const std::string& path) {
  StoreReader reader;
  reader.file_ = std::move(file);
  reader.header_ = header;
  const std::byte* base = reader.file_.data();
  const FileHeader& h = reader.header_;
  // Everything the header describes must live inside [0, limit);
  // OpenPrefix may map torn bytes past it.
  const uint64_t limit = h.file_size;

  if (h.num_transactions >
      static_cast<uint64_t>(std::numeric_limits<TxnId>::max())) {
    return Corrupt("transaction count exceeds the TxnId range");
  }
  const bool v2 = h.version == kFormatVersionV2;

  // --- Section table. ---
  const uint32_t fresh_sections = SectionCountForVersion(h.version);
  if (!v2 && h.section_count != fresh_sections) {
    return Corrupt("version-" + std::to_string(h.version) +
                   " files carry " + std::to_string(fresh_sections) +
                   " sections, found " + std::to_string(h.section_count));
  }
  if (v2 && h.section_count < fresh_sections) {
    return Corrupt("version-2 files carry at least " +
                   std::to_string(fresh_sections) + " sections, found " +
                   std::to_string(h.section_count));
  }
  if (h.section_count > kMaxSectionCount) {
    return Corrupt("section count " + std::to_string(h.section_count) +
                   " is implausibly large");
  }
  const uint64_t table_bytes =
      uint64_t{h.section_count} * sizeof(SectionEntry);
  const uint64_t table_offset =
      h.table_offset == 0 ? sizeof(FileHeader) : h.table_offset;
  if (table_offset % kSectionAlignment != 0 ||
      table_offset < sizeof(FileHeader) || table_offset > limit) {
    return Corrupt("section table offset " +
                   std::to_string(h.table_offset) + " is invalid");
  }
  if (limit - table_offset < table_bytes) {
    return Corrupt("truncated section table");
  }
  reader.sections_.resize(h.section_count);
  std::memcpy(reader.sections_.data(), base + table_offset, table_bytes);
  if (Fnv1a64(reader.sections_.data(), table_bytes) != h.table_checksum) {
    return Corrupt("section table checksum mismatch");
  }

  // Singleton sections are unique; the two transaction columns may
  // appear as several blocks (one pair per append session).
  const uint32_t max_id = v2 ? kNumSectionsV2 : kNumSectionsV1;
  const SectionEntry* by_id[kNumSectionsV2] = {};
  std::vector<const SectionEntry*> offsets_blocks;
  std::vector<const SectionEntry*> items_blocks;
  for (const SectionEntry& e : reader.sections_) {
    if (e.id < 1 || e.id > max_id) {
      return Corrupt("unknown section id " + std::to_string(e.id) +
                     " for a version-" + std::to_string(h.version) +
                     " file");
    }
    if (e.offset % kSectionAlignment != 0) {
      return Corrupt(std::string(SectionIdName(SectionId(e.id))) +
                     " section is misaligned");
    }
    if (e.offset > limit || limit - e.offset < e.size) {
      return Corrupt(std::string(SectionIdName(SectionId(e.id))) +
                     " section extends past end of file");
    }
    const bool column = v2 && (e.id == static_cast<uint32_t>(
                                           SectionId::kTxnOffsets) ||
                               e.id == static_cast<uint32_t>(
                                           SectionId::kTxnItems));
    if (column) {
      (e.id == static_cast<uint32_t>(SectionId::kTxnOffsets)
           ? offsets_blocks
           : items_blocks)
          .push_back(&e);
      continue;
    }
    if (by_id[e.id - 1] != nullptr) {
      return Corrupt(std::string("duplicate section ") +
                     SectionIdName(SectionId(e.id)));
    }
    by_id[e.id - 1] = &e;
  }
  for (uint32_t id = 1; id <= max_id; ++id) {
    const bool column = v2 && (id == static_cast<uint32_t>(
                                         SectionId::kTxnOffsets) ||
                               id == static_cast<uint32_t>(
                                         SectionId::kTxnItems));
    if (!column && by_id[id - 1] == nullptr) {
      return Corrupt(std::string("missing section ") +
                     SectionIdName(SectionId(id)));
    }
  }
  if (v2 && (offsets_blocks.empty() ||
             offsets_blocks.size() != items_blocks.size())) {
    return Corrupt("column blocks are unpaired: " +
                   std::to_string(offsets_blocks.size()) +
                   " txn_offsets vs " +
                   std::to_string(items_blocks.size()) +
                   " txn_items blocks");
  }
  const auto section = [&](SectionId id) -> const SectionEntry& {
    return *by_id[static_cast<uint32_t>(id) - 1];
  };

  // --- Element counts against the header (fixed-width sections). ---
  if (!v2) {
    FLIPPER_RETURN_IF_ERROR(CheckElementCount(
        section(SectionId::kTxnOffsets), h.num_transactions + 1,
        sizeof(uint64_t)));
    FLIPPER_RETURN_IF_ERROR(CheckElementCount(
        section(SectionId::kTxnItems), h.num_items, sizeof(uint32_t)));
  }
  FLIPPER_RETURN_IF_ERROR(CheckElementCount(
      section(SectionId::kSegments), h.num_segments + 1,
      sizeof(uint64_t)));
  FLIPPER_RETURN_IF_ERROR(CheckElementCount(
      section(SectionId::kDictOffsets), uint64_t{h.dict_size} + 1,
      sizeof(uint64_t)));
  FLIPPER_RETURN_IF_ERROR(CheckElementCount(
      section(SectionId::kTaxParents), h.taxonomy_id_space,
      sizeof(uint32_t)));
  FLIPPER_RETURN_IF_ERROR(CheckElementCount(
      section(SectionId::kTaxRoots), h.taxonomy_num_roots,
      sizeof(uint32_t)));

  const std::span<const uint64_t> segments =
      U64Span(base, section(SectionId::kSegments));
  const std::span<const uint64_t> name_offsets =
      U64Span(base, section(SectionId::kDictOffsets));
  const SectionEntry& blob_entry = section(SectionId::kDictBlob);
  const std::string_view blob(
      reinterpret_cast<const char*>(base + blob_entry.offset),
      static_cast<size_t>(blob_entry.size));
  const std::span<const uint32_t> parents =
      U32Span(base, section(SectionId::kTaxParents));
  const std::span<const uint32_t> roots =
      U32Span(base, section(SectionId::kTaxRoots));

  // --- Cheap structural validation (always on). ---
  if (h.alphabet_size > h.dict_size) {
    return Corrupt("alphabet_size " + std::to_string(h.alphabet_size) +
                   " exceeds dictionary size " +
                   std::to_string(h.dict_size));
  }
  if (h.taxonomy_id_space > h.dict_size) {
    return Corrupt("taxonomy id space " +
                   std::to_string(h.taxonomy_id_space) +
                   " exceeds dictionary size " +
                   std::to_string(h.dict_size));
  }
  if (name_offsets.front() != 0 || name_offsets.back() != blob.size()) {
    return Corrupt("dictionary offsets do not span the name blob");
  }
  for (size_t i = 0; i + 1 < name_offsets.size(); ++i) {
    if (name_offsets[i] > name_offsets[i + 1]) {
      return Corrupt("dictionary offsets are not monotone");
    }
  }
  if (segments.front() != 0 || segments.back() != h.num_transactions) {
    return Corrupt("segment boundaries do not span the transactions");
  }
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i] >= segments[i + 1]) {
      return Corrupt("segment boundaries are not strictly increasing");
    }
  }
  for (const uint32_t parent : parents) {
    if (parent != kInvalidItem && parent >= h.taxonomy_id_space) {
      return Corrupt("taxonomy parent id out of range");
    }
  }
  for (const uint32_t root : roots) {
    if (root >= h.taxonomy_id_space) {
      return Corrupt("taxonomy root id out of range");
    }
  }
  reader.segments_ = segments;

  // --- The transaction columns. ---
  std::span<const uint64_t> offsets;
  std::span<const ItemId> items;
  if (!v2) {
    offsets = U64Span(base, section(SectionId::kTxnOffsets));
    const std::span<const uint32_t> raw_items =
        U32Span(base, section(SectionId::kTxnItems));
    items = std::span<const ItemId>(raw_items.data(), raw_items.size());

    // Payload validation (the O(num_items) scan, v1 only — the v2
    // decode below subsumes it).
    if (options.validate) {
      if (offsets.front() != 0 || offsets.back() != h.num_items) {
        return Corrupt("transaction offsets do not span the items");
      }
      uint32_t max_width = 0;
      ItemId max_item = 0;
      bool any_item = false;
      for (size_t t = 0; t + 1 < offsets.size(); ++t) {
        const uint64_t lo = offsets[t];
        const uint64_t hi = offsets[t + 1];
        if (lo > hi || hi > h.num_items) {
          return Corrupt("transaction offsets are not monotone at txn " +
                         std::to_string(t));
        }
        const uint64_t width = hi - lo;
        if (width > std::numeric_limits<uint32_t>::max()) {
          return Corrupt("transaction width overflows at txn " +
                         std::to_string(t));
        }
        max_width = std::max(max_width, static_cast<uint32_t>(width));
        for (uint64_t i = lo; i < hi; ++i) {
          const ItemId item = items[i];
          if (item >= h.alphabet_size) {
            return Corrupt("item id " + std::to_string(item) +
                           " out of range in txn " + std::to_string(t));
          }
          if (i > lo && items[i - 1] >= item) {
            return Corrupt("items of txn " + std::to_string(t) +
                           " are not sorted and duplicate-free");
          }
          max_item = std::max(max_item, item);
          any_item = true;
        }
      }
      if (max_width != h.max_width) {
        return Corrupt("max_width mismatch: header records " +
                       std::to_string(h.max_width) + ", data has " +
                       std::to_string(max_width));
      }
      const ItemId actual_alphabet = any_item ? max_item + 1 : 0;
      if (actual_alphabet != h.alphabet_size) {
        return Corrupt("alphabet_size mismatch: header records " +
                       std::to_string(h.alphabet_size) + ", data has " +
                       std::to_string(actual_alphabet));
      }
    }
  } else {
    FLIPPER_RETURN_IF_ERROR(reader.DecodeColumnsV2(
        base, offsets_blocks, items_blocks, options.validate));
    offsets = reader.decoded_offsets_;
    items = reader.decoded_items_;
  }

  // --- Reconstruct the taxonomy (canonical: children end up sorted,
  // independent of original edge declaration order). ---
  if (!roots.empty()) {
    TaxonomyBuilder builder;
    for (const uint32_t root : roots) builder.AddRoot(root);
    for (uint32_t id = 0; id < parents.size(); ++id) {
      if (parents[id] != kInvalidItem) {
        Status added = builder.AddEdge(parents[id], id);
        if (!added.ok()) {
          return Corrupt("taxonomy rebuild failed: " + added.message());
        }
      }
    }
    auto built = builder.Build();
    if (!built.ok()) {
      return Corrupt("taxonomy rebuild failed: " +
                     built.status().message());
    }
    reader.taxonomy_ = std::move(built).value();
  } else if (h.taxonomy_id_space != 0) {
    return Corrupt("taxonomy has nodes but no roots");
  }

  // --- Borrowed views over the mapping / decode buffers. ---
  reader.dict_ = ItemDictionary::FromBorrowed(name_offsets, blob);
  reader.db_ = TransactionDb::FromBorrowed(
      offsets, items, h.alphabet_size, h.max_width);

  // --- The v2 segment catalog (validated against the decoded items,
  // then attached to the database for scan skipping). ---
  if (v2) {
    FLIPPER_RETURN_IF_ERROR(reader.DecodeCatalogV2(
        base, section(SectionId::kSegCatalog), options.validate));
    reader.db_.AttachSegmentCatalog(reader.catalog_);
  }
  return reader;
}

Status StoreReader::VerifyChecksums() const {
  const std::byte* base = file_.data();
  for (const SectionEntry& e : sections_) {
    if (Fnv1a64(base + e.offset, static_cast<size_t>(e.size)) !=
        e.checksum) {
      return Corrupt(std::string(SectionIdName(SectionId(e.id))) +
                     " section checksum mismatch");
    }
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace flipper
