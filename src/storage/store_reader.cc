#include "storage/store_reader.h"

#include <bit>
#include <cstring>
#include <limits>

#include "taxonomy/taxonomy_builder.h"

namespace flipper {
namespace storage {
namespace {

Status Corrupt(const std::string& what) {
  return Status::CorruptedData("store file: " + what);
}

std::span<const uint64_t> U64Span(const std::byte* base,
                                  const SectionEntry& e) {
  return {reinterpret_cast<const uint64_t*>(base + e.offset),
          static_cast<size_t>(e.size / sizeof(uint64_t))};
}

std::span<const uint32_t> U32Span(const std::byte* base,
                                  const SectionEntry& e) {
  return {reinterpret_cast<const uint32_t*>(base + e.offset),
          static_cast<size_t>(e.size / sizeof(uint32_t))};
}

/// Requires the section to hold exactly `count` elements of
/// `elem_size` bytes.
Status CheckElementCount(const SectionEntry& e, uint64_t count,
                         uint64_t elem_size) {
  if (e.size % elem_size != 0 || e.size / elem_size != count) {
    return Corrupt(std::string(SectionIdName(SectionId(e.id))) +
                   " section holds " + std::to_string(e.size) +
                   " bytes, expected " + std::to_string(count) +
                   " x " + std::to_string(elem_size));
  }
  return Status::OK();
}

}  // namespace

Result<StoreReader> StoreReader::Open(const std::string& path,
                                      const OpenOptions& options) {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::Internal(
        "FlipperStore requires a little-endian host (fixed LE format)");
  }
  StoreReader reader;
  FLIPPER_ASSIGN_OR_RETURN(reader.file_,
                           MmapFile::Open(path, options.force_heap));
  const std::byte* base = reader.file_.data();
  const uint64_t file_size = reader.file_.size();

  // --- Header. ---
  if (file_size < sizeof(FileHeader)) {
    return Corrupt("truncated header (" + std::to_string(file_size) +
                   " bytes, need " + std::to_string(sizeof(FileHeader)) +
                   "): " + path);
  }
  FileHeader& h = reader.header_;
  std::memcpy(&h, base, sizeof(h));
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt("bad magic, not a FlipperStore file: " + path);
  }
  if (h.version != kFormatVersion) {
    return Status::InvalidArgument(
        "unsupported store version " + std::to_string(h.version) +
        " (this build reads version " + std::to_string(kFormatVersion) +
        "): " + path);
  }
  if (HeaderChecksum(h) != h.header_checksum) {
    return Corrupt("header checksum mismatch: " + path);
  }
  if (h.file_size != file_size) {
    return Corrupt("file size mismatch (truncated?): header records " +
                   std::to_string(h.file_size) + " bytes, file has " +
                   std::to_string(file_size));
  }
  if (h.num_transactions >
      static_cast<uint64_t>(std::numeric_limits<TxnId>::max())) {
    return Corrupt("transaction count exceeds the TxnId range");
  }

  // --- Section table. ---
  if (h.section_count != kNumSections) {
    return Corrupt("version-1 files carry " +
                   std::to_string(kNumSections) + " sections, found " +
                   std::to_string(h.section_count));
  }
  const uint64_t table_bytes =
      uint64_t{h.section_count} * sizeof(SectionEntry);
  if (file_size - sizeof(FileHeader) < table_bytes) {
    return Corrupt("truncated section table");
  }
  reader.sections_.resize(h.section_count);
  std::memcpy(reader.sections_.data(), base + sizeof(FileHeader),
              table_bytes);
  if (Fnv1a64(reader.sections_.data(), table_bytes) != h.table_checksum) {
    return Corrupt("section table checksum mismatch");
  }

  const SectionEntry* by_id[kNumSections] = {};
  for (const SectionEntry& e : reader.sections_) {
    if (e.id < 1 || e.id > kNumSections) {
      return Corrupt("unknown section id " + std::to_string(e.id));
    }
    if (by_id[e.id - 1] != nullptr) {
      return Corrupt(std::string("duplicate section ") +
                     SectionIdName(SectionId(e.id)));
    }
    if (e.offset % kSectionAlignment != 0) {
      return Corrupt(std::string(SectionIdName(SectionId(e.id))) +
                     " section is misaligned");
    }
    if (e.offset > file_size || file_size - e.offset < e.size) {
      return Corrupt(std::string(SectionIdName(SectionId(e.id))) +
                     " section extends past end of file");
    }
    by_id[e.id - 1] = &e;
  }
  const auto section = [&](SectionId id) -> const SectionEntry& {
    return *by_id[static_cast<uint32_t>(id) - 1];
  };

  // --- Element counts against the header. ---
  FLIPPER_RETURN_IF_ERROR(CheckElementCount(
      section(SectionId::kTxnOffsets), h.num_transactions + 1,
      sizeof(uint64_t)));
  FLIPPER_RETURN_IF_ERROR(CheckElementCount(
      section(SectionId::kTxnItems), h.num_items, sizeof(uint32_t)));
  FLIPPER_RETURN_IF_ERROR(CheckElementCount(
      section(SectionId::kSegments), h.num_segments + 1,
      sizeof(uint64_t)));
  FLIPPER_RETURN_IF_ERROR(CheckElementCount(
      section(SectionId::kDictOffsets), uint64_t{h.dict_size} + 1,
      sizeof(uint64_t)));
  FLIPPER_RETURN_IF_ERROR(CheckElementCount(
      section(SectionId::kTaxParents), h.taxonomy_id_space,
      sizeof(uint32_t)));
  FLIPPER_RETURN_IF_ERROR(CheckElementCount(
      section(SectionId::kTaxRoots), h.taxonomy_num_roots,
      sizeof(uint32_t)));

  const std::span<const uint64_t> offsets =
      U64Span(base, section(SectionId::kTxnOffsets));
  const std::span<const uint32_t> items =
      U32Span(base, section(SectionId::kTxnItems));
  const std::span<const uint64_t> segments =
      U64Span(base, section(SectionId::kSegments));
  const std::span<const uint64_t> name_offsets =
      U64Span(base, section(SectionId::kDictOffsets));
  const SectionEntry& blob_entry = section(SectionId::kDictBlob);
  const std::string_view blob(
      reinterpret_cast<const char*>(base + blob_entry.offset),
      static_cast<size_t>(blob_entry.size));
  const std::span<const uint32_t> parents =
      U32Span(base, section(SectionId::kTaxParents));
  const std::span<const uint32_t> roots =
      U32Span(base, section(SectionId::kTaxRoots));

  // --- Cheap structural validation (always on). ---
  if (h.alphabet_size > h.dict_size) {
    return Corrupt("alphabet_size " + std::to_string(h.alphabet_size) +
                   " exceeds dictionary size " +
                   std::to_string(h.dict_size));
  }
  if (h.taxonomy_id_space > h.dict_size) {
    return Corrupt("taxonomy id space " +
                   std::to_string(h.taxonomy_id_space) +
                   " exceeds dictionary size " +
                   std::to_string(h.dict_size));
  }
  if (name_offsets.front() != 0 || name_offsets.back() != blob.size()) {
    return Corrupt("dictionary offsets do not span the name blob");
  }
  for (size_t i = 0; i + 1 < name_offsets.size(); ++i) {
    if (name_offsets[i] > name_offsets[i + 1]) {
      return Corrupt("dictionary offsets are not monotone");
    }
  }
  if (segments.front() != 0 || segments.back() != h.num_transactions) {
    return Corrupt("segment boundaries do not span the transactions");
  }
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i] >= segments[i + 1]) {
      return Corrupt("segment boundaries are not strictly increasing");
    }
  }
  for (const uint32_t parent : parents) {
    if (parent != kInvalidItem && parent >= h.taxonomy_id_space) {
      return Corrupt("taxonomy parent id out of range");
    }
  }
  for (const uint32_t root : roots) {
    if (root >= h.taxonomy_id_space) {
      return Corrupt("taxonomy root id out of range");
    }
  }

  // --- Payload validation (the O(num_items) scan). ---
  if (options.validate) {
    if (offsets.front() != 0 || offsets.back() != h.num_items) {
      return Corrupt("transaction offsets do not span the items");
    }
    uint32_t max_width = 0;
    ItemId max_item = 0;
    bool any_item = false;
    for (size_t t = 0; t + 1 < offsets.size(); ++t) {
      const uint64_t lo = offsets[t];
      const uint64_t hi = offsets[t + 1];
      if (lo > hi || hi > h.num_items) {
        return Corrupt("transaction offsets are not monotone at txn " +
                       std::to_string(t));
      }
      const uint64_t width = hi - lo;
      if (width > std::numeric_limits<uint32_t>::max()) {
        return Corrupt("transaction width overflows at txn " +
                       std::to_string(t));
      }
      max_width = std::max(max_width, static_cast<uint32_t>(width));
      for (uint64_t i = lo; i < hi; ++i) {
        const ItemId item = items[i];
        if (item >= h.alphabet_size) {
          return Corrupt("item id " + std::to_string(item) +
                         " out of range in txn " + std::to_string(t));
        }
        if (i > lo && items[i - 1] >= item) {
          return Corrupt("items of txn " + std::to_string(t) +
                         " are not sorted and duplicate-free");
        }
        max_item = std::max(max_item, item);
        any_item = true;
      }
    }
    if (max_width != h.max_width) {
      return Corrupt("max_width mismatch: header records " +
                     std::to_string(h.max_width) + ", data has " +
                     std::to_string(max_width));
    }
    const ItemId actual_alphabet = any_item ? max_item + 1 : 0;
    if (actual_alphabet != h.alphabet_size) {
      return Corrupt("alphabet_size mismatch: header records " +
                     std::to_string(h.alphabet_size) + ", data has " +
                     std::to_string(actual_alphabet));
    }
  }

  // --- Reconstruct the taxonomy (canonical: children end up sorted,
  // independent of original edge declaration order). ---
  if (!roots.empty()) {
    TaxonomyBuilder builder;
    for (const uint32_t root : roots) builder.AddRoot(root);
    for (uint32_t id = 0; id < parents.size(); ++id) {
      if (parents[id] != kInvalidItem) {
        Status added = builder.AddEdge(parents[id], id);
        if (!added.ok()) {
          return Corrupt("taxonomy rebuild failed: " + added.message());
        }
      }
    }
    auto built = builder.Build();
    if (!built.ok()) {
      return Corrupt("taxonomy rebuild failed: " +
                     built.status().message());
    }
    reader.taxonomy_ = std::move(built).value();
  } else if (h.taxonomy_id_space != 0) {
    return Corrupt("taxonomy has nodes but no roots");
  }

  // --- Borrowed views over the mapping. ---
  reader.dict_ = ItemDictionary::FromBorrowed(name_offsets, blob);
  reader.db_ = TransactionDb::FromBorrowed(
      offsets, std::span<const ItemId>(items.data(), items.size()),
      h.alphabet_size, h.max_width);
  reader.segments_ = segments;
  return reader;
}

Status StoreReader::VerifyChecksums() const {
  const std::byte* base = file_.data();
  for (const SectionEntry& e : sections_) {
    if (Fnv1a64(base + e.offset, static_cast<size_t>(e.size)) !=
        e.checksum) {
      return Corrupt(std::string(SectionIdName(SectionId(e.id))) +
                     " section checksum mismatch");
    }
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace flipper
