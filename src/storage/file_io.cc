#include "storage/file_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define FLIPPER_HAVE_POSIX_IO 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <filesystem>
#endif

namespace flipper {
namespace storage {

Status IoErrnoError(const std::string& what, const std::string& path) {
  const int err = errno;
  std::string msg = what + ": " + path;
  if (err != 0) {
    msg += " (";
    msg += std::strerror(err);
    msg += ", errno ";
    msg += std::to_string(err);
    msg += ")";
  }
  return Status::IoError(std::move(msg));
}

namespace {

/// Directory component of `path` ("." when there is none), for
/// SyncDir.
std::string DirnameOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

// --- POSIX implementation (stdio buffering + fsync). ---

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(const void* data, size_t size) override {
    if (size == 0) return Status::OK();
    if (std::fwrite(data, 1, size, file_) != size) {
      return IoErrnoError("write failed", path_);
    }
    return Status::OK();
  }

  Status WriteAt(uint64_t offset, const void* data, size_t size) override {
    // Flush around the seek so buffered appends land before the
    // overwrite and the append position is restored afterwards.
    if (std::fflush(file_) != 0) {
      return IoErrnoError("flush failed", path_);
    }
    const auto saved = FileTell();
    if (saved < 0) return IoErrnoError("tell failed", path_);
    if (FileSeek(static_cast<int64_t>(offset)) != 0) {
      return IoErrnoError("seek failed", path_);
    }
    if (size > 0 && std::fwrite(data, 1, size, file_) != size) {
      return IoErrnoError("write failed", path_);
    }
    if (std::fflush(file_) != 0) {
      return IoErrnoError("flush failed", path_);
    }
    if (FileSeek(saved) != 0) {
      return IoErrnoError("seek failed", path_);
    }
    return Status::OK();
  }

  Status Flush() override {
    if (std::fflush(file_) != 0) {
      return IoErrnoError("flush failed", path_);
    }
    return Status::OK();
  }

  Status Sync() override {
    FLIPPER_RETURN_IF_ERROR(Flush());
#if FLIPPER_HAVE_POSIX_IO
    if (::fsync(fileno(file_)) != 0) {
      return IoErrnoError("fsync failed", path_);
    }
#endif
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    std::FILE* f = file_;
    file_ = nullptr;
    if (std::fclose(f) != 0) {
      return IoErrnoError("close failed", path_);
    }
    return Status::OK();
  }

 private:
  int64_t FileTell() {
#if FLIPPER_HAVE_POSIX_IO
    return static_cast<int64_t>(::ftello(file_));
#else
    return static_cast<int64_t>(std::ftell(file_));
#endif
  }
  int FileSeek(int64_t offset) {
#if FLIPPER_HAVE_POSIX_IO
    return ::fseeko(file_, static_cast<off_t>(offset), SEEK_SET);
#else
    return std::fseek(file_, static_cast<long>(offset), SEEK_SET);
#endif
  }

  std::FILE* file_;
  std::string path_;
};

class PosixFileSystem : public FileSystem {
 public:
  Result<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path, bool truncate) override {
    // "r+b" (append mode starts at the existing end, but never
    // creates) keeps accidental creation of a store we meant to
    // append to an explicit error.
    std::FILE* f = std::fopen(path.c_str(), truncate ? "wb" : "r+b");
    if (f == nullptr) {
      return IoErrnoError("cannot open for writing", path);
    }
#if FLIPPER_HAVE_POSIX_IO
    const bool seek_failed = !truncate && ::fseeko(f, 0, SEEK_END) != 0;
#else
    const bool seek_failed = !truncate && std::fseek(f, 0, SEEK_END) != 0;
#endif
    if (seek_failed) {
      Status seek = IoErrnoError("seek failed", path);
      std::fclose(f);
      return seek;
    }
    return std::unique_ptr<WritableFile>(
        new PosixWritableFile(f, path));
  }

  Result<uint64_t> FileSize(const std::string& path) override {
#if FLIPPER_HAVE_POSIX_IO
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return IoErrnoError("cannot stat", path);
    }
    return static_cast<uint64_t>(st.st_size);
#else
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec) {
      return Status::IoError("cannot stat: " + path + " (" +
                             ec.message() + ")");
    }
    return static_cast<uint64_t>(size);
#endif
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return IoErrnoError("rename to " + to + " failed", from);
    }
    return Status::OK();
  }

  Status Remove(const std::string& path) override {
    if (std::remove(path.c_str()) != 0) {
      return IoErrnoError("remove failed", path);
    }
    return Status::OK();
  }

  Status Truncate(const std::string& path, uint64_t size) override {
#if FLIPPER_HAVE_POSIX_IO
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return IoErrnoError(
          "truncate to " + std::to_string(size) + " bytes failed", path);
    }
    return Status::OK();
#else
    std::error_code ec;
    std::filesystem::resize_file(path, size, ec);
    if (ec) {
      return Status::IoError("truncate to " + std::to_string(size) +
                             " bytes failed: " + path + " (" +
                             ec.message() + ")");
    }
    return Status::OK();
#endif
  }

  Status SyncDir(const std::string& path) override {
#if FLIPPER_HAVE_POSIX_IO
    const std::string dir = DirnameOf(path);
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) return IoErrnoError("cannot open directory", dir);
    const int rc = ::fsync(fd);
    const int err = errno;
    ::close(fd);
    // Some filesystems refuse to fsync a directory handle; the rename
    // is still ordered by the later data fsyncs there.
    if (rc != 0 && err != EINVAL && err != EBADF) {
      errno = err;
      return IoErrnoError("fsync of directory failed", dir);
    }
#else
    (void)path;
#endif
    return Status::OK();
  }
};

Status InjectedFault(const std::string& what, const std::string& path) {
  return Status::IoError("injected fault: " + what + ": " + path);
}

}  // namespace

/// The WritableFile decorator behind FaultInjectingFileSystem. Every
/// admitted byte is flushed through to the base file immediately, so
/// the on-disk prefix equals bytes_written() even when the fault
/// model forbids a clean Close().
class FaultFile : public WritableFile {
 public:
  FaultFile(FaultInjectingFileSystem* fs,
            std::unique_ptr<WritableFile> base, std::string path)
      : fs_(fs), base_(std::move(base)), path_(std::move(path)) {}

  Status Append(const void* data, size_t size) override {
    return Admit(data, size, /*positioned=*/false, 0);
  }

  Status WriteAt(uint64_t offset, const void* data, size_t size) override {
    return Admit(data, size, /*positioned=*/true, offset);
  }

  Status Flush() override {
    FLIPPER_RETURN_IF_ERROR(WriteGuard());
    return base_->Flush();
  }

  Status Sync() override {
    FLIPPER_RETURN_IF_ERROR(WriteGuard());
    const uint64_t index = fs_->syncs_++;
    if (index == fs_->plan_.sync_budget) {
      fs_->triggered_ = true;
      return InjectedFault("fsync failed", path_);
    }
    return base_->Sync();
  }

  Status Close() override {
    FLIPPER_RETURN_IF_ERROR(fs_->CrashGuard());
    return base_->Close();
  }

 private:
  /// Writes fail once the fault has triggered, in either mode.
  Status WriteGuard() const {
    FLIPPER_RETURN_IF_ERROR(fs_->CrashGuard());
    if (fs_->triggered_) return InjectedFault("write stream dead", path_);
    return Status::OK();
  }

  Status Admit(const void* data, size_t size, bool positioned,
               uint64_t offset) {
    FLIPPER_RETURN_IF_ERROR(WriteGuard());
    const uint64_t budget = fs_->plan_.write_budget;
    const uint64_t room =
        budget > fs_->bytes_written_ ? budget - fs_->bytes_written_ : 0;
    const uint64_t admitted = size <= room ? size : room;
    if (admitted > 0) {
      FLIPPER_RETURN_IF_ERROR(
          positioned ? base_->WriteAt(offset, data, admitted)
                     : base_->Append(data, admitted));
      // Push the admitted prefix to the OS now; after a trigger no
      // clean Close() will run to do it.
      FLIPPER_RETURN_IF_ERROR(base_->Flush());
      fs_->bytes_written_ += admitted;
    }
    if (admitted < size) {
      fs_->triggered_ = true;
      return InjectedFault(
          "write stream killed after " +
              std::to_string(fs_->bytes_written_) + " bytes",
          path_);
    }
    return Status::OK();
  }

  FaultInjectingFileSystem* fs_;
  std::unique_ptr<WritableFile> base_;
  std::string path_;
};

FileSystem* FileSystem::Default() {
  static PosixFileSystem* fs = new PosixFileSystem();
  return fs;
}

Status FaultInjectingFileSystem::CrashGuard() const {
  if (triggered_ && plan_.mode == FaultMode::kCrash) {
    return Status::IoError(
        "injected fault: filesystem dead (simulated crash)");
  }
  return Status::OK();
}

Result<std::unique_ptr<WritableFile>>
FaultInjectingFileSystem::OpenWritable(const std::string& path,
                                       bool truncate) {
  FLIPPER_RETURN_IF_ERROR(CrashGuard());
  FLIPPER_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                           base_->OpenWritable(path, truncate));
  return std::unique_ptr<WritableFile>(
      new FaultFile(this, std::move(base), path));
}

Result<uint64_t> FaultInjectingFileSystem::FileSize(
    const std::string& path) {
  FLIPPER_RETURN_IF_ERROR(CrashGuard());
  return base_->FileSize(path);
}

Status FaultInjectingFileSystem::Rename(const std::string& from,
                                        const std::string& to) {
  FLIPPER_RETURN_IF_ERROR(CrashGuard());
  return base_->Rename(from, to);
}

Status FaultInjectingFileSystem::Remove(const std::string& path) {
  FLIPPER_RETURN_IF_ERROR(CrashGuard());
  return base_->Remove(path);
}

Status FaultInjectingFileSystem::Truncate(const std::string& path,
                                          uint64_t size) {
  FLIPPER_RETURN_IF_ERROR(CrashGuard());
  return base_->Truncate(path, size);
}

Status FaultInjectingFileSystem::SyncDir(const std::string& path) {
  FLIPPER_RETURN_IF_ERROR(CrashGuard());
  return base_->SyncDir(path);
}

}  // namespace storage
}  // namespace flipper
