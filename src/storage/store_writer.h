// StoreWriter: streams a mining input into a .fdb FlipperStore file.
//
// Transactions are appended one at a time and their items flow
// straight to disk (raw u32 for v1, delta+varint for v2), so a
// generator can emit datasets larger than RAM without ever building a
// full TransactionDb in memory; only the CSR offsets (8 bytes per
// transaction), segment boundaries and per-segment catalog records
// (v2) are buffered until Finish(). The dictionary and taxonomy are
// written at Finish() so callers may keep interning names while
// appending.
//
// Durability. All disk traffic goes through storage/file_io.h.
// Create() writes to `path + ".tmp"` and only renames over `path`
// after a successful fsync, so a crashed fresh write never leaves a
// half-written store at the final path; failed writers remove their
// temp file (on error or on destruction). OpenAppend() extends an
// existing v2 store in place with the commit protocol described in
// format.h: new data strictly after the committed bytes, a trailing
// section-table + header as the commit record, the front header
// rewritten last. A crash mid-append leaves the base store intact
// (torn tails are removed by `flipper_cli repair`); a failed append
// session truncates back to the base store before returning.
//
// The v2 segment catalog tracks exact per-segment supports for the
// globally most frequent items; because "most frequent" is only known
// once every transaction has been appended, Finish() re-reads the
// just-written items column once (chunked, O(1) memory) to fill those
// counts — streaming memory stays bounded by the offsets buffer. An
// append session re-reads the base store's item blocks too, because
// appended transactions can change the tracked set for every segment.

#ifndef FLIPPER_STORAGE_STORE_WRITER_H_
#define FLIPPER_STORAGE_STORE_WRITER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/item_dictionary.h"
#include "data/segment_catalog.h"
#include "data/transaction_db.h"
#include "storage/file_io.h"
#include "storage/format.h"
#include "taxonomy/taxonomy.h"

namespace flipper {
namespace storage {

class StoreWriter {
 public:
  struct Options {
    /// Transactions per shard segment. Segments partition the file for
    /// sharded scans (LevelViews::ScanShards-style static splits) and
    /// are the granularity of v2 scan skipping.
    uint32_t segment_txns = 1u << 16;
    /// On-disk format version: kFormatVersionV1 (raw fixed-width
    /// columns, zero-copy mmap reads) or kFormatVersionV2 (delta+varint
    /// columns plus the segment catalog).
    uint32_t version = kFormatVersionLatest;
    /// v2 only: top-frequency items whose exact per-segment supports
    /// the catalog records.
    uint32_t catalog_tracked_items = SegmentCatalog::kDefaultTrackedItems;
    /// v2 only: 64-bit bitset words per segment in the catalog.
    uint32_t catalog_bitset_words = SegmentCatalog::kDefaultBitsetWords;
  };

  struct AppendOptions {
    /// Transactions per new shard segment; 0 infers the base store's
    /// segment size (the widest existing segment). Every append
    /// session starts a new segment — existing segments are immutable.
    uint32_t segment_txns = 0;
    /// Tracked items for the rewritten catalog (the tracked set is
    /// recomputed over the whole store at commit).
    uint32_t catalog_tracked_items = SegmentCatalog::kDefaultTrackedItems;
  };

  /// Starts a fresh store: writes to `path + ".tmp"` and atomically
  /// renames onto `path` when Finish() commits. `fs` null = the real
  /// filesystem.
  static Result<StoreWriter> Create(const std::string& path,
                                    const Options& options,
                                    FileSystem* fs = nullptr);
  static Result<StoreWriter> Create(const std::string& path) {
    return Create(path, Options());
  }

  /// Starts an append session on an existing, fully committed
  /// version-2 store (v1 stores are read-only; a torn file must be
  /// repaired first — this validates like StoreReader::Open).
  /// Appended transactions go into new segments; Finish() commits them
  /// with the crash-safe trailer protocol, and the dictionary/taxonomy
  /// passed to Finish() may only *extend* the ones already on disk.
  static Result<StoreWriter> OpenAppend(const std::string& path,
                                        const AppendOptions& options,
                                        FileSystem* fs = nullptr);
  static Result<StoreWriter> OpenAppend(const std::string& path) {
    return OpenAppend(path, AppendOptions());
  }

  /// Abandons an unfinished session: removes the temp file (fresh) or
  /// truncates back to the base store (append). No-op after Finish().
  ~StoreWriter();

  StoreWriter(StoreWriter&&) = default;
  StoreWriter& operator=(StoreWriter&&) = default;
  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;

  /// Appends one transaction; items are copied, sorted and deduped
  /// (TransactionDb::Add semantics). Invalid after Finish(); after an
  /// error the writer has cleaned up and refuses further use.
  Status Append(std::span<const ItemId> items);

  /// Commits: writes the remaining sections plus the final checksummed
  /// header, fsyncs, and (fresh mode) renames the temp file into
  /// place. `dict` must name every appended item and every taxonomy
  /// node. Call exactly once.
  Status Finish(const ItemDictionary& dict, const Taxonomy& taxonomy);

  uint64_t num_transactions() const { return offsets_.size() - 1; }
  uint64_t num_items() const { return offsets_.back(); }
  /// Transactions added by this session (== num_transactions() for a
  /// fresh writer).
  uint64_t appended_transactions() const {
    return num_transactions() - base_txns_;
  }

 private:
  /// A contiguous byte range of the items column on disk (one block
  /// per session; the base store contributes one extent per earlier
  /// session).
  struct Extent {
    uint64_t offset = 0;
    uint64_t size = 0;
  };

  StoreWriter() = default;

  Status AppendImpl(std::span<const ItemId> items);
  Status FinishImpl(const ItemDictionary& dict, const Taxonomy& taxonomy);
  /// Best-effort cleanup of an unfinished session (see ~StoreWriter).
  void Abandon();

  /// Appends raw bytes to the file, folding them into `checksum`.
  Status WriteBytes(const void* data, size_t size, uint64_t* checksum);
  /// Pads the file to the section alignment.
  Status Pad();
  /// Writes one fully buffered section, appending its table entry to
  /// `table`.
  Status WriteSection(SectionId id, const void* data, size_t size,
                      std::vector<SectionEntry>* table);
  /// Closes the current catalog segment record (v2).
  void FlushCatalogSegment();
  /// Re-reads the items column (`extents`, in transaction order) and
  /// accumulates per-segment supports for `tracked_ids` into
  /// `supports` (segments x tracked, v2).
  Status CountTrackedSupports(std::span<const Extent> extents,
                              std::span<const ItemId> tracked_ids,
                              std::vector<uint32_t>* supports) const;

  Options options_;
  FileSystem* fs_ = nullptr;
  std::string final_path_;  // the store path
  std::string write_path_;  // temp path (fresh) or final_path_ (append)
  std::unique_ptr<WritableFile> file_;
  uint64_t file_pos_ = 0;
  std::vector<uint64_t> offsets_ = {0};
  std::vector<uint64_t> segments_ = {0};
  std::vector<ItemId> scratch_;
  std::vector<uint8_t> encode_scratch_;
  uint64_t items_checksum_ = kFnvOffsetBasis;
  uint64_t items_start_ = 0;
  ItemId alphabet_size_ = 0;
  uint32_t max_width_ = 0;
  uint32_t txns_in_open_segment_ = 0;
  bool finished_ = false;

  // --- Append-session state (defaults describe a fresh writer). ---
  bool append_mode_ = false;
  /// The commit trailer has been fsynced: the session is durable, so
  /// later failures must not roll the file back (see Finish()).
  bool commit_trailer_durable_ = false;
  uint64_t base_file_size_ = 0;  // committed size to roll back to
  uint64_t base_txns_ = 0;
  std::vector<SectionEntry> base_offsets_blocks_;  // table order
  std::vector<SectionEntry> base_items_blocks_;
  std::vector<std::string> base_names_;   // dictionary prefix to honor
  std::vector<ItemId> base_parents_;      // taxonomy prefix to honor
  std::vector<ItemId> base_roots_;

  // --- v2 catalog accumulation (empty for v1). ---
  std::vector<uint32_t> item_freq_;     // global, grown on demand
  std::vector<ItemId> seg_min_;         // per flushed segment
  std::vector<ItemId> seg_max_;
  std::vector<uint64_t> seg_bits_;      // flushed segments x words
  ItemId cur_seg_min_ = kInvalidItem;   // open segment accumulator
  ItemId cur_seg_max_ = 0;
  std::vector<uint64_t> cur_seg_bits_;
};

/// Convenience wrapper: streams an in-memory database into `path`.
Status WriteStoreFile(const std::string& path, const TransactionDb& db,
                      const ItemDictionary& dict, const Taxonomy& taxonomy,
                      const StoreWriter::Options& options = {},
                      FileSystem* fs = nullptr);

}  // namespace storage
}  // namespace flipper

#endif  // FLIPPER_STORAGE_STORE_WRITER_H_
