// StoreWriter: streams a mining input into a .fdb FlipperStore file.
//
// Transactions are appended one at a time and their items flow
// straight to disk (raw u32 for v1, delta+varint for v2), so a
// generator can emit datasets larger than RAM without ever building a
// full TransactionDb in memory; only the CSR offsets (8 bytes per
// transaction), segment boundaries and per-segment catalog records
// (v2) are buffered until Finish(). The dictionary and taxonomy are
// written at Finish() so callers may keep interning names while
// appending.
//
// The v2 segment catalog tracks exact per-segment supports for the
// globally most frequent items; because "most frequent" is only known
// once every transaction has been appended, Finish() re-reads the
// just-written items column once (chunked, O(1) memory) to fill those
// counts — streaming memory stays bounded by the offsets buffer.

#ifndef FLIPPER_STORAGE_STORE_WRITER_H_
#define FLIPPER_STORAGE_STORE_WRITER_H_

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/item_dictionary.h"
#include "data/segment_catalog.h"
#include "data/transaction_db.h"
#include "storage/format.h"
#include "taxonomy/taxonomy.h"

namespace flipper {
namespace storage {

class StoreWriter {
 public:
  struct Options {
    /// Transactions per shard segment. Segments partition the file for
    /// sharded scans (LevelViews::ScanShards-style static splits) and
    /// are the granularity of v2 scan skipping.
    uint32_t segment_txns = 1u << 16;
    /// On-disk format version: kFormatVersionV1 (raw fixed-width
    /// columns, zero-copy mmap reads) or kFormatVersionV2 (delta+varint
    /// columns plus the segment catalog).
    uint32_t version = kFormatVersionLatest;
    /// v2 only: top-frequency items whose exact per-segment supports
    /// the catalog records.
    uint32_t catalog_tracked_items = SegmentCatalog::kDefaultTrackedItems;
    /// v2 only: 64-bit bitset words per segment in the catalog.
    uint32_t catalog_bitset_words = SegmentCatalog::kDefaultBitsetWords;
  };

  /// Creates/truncates `path` and writes a placeholder header.
  static Result<StoreWriter> Create(const std::string& path,
                                    const Options& options);
  static Result<StoreWriter> Create(const std::string& path) {
    return Create(path, Options());
  }

  StoreWriter(StoreWriter&&) = default;
  StoreWriter& operator=(StoreWriter&&) = default;
  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;

  /// Appends one transaction; items are copied, sorted and deduped
  /// (TransactionDb::Add semantics). Invalid after Finish().
  Status Append(std::span<const ItemId> items);

  /// Writes the remaining sections plus the final checksummed header
  /// and closes the file. `dict` must name every appended item and
  /// every taxonomy node. Call exactly once.
  Status Finish(const ItemDictionary& dict, const Taxonomy& taxonomy);

  uint64_t num_transactions() const { return offsets_.size() - 1; }
  uint64_t num_items() const { return offsets_.back(); }

 private:
  StoreWriter() = default;

  /// Appends raw bytes to the file, folding them into `checksum`.
  Status WriteBytes(const void* data, size_t size, uint64_t* checksum);
  /// Pads the file to the section alignment.
  Status Pad();
  /// Writes one fully buffered section and records its table entry.
  Status WriteSection(SectionId id, const void* data, size_t size);
  /// Closes the current catalog segment record (v2).
  void FlushCatalogSegment();
  /// Re-reads the items column (`items_bytes` encoded bytes starting
  /// at items_start_) and accumulates per-segment supports for
  /// `tracked_ids` into `supports` (segments x tracked, v2).
  Status CountTrackedSupports(uint64_t items_bytes,
                              std::span<const ItemId> tracked_ids,
                              std::vector<uint32_t>* supports) const;

  Options options_;
  std::string path_;
  std::ofstream file_;
  uint64_t file_pos_ = 0;
  std::vector<uint64_t> offsets_ = {0};
  std::vector<uint64_t> segments_ = {0};
  std::vector<ItemId> scratch_;
  std::vector<uint8_t> encode_scratch_;
  std::vector<SectionEntry> sections_;
  uint64_t items_checksum_ = kFnvOffsetBasis;
  uint64_t items_start_ = 0;
  ItemId alphabet_size_ = 0;
  uint32_t max_width_ = 0;
  bool finished_ = false;

  // --- v2 catalog accumulation (empty for v1). ---
  std::vector<uint32_t> item_freq_;     // global, grown on demand
  std::vector<ItemId> seg_min_;         // per flushed segment
  std::vector<ItemId> seg_max_;
  std::vector<uint64_t> seg_bits_;      // flushed segments x words
  ItemId cur_seg_min_ = kInvalidItem;   // open segment accumulator
  ItemId cur_seg_max_ = 0;
  std::vector<uint64_t> cur_seg_bits_;
};

/// Convenience wrapper: streams an in-memory database into `path`.
Status WriteStoreFile(const std::string& path, const TransactionDb& db,
                      const ItemDictionary& dict, const Taxonomy& taxonomy,
                      const StoreWriter::Options& options = {});

}  // namespace storage
}  // namespace flipper

#endif  // FLIPPER_STORAGE_STORE_WRITER_H_
