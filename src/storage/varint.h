// LEB128 varints for the v2 FlipperStore columns. Values are written
// 7 bits at a time, low group first, with the high bit of every byte
// except the last set — small deltas (the common case for sorted item
// gaps and transaction widths) take one byte.
//
// Decoding is bounds-checked against an explicit end pointer and a
// 10-byte length cap, so a truncated or malformed column surfaces as a
// Status error at the storage layer, never as an out-of-bounds read.

#ifndef FLIPPER_STORAGE_VARINT_H_
#define FLIPPER_STORAGE_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace flipper {
namespace storage {

/// Longest encoding of a uint64_t (10 x 7 bits >= 64 bits).
inline constexpr size_t kMaxVarintBytes = 10;

/// Appends the varint encoding of `value` to `out`.
inline void PutVarint(uint64_t value, std::vector<uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

/// Decodes one varint from [*pos, end). On success stores the value,
/// advances *pos past it and returns true; returns false on truncation
/// or an over-long (> 10 byte / > 64 bit) encoding, leaving *pos
/// unspecified.
inline bool GetVarint(const uint8_t** pos, const uint8_t* end,
                      uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  const uint8_t* p = *pos;
  while (p < end && shift < 64) {
    const uint8_t byte = *p++;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      // Reject non-canonical bits spilled past the 64-bit boundary.
      if (shift == 63 && (byte & 0x7e) != 0) return false;
      *pos = p;
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace storage
}  // namespace flipper

#endif  // FLIPPER_STORAGE_VARINT_H_
