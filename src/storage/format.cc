#include "storage/format.h"

namespace flipper {
namespace storage {

const char* SectionIdName(SectionId id) {
  switch (id) {
    case SectionId::kTxnOffsets:
      return "txn_offsets";
    case SectionId::kTxnItems:
      return "txn_items";
    case SectionId::kSegments:
      return "segments";
    case SectionId::kDictOffsets:
      return "dict_offsets";
    case SectionId::kDictBlob:
      return "dict_blob";
    case SectionId::kTaxParents:
      return "tax_parents";
    case SectionId::kTaxRoots:
      return "tax_roots";
    case SectionId::kSegCatalog:
      return "seg_catalog";
  }
  return "unknown";
}

uint64_t Fnv1a64(const void* data, size_t size, uint64_t state) {
  constexpr uint64_t kPrime = 0x100000001b3ull;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    state ^= bytes[i];
    state *= kPrime;
  }
  return state;
}

uint64_t HeaderChecksum(const FileHeader& header) {
  FileHeader copy = header;
  copy.header_checksum = 0;
  return Fnv1a64(&copy, sizeof(copy));
}

}  // namespace storage
}  // namespace flipper
