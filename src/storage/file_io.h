// file_io: the seam between the store write path and the operating
// system. Everything that mutates a .fdb on disk — StoreWriter,
// repair — goes through a FileSystem, so tests can substitute
// FaultInjectingFileSystem and kill the write stream at any byte
// offset (crash_recovery_test sweeps every offset of a commit).
//
// WritableFile models a buffered sequential writer with one random
// write primitive (WriteAt, used for the front-header rewrite of the
// commit protocol) and an explicit durability point (Sync -> fsync).
// FileSystem adds the metadata operations a crash-safe commit needs:
// atomic Rename (temp file -> final path), Remove (error-path
// cleanup), Truncate (repair / append rollback) and SyncDir (making a
// rename durable).
//
// Error Statuses from the POSIX implementation always carry the errno
// text and the path ("cannot open for writing: /x/y.fdb (No such
// file or directory, errno 2)"), so a failed ingest names the actual
// file and cause.

#ifndef FLIPPER_STORAGE_FILE_IO_H_
#define FLIPPER_STORAGE_FILE_IO_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace flipper {
namespace storage {

/// Builds an IoError Status as "<what>: <path> (<strerror>, errno N)"
/// from the current `errno` (omits the parenthetical when errno is 0).
/// Call immediately after the failing syscall, before anything else
/// can clobber errno.
Status IoErrnoError(const std::string& what, const std::string& path);

/// A file open for writing. Append() adds bytes at the end of the
/// stream; WriteAt() overwrites in place without moving the append
/// position. Writes may be buffered: nothing is guaranteed on disk
/// until Sync() returns OK. Close() flushes; destruction without
/// Close() abandons the handle (best-effort close, errors ignored).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const void* data, size_t size) = 0;
  virtual Status WriteAt(uint64_t offset, const void* data,
                         size_t size) = 0;
  /// Pushes buffered bytes to the OS (no durability guarantee).
  virtual Status Flush() = 0;
  /// Flush + fsync: bytes written so far survive a crash after OK.
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// The filesystem operations the write path needs. `Default()` is the
/// process-wide POSIX implementation; tests inject faults by passing
/// their own instance wherever a `FileSystem*` is accepted (everywhere
/// a null pointer means Default()).
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Opens `path` for writing. With `truncate` the file is created or
  /// emptied; without it the file must exist and the append position
  /// starts at its current end.
  virtual Result<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path, bool truncate) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status Remove(const std::string& path) = 0;
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;
  /// fsyncs the directory containing `path`, making a completed
  /// Rename/Remove of that entry durable. No-op where unsupported.
  virtual Status SyncDir(const std::string& path) = 0;

  static FileSystem* Default();
};

/// Resolves the convention used across the write path: a null
/// FileSystem pointer means the real one.
inline FileSystem* ResolveFileSystem(FileSystem* fs) {
  return fs != nullptr ? fs : FileSystem::Default();
}

/// What a FaultInjectingFileSystem does once its fault triggers.
///
///  - kCrash models the process dying mid-write: after the trigger
///    every operation on the filesystem fails, including Remove,
///    Rename and Truncate — cleanup code cannot run, exactly like a
///    real crash. What remains on disk is the byte-exact prefix the
///    OS had received.
///  - kFailOp models a recoverable I/O error (disk full, EIO): write
///    operations keep failing but metadata operations (Remove,
///    Truncate, Rename) still succeed, so error-path cleanup runs.
enum class FaultMode { kCrash, kFailOp };

/// Fault plan: the write stream dies after `write_budget` bytes have
/// reached the underlying file (a write that straddles the budget is
/// split: the leading bytes are written, then the fault triggers —
/// a short write). Independently, the `sync_budget`-th Sync() call
/// fails (counting from 0; ~0 disables). See FaultMode for what
/// happens after the trigger.
struct FaultPlan {
  uint64_t write_budget = ~uint64_t{0};
  uint64_t sync_budget = ~uint64_t{0};
  FaultMode mode = FaultMode::kCrash;
};

/// A FileSystem decorator that injects the faults described by a
/// FaultPlan while counting traffic. Every byte that the plan admits
/// is flushed straight through to the base filesystem, so the on-disk
/// state after a triggered fault is exactly the admitted prefix even
/// though the handle is never cleanly closed (the crash model).
/// Single-threaded, like the writers it wraps.
class FaultInjectingFileSystem : public FileSystem {
 public:
  /// Wraps `base` (null = FileSystem::Default()).
  explicit FaultInjectingFileSystem(FileSystem* base = nullptr)
      : base_(ResolveFileSystem(base)) {}

  /// Installs a plan and resets counters and the triggered state.
  void set_plan(const FaultPlan& plan) {
    plan_ = plan;
    triggered_ = false;
    bytes_written_ = 0;
    syncs_ = 0;
  }

  /// Total bytes admitted to the base filesystem since set_plan().
  uint64_t bytes_written() const { return bytes_written_; }
  /// Sync() calls observed since set_plan() (successful or not).
  uint64_t syncs() const { return syncs_; }
  /// Whether the fault has triggered.
  bool triggered() const { return triggered_; }

  Result<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path, bool truncate) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status SyncDir(const std::string& path) override;

 private:
  friend class FaultFile;

  /// Non-OK once a kCrash fault has triggered.
  Status CrashGuard() const;

  FileSystem* base_;
  FaultPlan plan_;
  bool triggered_ = false;
  uint64_t bytes_written_ = 0;
  uint64_t syncs_ = 0;
};

}  // namespace storage
}  // namespace flipper

#endif  // FLIPPER_STORAGE_FILE_IO_H_
