// Read-only file mapping with a portable fallback: mmap(2) where the
// platform has it, otherwise (or on request) the file is read into an
// 8-byte-aligned heap buffer. Either way callers see a stable
// (data, size) view for the lifetime of the object.

#ifndef FLIPPER_STORAGE_MMAP_FILE_H_
#define FLIPPER_STORAGE_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace flipper {
namespace storage {

class MmapFile {
 public:
  /// Maps (or reads) `path`. `force_heap` skips mmap and always takes
  /// the read-into-memory path.
  static Result<MmapFile> Open(const std::string& path,
                               bool force_heap = false);

  MmapFile() = default;
  ~MmapFile() { Reset(); }

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept;

  const std::byte* data() const { return data_; }
  uint64_t size() const { return size_; }
  /// True when backed by an actual memory mapping (false: heap copy).
  bool mapped() const { return mapped_; }

 private:
  void Reset();

  const std::byte* data_ = nullptr;
  uint64_t size_ = 0;
  bool mapped_ = false;
  /// Owning storage for the heap fallback; 8-byte aligned.
  std::unique_ptr<uint64_t[]> heap_;
};

}  // namespace storage
}  // namespace flipper

#endif  // FLIPPER_STORAGE_MMAP_FILE_H_
