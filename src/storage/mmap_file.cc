#include "storage/mmap_file.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "storage/file_io.h"

#if defined(__unix__) || defined(__APPLE__)
#define FLIPPER_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace flipper {
namespace storage {
namespace {

struct HeapFile {
  std::unique_ptr<uint64_t[]> bytes;
  uint64_t size = 0;
};

Result<HeapFile> ReadWholeFile(const std::string& path) {
  errno = 0;
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) return IoErrnoError("cannot open store file", path);
  const std::streamoff end = f.tellg();
  if (end < 0) return IoErrnoError("cannot stat store file", path);
  HeapFile out;
  out.size = static_cast<uint64_t>(end);
  out.bytes = std::make_unique<uint64_t[]>((out.size + 7) / 8);
  f.seekg(0);
  if (out.size > 0 &&
      !f.read(reinterpret_cast<char*>(out.bytes.get()),
              static_cast<std::streamsize>(out.size))) {
    return Status::IoError("short read on store file: " + path);
  }
  return out;
}

}  // namespace

Result<MmapFile> MmapFile::Open(const std::string& path, bool force_heap) {
  const auto open_heap = [&path]() -> Result<MmapFile> {
    FLIPPER_ASSIGN_OR_RETURN(HeapFile heap, ReadWholeFile(path));
    MmapFile out;
    out.heap_ = std::move(heap.bytes);
    out.data_ = reinterpret_cast<const std::byte*>(out.heap_.get());
    out.size_ = heap.size;
    out.mapped_ = false;
    return out;
  };
#if FLIPPER_HAVE_MMAP
  if (!force_heap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return IoErrnoError("cannot open store file", path);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      const Status status = IoErrnoError("cannot stat store file", path);
      ::close(fd);
      return status;
    }
    const auto size = static_cast<uint64_t>(st.st_size);
    if (size == 0) {
      // mmap of length 0 is an error; an empty file cannot be a valid
      // store anyway, so hand back an empty view for the reader's
      // truncation check to reject.
      ::close(fd);
      MmapFile out;
      return out;
    }
    void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
      // Some filesystems refuse mmap; fall back to reading.
      return open_heap();
    }
    MmapFile out;
    out.data_ = static_cast<const std::byte*>(base);
    out.size_ = size;
    out.mapped_ = true;
    return out;
  }
#endif
  return open_heap();
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
    heap_ = std::move(other.heap_);
  }
  return *this;
}

void MmapFile::Reset() {
#if FLIPPER_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  heap_.reset();
}

}  // namespace storage
}  // namespace flipper
