#include "storage/store_writer.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "storage/varint.h"

namespace flipper {
namespace storage {

Result<StoreWriter> StoreWriter::Create(const std::string& path,
                                        const Options& options) {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::Internal(
        "FlipperStore requires a little-endian host (fixed LE format)");
  }
  if (options.segment_txns == 0) {
    return Status::InvalidArgument("segment_txns must be positive");
  }
  if (SectionCountForVersion(options.version) == 0) {
    return Status::InvalidArgument(
        "unsupported store version " + std::to_string(options.version) +
        " (this build writes versions 1 and 2)");
  }
  if (options.version == kFormatVersionV2 &&
      (options.catalog_bitset_words == 0 ||
       options.catalog_bitset_words > kMaxCatalogBitsetWords)) {
    return Status::InvalidArgument(
        "catalog_bitset_words must be in [1, " +
        std::to_string(kMaxCatalogBitsetWords) + "]");
  }
  StoreWriter writer;
  writer.options_ = options;
  writer.path_ = path;
  writer.file_.open(path, std::ios::binary | std::ios::trunc);
  if (!writer.file_) {
    return Status::IoError("cannot open for writing: " + path);
  }
  if (options.version == kFormatVersionV2) {
    writer.cur_seg_bits_.assign(options.catalog_bitset_words, 0);
  }
  // Placeholder header + section table; Finish() seeks back and
  // rewrites them with the real contents.
  const std::vector<char> zeros(
      sizeof(FileHeader) +
          SectionCountForVersion(options.version) * sizeof(SectionEntry),
      0);
  FLIPPER_RETURN_IF_ERROR(
      writer.WriteBytes(zeros.data(), zeros.size(), nullptr));
  writer.items_start_ = writer.file_pos_;
  return writer;
}

Status StoreWriter::WriteBytes(const void* data, size_t size,
                               uint64_t* checksum) {
  if (size == 0) return Status::OK();
  file_.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(size));
  if (!file_) return Status::IoError("write failed: " + path_);
  file_pos_ += size;
  if (checksum != nullptr) *checksum = Fnv1a64(data, size, *checksum);
  return Status::OK();
}

Status StoreWriter::Pad() {
  static constexpr char kZeros[kSectionAlignment] = {};
  const uint64_t target = AlignUp(file_pos_);
  if (target > file_pos_) {
    return WriteBytes(kZeros, target - file_pos_, nullptr);
  }
  return Status::OK();
}

Status StoreWriter::WriteSection(SectionId id, const void* data,
                                 size_t size) {
  SectionEntry entry;
  entry.id = static_cast<uint32_t>(id);
  entry.offset = file_pos_;
  entry.size = size;
  entry.checksum = Fnv1a64(data, size);
  FLIPPER_RETURN_IF_ERROR(WriteBytes(data, size, nullptr));
  FLIPPER_RETURN_IF_ERROR(Pad());
  sections_.push_back(entry);
  return Status::OK();
}

void StoreWriter::FlushCatalogSegment() {
  seg_min_.push_back(cur_seg_min_);
  seg_max_.push_back(cur_seg_max_);
  seg_bits_.insert(seg_bits_.end(), cur_seg_bits_.begin(),
                   cur_seg_bits_.end());
  cur_seg_min_ = kInvalidItem;
  cur_seg_max_ = 0;
  std::fill(cur_seg_bits_.begin(), cur_seg_bits_.end(), 0);
}

Status StoreWriter::Append(std::span<const ItemId> items) {
  if (finished_) {
    return Status::FailedPrecondition("Append after Finish");
  }
  scratch_.assign(items.begin(), items.end());
  std::sort(scratch_.begin(), scratch_.end());
  scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                 scratch_.end());
  if (options_.version == kFormatVersionV1) {
    FLIPPER_RETURN_IF_ERROR(WriteBytes(
        scratch_.data(), scratch_.size() * sizeof(ItemId),
        &items_checksum_));
  } else {
    // v2: first item raw, then the strictly positive gaps — plus the
    // catalog accumulators for the open segment.
    encode_scratch_.clear();
    const uint32_t num_bits = options_.catalog_bitset_words * 64;
    ItemId prev = 0;
    for (size_t i = 0; i < scratch_.size(); ++i) {
      const ItemId item = scratch_[i];
      PutVarint(i == 0 ? item : item - prev, &encode_scratch_);
      prev = item;
      cur_seg_min_ = std::min(cur_seg_min_, item);
      cur_seg_max_ = std::max(cur_seg_max_, item);
      const uint32_t bit = SegmentCatalog::HashBit(item, num_bits);
      cur_seg_bits_[bit / 64] |= uint64_t{1} << (bit % 64);
      if (item >= item_freq_.size()) item_freq_.resize(item + 1, 0);
      ++item_freq_[item];
    }
    FLIPPER_RETURN_IF_ERROR(WriteBytes(
        encode_scratch_.data(), encode_scratch_.size(), &items_checksum_));
  }
  offsets_.push_back(offsets_.back() + scratch_.size());
  max_width_ = std::max(max_width_, static_cast<uint32_t>(scratch_.size()));
  if (!scratch_.empty()) {
    alphabet_size_ = std::max(alphabet_size_, scratch_.back() + 1);
  }
  if (num_transactions() % options_.segment_txns == 0) {
    segments_.push_back(num_transactions());
    if (options_.version == kFormatVersionV2) FlushCatalogSegment();
  }
  return Status::OK();
}

Status StoreWriter::CountTrackedSupports(
    uint64_t items_bytes, std::span<const ItemId> tracked_ids,
    std::vector<uint32_t>* supports) const {
  const size_t tracked = tracked_ids.size();
  supports->assign((segments_.size() - 1) * tracked, 0);
  if (tracked == 0 || num_transactions() == 0) return Status::OK();

  std::vector<uint32_t> slot_of(alphabet_size_, 0);
  for (size_t i = 0; i < tracked; ++i) {
    slot_of[tracked_ids[i]] = static_cast<uint32_t>(i) + 1;
  }

  std::ifstream in(path_, std::ios::binary);
  if (!in) return Status::IoError("cannot reopen for reading: " + path_);
  in.seekg(static_cast<std::streamoff>(items_start_));
  if (!in) return Status::IoError("seek failed: " + path_);

  // Chunked decode: refill keeps at least one maximal varint of slack
  // so a value never straddles the buffer edge unseen.
  std::vector<uint8_t> buffer(1u << 20);
  size_t buf_len = 0;
  size_t buf_pos = 0;
  uint64_t remaining = items_bytes;
  const auto refill = [&]() -> Status {
    std::memmove(buffer.data(), buffer.data() + buf_pos,
                 buf_len - buf_pos);
    buf_len -= buf_pos;
    buf_pos = 0;
    const size_t want = std::min<uint64_t>(remaining,
                                           buffer.size() - buf_len);
    if (want > 0) {
      in.read(reinterpret_cast<char*>(buffer.data() + buf_len),
              static_cast<std::streamsize>(want));
      if (static_cast<size_t>(in.gcount()) != want) {
        return Status::IoError("re-read of items column failed: " +
                               path_);
      }
      buf_len += want;
      remaining -= want;
    }
    return Status::OK();
  };

  size_t seg = 0;
  uint32_t* seg_supports = supports->data();
  for (uint64_t t = 0; t < num_transactions(); ++t) {
    while (seg + 1 < segments_.size() - 1 && t >= segments_[seg + 1]) {
      ++seg;
      seg_supports = supports->data() + seg * tracked;
    }
    const uint64_t width = offsets_[t + 1] - offsets_[t];
    ItemId item = 0;
    for (uint64_t i = 0; i < width; ++i) {
      if (buf_len - buf_pos < kMaxVarintBytes && remaining > 0) {
        FLIPPER_RETURN_IF_ERROR(refill());
      }
      const uint8_t* pos = buffer.data() + buf_pos;
      uint64_t delta = 0;
      if (!GetVarint(&pos, buffer.data() + buf_len, &delta)) {
        return Status::Internal(
            "items column re-read desynchronized at txn " +
            std::to_string(t));
      }
      buf_pos = static_cast<size_t>(pos - buffer.data());
      item = i == 0 ? static_cast<ItemId>(delta)
                    : item + static_cast<ItemId>(delta);
      if (item < slot_of.size() && slot_of[item] != 0) {
        ++seg_supports[slot_of[item] - 1];
      }
    }
  }
  return Status::OK();
}

Status StoreWriter::Finish(const ItemDictionary& dict,
                           const Taxonomy& taxonomy) {
  if (finished_) {
    return Status::FailedPrecondition("Finish called twice");
  }
  if (alphabet_size_ > dict.size()) {
    return Status::InvalidArgument(
        "dictionary has " + std::to_string(dict.size()) +
        " names but transactions reference item " +
        std::to_string(alphabet_size_ - 1));
  }
  if (taxonomy.id_space() > dict.size()) {
    return Status::InvalidArgument(
        "dictionary has " + std::to_string(dict.size()) +
        " names but the taxonomy id space is " +
        std::to_string(taxonomy.id_space()));
  }

  // The items section has been streaming since Create.
  SectionEntry items_entry;
  items_entry.id = static_cast<uint32_t>(SectionId::kTxnItems);
  items_entry.offset = items_start_;
  items_entry.size = file_pos_ - items_start_;
  items_entry.checksum = items_checksum_;
  const uint64_t items_end = file_pos_;
  FLIPPER_RETURN_IF_ERROR(Pad());
  sections_.push_back(items_entry);

  if (options_.version == kFormatVersionV1) {
    FLIPPER_RETURN_IF_ERROR(WriteSection(
        SectionId::kTxnOffsets, offsets_.data(),
        offsets_.size() * sizeof(uint64_t)));
  } else {
    encode_scratch_.clear();
    for (size_t t = 0; t + 1 < offsets_.size(); ++t) {
      PutVarint(offsets_[t + 1] - offsets_[t], &encode_scratch_);
    }
    FLIPPER_RETURN_IF_ERROR(WriteSection(
        SectionId::kTxnOffsets, encode_scratch_.data(),
        encode_scratch_.size()));
  }

  if (segments_.back() != num_transactions()) {
    segments_.push_back(num_transactions());
    if (options_.version == kFormatVersionV2) FlushCatalogSegment();
  }
  FLIPPER_RETURN_IF_ERROR(WriteSection(
      SectionId::kSegments, segments_.data(),
      segments_.size() * sizeof(uint64_t)));

  std::vector<uint64_t> name_offsets;
  name_offsets.reserve(dict.size() + 1);
  name_offsets.push_back(0);
  std::string blob;
  for (ItemId id = 0; id < dict.size(); ++id) {
    blob += dict.Name(id);
    name_offsets.push_back(blob.size());
  }
  FLIPPER_RETURN_IF_ERROR(WriteSection(
      SectionId::kDictOffsets, name_offsets.data(),
      name_offsets.size() * sizeof(uint64_t)));
  FLIPPER_RETURN_IF_ERROR(
      WriteSection(SectionId::kDictBlob, blob.data(), blob.size()));

  std::vector<ItemId> parents(taxonomy.id_space());
  for (size_t id = 0; id < parents.size(); ++id) {
    parents[id] = taxonomy.ParentOf(static_cast<ItemId>(id));
  }
  FLIPPER_RETURN_IF_ERROR(WriteSection(
      SectionId::kTaxParents, parents.data(),
      parents.size() * sizeof(ItemId)));
  const std::vector<ItemId>& roots = taxonomy.Level1();
  FLIPPER_RETURN_IF_ERROR(WriteSection(
      SectionId::kTaxRoots, roots.data(), roots.size() * sizeof(ItemId)));

  if (options_.version == kFormatVersionV2) {
    // Tracked set: the same selection the reader's validation rebuild
    // runs (SegmentCatalog::Build), so the two can never disagree.
    const std::vector<ItemId> tracked_vec =
        SegmentCatalog::TopKByFrequency(item_freq_,
                                        options_.catalog_tracked_items);
    const size_t tracked = tracked_vec.size();
    const std::span<const ItemId> tracked_ids(tracked_vec.data(),
                                              tracked);

    std::vector<uint32_t> tracked_supports;
    // The items column must be durable before the counting re-read.
    file_.flush();
    if (!file_) return Status::IoError("flush failed: " + path_);
    FLIPPER_RETURN_IF_ERROR(CountTrackedSupports(
        items_end - items_start_, tracked_ids, &tracked_supports));

    const size_t num_segments = segments_.size() - 1;
    const uint32_t words = options_.catalog_bitset_words;
    std::vector<uint8_t> payload;
    payload.reserve(sizeof(SegCatalogHeader) +
                    tracked * sizeof(uint32_t) +
                    num_segments * SegCatalogRecordBytes(tracked, words));
    const auto put_u32 = [&payload](uint32_t v) {
      const auto* p = reinterpret_cast<const uint8_t*>(&v);
      payload.insert(payload.end(), p, p + sizeof(v));
    };
    const auto put_u64 = [&payload](uint64_t v) {
      const auto* p = reinterpret_cast<const uint8_t*>(&v);
      payload.insert(payload.end(), p, p + sizeof(v));
    };
    put_u32(static_cast<uint32_t>(tracked));
    put_u32(words);
    for (ItemId id : tracked_ids) put_u32(id);
    for (size_t seg = 0; seg < num_segments; ++seg) {
      put_u32(seg_min_[seg]);
      put_u32(seg_max_[seg]);
      for (uint32_t w = 0; w < words; ++w) {
        put_u64(seg_bits_[seg * words + w]);
      }
      for (size_t i = 0; i < tracked; ++i) {
        put_u32(tracked_supports[seg * tracked + i]);
      }
    }
    FLIPPER_RETURN_IF_ERROR(WriteSection(
        SectionId::kSegCatalog, payload.data(), payload.size()));
  }

  FileHeader header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = options_.version;
  header.section_count = static_cast<uint32_t>(sections_.size());
  header.file_size = file_pos_;
  header.num_transactions = num_transactions();
  header.num_items = num_items();
  header.num_segments = segments_.size() - 1;
  header.alphabet_size = alphabet_size_;
  header.max_width = max_width_;
  header.dict_size = dict.size();
  header.taxonomy_id_space = static_cast<uint32_t>(taxonomy.id_space());
  header.taxonomy_num_roots = static_cast<uint32_t>(roots.size());
  header.table_checksum = Fnv1a64(
      sections_.data(), sections_.size() * sizeof(SectionEntry));
  header.header_checksum = HeaderChecksum(header);

  file_.seekp(0);
  if (!file_) return Status::IoError("seek failed: " + path_);
  file_.write(reinterpret_cast<const char*>(&header), sizeof(header));
  file_.write(reinterpret_cast<const char*>(sections_.data()),
              static_cast<std::streamsize>(sections_.size() *
                                           sizeof(SectionEntry)));
  file_.flush();
  if (!file_) return Status::IoError("write failed: " + path_);
  file_.close();
  finished_ = true;
  return Status::OK();
}

Status WriteStoreFile(const std::string& path, const TransactionDb& db,
                      const ItemDictionary& dict, const Taxonomy& taxonomy,
                      const StoreWriter::Options& options) {
  FLIPPER_ASSIGN_OR_RETURN(StoreWriter writer,
                           StoreWriter::Create(path, options));
  for (TxnId t = 0; t < db.size(); ++t) {
    FLIPPER_RETURN_IF_ERROR(writer.Append(db.Get(t)));
  }
  return writer.Finish(dict, taxonomy);
}

}  // namespace storage
}  // namespace flipper
