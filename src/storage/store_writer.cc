#include "storage/store_writer.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <limits>

#include "storage/store_reader.h"
#include "storage/varint.h"

namespace flipper {
namespace storage {
namespace {

/// Fresh stores are staged here and renamed into place on commit.
std::string TempPathFor(const std::string& path) { return path + ".tmp"; }

}  // namespace

Result<StoreWriter> StoreWriter::Create(const std::string& path,
                                        const Options& options,
                                        FileSystem* fs) {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::Internal(
        "FlipperStore requires a little-endian host (fixed LE format)");
  }
  if (options.segment_txns == 0) {
    return Status::InvalidArgument("segment_txns must be positive");
  }
  if (SectionCountForVersion(options.version) == 0) {
    return Status::InvalidArgument(
        "unsupported store version " + std::to_string(options.version) +
        " (this build writes versions 1 and 2)");
  }
  if (options.version == kFormatVersionV2 &&
      (options.catalog_bitset_words == 0 ||
       options.catalog_bitset_words > kMaxCatalogBitsetWords)) {
    return Status::InvalidArgument(
        "catalog_bitset_words must be in [1, " +
        std::to_string(kMaxCatalogBitsetWords) + "]");
  }
  StoreWriter writer;
  writer.options_ = options;
  writer.fs_ = ResolveFileSystem(fs);
  writer.final_path_ = path;
  writer.write_path_ = TempPathFor(path);
  {
    auto opened = writer.fs_->OpenWritable(writer.write_path_,
                                           /*truncate=*/true);
    if (!opened.ok()) return opened.status();
    writer.file_ = std::move(opened).value();
  }
  if (options.version == kFormatVersionV2) {
    writer.cur_seg_bits_.assign(options.catalog_bitset_words, 0);
  }
  // Placeholder header + section table; Finish() writes the real ones
  // in place once every section offset is known.
  const std::vector<char> zeros(
      sizeof(FileHeader) +
          SectionCountForVersion(options.version) * sizeof(SectionEntry),
      0);
  Status placeholder =
      writer.WriteBytes(zeros.data(), zeros.size(), nullptr);
  if (!placeholder.ok()) {
    writer.Abandon();
    return placeholder;
  }
  writer.items_start_ = writer.file_pos_;
  return writer;
}

Result<StoreWriter> StoreWriter::OpenAppend(const std::string& path,
                                            const AppendOptions& options,
                                            FileSystem* fs) {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::Internal(
        "FlipperStore requires a little-endian host (fixed LE format)");
  }
  StoreWriter writer;
  writer.fs_ = ResolveFileSystem(fs);
  writer.final_path_ = path;
  writer.write_path_ = path;
  writer.append_mode_ = true;
  {
    // Appending extends a *committed* store, so the base must open
    // under full validation; a torn tail from an earlier crash must be
    // repaired away first.
    auto base = StoreReader::Open(path);
    if (!base.ok()) {
      std::string msg =
          "cannot append to " + path + ": " + base.status().message();
      if (base.status().code() == StatusCode::kCorruptedData) {
        msg += " — run `flipper_cli repair " + path +
               "` to restore the last committed state";
      }
      return Status(base.status().code(), std::move(msg));
    }
    const StoreReader& reader = *base;
    if (reader.version() != kFormatVersionV2) {
      return Status::FailedPrecondition(
          "v1 stores are read-only (no append): " + path +
          " — rewrite as v2 with `flipper_cli convert --from-fdb`");
    }
    const FileHeader& h = reader.header();
    if (AlignUp(h.file_size) != h.file_size) {
      return Status::Internal(
          "committed store size is not section-aligned: " + path);
    }
    const SegmentCatalog* catalog = reader.catalog();
    writer.options_.version = kFormatVersionV2;
    // The bitset geometry is frozen at creation: the base segments'
    // bitsets are carried over verbatim and their hash depends on the
    // word count. The tracked set, in contrast, is recomputed over
    // the whole store at every commit.
    writer.options_.catalog_bitset_words = catalog->bitset_words();
    writer.options_.catalog_tracked_items = options.catalog_tracked_items;
    uint32_t segment_txns = options.segment_txns;
    if (segment_txns == 0) {
      // Infer the base store's segment size from its widest segment
      // (all segments but the last are full-size).
      uint64_t widest = 0;
      const auto segs = reader.segments();
      for (size_t i = 0; i + 1 < segs.size(); ++i) {
        widest = std::max(widest, segs[i + 1] - segs[i]);
      }
      segment_txns =
          widest == 0
              ? Options().segment_txns
              : static_cast<uint32_t>(std::min<uint64_t>(
                    widest, std::numeric_limits<uint32_t>::max()));
    }
    writer.options_.segment_txns = segment_txns;

    const TransactionDb& db = reader.db();
    writer.offsets_.reserve(static_cast<size_t>(db.size()) + 1);
    for (TxnId t = 0; t < db.size(); ++t) {
      const auto txn = db.Get(t);
      writer.offsets_.push_back(writer.offsets_.back() + txn.size());
      for (const ItemId item : txn) {
        if (item >= writer.item_freq_.size()) {
          writer.item_freq_.resize(item + 1, 0);
        }
        ++writer.item_freq_[item];
      }
    }
    writer.segments_.assign(reader.segments().begin(),
                            reader.segments().end());
    writer.alphabet_size_ = h.alphabet_size;
    writer.max_width_ = h.max_width;
    writer.base_txns_ = h.num_transactions;
    writer.base_file_size_ = h.file_size;

    // Existing segments are immutable: their catalog records are
    // reused as-is (this session opens a new segment).
    for (size_t seg = 0; seg < catalog->num_segments(); ++seg) {
      writer.seg_min_.push_back(catalog->min_item(seg));
      writer.seg_max_.push_back(catalog->max_item(seg));
      const auto bits = catalog->segment_bits(seg);
      writer.seg_bits_.insert(writer.seg_bits_.end(), bits.begin(),
                              bits.end());
    }
    writer.cur_seg_bits_.assign(writer.options_.catalog_bitset_words, 0);

    // The committed column blocks stay where they are; the new table
    // will list them (in order) ahead of this session's blocks.
    for (const SectionEntry& e : reader.sections()) {
      if (e.id == static_cast<uint32_t>(SectionId::kTxnOffsets)) {
        writer.base_offsets_blocks_.push_back(e);
      } else if (e.id == static_cast<uint32_t>(SectionId::kTxnItems)) {
        writer.base_items_blocks_.push_back(e);
      }
    }

    // Snapshot the dictionary and taxonomy so Finish() can enforce
    // that the session only extended them (committed ids must keep
    // their meaning).
    writer.base_names_.reserve(h.dict_size);
    for (ItemId id = 0; id < h.dict_size; ++id) {
      writer.base_names_.emplace_back(reader.dict().Name(id));
    }
    writer.base_parents_.resize(h.taxonomy_id_space);
    for (size_t id = 0; id < writer.base_parents_.size(); ++id) {
      writer.base_parents_[id] =
          reader.taxonomy().ParentOf(static_cast<ItemId>(id));
    }
    const auto& roots = reader.taxonomy().Level1();
    writer.base_roots_.assign(roots.begin(), roots.end());
  }  // release the base mapping before opening the file for writing

  auto opened = writer.fs_->OpenWritable(path, /*truncate=*/false);
  if (!opened.ok()) return opened.status();
  writer.file_ = std::move(opened).value();
  writer.file_pos_ = writer.base_file_size_;
  writer.items_start_ = writer.base_file_size_;
  return writer;
}

StoreWriter::~StoreWriter() { Abandon(); }

void StoreWriter::Abandon() {
  if (file_ == nullptr) return;
  (void)file_->Close();
  file_.reset();
  // Best effort; under a real crash none of this runs, which is
  // exactly what repair handles.
  if (append_mode_) {
    (void)fs_->Truncate(final_path_, base_file_size_);
  } else {
    (void)fs_->Remove(write_path_);
  }
}

Status StoreWriter::WriteBytes(const void* data, size_t size,
                               uint64_t* checksum) {
  if (size == 0) return Status::OK();
  FLIPPER_RETURN_IF_ERROR(file_->Append(data, size));
  file_pos_ += size;
  if (checksum != nullptr) *checksum = Fnv1a64(data, size, *checksum);
  return Status::OK();
}

Status StoreWriter::Pad() {
  static constexpr char kZeros[kSectionAlignment] = {};
  const uint64_t target = AlignUp(file_pos_);
  if (target > file_pos_) {
    return WriteBytes(kZeros, target - file_pos_, nullptr);
  }
  return Status::OK();
}

Status StoreWriter::WriteSection(SectionId id, const void* data,
                                 size_t size,
                                 std::vector<SectionEntry>* table) {
  SectionEntry entry;
  entry.id = static_cast<uint32_t>(id);
  entry.offset = file_pos_;
  entry.size = size;
  entry.checksum = Fnv1a64(data, size);
  FLIPPER_RETURN_IF_ERROR(WriteBytes(data, size, nullptr));
  FLIPPER_RETURN_IF_ERROR(Pad());
  table->push_back(entry);
  return Status::OK();
}

void StoreWriter::FlushCatalogSegment() {
  seg_min_.push_back(cur_seg_min_);
  seg_max_.push_back(cur_seg_max_);
  seg_bits_.insert(seg_bits_.end(), cur_seg_bits_.begin(),
                   cur_seg_bits_.end());
  cur_seg_min_ = kInvalidItem;
  cur_seg_max_ = 0;
  std::fill(cur_seg_bits_.begin(), cur_seg_bits_.end(), 0);
}

Status StoreWriter::Append(std::span<const ItemId> items) {
  if (finished_) {
    return Status::FailedPrecondition("Append after Finish");
  }
  if (file_ == nullptr) {
    return Status::FailedPrecondition(
        "store writer is no longer usable (a previous operation failed)");
  }
  Status status = AppendImpl(items);
  if (!status.ok()) Abandon();
  return status;
}

Status StoreWriter::AppendImpl(std::span<const ItemId> items) {
  scratch_.assign(items.begin(), items.end());
  std::sort(scratch_.begin(), scratch_.end());
  scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                 scratch_.end());
  if (options_.version == kFormatVersionV1) {
    FLIPPER_RETURN_IF_ERROR(WriteBytes(
        scratch_.data(), scratch_.size() * sizeof(ItemId),
        &items_checksum_));
  } else {
    // v2: first item raw, then the strictly positive gaps — plus the
    // catalog accumulators for the open segment.
    encode_scratch_.clear();
    const uint32_t num_bits = options_.catalog_bitset_words * 64;
    ItemId prev = 0;
    for (size_t i = 0; i < scratch_.size(); ++i) {
      const ItemId item = scratch_[i];
      PutVarint(i == 0 ? item : item - prev, &encode_scratch_);
      prev = item;
      cur_seg_min_ = std::min(cur_seg_min_, item);
      cur_seg_max_ = std::max(cur_seg_max_, item);
      const uint32_t bit = SegmentCatalog::HashBit(item, num_bits);
      cur_seg_bits_[bit / 64] |= uint64_t{1} << (bit % 64);
      if (item >= item_freq_.size()) item_freq_.resize(item + 1, 0);
      ++item_freq_[item];
    }
    FLIPPER_RETURN_IF_ERROR(WriteBytes(
        encode_scratch_.data(), encode_scratch_.size(), &items_checksum_));
  }
  offsets_.push_back(offsets_.back() + scratch_.size());
  max_width_ = std::max(max_width_, static_cast<uint32_t>(scratch_.size()));
  if (!scratch_.empty()) {
    alphabet_size_ = std::max(alphabet_size_, scratch_.back() + 1);
  }
  if (++txns_in_open_segment_ == options_.segment_txns) {
    segments_.push_back(num_transactions());
    if (options_.version == kFormatVersionV2) FlushCatalogSegment();
    txns_in_open_segment_ = 0;
  }
  return Status::OK();
}

Status StoreWriter::CountTrackedSupports(
    std::span<const Extent> extents, std::span<const ItemId> tracked_ids,
    std::vector<uint32_t>* supports) const {
  const size_t tracked = tracked_ids.size();
  supports->assign((segments_.size() - 1) * tracked, 0);
  if (tracked == 0 || num_transactions() == 0) return Status::OK();

  std::vector<uint32_t> slot_of(alphabet_size_, 0);
  for (size_t i = 0; i < tracked; ++i) {
    slot_of[tracked_ids[i]] = static_cast<uint32_t>(i) + 1;
  }

  std::ifstream in(write_path_, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot reopen for reading: " + write_path_);
  }

  uint64_t remaining = 0;
  for (const Extent& e : extents) remaining += e.size;

  // Chunked decode over the extent chain (one extent per session's
  // items block, in transaction order): refill keeps at least one
  // maximal varint of slack so a value never straddles the buffer
  // edge unseen. Extents end on transaction boundaries, so a varint
  // never straddles extents either.
  std::vector<uint8_t> buffer(1u << 20);
  size_t buf_len = 0;
  size_t buf_pos = 0;
  size_t ext_idx = 0;
  uint64_t ext_left = 0;  // unread bytes of the extent the stream is in
  const auto refill = [&]() -> Status {
    std::memmove(buffer.data(), buffer.data() + buf_pos,
                 buf_len - buf_pos);
    buf_len -= buf_pos;
    buf_pos = 0;
    while (buf_len < buffer.size() && remaining > 0) {
      if (ext_left == 0) {
        while (ext_idx < extents.size() && extents[ext_idx].size == 0) {
          ++ext_idx;
        }
        if (ext_idx >= extents.size()) break;
        in.seekg(static_cast<std::streamoff>(extents[ext_idx].offset));
        if (!in) {
          return Status::IoError("seek failed: " + write_path_);
        }
        ext_left = extents[ext_idx].size;
        ++ext_idx;
      }
      const size_t want = static_cast<size_t>(std::min<uint64_t>(
          ext_left, buffer.size() - buf_len));
      in.read(reinterpret_cast<char*>(buffer.data() + buf_len),
              static_cast<std::streamsize>(want));
      if (static_cast<size_t>(in.gcount()) != want) {
        return Status::IoError("re-read of items column failed: " +
                               write_path_);
      }
      buf_len += want;
      ext_left -= want;
      remaining -= want;
    }
    return Status::OK();
  };

  size_t seg = 0;
  uint32_t* seg_supports = supports->data();
  for (uint64_t t = 0; t < num_transactions(); ++t) {
    while (seg + 1 < segments_.size() - 1 && t >= segments_[seg + 1]) {
      ++seg;
      seg_supports = supports->data() + seg * tracked;
    }
    const uint64_t width = offsets_[t + 1] - offsets_[t];
    ItemId item = 0;
    for (uint64_t i = 0; i < width; ++i) {
      if (buf_len - buf_pos < kMaxVarintBytes &&
          (remaining > 0 || ext_left > 0)) {
        FLIPPER_RETURN_IF_ERROR(refill());
      }
      const uint8_t* pos = buffer.data() + buf_pos;
      uint64_t delta = 0;
      if (!GetVarint(&pos, buffer.data() + buf_len, &delta)) {
        return Status::Internal(
            "items column re-read desynchronized at txn " +
            std::to_string(t));
      }
      buf_pos = static_cast<size_t>(pos - buffer.data());
      item = i == 0 ? static_cast<ItemId>(delta)
                    : item + static_cast<ItemId>(delta);
      if (item < slot_of.size() && slot_of[item] != 0) {
        ++seg_supports[slot_of[item] - 1];
      }
    }
  }
  return Status::OK();
}

Status StoreWriter::Finish(const ItemDictionary& dict,
                           const Taxonomy& taxonomy) {
  if (finished_) {
    return Status::FailedPrecondition("Finish called twice");
  }
  if (file_ == nullptr) {
    return Status::FailedPrecondition(
        "store writer is no longer usable (a previous operation failed)");
  }
  Status status = FinishImpl(dict, taxonomy);
  if (!status.ok()) {
    if (append_mode_ && commit_trailer_durable_) {
      // The commit trailer is already fsynced: the session IS durable,
      // only the front-header rewrite (or the final sync/close) failed.
      // Rolling back now would truncate committed data — and, with the
      // front header possibly half-rewritten, leave nothing valid at
      // all. Keep the file; repair redoes the front header from the
      // trailer.
      if (file_ != nullptr) {
        (void)file_->Close();
        file_.reset();
      }
      return Status(
          status.code(),
          status.message() +
              " (the append session itself is committed — run "
              "`flipper_cli repair --apply` to finalize the front "
              "header)");
    }
    if (file_ != nullptr) {
      Abandon();
    } else if (append_mode_) {
      // Failed after Close (e.g. a metadata operation): roll the file
      // back to the base store.
      (void)fs_->Truncate(final_path_, base_file_size_);
    } else {
      (void)fs_->Remove(write_path_);
    }
    return status;
  }
  finished_ = true;
  return Status::OK();
}

Status StoreWriter::FinishImpl(const ItemDictionary& dict,
                               const Taxonomy& taxonomy) {
  if (alphabet_size_ > dict.size()) {
    return Status::InvalidArgument(
        "dictionary has " + std::to_string(dict.size()) +
        " names but transactions reference item " +
        std::to_string(alphabet_size_ - 1));
  }
  if (taxonomy.id_space() > dict.size()) {
    return Status::InvalidArgument(
        "dictionary has " + std::to_string(dict.size()) +
        " names but the taxonomy id space is " +
        std::to_string(taxonomy.id_space()));
  }
  if (append_mode_) {
    // Committed ids must keep their meaning: the session's dictionary
    // and taxonomy may only extend what is already on disk.
    if (dict.size() < base_names_.size()) {
      return Status::InvalidArgument(
          "append sessions may only extend the dictionary: it shrank "
          "from " + std::to_string(base_names_.size()) + " to " +
          std::to_string(dict.size()) + " names: " + final_path_);
    }
    for (ItemId id = 0; id < base_names_.size(); ++id) {
      if (dict.Name(id) != base_names_[id]) {
        return Status::InvalidArgument(
            "append sessions may only extend the dictionary: the name "
            "of id " + std::to_string(id) + " changed from \"" +
            base_names_[id] + "\" to \"" + std::string(dict.Name(id)) +
            "\": " + final_path_);
      }
    }
    if (taxonomy.id_space() < base_parents_.size()) {
      return Status::InvalidArgument(
          "append sessions may only extend the taxonomy: its id space "
          "shrank from " + std::to_string(base_parents_.size()) +
          " to " + std::to_string(taxonomy.id_space()) + ": " +
          final_path_);
    }
    for (size_t id = 0; id < base_parents_.size(); ++id) {
      if (taxonomy.ParentOf(static_cast<ItemId>(id)) !=
          base_parents_[id]) {
        return Status::InvalidArgument(
            "append sessions may only extend the taxonomy: the parent "
            "of id " + std::to_string(id) + " changed: " + final_path_);
      }
    }
    const auto& roots = taxonomy.Level1();
    if (roots.size() < base_roots_.size() ||
        !std::equal(base_roots_.begin(), base_roots_.end(),
                    roots.begin())) {
      return Status::InvalidArgument(
          "append sessions may only extend the taxonomy: the committed "
          "roots changed: " + final_path_);
    }
  }

  // This session's items block has been streaming since
  // Create/OpenAppend.
  SectionEntry items_entry;
  items_entry.id = static_cast<uint32_t>(SectionId::kTxnItems);
  items_entry.offset = items_start_;
  items_entry.size = file_pos_ - items_start_;
  items_entry.checksum = items_checksum_;
  const uint64_t items_end = file_pos_;
  FLIPPER_RETURN_IF_ERROR(Pad());

  std::vector<SectionEntry> written;  // sections written below, in order
  if (options_.version == kFormatVersionV1) {
    FLIPPER_RETURN_IF_ERROR(WriteSection(
        SectionId::kTxnOffsets, offsets_.data(),
        offsets_.size() * sizeof(uint64_t), &written));
  } else {
    encode_scratch_.clear();
    for (size_t t = base_txns_; t + 1 < offsets_.size(); ++t) {
      PutVarint(offsets_[t + 1] - offsets_[t], &encode_scratch_);
    }
    FLIPPER_RETURN_IF_ERROR(WriteSection(
        SectionId::kTxnOffsets, encode_scratch_.data(),
        encode_scratch_.size(), &written));
  }
  const SectionEntry offsets_entry = written.back();
  written.pop_back();

  if (segments_.back() != num_transactions()) {
    segments_.push_back(num_transactions());
    if (options_.version == kFormatVersionV2) FlushCatalogSegment();
  }
  FLIPPER_RETURN_IF_ERROR(WriteSection(
      SectionId::kSegments, segments_.data(),
      segments_.size() * sizeof(uint64_t), &written));

  std::vector<uint64_t> name_offsets;
  name_offsets.reserve(dict.size() + 1);
  name_offsets.push_back(0);
  std::string blob;
  for (ItemId id = 0; id < dict.size(); ++id) {
    blob += dict.Name(id);
    name_offsets.push_back(blob.size());
  }
  FLIPPER_RETURN_IF_ERROR(WriteSection(
      SectionId::kDictOffsets, name_offsets.data(),
      name_offsets.size() * sizeof(uint64_t), &written));
  FLIPPER_RETURN_IF_ERROR(WriteSection(
      SectionId::kDictBlob, blob.data(), blob.size(), &written));

  std::vector<ItemId> parents(taxonomy.id_space());
  for (size_t id = 0; id < parents.size(); ++id) {
    parents[id] = taxonomy.ParentOf(static_cast<ItemId>(id));
  }
  FLIPPER_RETURN_IF_ERROR(WriteSection(
      SectionId::kTaxParents, parents.data(),
      parents.size() * sizeof(ItemId), &written));
  const std::vector<ItemId>& roots = taxonomy.Level1();
  FLIPPER_RETURN_IF_ERROR(WriteSection(
      SectionId::kTaxRoots, roots.data(), roots.size() * sizeof(ItemId),
      &written));

  if (options_.version == kFormatVersionV2) {
    // Tracked set: the same selection the reader's validation rebuild
    // runs (SegmentCatalog::Build), so the two can never disagree.
    const std::vector<ItemId> tracked_vec =
        SegmentCatalog::TopKByFrequency(item_freq_,
                                        options_.catalog_tracked_items);
    const size_t tracked = tracked_vec.size();
    const std::span<const ItemId> tracked_ids(tracked_vec.data(),
                                              tracked);

    // The items column must be visible to the counting re-read (a
    // separate read handle on the same file).
    FLIPPER_RETURN_IF_ERROR(file_->Flush());
    std::vector<Extent> extents;
    extents.reserve(base_items_blocks_.size() + 1);
    for (const SectionEntry& e : base_items_blocks_) {
      extents.push_back(Extent{e.offset, e.size});
    }
    extents.push_back(Extent{items_start_, items_end - items_start_});
    std::vector<uint32_t> tracked_supports;
    FLIPPER_RETURN_IF_ERROR(CountTrackedSupports(
        extents, tracked_ids, &tracked_supports));

    const size_t num_segments = segments_.size() - 1;
    const uint32_t words = options_.catalog_bitset_words;
    std::vector<uint8_t> payload;
    payload.reserve(sizeof(SegCatalogHeader) +
                    tracked * sizeof(uint32_t) +
                    num_segments * SegCatalogRecordBytes(tracked, words));
    const auto put_u32 = [&payload](uint32_t v) {
      const auto* p = reinterpret_cast<const uint8_t*>(&v);
      payload.insert(payload.end(), p, p + sizeof(v));
    };
    const auto put_u64 = [&payload](uint64_t v) {
      const auto* p = reinterpret_cast<const uint8_t*>(&v);
      payload.insert(payload.end(), p, p + sizeof(v));
    };
    put_u32(static_cast<uint32_t>(tracked));
    put_u32(words);
    for (ItemId id : tracked_ids) put_u32(id);
    for (size_t seg = 0; seg < num_segments; ++seg) {
      put_u32(seg_min_[seg]);
      put_u32(seg_max_[seg]);
      for (uint32_t w = 0; w < words; ++w) {
        put_u64(seg_bits_[seg * words + w]);
      }
      for (size_t i = 0; i < tracked; ++i) {
        put_u32(tracked_supports[seg * tracked + i]);
      }
    }
    FLIPPER_RETURN_IF_ERROR(WriteSection(
        SectionId::kSegCatalog, payload.data(), payload.size(),
        &written));
  }

  // Assemble the section table. Fresh files keep the historical order
  // (items first); appended files list the committed column blocks
  // ahead of this session's, since readers concatenate blocks in
  // table order.
  std::vector<SectionEntry> table;
  table.reserve(base_offsets_blocks_.size() + base_items_blocks_.size() +
                2 + written.size());
  if (!append_mode_) {
    table.push_back(items_entry);
    table.push_back(offsets_entry);
  } else {
    table.insert(table.end(), base_offsets_blocks_.begin(),
                 base_offsets_blocks_.end());
    table.push_back(offsets_entry);
    table.insert(table.end(), base_items_blocks_.begin(),
                 base_items_blocks_.end());
    table.push_back(items_entry);
  }
  table.insert(table.end(), written.begin(), written.end());
  const uint64_t table_bytes = table.size() * sizeof(SectionEntry);

  FileHeader header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = options_.version;
  header.section_count = static_cast<uint32_t>(table.size());
  header.num_transactions = num_transactions();
  header.num_items = num_items();
  header.num_segments = segments_.size() - 1;
  header.alphabet_size = alphabet_size_;
  header.max_width = max_width_;
  header.dict_size = dict.size();
  header.taxonomy_id_space = static_cast<uint32_t>(taxonomy.id_space());
  header.taxonomy_num_roots = static_cast<uint32_t>(roots.size());
  header.table_checksum = Fnv1a64(table.data(), table_bytes);

  if (!append_mode_) {
    // Fresh store: table right after the header (the placeholder
    // reserved exactly this much room), commit by rename.
    header.table_offset = 0;
    header.file_size = file_pos_;
    header.header_checksum = HeaderChecksum(header);
    std::vector<uint8_t> front(sizeof(FileHeader) + table_bytes);
    std::memcpy(front.data(), &header, sizeof(header));
    std::memcpy(front.data() + sizeof(header), table.data(), table_bytes);
    FLIPPER_RETURN_IF_ERROR(file_->WriteAt(0, front.data(), front.size()));
    FLIPPER_RETURN_IF_ERROR(file_->Sync());
    {
      Status closed = file_->Close();
      file_.reset();
      FLIPPER_RETURN_IF_ERROR(closed);
    }
    FLIPPER_RETURN_IF_ERROR(fs_->Rename(write_path_, final_path_));
    return fs_->SyncDir(final_path_);
  }

  // Append session: the commit trailer. Order matters — data must be
  // durable before the trailer (the commit record), and the trailer
  // before the front-header rewrite; see format.h.
  FLIPPER_RETURN_IF_ERROR(file_->Sync());
  header.table_offset = file_pos_;
  header.file_size = file_pos_ + table_bytes + sizeof(FileHeader);
  header.header_checksum = HeaderChecksum(header);
  FLIPPER_RETURN_IF_ERROR(WriteBytes(table.data(), table_bytes, nullptr));
  FLIPPER_RETURN_IF_ERROR(WriteBytes(&header, sizeof(header), nullptr));
  // The commit point: after this fsync the session is durable even if
  // the front header below never lands (repair redoes it from the
  // trailer).
  FLIPPER_RETURN_IF_ERROR(file_->Sync());
  commit_trailer_durable_ = true;
  FLIPPER_RETURN_IF_ERROR(file_->WriteAt(0, &header, sizeof(header)));
  FLIPPER_RETURN_IF_ERROR(file_->Sync());
  Status closed = file_->Close();
  file_.reset();
  return closed;
}

Status WriteStoreFile(const std::string& path, const TransactionDb& db,
                      const ItemDictionary& dict, const Taxonomy& taxonomy,
                      const StoreWriter::Options& options, FileSystem* fs) {
  FLIPPER_ASSIGN_OR_RETURN(StoreWriter writer,
                           StoreWriter::Create(path, options, fs));
  for (TxnId t = 0; t < db.size(); ++t) {
    FLIPPER_RETURN_IF_ERROR(writer.Append(db.Get(t)));
  }
  return writer.Finish(dict, taxonomy);
}

}  // namespace storage
}  // namespace flipper
