#include "storage/store_writer.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace flipper {
namespace storage {

Result<StoreWriter> StoreWriter::Create(const std::string& path,
                                        const Options& options) {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::Internal(
        "FlipperStore requires a little-endian host (fixed LE format)");
  }
  if (options.segment_txns == 0) {
    return Status::InvalidArgument("segment_txns must be positive");
  }
  StoreWriter writer;
  writer.options_ = options;
  writer.path_ = path;
  writer.file_.open(path, std::ios::binary | std::ios::trunc);
  if (!writer.file_) {
    return Status::IoError("cannot open for writing: " + path);
  }
  // Placeholder header + section table; Finish() seeks back and
  // rewrites them with the real contents.
  const std::vector<char> zeros(
      sizeof(FileHeader) + kNumSections * sizeof(SectionEntry), 0);
  FLIPPER_RETURN_IF_ERROR(
      writer.WriteBytes(zeros.data(), zeros.size(), nullptr));
  writer.items_start_ = writer.file_pos_;
  return writer;
}

Status StoreWriter::WriteBytes(const void* data, size_t size,
                               uint64_t* checksum) {
  if (size == 0) return Status::OK();
  file_.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(size));
  if (!file_) return Status::IoError("write failed: " + path_);
  file_pos_ += size;
  if (checksum != nullptr) *checksum = Fnv1a64(data, size, *checksum);
  return Status::OK();
}

Status StoreWriter::Pad() {
  static constexpr char kZeros[kSectionAlignment] = {};
  const uint64_t target = AlignUp(file_pos_);
  if (target > file_pos_) {
    return WriteBytes(kZeros, target - file_pos_, nullptr);
  }
  return Status::OK();
}

Status StoreWriter::WriteSection(SectionId id, const void* data,
                                 size_t size) {
  SectionEntry entry;
  entry.id = static_cast<uint32_t>(id);
  entry.offset = file_pos_;
  entry.size = size;
  entry.checksum = Fnv1a64(data, size);
  FLIPPER_RETURN_IF_ERROR(WriteBytes(data, size, nullptr));
  FLIPPER_RETURN_IF_ERROR(Pad());
  sections_.push_back(entry);
  return Status::OK();
}

Status StoreWriter::Append(std::span<const ItemId> items) {
  if (finished_) {
    return Status::FailedPrecondition("Append after Finish");
  }
  scratch_.assign(items.begin(), items.end());
  std::sort(scratch_.begin(), scratch_.end());
  scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                 scratch_.end());
  FLIPPER_RETURN_IF_ERROR(WriteBytes(
      scratch_.data(), scratch_.size() * sizeof(ItemId), &items_checksum_));
  offsets_.push_back(offsets_.back() + scratch_.size());
  max_width_ = std::max(max_width_, static_cast<uint32_t>(scratch_.size()));
  if (!scratch_.empty()) {
    alphabet_size_ = std::max(alphabet_size_, scratch_.back() + 1);
  }
  if (num_transactions() % options_.segment_txns == 0) {
    segments_.push_back(num_transactions());
  }
  return Status::OK();
}

Status StoreWriter::Finish(const ItemDictionary& dict,
                           const Taxonomy& taxonomy) {
  if (finished_) {
    return Status::FailedPrecondition("Finish called twice");
  }
  if (alphabet_size_ > dict.size()) {
    return Status::InvalidArgument(
        "dictionary has " + std::to_string(dict.size()) +
        " names but transactions reference item " +
        std::to_string(alphabet_size_ - 1));
  }
  if (taxonomy.id_space() > dict.size()) {
    return Status::InvalidArgument(
        "dictionary has " + std::to_string(dict.size()) +
        " names but the taxonomy id space is " +
        std::to_string(taxonomy.id_space()));
  }

  // The items section has been streaming since Create.
  SectionEntry items_entry;
  items_entry.id = static_cast<uint32_t>(SectionId::kTxnItems);
  items_entry.offset = items_start_;
  items_entry.size = file_pos_ - items_start_;
  items_entry.checksum = items_checksum_;
  FLIPPER_RETURN_IF_ERROR(Pad());
  sections_.push_back(items_entry);

  FLIPPER_RETURN_IF_ERROR(WriteSection(
      SectionId::kTxnOffsets, offsets_.data(),
      offsets_.size() * sizeof(uint64_t)));

  if (segments_.back() != num_transactions()) {
    segments_.push_back(num_transactions());
  }
  FLIPPER_RETURN_IF_ERROR(WriteSection(
      SectionId::kSegments, segments_.data(),
      segments_.size() * sizeof(uint64_t)));

  std::vector<uint64_t> name_offsets;
  name_offsets.reserve(dict.size() + 1);
  name_offsets.push_back(0);
  std::string blob;
  for (ItemId id = 0; id < dict.size(); ++id) {
    blob += dict.Name(id);
    name_offsets.push_back(blob.size());
  }
  FLIPPER_RETURN_IF_ERROR(WriteSection(
      SectionId::kDictOffsets, name_offsets.data(),
      name_offsets.size() * sizeof(uint64_t)));
  FLIPPER_RETURN_IF_ERROR(
      WriteSection(SectionId::kDictBlob, blob.data(), blob.size()));

  std::vector<ItemId> parents(taxonomy.id_space());
  for (size_t id = 0; id < parents.size(); ++id) {
    parents[id] = taxonomy.ParentOf(static_cast<ItemId>(id));
  }
  FLIPPER_RETURN_IF_ERROR(WriteSection(
      SectionId::kTaxParents, parents.data(),
      parents.size() * sizeof(ItemId)));
  const std::vector<ItemId>& roots = taxonomy.Level1();
  FLIPPER_RETURN_IF_ERROR(WriteSection(
      SectionId::kTaxRoots, roots.data(), roots.size() * sizeof(ItemId)));

  FileHeader header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kFormatVersion;
  header.section_count = static_cast<uint32_t>(sections_.size());
  header.file_size = file_pos_;
  header.num_transactions = num_transactions();
  header.num_items = num_items();
  header.num_segments = segments_.size() - 1;
  header.alphabet_size = alphabet_size_;
  header.max_width = max_width_;
  header.dict_size = dict.size();
  header.taxonomy_id_space = static_cast<uint32_t>(taxonomy.id_space());
  header.taxonomy_num_roots = static_cast<uint32_t>(roots.size());
  header.table_checksum = Fnv1a64(
      sections_.data(), sections_.size() * sizeof(SectionEntry));
  header.header_checksum = HeaderChecksum(header);

  file_.seekp(0);
  if (!file_) return Status::IoError("seek failed: " + path_);
  file_.write(reinterpret_cast<const char*>(&header), sizeof(header));
  file_.write(reinterpret_cast<const char*>(sections_.data()),
              static_cast<std::streamsize>(sections_.size() *
                                           sizeof(SectionEntry)));
  file_.flush();
  if (!file_) return Status::IoError("write failed: " + path_);
  file_.close();
  finished_ = true;
  return Status::OK();
}

Status WriteStoreFile(const std::string& path, const TransactionDb& db,
                      const ItemDictionary& dict, const Taxonomy& taxonomy,
                      const StoreWriter::Options& options) {
  FLIPPER_ASSIGN_OR_RETURN(StoreWriter writer,
                           StoreWriter::Create(path, options));
  for (TxnId t = 0; t < db.size(); ++t) {
    FLIPPER_RETURN_IF_ERROR(writer.Append(db.Get(t)));
  }
  return writer.Finish(dict, taxonomy);
}

}  // namespace storage
}  // namespace flipper
