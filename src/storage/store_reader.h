// StoreReader: opens a .fdb FlipperStore file (version 1 or 2) and
// exposes its contents as ready-to-mine objects.
//
// v1 files carry raw fixed-width columns: the transaction database and
// dictionary are zero-copy views over the file mapping (borrowed-span
// mode of TransactionDb / ItemDictionary); only the taxonomy — a few
// KB of tree structure — is reconstructed in memory.
//
// v2 files carry delta+varint columns, so Open() runs one
// bounds-checked decode pass into reader-owned buffers (the spans the
// TransactionDb borrows then point at those buffers) and additionally
// decodes the segment catalog, which it attaches to the database for
// scan skipping and exposes through catalog().
//
// On platforms without mmap (or with OpenOptions::force_heap) the file
// is read into one aligned heap buffer instead, with identical
// semantics.
//
// Appended v2 stores (StoreWriter::OpenAppend) carry one
// kTxnOffsets/kTxnItems block pair per session; the decode treats the
// blocks, in section-table order, as one logical column. For files
// torn by a crash mid-append, OpenPrefix() recovers the last committed
// state (see PrefixInfo); Open() itself stays strict.
//
// Open() hard-validates the header checksum, the section table, and
// every section's bounds before handing out a single pointer; with
// OpenOptions::validate (the default) it additionally scans the
// payloads so that every CSR offset is monotone, every item id is
// in-range and sorted within its transaction, the header's derived
// metadata matches the data, and (v2) the catalog agrees with the
// items it summarizes. The v2 column decode is always fully
// bounds-checked — a truncated varint is a Status error even in
// trusted mode. A corrupt or truncated file yields a Status error,
// never UB.

#ifndef FLIPPER_STORAGE_STORE_READER_H_
#define FLIPPER_STORAGE_STORE_READER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/item_dictionary.h"
#include "data/segment_catalog.h"
#include "data/transaction_db.h"
#include "storage/format.h"
#include "storage/mmap_file.h"
#include "taxonomy/taxonomy.h"

namespace flipper {
namespace storage {

/// What StoreReader::OpenPrefix discovered about the physical file —
/// the input to repair (storage/recovery.h).
struct PrefixInfo {
  enum class Recovery {
    kClean,               // committed state == physical file
    kTruncateTail,        // torn append tail after a valid front header
    kRewriteFrontHeader,  // valid commit trailer, stale/torn front header
  };
  Recovery recovery = Recovery::kClean;
  uint64_t physical_size = 0;
  /// file_size of the chosen (committed) header; for kTruncateTail the
  /// bytes past this offset are torn.
  uint64_t committed_size = 0;
  /// The header describing the committed state (for kRewriteFrontHeader
  /// this is the trailer copy repair writes back to offset 0).
  FileHeader committed_header;
  std::string detail;  // human-readable reason for the verdict
};

struct OpenOptions {
  /// Scan section payloads (O(num_items)) so that every offset and
  /// item id is proven in-bounds before use. Disable only for trusted
  /// files (e.g. open-latency benchmarks); structural checks — header
  /// checksum, section table, section bounds, dictionary offsets,
  /// segment boundaries, taxonomy reconstruction, and the v2 varint
  /// decode itself — always run.
  bool validate = true;
  /// Skip mmap and read the file into memory (the portable fallback;
  /// also exercised by tests).
  bool force_heap = false;
};

class StoreReader {
 public:
  static Result<StoreReader> Open(const std::string& path,
                                  const OpenOptions& options = {});

  /// Best-effort open of the last *committed* state of a possibly torn
  /// file: where Open() requires the front header to describe the
  /// whole file byte-for-byte, OpenPrefix also accepts (a) a valid
  /// front header followed by torn trailing bytes — a crashed append
  /// session — and (b) a valid commit trailer whose front header
  /// rewrite never landed. `info` (optional) receives what was found
  /// and which repair action would make Open() succeed; it is filled
  /// whenever a committed header was identified, even if the committed
  /// payload then fails validation and an error is returned. Repair
  /// (storage/recovery.h) is built on this.
  static Result<StoreReader> OpenPrefix(const std::string& path,
                                        PrefixInfo* info,
                                        const OpenOptions& options = {});

  StoreReader(StoreReader&&) = default;
  StoreReader& operator=(StoreReader&&) = default;
  StoreReader(const StoreReader&) = delete;
  StoreReader& operator=(const StoreReader&) = delete;

  /// Borrowed views into the file (v1) or the reader's decode buffers
  /// (v2); valid while this reader is alive.
  const TransactionDb& db() const { return db_; }
  const ItemDictionary& dict() const { return dict_; }
  const Taxonomy& taxonomy() const { return taxonomy_; }

  /// Shard boundaries: num_segments + 1 transaction indexes starting
  /// at 0 and ending at num_transactions.
  std::span<const uint64_t> segments() const { return segments_; }

  /// The decoded segment catalog, or nullptr for v1 files (which do
  /// not carry one). Also attached to db() for the mining paths.
  const SegmentCatalog* catalog() const { return catalog_.get(); }

  const FileHeader& header() const { return header_; }
  uint32_t version() const { return header_.version; }
  std::span<const SectionEntry> sections() const { return sections_; }
  bool mapped() const { return file_.mapped(); }
  uint64_t file_size() const { return file_.size(); }

  /// Recomputes every section checksum against the table (full file
  /// scan; `flipper_cli inspect` runs this).
  Status VerifyChecksums() const;

 private:
  StoreReader() = default;

  /// Shared tail of Open/OpenPrefix: parses and validates everything
  /// the chosen `header` describes. The header's file_size may be
  /// smaller than the mapping (trailing torn bytes are ignored) but
  /// never larger.
  static Result<StoreReader> OpenParsed(MmapFile file,
                                        const FileHeader& header,
                                        const OpenOptions& options,
                                        const std::string& path);

  /// Decodes the v2 varint columns into decoded_offsets_ /
  /// decoded_items_ (always bounds-checked; `validate` adds the
  /// header-consistency cross-checks). Appended stores carry one block
  /// pair per session; blocks are concatenated in table order.
  Status DecodeColumnsV2(const std::byte* base,
                         std::span<const SectionEntry* const> offsets_blocks,
                         std::span<const SectionEntry* const> items_blocks,
                         bool validate);
  /// Decodes and validates the v2 segment catalog section.
  Status DecodeCatalogV2(const std::byte* base, const SectionEntry& entry,
                         bool validate);

  MmapFile file_;
  FileHeader header_;
  std::vector<SectionEntry> sections_;
  std::span<const uint64_t> segments_;
  /// v2 decode buffers; the db's borrowed spans point into these.
  std::vector<uint64_t> decoded_offsets_;
  std::vector<ItemId> decoded_items_;
  std::shared_ptr<const SegmentCatalog> catalog_;
  TransactionDb db_;
  ItemDictionary dict_;
  Taxonomy taxonomy_;
};

}  // namespace storage
}  // namespace flipper

#endif  // FLIPPER_STORAGE_STORE_READER_H_
