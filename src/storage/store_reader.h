// StoreReader: opens a .fdb FlipperStore file and exposes its contents
// as ready-to-mine objects. The transaction database and dictionary
// are zero-copy views over the file mapping (borrowed-span mode of
// TransactionDb / ItemDictionary); only the taxonomy — a few KB of
// tree structure — is reconstructed in memory. On platforms without
// mmap (or with OpenOptions::force_heap) the file is read into one
// aligned heap buffer instead, with identical semantics.
//
// Open() hard-validates the header checksum, the section table, and
// every section's bounds before handing out a single pointer; with
// OpenOptions::validate (the default) it additionally scans the
// payloads so that every CSR offset is monotone, every item id is
// in-range and sorted within its transaction, and the header's derived
// metadata matches the data. A corrupt or truncated file yields a
// Status error, never UB.

#ifndef FLIPPER_STORAGE_STORE_READER_H_
#define FLIPPER_STORAGE_STORE_READER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/item_dictionary.h"
#include "data/transaction_db.h"
#include "storage/format.h"
#include "storage/mmap_file.h"
#include "taxonomy/taxonomy.h"

namespace flipper {
namespace storage {

struct OpenOptions {
  /// Scan section payloads (O(num_items)) so that every offset and
  /// item id is proven in-bounds before use. Disable only for trusted
  /// files (e.g. open-latency benchmarks); structural checks — header
  /// checksum, section table, section bounds, dictionary offsets,
  /// segment boundaries, taxonomy reconstruction — always run.
  bool validate = true;
  /// Skip mmap and read the file into memory (the portable fallback;
  /// also exercised by tests).
  bool force_heap = false;
};

class StoreReader {
 public:
  static Result<StoreReader> Open(const std::string& path,
                                  const OpenOptions& options = {});

  StoreReader(StoreReader&&) = default;
  StoreReader& operator=(StoreReader&&) = default;
  StoreReader(const StoreReader&) = delete;
  StoreReader& operator=(const StoreReader&) = delete;

  /// Borrowed views into the file; valid while this reader is alive.
  const TransactionDb& db() const { return db_; }
  const ItemDictionary& dict() const { return dict_; }
  const Taxonomy& taxonomy() const { return taxonomy_; }

  /// Shard boundaries: num_segments + 1 transaction indexes starting
  /// at 0 and ending at num_transactions.
  std::span<const uint64_t> segments() const { return segments_; }

  const FileHeader& header() const { return header_; }
  std::span<const SectionEntry> sections() const { return sections_; }
  bool mapped() const { return file_.mapped(); }
  uint64_t file_size() const { return file_.size(); }

  /// Recomputes every section checksum against the table (full file
  /// scan; `flipper_cli inspect` runs this).
  Status VerifyChecksums() const;

 private:
  StoreReader() = default;

  MmapFile file_;
  FileHeader header_;
  std::vector<SectionEntry> sections_;
  std::span<const uint64_t> segments_;
  TransactionDb db_;
  ItemDictionary dict_;
  Taxonomy taxonomy_;
};

}  // namespace storage
}  // namespace flipper

#endif  // FLIPPER_STORAGE_STORE_READER_H_
