#include "storage/recovery.h"

#include <cstring>

#include "storage/mmap_file.h"

namespace flipper {
namespace storage {
namespace {

/// Parse-only header check (magic, version, checksum) used by the
/// diagnosis pass; mirrors the reader's but reports instead of
/// rejecting.
bool ParseHeader(const std::byte* at, FileHeader* h, std::string* why) {
  std::memcpy(h, at, sizeof(*h));
  if (std::memcmp(h->magic, kMagic, sizeof(kMagic)) != 0) {
    *why = "bad magic (not a FlipperStore header)";
    return false;
  }
  if (SectionCountForVersion(h->version) == 0) {
    *why = "unsupported version " + std::to_string(h->version);
    return false;
  }
  if (HeaderChecksum(*h) != h->header_checksum) {
    *why = "header checksum mismatch";
    return false;
  }
  return true;
}

std::string HumanAction(RepairPlan::Action action) {
  switch (action) {
    case RepairPlan::Action::kNone:
      return "none";
    case RepairPlan::Action::kTruncateTail:
      return "truncate torn tail";
    case RepairPlan::Action::kRewriteFrontHeader:
      return "rewrite front header from the commit trailer";
    case RepairPlan::Action::kUnrecoverable:
      return "unrecoverable";
  }
  return "?";
}

}  // namespace

Result<RepairPlan> AnalyzeStore(const std::string& path) {
  RepairPlan plan;
  PrefixInfo info;
  Result<StoreReader> reader = StoreReader::OpenPrefix(path, &info);
  plan.physical_size = info.physical_size;
  if (!reader.ok()) {
    const StatusCode code = reader.status().code();
    if (code == StatusCode::kIoError || code == StatusCode::kNotFound) {
      return reader.status();  // unreadable, not corrupt
    }
    // Either no committed header survives, or one does but its payload
    // fails validation — both are beyond what repair can restore.
    plan.action = RepairPlan::Action::kUnrecoverable;
    plan.committed_size = info.committed_size;
    plan.header = info.committed_header;
    plan.detail = reader.status().message();
    return plan;
  }
  plan.committed_size = info.committed_size;
  plan.header = info.committed_header;
  plan.detail = info.detail;
  switch (info.recovery) {
    case PrefixInfo::Recovery::kClean:
      plan.action = RepairPlan::Action::kNone;
      break;
    case PrefixInfo::Recovery::kTruncateTail:
      plan.action = RepairPlan::Action::kTruncateTail;
      plan.torn_bytes = plan.physical_size - plan.committed_size;
      break;
    case PrefixInfo::Recovery::kRewriteFrontHeader:
      plan.action = RepairPlan::Action::kRewriteFrontHeader;
      break;
  }
  return plan;
}

Status ApplyRepair(const std::string& path, const RepairPlan& plan,
                   FileSystem* fs) {
  fs = ResolveFileSystem(fs);
  switch (plan.action) {
    case RepairPlan::Action::kNone:
      return Status::OK();
    case RepairPlan::Action::kUnrecoverable:
      return Status::FailedPrecondition(
          "store is unrecoverable, refusing to repair: " + plan.detail);
    case RepairPlan::Action::kTruncateTail: {
      FLIPPER_RETURN_IF_ERROR(fs->Truncate(path, plan.committed_size));
      // Make the new length durable before declaring success.
      std::unique_ptr<WritableFile> f;
      FLIPPER_ASSIGN_OR_RETURN(f, fs->OpenWritable(path, false));
      FLIPPER_RETURN_IF_ERROR(f->Sync());
      FLIPPER_RETURN_IF_ERROR(f->Close());
      break;
    }
    case RepairPlan::Action::kRewriteFrontHeader: {
      std::unique_ptr<WritableFile> f;
      FLIPPER_ASSIGN_OR_RETURN(f, fs->OpenWritable(path, false));
      FLIPPER_RETURN_IF_ERROR(
          f->WriteAt(0, &plan.header, sizeof(FileHeader)));
      FLIPPER_RETURN_IF_ERROR(f->Sync());
      FLIPPER_RETURN_IF_ERROR(f->Close());
      break;
    }
  }
  // The repaired file must now satisfy the strict validated open; if
  // it does not, the plan was stale (file changed underneath us).
  Result<StoreReader> verify = StoreReader::Open(path);
  if (!verify.ok()) {
    return Status(verify.status().code(),
                  "repair completed but the store still fails to open "
                  "(stale plan? file modified concurrently?): " +
                      verify.status().message());
  }
  return verify->VerifyChecksums();
}

Result<Diagnosis> DiagnoseStore(const std::string& path) {
  Diagnosis d;
  MmapFile file;
  FLIPPER_ASSIGN_OR_RETURN(file, MmapFile::Open(path));
  const std::byte* base = file.data();
  const uint64_t phys = file.size();
  FLIPPER_ASSIGN_OR_RETURN(d.plan, AnalyzeStore(path));
  d.valid = d.plan.action == RepairPlan::Action::kNone;

  d.findings.push_back(
      {"file", 0, phys, true,
       std::to_string(phys) + " bytes, planned action: " +
           HumanAction(d.plan.action)});

  // --- The two header locations. ---
  FileHeader front;
  bool front_ok = false;
  if (phys < sizeof(FileHeader)) {
    d.findings.push_back({"front_header", 0, phys, false,
                          "file too small to hold a header"});
  } else {
    std::string why;
    front_ok = ParseHeader(base, &front, &why);
    Finding f{"front_header", 0, sizeof(FileHeader), front_ok, why};
    if (front_ok) {
      f.detail = "version " + std::to_string(front.version) +
                 ", records file_size " + std::to_string(front.file_size);
      if (d.plan.action == RepairPlan::Action::kRewriteFrontHeader) {
        f.ok = false;
        f.detail += " — stale: the commit trailer records " +
                    std::to_string(d.plan.committed_size) +
                    " (crash between trailer and front-header rewrite)";
      }
    }
    d.findings.push_back(std::move(f));
  }
  const bool want_trailer =
      !front_ok || (phys >= sizeof(FileHeader) && front.file_size != phys);
  if (want_trailer && phys >= sizeof(FileHeader)) {
    FileHeader tail;
    std::string why;
    const uint64_t at = phys - sizeof(FileHeader);
    bool ok = ParseHeader(base + at, &tail, &why);
    if (ok && tail.file_size != phys) {
      ok = false;
      why = "header-shaped bytes but records file_size " +
            std::to_string(tail.file_size) + ", not the physical " +
            std::to_string(phys);
    }
    d.findings.push_back(
        {"commit_trailer", at, sizeof(FileHeader), ok,
         ok ? "valid commit trailer (version " +
                  std::to_string(tail.version) + ")"
            : "no commit trailer at end of file: " + why});
  }
  if (d.plan.action == RepairPlan::Action::kTruncateTail) {
    d.findings.push_back(
        {"torn_tail", d.plan.committed_size, d.plan.torn_bytes, false,
         "torn bytes from a crashed append session; repair truncates "
         "them"});
  }

  // --- Walk the committed state's section table, if one was found. ---
  if (d.plan.committed_size >= sizeof(FileHeader)) {
    const FileHeader& h = d.plan.header;
    const uint64_t limit =
        d.plan.committed_size <= phys ? d.plan.committed_size : phys;
    const uint64_t table_offset =
        h.table_offset == 0 ? sizeof(FileHeader) : h.table_offset;
    const uint64_t table_bytes =
        uint64_t{h.section_count} * sizeof(SectionEntry);
    const bool table_in_bounds =
        h.section_count <= kMaxSectionCount &&
        table_offset % kSectionAlignment == 0 &&
        table_offset >= sizeof(FileHeader) && table_offset <= limit &&
        limit - table_offset >= table_bytes;
    if (!table_in_bounds) {
      d.findings.push_back({"section_table", table_offset, table_bytes,
                            false,
                            "section table does not fit the committed "
                            "file (count " +
                                std::to_string(h.section_count) + ")"});
    } else {
      const bool table_sum_ok =
          Fnv1a64(base + table_offset, table_bytes) == h.table_checksum;
      d.findings.push_back(
          {"section_table", table_offset, table_bytes, table_sum_ok,
           table_sum_ok
               ? std::to_string(h.section_count) + " sections, checksum ok"
               : "section table checksum mismatch"});
      if (table_sum_ok) {
        for (uint32_t i = 0; i < h.section_count; ++i) {
          SectionEntry e;
          std::memcpy(&e, base + table_offset + i * sizeof(SectionEntry),
                      sizeof(e));
          const std::string name = SectionIdName(SectionId(e.id));
          if (e.offset % kSectionAlignment != 0 || e.offset > limit ||
              limit - e.offset < e.size) {
            d.findings.push_back(
                {name, e.offset, e.size, false,
                 "section extends past the committed bytes"});
            continue;
          }
          const bool sum_ok =
              Fnv1a64(base + e.offset, static_cast<size_t>(e.size)) ==
              e.checksum;
          d.findings.push_back({name, e.offset, e.size, sum_ok,
                                sum_ok ? "checksum ok"
                                       : "payload checksum mismatch"});
        }
      }
    }
    // A semantic failure (checksums fine, content invalid) shows up
    // only in the open error; surface it as its own finding.
    if (d.plan.action == RepairPlan::Action::kUnrecoverable) {
      d.findings.push_back({"payload", 0, limit, false, d.plan.detail});
    }
  } else if (d.plan.action == RepairPlan::Action::kUnrecoverable) {
    d.findings.push_back(
        {"payload", 0, phys, false,
         "no committed state found: " + d.plan.detail});
  }
  return d;
}

}  // namespace storage
}  // namespace flipper
