// TidSet: the set of transaction ids containing an item, stored either
// as a dense bitset or a sorted sparse list depending on density. Used
// by the vertical support-counting engine; intersections auto-select
// word-AND+popcount, galloping merge, or probe strategies.

#ifndef FLIPPER_DATA_TIDSET_H_
#define FLIPPER_DATA_TIDSET_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/types.h"

namespace flipper {

class TidSet {
 public:
  enum class Mode { kDense, kSparse };

  TidSet() = default;

  /// Builds from a sorted, duplicate-free tid list over a universe of
  /// `universe` transactions. Chooses the representation by density:
  /// dense when cardinality/universe >= kDenseThreshold.
  static TidSet Build(std::span<const TxnId> sorted_tids,
                      uint32_t universe);

  /// Forces a representation (used by tests and the ablation bench).
  static TidSet BuildDense(std::span<const TxnId> sorted_tids,
                           uint32_t universe);
  static TidSet BuildSparse(std::span<const TxnId> sorted_tids,
                            uint32_t universe);

  Mode mode() const { return mode_; }
  uint32_t cardinality() const { return cardinality_; }
  uint32_t universe() const { return universe_; }

  bool Contains(TxnId t) const;

  /// Materializes the sorted tid list (mainly for tests).
  std::vector<TxnId> ToVector() const;

  /// Appends the sorted tid list to `out` (no clear).
  void AppendTo(std::vector<TxnId>* out) const;

  /// Reusable working buffers for IntersectCountMany. Callers that
  /// intersect many itemsets in a row (the vertical counting engine)
  /// keep one per thread to amortize the allocations.
  struct IntersectScratch {
    std::vector<const TidSet*> order;
    std::vector<TxnId> current;
    std::vector<TxnId> next;
  };

  /// |a ∩ b|.
  static uint32_t IntersectCount(const TidSet& a, const TidSet& b);

  /// |s_0 ∩ s_1 ∩ ... ∩ s_{n-1}|; n >= 1. Orders the work by ascending
  /// cardinality and intersects incrementally with early exit on empty.
  static uint32_t IntersectCountMany(std::span<const TidSet* const> sets);

  /// Scratch-reusing variant; `scratch` must outlive the call.
  static uint32_t IntersectCountMany(std::span<const TidSet* const> sets,
                                     IntersectScratch* scratch);

  /// Approximate heap bytes.
  int64_t MemoryBytes() const {
    return static_cast<int64_t>(words_.capacity() * sizeof(uint64_t) +
                                tids_.capacity() * sizeof(TxnId));
  }

  /// Density at/above which Build() picks the dense representation
  /// (a 64-bit word per 64 txns beats 32-bit tids from ~1/16 density;
  /// we switch a little earlier to favour the fast AND+popcount path).
  static constexpr double kDenseThreshold = 1.0 / 32.0;

 private:
  static uint32_t IntersectSparseSparse(const TidSet& a, const TidSet& b);
  static uint32_t IntersectDenseDense(const TidSet& a, const TidSet& b);
  static uint32_t IntersectSparseDense(const TidSet& sparse,
                                       const TidSet& dense);

  Mode mode_ = Mode::kSparse;
  uint32_t universe_ = 0;
  uint32_t cardinality_ = 0;
  std::vector<uint64_t> words_;  // dense payload
  std::vector<TxnId> tids_;      // sparse payload (sorted)
};

}  // namespace flipper

#endif  // FLIPPER_DATA_TIDSET_H_
