// Fundamental identifier types shared across libflipper.

#ifndef FLIPPER_DATA_TYPES_H_
#define FLIPPER_DATA_TYPES_H_

#include <cstdint>
#include <limits>

namespace flipper {

/// Identifier of an item. Leaf items and internal taxonomy nodes share
/// one id space (an internal node "is itself an item, but at a higher
/// abstraction level" — paper §2.2).
using ItemId = uint32_t;

/// Identifier (index) of a transaction.
using TxnId = uint32_t;

inline constexpr ItemId kInvalidItem = std::numeric_limits<ItemId>::max();

/// Hard cap on itemset arity. K is bounded by the number of level-1
/// taxonomy nodes or the maximum transaction width, whichever is
/// smaller; 16 comfortably covers every workload in the paper.
inline constexpr int kMaxItemsetSize = 16;

}  // namespace flipper

#endif  // FLIPPER_DATA_TYPES_H_
