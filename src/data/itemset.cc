#include "data/itemset.h"

#include <algorithm>

namespace flipper {

void Itemset::Insert(ItemId item) {
  assert(item != kInvalidItem);
  const ItemId* e = end();
  const ItemId* pos = std::lower_bound(begin(), e, item);
  if (pos != e && *pos == item) return;  // already present
  assert(size_ < kMaxItemsetSize && "Itemset capacity exceeded");
  const auto idx = static_cast<size_t>(pos - begin());
  for (size_t i = static_cast<size_t>(size_); i > idx; --i) {
    items_[i] = items_[i - 1];
  }
  items_[idx] = item;
  ++size_;
}

bool Itemset::Contains(ItemId item) const {
  return std::binary_search(begin(), end(), item);
}

bool Itemset::ContainsAll(const Itemset& other) const {
  if (other.size_ > size_) return false;
  return std::includes(begin(), end(), other.begin(), other.end());
}

Itemset Itemset::WithoutIndex(int index) const {
  assert(index >= 0 && index < size_);
  Itemset out;
  for (int i = 0; i < size_; ++i) {
    if (i == index) continue;
    out.items_[static_cast<size_t>(out.size_++)] =
        items_[static_cast<size_t>(i)];
  }
  return out;
}

std::optional<Itemset> Itemset::PrefixJoin(const Itemset& a,
                                           const Itemset& b) {
  if (a.size_ != b.size_ || a.size_ == 0) return std::nullopt;
  const int k = a.size_;
  for (int i = 0; i + 1 < k; ++i) {
    if (a[i] != b[i]) return std::nullopt;
  }
  if (a.back() >= b.back()) return std::nullopt;
  assert(k < kMaxItemsetSize);
  Itemset out = a;
  out.items_[static_cast<size_t>(k)] = b.back();
  out.size_ = k + 1;
  return out;
}

bool Itemset::operator<(const Itemset& other) const {
  return std::lexicographical_compare(begin(), end(), other.begin(),
                                      other.end());
}

uint64_t Itemset::Hash() const {
  // FNV-1a over the item words, finished with a splitmix-style mixer.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (ItemId it : *this) {
    h ^= it;
    h *= 0x100000001b3ULL;
  }
  h ^= static_cast<uint64_t>(size_) << 56;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

std::string Itemset::ToString() const {
  std::string out = "{";
  for (int i = 0; i < size_; ++i) {
    if (i > 0) out += ", ";
    out += std::to_string((*this)[i]);
  }
  out += "}";
  return out;
}

}  // namespace flipper
