// Itemset: a sorted set of up to kMaxItemsetSize distinct ItemIds with
// inline storage. This is the unit the mining engine hashes, joins and
// counts, so it is deliberately allocation-free and trivially copyable.

#ifndef FLIPPER_DATA_ITEMSET_H_
#define FLIPPER_DATA_ITEMSET_H_

#include <array>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <functional>
#include <initializer_list>
#include <optional>
#include <string>

#include "data/types.h"

namespace flipper {

/// Fixed-capacity sorted itemset. Invariant: items are strictly
/// increasing (sorted, duplicate-free).
class Itemset {
 public:
  Itemset() : size_(0) { items_.fill(kInvalidItem); }

  /// Builds from an unsorted list; duplicates are collapsed.
  /// Asserts the (post-dedup) size fits.
  Itemset(std::initializer_list<ItemId> items) : Itemset() {
    for (ItemId it : items) Insert(it);
  }

  static Itemset Single(ItemId a) {
    Itemset s;
    s.items_[0] = a;
    s.size_ = 1;
    return s;
  }

  static Itemset Pair(ItemId a, ItemId b) {
    assert(a != b);
    Itemset s;
    s.items_[0] = a < b ? a : b;
    s.items_[1] = a < b ? b : a;
    s.size_ = 2;
    return s;
  }

  int size() const { return size_; }
  bool empty() const { return size_ == 0; }

  ItemId operator[](int i) const {
    assert(i >= 0 && i < size_);
    return items_[static_cast<size_t>(i)];
  }

  const ItemId* begin() const { return items_.data(); }
  const ItemId* end() const { return items_.data() + size_; }

  ItemId front() const { return (*this)[0]; }
  ItemId back() const { return (*this)[size_ - 1]; }

  /// Inserts keeping the sort order. No-op if present. Asserts capacity.
  void Insert(ItemId item);

  /// Appends an item strictly greater than back() — the O(1) stack
  /// push for combination enumeration over sorted inputs. Asserts
  /// order and capacity.
  void PushBack(ItemId item) {
    assert(size_ < static_cast<int32_t>(kMaxItemsetSize));
    assert(size_ == 0 || items_[static_cast<size_t>(size_ - 1)] < item);
    items_[static_cast<size_t>(size_++)] = item;
  }

  /// Removes the largest item (the stack pop). Asserts non-empty.
  void PopBack() {
    assert(size_ > 0);
    items_[static_cast<size_t>(--size_)] = kInvalidItem;
  }

  /// Resets to the empty itemset.
  void Clear() {
    items_.fill(kInvalidItem);
    size_ = 0;
  }

  /// Binary search.
  bool Contains(ItemId item) const;

  /// True if every item of `other` is contained in *this.
  bool ContainsAll(const Itemset& other) const;

  /// The (size-1)-subset obtained by dropping position `index`.
  Itemset WithoutIndex(int index) const;

  /// The superset obtained by inserting one item (must be absent).
  Itemset WithItem(ItemId item) const {
    assert(!Contains(item));
    Itemset s = *this;
    s.Insert(item);
    return s;
  }

  /// Apriori prefix join: defined when both inputs have equal size k,
  /// share their first k-1 items, and a.back() < b.back(); the result
  /// is the (k+1)-itemset a ∪ b. Returns nullopt otherwise.
  static std::optional<Itemset> PrefixJoin(const Itemset& a,
                                           const Itemset& b);

  /// Applies a per-item mapping (e.g. ancestor-at-level-h). The result
  /// collapses duplicates, so it may be smaller than the input.
  template <typename Fn>
  Itemset Map(Fn&& fn) const {
    Itemset out;
    for (ItemId it : *this) out.Insert(fn(it));
    return out;
  }

  bool operator==(const Itemset& other) const {
    return size_ == other.size_ &&
           std::memcmp(items_.data(), other.items_.data(),
                       sizeof(ItemId) * static_cast<size_t>(size_)) == 0;
  }
  bool operator!=(const Itemset& other) const { return !(*this == other); }

  /// Lexicographic order (for deterministic output).
  bool operator<(const Itemset& other) const;

  /// 64-bit hash of the contents.
  uint64_t Hash() const;

  /// "{3, 17, 42}".
  std::string ToString() const;

 private:
  std::array<ItemId, kMaxItemsetSize> items_;
  int32_t size_;
};

static_assert(sizeof(Itemset) <= 72, "Itemset should stay compact");

struct ItemsetHash {
  size_t operator()(const Itemset& s) const {
    return static_cast<size_t>(s.Hash());
  }
};

}  // namespace flipper

#endif  // FLIPPER_DATA_ITEMSET_H_
