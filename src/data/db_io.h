// Text I/O for transaction databases.
//
// Basket format: one transaction per line, item names separated by
// whitespace. Lines starting with '#' and blank lines are skipped.
// Names are interned into the caller's ItemDictionary so that the
// taxonomy (loaded separately) shares the id space.

#ifndef FLIPPER_DATA_DB_IO_H_
#define FLIPPER_DATA_DB_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "data/item_dictionary.h"
#include "data/transaction_db.h"

namespace flipper {

/// Parses basket-format text from a stream.
Result<TransactionDb> ReadBasketStream(std::istream& in,
                                       ItemDictionary* dict);

/// Loads a basket file from disk.
Result<TransactionDb> ReadBasketFile(const std::string& path,
                                     ItemDictionary* dict);

/// Serializes a database in basket format (names resolved through
/// `dict`).
Status WriteBasketStream(const TransactionDb& db,
                         const ItemDictionary& dict, std::ostream& out);

Status WriteBasketFile(const TransactionDb& db, const ItemDictionary& dict,
                       const std::string& path);

}  // namespace flipper

#endif  // FLIPPER_DATA_DB_IO_H_
