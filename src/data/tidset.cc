#include "data/tidset.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace flipper {

TidSet TidSet::Build(std::span<const TxnId> sorted_tids,
                     uint32_t universe) {
  const double density =
      universe == 0 ? 0.0
                    : static_cast<double>(sorted_tids.size()) / universe;
  return density >= kDenseThreshold ? BuildDense(sorted_tids, universe)
                                    : BuildSparse(sorted_tids, universe);
}

TidSet TidSet::BuildDense(std::span<const TxnId> sorted_tids,
                          uint32_t universe) {
  TidSet s;
  s.mode_ = Mode::kDense;
  s.universe_ = universe;
  s.cardinality_ = static_cast<uint32_t>(sorted_tids.size());
  s.words_.assign((universe + 63) / 64, 0);
  for (TxnId t : sorted_tids) {
    assert(t < universe);
    s.words_[t >> 6] |= uint64_t{1} << (t & 63);
  }
  return s;
}

TidSet TidSet::BuildSparse(std::span<const TxnId> sorted_tids,
                           uint32_t universe) {
  TidSet s;
  s.mode_ = Mode::kSparse;
  s.universe_ = universe;
  s.cardinality_ = static_cast<uint32_t>(sorted_tids.size());
  s.tids_.assign(sorted_tids.begin(), sorted_tids.end());
  assert(std::is_sorted(s.tids_.begin(), s.tids_.end()));
  return s;
}

bool TidSet::Contains(TxnId t) const {
  if (t >= universe_) return false;
  if (mode_ == Mode::kDense) {
    return (words_[t >> 6] >> (t & 63)) & 1;
  }
  return std::binary_search(tids_.begin(), tids_.end(), t);
}

std::vector<TxnId> TidSet::ToVector() const {
  std::vector<TxnId> out;
  AppendTo(&out);
  return out;
}

void TidSet::AppendTo(std::vector<TxnId>* out) const {
  out->reserve(out->size() + cardinality_);
  if (mode_ == Mode::kSparse) {
    out->insert(out->end(), tids_.begin(), tids_.end());
    return;
  }
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      out->push_back(
          static_cast<TxnId>(w * 64 + static_cast<size_t>(bit)));
      word &= word - 1;
    }
  }
}

uint32_t TidSet::IntersectDenseDense(const TidSet& a, const TidSet& b) {
  const size_t n = std::min(a.words_.size(), b.words_.size());
  uint32_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<uint32_t>(std::popcount(a.words_[i] & b.words_[i]));
  }
  return count;
}

uint32_t TidSet::IntersectSparseDense(const TidSet& sparse,
                                      const TidSet& dense) {
  uint32_t count = 0;
  for (TxnId t : sparse.tids_) {
    count += static_cast<uint32_t>((dense.words_[t >> 6] >> (t & 63)) & 1);
  }
  return count;
}

uint32_t TidSet::IntersectSparseSparse(const TidSet& a, const TidSet& b) {
  // Galloping merge: binary-search the larger list when the size ratio
  // is extreme, otherwise a linear merge.
  const std::vector<TxnId>& s = a.tids_.size() <= b.tids_.size()
                                    ? a.tids_
                                    : b.tids_;
  const std::vector<TxnId>& l = a.tids_.size() <= b.tids_.size()
                                    ? b.tids_
                                    : a.tids_;
  uint32_t count = 0;
  if (l.size() > 16 * s.size()) {
    auto lo = l.begin();
    for (TxnId t : s) {
      lo = std::lower_bound(lo, l.end(), t);
      if (lo == l.end()) break;
      if (*lo == t) {
        ++count;
        ++lo;
      }
    }
    return count;
  }
  size_t i = 0;
  size_t j = 0;
  while (i < s.size() && j < l.size()) {
    if (s[i] < l[j]) {
      ++i;
    } else if (s[i] > l[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

uint32_t TidSet::IntersectCount(const TidSet& a, const TidSet& b) {
  assert(a.universe_ == b.universe_);
  if (a.mode_ == Mode::kDense && b.mode_ == Mode::kDense) {
    return IntersectDenseDense(a, b);
  }
  if (a.mode_ == Mode::kSparse && b.mode_ == Mode::kSparse) {
    return IntersectSparseSparse(a, b);
  }
  return a.mode_ == Mode::kSparse ? IntersectSparseDense(a, b)
                                  : IntersectSparseDense(b, a);
}

uint32_t TidSet::IntersectCountMany(
    std::span<const TidSet* const> sets) {
  IntersectScratch scratch;
  return IntersectCountMany(sets, &scratch);
}

uint32_t TidSet::IntersectCountMany(std::span<const TidSet* const> sets,
                                    IntersectScratch* scratch) {
  assert(!sets.empty());
  if (sets.size() == 1) return sets[0]->cardinality();
  if (sets.size() == 2) return IntersectCount(*sets[0], *sets[1]);

  // Sort by ascending cardinality; intersect the two smallest first and
  // keep refining the explicit tid list.
  std::vector<const TidSet*>& order = scratch->order;
  order.assign(sets.begin(), sets.end());
  std::sort(order.begin(), order.end(),
            [](const TidSet* x, const TidSet* y) {
              return x->cardinality() < y->cardinality();
            });
  std::vector<TxnId>& current = scratch->current;
  std::vector<TxnId>& next = scratch->next;
  current.clear();
  order[0]->AppendTo(&current);
  for (size_t i = 1; i < order.size(); ++i) {
    if (current.empty()) return 0;
    next.clear();
    const TidSet& s = *order[i];
    for (TxnId t : current) {
      if (s.Contains(t)) next.push_back(t);
    }
    current.swap(next);
  }
  return static_cast<uint32_t>(current.size());
}

}  // namespace flipper
