#include "data/db_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "common/csv.h"
#include "common/string_util.h"

namespace flipper {

Result<TransactionDb> ReadBasketStream(std::istream& in,
                                       ItemDictionary* dict) {
  TransactionDb db;
  LineScanner scanner(in);
  std::string_view line;
  std::vector<ItemId> items;
  while (scanner.Next(&line)) {
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    items.clear();
    ForEachWhitespaceToken(trimmed, [&](std::string_view token) {
      items.push_back(dict->Intern(token));
    });
    db.Add(items);
  }
  if (scanner.bad()) {
    return Status::IoError("stream error while reading baskets");
  }
  return db;
}

Result<TransactionDb> ReadBasketFile(const std::string& path,
                                     ItemDictionary* dict) {
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open basket file: " + path);
  return ReadBasketStream(f, dict);
}

Status WriteBasketStream(const TransactionDb& db,
                         const ItemDictionary& dict, std::ostream& out) {
  for (TxnId t = 0; t < db.size(); ++t) {
    bool first = true;
    for (ItemId it : db.Get(t)) {
      if (it >= dict.size()) {
        return Status::InvalidArgument(
            "item id " + std::to_string(it) + " missing from dictionary");
      }
      if (!first) out << ' ';
      out << dict.Name(it);
      first = false;
    }
    out << '\n';
  }
  if (!out) return Status::IoError("stream error while writing baskets");
  return Status::OK();
}

Status WriteBasketFile(const TransactionDb& db, const ItemDictionary& dict,
                       const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IoError("cannot open for writing: " + path);
  return WriteBasketStream(db, dict, f);
}

}  // namespace flipper
