#include "data/segment_catalog.h"

#include <algorithm>
#include <bit>
#include <numeric>

#include "data/transaction_db.h"

namespace flipper {

std::vector<uint64_t> SegmentCatalog::UniformBoundaries(
    uint64_t num_txns, uint64_t segment_txns) {
  std::vector<uint64_t> boundaries = {0};
  if (segment_txns == 0) segment_txns = kDefaultSegmentTxns;
  for (uint64_t b = segment_txns; b < num_txns; b += segment_txns) {
    boundaries.push_back(b);
  }
  if (boundaries.back() != num_txns) boundaries.push_back(num_txns);
  return boundaries;
}

std::vector<ItemId> SegmentCatalog::TopKByFrequency(
    std::span<const uint32_t> freq, uint32_t k) {
  std::vector<ItemId> by_freq(freq.size());
  std::iota(by_freq.begin(), by_freq.end(), 0);
  std::sort(by_freq.begin(), by_freq.end(), [&](ItemId a, ItemId b) {
    return freq[a] != freq[b] ? freq[a] > freq[b] : a < b;
  });
  by_freq.resize(std::min<size_t>(k, by_freq.size()));
  return by_freq;
}

SegmentCatalog SegmentCatalog::Build(const TransactionDb& db,
                                     std::vector<uint64_t> boundaries,
                                     uint32_t tracked_items,
                                     uint32_t bitset_words,
                                     ThreadPool* pool) {
  SegmentCatalog catalog;
  catalog.bitset_words_ = std::max(1u, bitset_words);
  catalog.boundaries_ = std::move(boundaries);
  const size_t num_segments = catalog.boundaries_.size() - 1;

  const std::vector<uint32_t> freq = db.ItemFrequencies();
  catalog.tracked_ids_ = TopKByFrequency(freq, tracked_items);
  const size_t tracked = catalog.tracked_ids_.size();

  catalog.min_item_.assign(num_segments, kInvalidItem);
  catalog.max_item_.assign(num_segments, 0);
  catalog.bits_.assign(num_segments * catalog.bitset_words_, 0);
  catalog.tracked_supports_.assign(num_segments * tracked, 0);

  // Sparse tracked lookup: slot_of[item] = tracked slot + 1, 0 = not
  // tracked (shared read-only across segment shards).
  std::vector<uint32_t> slot_of(freq.size(), 0);
  for (size_t i = 0; i < tracked; ++i) {
    slot_of[catalog.tracked_ids_[i]] = static_cast<uint32_t>(i) + 1;
  }

  const auto build_segment = [&](size_t seg) {
    uint64_t* bits = catalog.bits_.data() + seg * catalog.bitset_words_;
    uint32_t* sups = catalog.tracked_supports_.data() + seg * tracked;
    ItemId lo = kInvalidItem;
    ItemId hi = 0;
    // Per-transaction distinctness makes the tracked counts true
    // supports (a txn contains each item at most once).
    for (uint64_t t = catalog.boundaries_[seg];
         t < catalog.boundaries_[seg + 1]; ++t) {
      for (ItemId item : db.Get(static_cast<TxnId>(t))) {
        lo = std::min(lo, item);
        hi = std::max(hi, item);
        const uint32_t bit = catalog.BitIndex(item);
        bits[bit / 64] |= uint64_t{1} << (bit % 64);
        if (item < slot_of.size() && slot_of[item] != 0) {
          ++sups[slot_of[item] - 1];
        }
      }
    }
    catalog.min_item_[seg] = lo;
    catalog.max_item_[seg] = hi;
  };

  // Segments write disjoint state, so sharding cannot reorder anything.
  const int num_shards = ShardCount(num_segments, pool, 1);
  ParallelFor(pool, 0, num_segments, num_shards,
              [&](int, size_t seg_lo, size_t seg_hi) {
                for (size_t seg = seg_lo; seg < seg_hi; ++seg) {
                  build_segment(seg);
                }
              });
  return catalog;
}

SegmentCatalog SegmentCatalog::FromParts(
    std::vector<uint64_t> boundaries, uint32_t bitset_words,
    std::vector<ItemId> tracked_ids, std::vector<ItemId> min_item,
    std::vector<ItemId> max_item, std::vector<uint64_t> bits,
    std::vector<uint32_t> tracked_supports) {
  SegmentCatalog catalog;
  catalog.boundaries_ = std::move(boundaries);
  catalog.bitset_words_ = std::max(1u, bitset_words);
  catalog.tracked_ids_ = std::move(tracked_ids);
  catalog.min_item_ = std::move(min_item);
  catalog.max_item_ = std::move(max_item);
  catalog.bits_ = std::move(bits);
  catalog.tracked_supports_ = std::move(tracked_supports);
  return catalog;
}

double SegmentCatalog::MeanBitsetFill() const {
  if (num_segments() == 0) return 0.0;
  uint64_t set = 0;
  for (uint64_t word : bits_) {
    set += static_cast<uint64_t>(std::popcount(word));
  }
  return static_cast<double>(set) /
         (static_cast<double>(num_segments()) * bitset_bits());
}

int64_t SegmentCatalog::MemoryBytes() const {
  return static_cast<int64_t>(
      boundaries_.capacity() * sizeof(uint64_t) +
      tracked_ids_.capacity() * sizeof(ItemId) +
      min_item_.capacity() * sizeof(ItemId) +
      max_item_.capacity() * sizeof(ItemId) +
      bits_.capacity() * sizeof(uint64_t) +
      tracked_supports_.capacity() * sizeof(uint32_t));
}

}  // namespace flipper
