// TransactionDb: an immutable-after-build, CSR-style store of
// transactions. Items within a transaction are sorted and
// duplicate-free; the flattened layout keeps scans cache-friendly,
// which matters because the paper's counting model is "sequential scans
// of the input data" (§5).
//
// The CSR arrays either live in owned vectors (the default, grown via
// Add/Append) or borrow externally owned memory — e.g. sections of a
// memory-mapped FlipperStore file — via FromBorrowed(). Reads are
// identical either way; a mutating call on a borrowed db first copies
// the borrowed data into owned storage.

#ifndef FLIPPER_DATA_TRANSACTION_DB_H_
#define FLIPPER_DATA_TRANSACTION_DB_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "data/itemset.h"
#include "data/types.h"

namespace flipper {

class SegmentCatalog;

class TransactionDb {
 public:
  TransactionDb() {
    offsets_.push_back(0);
    SyncViews();
  }

  TransactionDb(const TransactionDb& other);
  TransactionDb& operator=(const TransactionDb& other);
  TransactionDb(TransactionDb&& other) noexcept;
  TransactionDb& operator=(TransactionDb&& other) noexcept;
  ~TransactionDb() = default;

  /// Wraps externally owned CSR storage without copying. `offsets`
  /// must hold N + 1 monotone boundaries starting at 0 and ending at
  /// items.size(), and every transaction's items must be sorted and
  /// duplicate-free; callers (the storage layer) validate this before
  /// wrapping. The backing memory must outlive this db and every copy
  /// of it.
  static TransactionDb FromBorrowed(std::span<const uint64_t> offsets,
                                    std::span<const ItemId> items,
                                    ItemId alphabet_size,
                                    uint32_t max_width);

  /// True while the CSR arrays point at external memory.
  bool borrowed() const { return borrowed_; }

  /// Appends a transaction; the items are copied, sorted and deduped.
  /// Empty transactions are allowed (they are null transactions for
  /// every itemset).
  void Add(std::span<const ItemId> items);
  void Add(std::initializer_list<ItemId> items) {
    Add(std::span<const ItemId>(items.begin(), items.size()));
  }

  uint32_t size() const {
    return static_cast<uint32_t>(offsets_view_.size() - 1);
  }
  bool empty() const { return size() == 0; }

  /// Sorted, duplicate-free view of transaction `t`.
  std::span<const ItemId> Get(TxnId t) const {
    const size_t b = offsets_view_[t];
    const size_t e = offsets_view_[t + 1];
    return {items_view_.data() + b, e - b};
  }

  /// True if transaction `t` contains every item of `itemset`
  /// (merge-style subset test over the sorted layouts).
  bool Contains(TxnId t, const Itemset& itemset) const;

  /// Number of transactions containing `itemset` (full scan).
  /// This is the reference counting path; the mining engines use the
  /// SupportCounter implementations instead.
  uint32_t CountSupport(const Itemset& itemset) const;

  /// Largest ItemId present plus one (0 for an empty database).
  ItemId alphabet_size() const { return alphabet_size_; }

  uint32_t max_width() const { return max_width_; }
  double avg_width() const {
    return empty() ? 0.0
                   : static_cast<double>(items_view_.size()) / size();
  }
  uint64_t total_items() const { return items_view_.size(); }

  /// Per-item occurrence counts (size alphabet_size()).
  std::vector<uint32_t> ItemFrequencies() const;

  /// Rewrites every item through `ancestor_of` (size >= alphabet_size())
  /// and returns the generalized database; duplicates collapse, so
  /// generalized transactions can be narrower. Items mapped to
  /// kInvalidItem are dropped. With a pool the rewrite is sharded over
  /// contiguous transaction ranges and stitched back in shard order, so
  /// the result is identical to the serial rewrite.
  TransactionDb Generalize(std::span<const ItemId> ancestor_of,
                           ThreadPool* pool = nullptr) const;

  /// Appends every transaction of `other` (already sorted/deduped),
  /// preserving order.
  void Append(const TransactionDb& other);

  /// Approximate heap footprint in bytes (borrowed storage counts as
  /// zero — it belongs to the backing file/mapping).
  int64_t MemoryBytes() const {
    return static_cast<int64_t>(items_.capacity() * sizeof(ItemId) +
                                offsets_.capacity() * sizeof(uint64_t));
  }

  void Reserve(uint32_t num_txns, uint64_t num_items) {
    EnsureOwned();
    offsets_.reserve(num_txns + 1);
    items_.reserve(num_items);
    SyncViews();
  }

  /// Attaches a segment catalog describing this database (its
  /// boundaries must end at size()). The catalog is advisory metadata
  /// for scan skipping; it is shared by copies and dropped by any
  /// mutation that could invalidate it (Add/Append).
  void AttachSegmentCatalog(std::shared_ptr<const SegmentCatalog> catalog) {
    catalog_ = std::move(catalog);
  }
  const std::shared_ptr<const SegmentCatalog>& segment_catalog() const {
    return catalog_;
  }

 private:
  /// Copies borrowed storage into the owned vectors (no-op when
  /// already owned).
  void EnsureOwned();
  /// Valid empty state without allocating: borrows a static empty CSR
  /// sentinel (used to reset moved-from objects in noexcept moves).
  void ResetToEmpty() noexcept;
  void SyncViews() {
    offsets_view_ = offsets_;
    items_view_ = items_;
  }

  std::vector<ItemId> items_;      // flattened transactions (owned)
  std::vector<uint64_t> offsets_;  // size() + 1 boundaries (owned)
  /// Read views: aliases of the owned vectors, or external memory when
  /// borrowed_ is set. Every accessor goes through these.
  std::span<const ItemId> items_view_;
  std::span<const uint64_t> offsets_view_;
  bool borrowed_ = false;
  ItemId alphabet_size_ = 0;
  uint32_t max_width_ = 0;
  /// Optional scan-skipping metadata (see AttachSegmentCatalog).
  std::shared_ptr<const SegmentCatalog> catalog_;
};

}  // namespace flipper

#endif  // FLIPPER_DATA_TRANSACTION_DB_H_
