// TransactionDb: an immutable-after-build, CSR-style store of
// transactions. Items within a transaction are sorted and
// duplicate-free; the flattened layout keeps scans cache-friendly,
// which matters because the paper's counting model is "sequential scans
// of the input data" (§5).

#ifndef FLIPPER_DATA_TRANSACTION_DB_H_
#define FLIPPER_DATA_TRANSACTION_DB_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "data/itemset.h"
#include "data/types.h"

namespace flipper {

class TransactionDb {
 public:
  TransactionDb() { offsets_.push_back(0); }

  /// Appends a transaction; the items are copied, sorted and deduped.
  /// Empty transactions are allowed (they are null transactions for
  /// every itemset).
  void Add(std::span<const ItemId> items);
  void Add(std::initializer_list<ItemId> items) {
    Add(std::span<const ItemId>(items.begin(), items.size()));
  }

  uint32_t size() const {
    return static_cast<uint32_t>(offsets_.size() - 1);
  }
  bool empty() const { return size() == 0; }

  /// Sorted, duplicate-free view of transaction `t`.
  std::span<const ItemId> Get(TxnId t) const {
    const size_t b = offsets_[t];
    const size_t e = offsets_[t + 1];
    return {items_.data() + b, e - b};
  }

  /// True if transaction `t` contains every item of `itemset`
  /// (merge-style subset test over the sorted layouts).
  bool Contains(TxnId t, const Itemset& itemset) const;

  /// Number of transactions containing `itemset` (full scan).
  /// This is the reference counting path; the mining engines use the
  /// SupportCounter implementations instead.
  uint32_t CountSupport(const Itemset& itemset) const;

  /// Largest ItemId present plus one (0 for an empty database).
  ItemId alphabet_size() const { return alphabet_size_; }

  uint32_t max_width() const { return max_width_; }
  double avg_width() const {
    return empty() ? 0.0
                   : static_cast<double>(items_.size()) / size();
  }
  uint64_t total_items() const { return items_.size(); }

  /// Per-item occurrence counts (size alphabet_size()).
  std::vector<uint32_t> ItemFrequencies() const;

  /// Rewrites every item through `ancestor_of` (size >= alphabet_size())
  /// and returns the generalized database; duplicates collapse, so
  /// generalized transactions can be narrower. Items mapped to
  /// kInvalidItem are dropped. With a pool the rewrite is sharded over
  /// contiguous transaction ranges and stitched back in shard order, so
  /// the result is identical to the serial rewrite.
  TransactionDb Generalize(std::span<const ItemId> ancestor_of,
                           ThreadPool* pool = nullptr) const;

  /// Appends every transaction of `other` (already sorted/deduped),
  /// preserving order.
  void Append(const TransactionDb& other);

  /// Approximate heap footprint in bytes.
  int64_t MemoryBytes() const {
    return static_cast<int64_t>(items_.capacity() * sizeof(ItemId) +
                                offsets_.capacity() * sizeof(uint64_t));
  }

  void Reserve(uint32_t num_txns, uint64_t num_items) {
    offsets_.reserve(num_txns + 1);
    items_.reserve(num_items);
  }

 private:
  std::vector<ItemId> items_;      // flattened transactions
  std::vector<uint64_t> offsets_;  // size() + 1 boundaries
  ItemId alphabet_size_ = 0;
  uint32_t max_width_ = 0;
};

}  // namespace flipper

#endif  // FLIPPER_DATA_TRANSACTION_DB_H_
