// Bidirectional mapping between item names and dense ItemIds. Leaf
// items and taxonomy nodes share this dictionary so that a single id
// space covers every abstraction level.

#ifndef FLIPPER_DATA_ITEM_DICTIONARY_H_
#define FLIPPER_DATA_ITEM_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/itemset.h"
#include "data/types.h"

namespace flipper {

class ItemDictionary {
 public:
  ItemDictionary() = default;

  /// Returns the id for `name`, creating it if necessary.
  ItemId Intern(std::string_view name);

  /// Id lookup without insertion.
  Result<ItemId> Find(std::string_view name) const;

  bool Contains(std::string_view name) const;

  /// Name of an id. Requires a valid id.
  const std::string& Name(ItemId id) const;

  uint32_t size() const { return static_cast<uint32_t>(names_.size()); }

  /// "{milk, bread}" — names joined in id-sorted itemset order.
  std::string Render(const Itemset& itemset) const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, ItemId> index_;
};

}  // namespace flipper

#endif  // FLIPPER_DATA_ITEM_DICTIONARY_H_
