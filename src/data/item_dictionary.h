// Bidirectional mapping between item names and dense ItemIds. Leaf
// items and taxonomy nodes share this dictionary so that a single id
// space covers every abstraction level.
//
// The name table is either owned (the default: names interned one by
// one) or borrowed from an external name blob — e.g. the dictionary
// sections of a memory-mapped FlipperStore file — via FromBorrowed().
// Lookups by name on a borrowed dictionary fall back to a linear scan
// (the mining path never needs them); Intern() first materializes the
// borrowed names into owned storage.

#ifndef FLIPPER_DATA_ITEM_DICTIONARY_H_
#define FLIPPER_DATA_ITEM_DICTIONARY_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/itemset.h"
#include "data/types.h"

namespace flipper {

class ItemDictionary {
 public:
  ItemDictionary() = default;

  /// Zero-copy dictionary over an external name table: `name_offsets`
  /// holds N + 1 monotone byte offsets into `blob`, name i being
  /// blob[offsets[i], offsets[i+1]). The backing memory must outlive
  /// this dictionary and every copy of it; callers (the storage layer)
  /// validate the offsets before wrapping.
  static ItemDictionary FromBorrowed(
      std::span<const uint64_t> name_offsets, std::string_view blob);

  /// True while the names point at external memory.
  bool borrowed() const { return borrowed_; }

  /// Returns the id for `name`, creating it if necessary. On a
  /// borrowed dictionary this first copies the names into owned
  /// storage.
  ItemId Intern(std::string_view name);

  /// Id lookup without insertion (linear scan when borrowed).
  Result<ItemId> Find(std::string_view name) const;

  bool Contains(std::string_view name) const;

  /// Name of an id. Requires a valid id. The view stays valid as long
  /// as the dictionary (and, when borrowed, its backing memory) lives
  /// and the entry is not re-interned.
  std::string_view Name(ItemId id) const;

  uint32_t size() const {
    return borrowed_
               ? static_cast<uint32_t>(borrowed_offsets_.size() - 1)
               : static_cast<uint32_t>(names_.size());
  }

  /// "{milk, bread}" — names joined in id-sorted itemset order.
  std::string Render(const Itemset& itemset) const;

 private:
  /// Heterogeneous string hashing so Intern/Find can probe with a
  /// string_view without allocating a temporary std::string.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  void EnsureOwned();

  std::vector<std::string> names_;
  std::unordered_map<std::string, ItemId, StringHash, std::equal_to<>>
      index_;
  std::span<const uint64_t> borrowed_offsets_;
  std::string_view borrowed_blob_;
  bool borrowed_ = false;
};

}  // namespace flipper

#endif  // FLIPPER_DATA_ITEM_DICTIONARY_H_
