// VerticalIndex: per-item TID-sets for a (possibly generalized)
// transaction database. The vertical support-counting engine answers
// sup(A) as |∩_{a∈A} tidset(a)|.

#ifndef FLIPPER_DATA_VERTICAL_INDEX_H_
#define FLIPPER_DATA_VERTICAL_INDEX_H_

#include <vector>

#include "common/thread_pool.h"
#include "data/itemset.h"
#include "data/tidset.h"
#include "data/transaction_db.h"
#include "data/types.h"

namespace flipper {

class VerticalIndex {
 public:
  VerticalIndex() = default;

  /// Builds TID-sets for every item in `db`'s alphabet. With a pool,
  /// the transaction scan and the per-item TID-set construction are
  /// sharded across its workers; the result is identical either way.
  explicit VerticalIndex(const TransactionDb& db,
                         ThreadPool* pool = nullptr);

  uint32_t universe() const { return universe_; }
  ItemId alphabet_size() const {
    return static_cast<ItemId>(sets_.size());
  }

  const TidSet& Get(ItemId item) const { return sets_[item]; }

  uint32_t Support(ItemId item) const {
    return item < sets_.size() ? sets_[item].cardinality() : 0;
  }

  /// Support of an itemset by k-way TID-set intersection.
  uint32_t Support(const Itemset& itemset) const;

  /// Scratch-reusing variant for tight counting loops (one scratch per
  /// thread).
  uint32_t Support(const Itemset& itemset,
                   TidSet::IntersectScratch* scratch) const;

  int64_t MemoryBytes() const;

 private:
  uint32_t universe_ = 0;
  std::vector<TidSet> sets_;
};

}  // namespace flipper

#endif  // FLIPPER_DATA_VERTICAL_INDEX_H_
