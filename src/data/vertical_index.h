// VerticalIndex: per-item TID-sets for a (possibly generalized)
// transaction database. The vertical support-counting engine answers
// sup(A) as |∩_{a∈A} tidset(a)|.

#ifndef FLIPPER_DATA_VERTICAL_INDEX_H_
#define FLIPPER_DATA_VERTICAL_INDEX_H_

#include <vector>

#include "data/itemset.h"
#include "data/tidset.h"
#include "data/transaction_db.h"
#include "data/types.h"

namespace flipper {

class VerticalIndex {
 public:
  VerticalIndex() = default;

  /// Builds TID-sets for every item in `db`'s alphabet.
  explicit VerticalIndex(const TransactionDb& db);

  uint32_t universe() const { return universe_; }
  ItemId alphabet_size() const {
    return static_cast<ItemId>(sets_.size());
  }

  const TidSet& Get(ItemId item) const { return sets_[item]; }

  uint32_t Support(ItemId item) const {
    return item < sets_.size() ? sets_[item].cardinality() : 0;
  }

  /// Support of an itemset by k-way TID-set intersection.
  uint32_t Support(const Itemset& itemset) const;

  int64_t MemoryBytes() const;

 private:
  uint32_t universe_ = 0;
  std::vector<TidSet> sets_;
};

}  // namespace flipper

#endif  // FLIPPER_DATA_VERTICAL_INDEX_H_
