#include "data/item_dictionary.h"

#include "common/logging.h"

namespace flipper {

ItemId ItemDictionary::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  ItemId id = static_cast<ItemId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

Result<ItemId> ItemDictionary::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) {
    return Status::NotFound("unknown item name: '" + std::string(name) +
                            "'");
  }
  return it->second;
}

bool ItemDictionary::Contains(std::string_view name) const {
  return index_.count(std::string(name)) > 0;
}

const std::string& ItemDictionary::Name(ItemId id) const {
  FLIPPER_CHECK(id < names_.size()) << "invalid ItemId " << id;
  return names_[id];
}

std::string ItemDictionary::Render(const Itemset& itemset) const {
  std::string out = "{";
  for (int i = 0; i < itemset.size(); ++i) {
    if (i > 0) out += ", ";
    out += Name(itemset[i]);
  }
  out += "}";
  return out;
}

}  // namespace flipper
