#include "data/item_dictionary.h"

#include "common/logging.h"

namespace flipper {

ItemDictionary ItemDictionary::FromBorrowed(
    std::span<const uint64_t> name_offsets, std::string_view blob) {
  FLIPPER_CHECK(!name_offsets.empty())
      << "name_offsets needs at least the terminating boundary";
  ItemDictionary dict;
  dict.borrowed_offsets_ = name_offsets;
  dict.borrowed_blob_ = blob;
  dict.borrowed_ = true;
  return dict;
}

void ItemDictionary::EnsureOwned() {
  if (!borrowed_) return;
  const uint32_t n = size();
  names_.reserve(n);
  index_.reserve(n);
  for (ItemId id = 0; id < n; ++id) {
    names_.emplace_back(Name(id));
    index_.emplace(names_.back(), id);
  }
  borrowed_ = false;
  borrowed_offsets_ = {};
  borrowed_blob_ = {};
}

ItemId ItemDictionary::Intern(std::string_view name) {
  EnsureOwned();
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  ItemId id = static_cast<ItemId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

Result<ItemId> ItemDictionary::Find(std::string_view name) const {
  if (borrowed_) {
    const uint32_t n = size();
    for (ItemId id = 0; id < n; ++id) {
      if (Name(id) == name) return id;
    }
  } else {
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
  }
  return Status::NotFound("unknown item name: '" + std::string(name) +
                          "'");
}

bool ItemDictionary::Contains(std::string_view name) const {
  return Find(name).ok();
}

std::string_view ItemDictionary::Name(ItemId id) const {
  FLIPPER_CHECK(id < size()) << "invalid ItemId " << id;
  if (borrowed_) {
    return borrowed_blob_.substr(
        borrowed_offsets_[id], borrowed_offsets_[id + 1] -
                                   borrowed_offsets_[id]);
  }
  return names_[id];
}

std::string ItemDictionary::Render(const Itemset& itemset) const {
  std::string out = "{";
  for (int i = 0; i < itemset.size(); ++i) {
    if (i > 0) out += ", ";
    out += Name(itemset[i]);
  }
  out += "}";
  return out;
}

}  // namespace flipper
