// SegmentCatalog: per-segment item metadata for scan skipping. The
// transactions of a database are partitioned into contiguous segments
// (the .fdb shard segments, or synthesized fixed-size ranges for
// in-memory databases); for each segment the catalog records
//
//   - the min/max item id occurring in it,
//   - a small fixed-size bitset (a one-hash Bloom filter) with a bit
//     set for every item present, and
//   - exact support counts for a tracked set of globally
//     top-frequency items.
//
// The skip rule is one-sided and therefore exact: an unset bit, an id
// outside [min, max], or a tracked count of zero *proves* the item is
// absent from the segment, so a candidate itemset containing such an
// item has zero support there and the segment contributes nothing to
// its count. A set bit may be a hash collision, which only costs a
// missed skip, never a wrong support.
//
// The catalog is persisted as the kSegCatalog section of a v2
// FlipperStore file and rebuilt per abstraction level by LevelViews
// for the generalized databases (same transaction boundaries, level-h
// vocabulary).

#ifndef FLIPPER_DATA_SEGMENT_CATALOG_H_
#define FLIPPER_DATA_SEGMENT_CATALOG_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "data/types.h"

namespace flipper {

class TransactionDb;

class SegmentCatalog {
 public:
  /// Bitset words per segment (512 bits). The v2 file records its own
  /// word count, so this is a writer default, not a format constant.
  static constexpr uint32_t kDefaultBitsetWords = 8;
  /// Tracked top-frequency items per catalog.
  static constexpr uint32_t kDefaultTrackedItems = 16;
  /// Segment size used when boundaries are synthesized for databases
  /// that did not come from a segmented store.
  static constexpr uint64_t kDefaultSegmentTxns = 4096;

  SegmentCatalog() = default;

  /// Builds a catalog of `db` over `boundaries` (num_segments + 1
  /// monotone transaction indexes from 0 to db.size()). Tracked items
  /// are the `tracked_items` most frequent ids (frequency descending,
  /// id ascending tiebreak). Segments are processed independently, so
  /// a pool shards the work without changing the result.
  static SegmentCatalog Build(const TransactionDb& db,
                              std::vector<uint64_t> boundaries,
                              uint32_t tracked_items = kDefaultTrackedItems,
                              uint32_t bitset_words = kDefaultBitsetWords,
                              ThreadPool* pool = nullptr);

  /// Evenly spaced boundaries (every `segment_txns` transactions) for
  /// a database of `num_txns` transactions; always spans [0, num_txns].
  static std::vector<uint64_t> UniformBoundaries(uint64_t num_txns,
                                                 uint64_t segment_txns);

  /// Assembles a catalog from decoded storage sections. The caller
  /// (StoreReader) validates bounds first; this only wires the parts.
  static SegmentCatalog FromParts(std::vector<uint64_t> boundaries,
                                  uint32_t bitset_words,
                                  std::vector<ItemId> tracked_ids,
                                  std::vector<ItemId> min_item,
                                  std::vector<ItemId> max_item,
                                  std::vector<uint64_t> bits,
                                  std::vector<uint32_t> tracked_supports);

  size_t num_segments() const { return min_item_.size(); }
  bool empty() const { return num_segments() == 0; }

  /// num_segments() + 1 transaction indexes, 0 .. num_txns.
  std::span<const uint64_t> boundaries() const { return boundaries_; }

  uint32_t bitset_words() const { return bitset_words_; }
  uint32_t bitset_bits() const { return bitset_words_ * 64; }
  std::span<const ItemId> tracked_ids() const { return tracked_ids_; }

  ItemId min_item(size_t seg) const { return min_item_[seg]; }
  ItemId max_item(size_t seg) const { return max_item_[seg]; }
  std::span<const uint64_t> segment_bits(size_t seg) const {
    return {bits_.data() + seg * bitset_words_, bitset_words_};
  }
  std::span<const uint32_t> segment_tracked_supports(size_t seg) const {
    return {tracked_supports_.data() + seg * tracked_ids_.size(),
            tracked_ids_.size()};
  }

  /// Bit index of `item` in a `num_bits`-wide segment bitset. This is
  /// the single definition of the catalog hash: the store writer, the
  /// reader's validation rebuild and every MayContain probe go through
  /// it, so they can never diverge (a divergent hash would silently
  /// mis-skip live segments).
  static uint32_t HashBit(ItemId item, uint32_t num_bits) {
    // Fibonacci hash; any fixed mixing works as long as every party
    // agrees.
    return static_cast<uint32_t>((item * 2654435761u) % num_bits);
  }

  /// Bit index of `item` in this catalog's segment bitsets.
  uint32_t BitIndex(ItemId item) const {
    return HashBit(item, bitset_bits());
  }

  /// The `k` most frequent item ids of `freq` (frequency descending,
  /// id ascending tiebreak) — the tracked-set selection shared by
  /// Build and the store writer.
  static std::vector<ItemId> TopKByFrequency(
      std::span<const uint32_t> freq, uint32_t k);

  /// False only when `item` provably does not occur in segment `seg`
  /// (range or bitset exclusion, or a tracked count of zero).
  bool MayContain(size_t seg, ItemId item) const {
    if (item < min_item_[seg] || item > max_item_[seg]) return false;
    const uint32_t bit = BitIndex(item);
    if ((bits_[seg * bitset_words_ + bit / 64] &
         (uint64_t{1} << (bit % 64))) == 0) {
      return false;
    }
    const auto tracked = TrackedSupport(seg, item);
    return !tracked.has_value() || *tracked > 0;
  }

  /// Exact support of `item` within segment `seg` when tracked.
  std::optional<uint32_t> TrackedSupport(size_t seg, ItemId item) const {
    for (size_t i = 0; i < tracked_ids_.size(); ++i) {
      if (tracked_ids_[i] == item) {
        return tracked_supports_[seg * tracked_ids_.size() + i];
      }
    }
    return std::nullopt;
  }

  /// Mean fraction of set bits across segment bitsets (inspect stat).
  double MeanBitsetFill() const;

  int64_t MemoryBytes() const;

 private:
  uint32_t bitset_words_ = kDefaultBitsetWords;
  std::vector<uint64_t> boundaries_ = {0};
  std::vector<ItemId> tracked_ids_;
  std::vector<ItemId> min_item_;          // kInvalidItem for empty segs
  std::vector<ItemId> max_item_;          // 0 for empty segs
  std::vector<uint64_t> bits_;            // num_segments x bitset_words
  std::vector<uint32_t> tracked_supports_;  // num_segments x tracked
};

/// Invokes fn(lo, hi) for the maximal sub-ranges of [lo, hi) that lie
/// in segments whose `scan_segment[seg]` flag is true. `boundaries`
/// are the catalog's transaction boundaries; empty flags mean "no
/// catalog consulted" and scan the whole range. The scan paths use
/// this to walk only non-skipped segments while preserving
/// transaction order (determinism is unaffected: skipped segments
/// contribute nothing by construction).
template <typename Fn>
void ForEachScannableRange(std::span<const uint64_t> boundaries,
                           std::span<const char> scan_segment, size_t lo,
                           size_t hi, const Fn& fn) {
  if (lo >= hi) return;
  if (scan_segment.empty()) {
    fn(lo, hi);
    return;
  }
  // First segment whose end is past lo.
  size_t seg = 0;
  {
    const auto it = std::upper_bound(boundaries.begin(), boundaries.end(),
                                     static_cast<uint64_t>(lo));
    seg = static_cast<size_t>(it - boundaries.begin());
    seg = seg == 0 ? 0 : seg - 1;
  }
  size_t t = lo;
  while (t < hi && seg < scan_segment.size()) {
    const size_t seg_end =
        std::min<size_t>(hi, static_cast<size_t>(boundaries[seg + 1]));
    if (scan_segment[seg]) fn(t, seg_end);
    t = seg_end;
    ++seg;
  }
}

}  // namespace flipper

#endif  // FLIPPER_DATA_SEGMENT_CATALOG_H_
