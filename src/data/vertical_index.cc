#include "data/vertical_index.h"

#include <array>

namespace flipper {

VerticalIndex::VerticalIndex(const TransactionDb& db)
    : universe_(db.size()) {
  const ItemId alphabet = db.alphabet_size();
  std::vector<std::vector<TxnId>> tids(alphabet);
  // Reserve using the frequency histogram to avoid re-allocation.
  std::vector<uint32_t> freq = db.ItemFrequencies();
  for (ItemId i = 0; i < alphabet; ++i) tids[i].reserve(freq[i]);
  for (TxnId t = 0; t < db.size(); ++t) {
    for (ItemId it : db.Get(t)) tids[it].push_back(t);
  }
  sets_.reserve(alphabet);
  for (ItemId i = 0; i < alphabet; ++i) {
    sets_.push_back(TidSet::Build(tids[i], universe_));
  }
}

uint32_t VerticalIndex::Support(const Itemset& itemset) const {
  if (itemset.empty()) return universe_;
  std::array<const TidSet*, kMaxItemsetSize> ptrs;
  for (int i = 0; i < itemset.size(); ++i) {
    const ItemId it = itemset[i];
    if (it >= sets_.size()) return 0;
    ptrs[static_cast<size_t>(i)] = &sets_[it];
  }
  return TidSet::IntersectCountMany(
      std::span<const TidSet* const>(ptrs.data(),
                                     static_cast<size_t>(itemset.size())));
}

int64_t VerticalIndex::MemoryBytes() const {
  int64_t total = 0;
  for (const TidSet& s : sets_) total += s.MemoryBytes();
  return total;
}

}  // namespace flipper
