#include "data/vertical_index.h"

#include <algorithm>
#include <array>
#include <limits>

namespace flipper {

VerticalIndex::VerticalIndex(const TransactionDb& db, ThreadPool* pool)
    : universe_(db.size()) {
  const ItemId alphabet = db.alphabet_size();
  sets_.resize(alphabet);
  if (alphabet == 0) return;

  // Phase 1 allocates an alphabet-sized list array per shard, so also
  // cap the shard count by the tids-per-item density: on sparse
  // wide-alphabet data the per-shard init/merge overhead would
  // otherwise exceed the scan being parallelized.
  const auto density_cap = static_cast<int>(std::min<uint64_t>(
      std::max<uint64_t>(1, db.total_items() / alphabet),
      std::numeric_limits<int>::max()));
  const int num_shards =
      std::min(ShardCount(db.size(), pool, 1024), density_cap);
  if (num_shards <= 1) {
    std::vector<std::vector<TxnId>> tids(alphabet);
    // Reserve using the frequency histogram to avoid re-allocation.
    std::vector<uint32_t> freq = db.ItemFrequencies();
    for (ItemId i = 0; i < alphabet; ++i) tids[i].reserve(freq[i]);
    for (TxnId t = 0; t < db.size(); ++t) {
      for (ItemId it : db.Get(t)) tids[it].push_back(t);
    }
    for (ItemId i = 0; i < alphabet; ++i) {
      sets_[i] = TidSet::Build(tids[i], universe_);
    }
    return;
  }

  // Phase 1: shard the transaction scan; each shard collects its own
  // per-item tid lists (sorted, since a shard is a contiguous tid
  // range).
  std::vector<std::vector<std::vector<TxnId>>> shard_tids(
      static_cast<size_t>(num_shards));
  ParallelFor(pool, 0, db.size(), num_shards,
              [&](int shard, size_t lo, size_t hi) {
                auto& tids = shard_tids[static_cast<size_t>(shard)];
                tids.assign(alphabet, {});
                for (size_t t = lo; t < hi; ++t) {
                  for (ItemId it : db.Get(static_cast<TxnId>(t))) {
                    tids[it].push_back(static_cast<TxnId>(t));
                  }
                }
              });

  // Phase 2: per-item concatenation in shard order (keeps the list
  // sorted) and TID-set construction, sharded over the alphabet.
  ParallelFor(pool, 0, alphabet, pool->num_threads(),
              [&](int, size_t lo, size_t hi) {
                std::vector<TxnId> merged;
                for (size_t i = lo; i < hi; ++i) {
                  merged.clear();
                  for (const auto& tids : shard_tids) {
                    const auto& part = tids[i];
                    merged.insert(merged.end(), part.begin(), part.end());
                  }
                  sets_[i] = TidSet::Build(merged, universe_);
                }
              });
}

uint32_t VerticalIndex::Support(const Itemset& itemset) const {
  TidSet::IntersectScratch scratch;
  return Support(itemset, &scratch);
}

uint32_t VerticalIndex::Support(const Itemset& itemset,
                                TidSet::IntersectScratch* scratch) const {
  if (itemset.empty()) return universe_;
  std::array<const TidSet*, kMaxItemsetSize> ptrs;
  for (int i = 0; i < itemset.size(); ++i) {
    const ItemId it = itemset[i];
    if (it >= sets_.size()) return 0;
    ptrs[static_cast<size_t>(i)] = &sets_[it];
  }
  return TidSet::IntersectCountMany(
      std::span<const TidSet* const>(
          ptrs.data(), static_cast<size_t>(itemset.size())),
      scratch);
}

int64_t VerticalIndex::MemoryBytes() const {
  int64_t total = 0;
  for (const TidSet& s : sets_) total += s.MemoryBytes();
  return total;
}

}  // namespace flipper
