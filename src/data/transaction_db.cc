#include "data/transaction_db.h"

#include "data/segment_catalog.h"

#include <algorithm>

namespace flipper {
namespace {

/// Sentinel CSR of an empty database; moved-from objects borrow it so
/// resetting them never allocates (the moves are noexcept).
constexpr uint64_t kEmptyOffsets[1] = {0};

}  // namespace

void TransactionDb::ResetToEmpty() noexcept {
  items_.clear();
  offsets_.clear();
  catalog_.reset();
  items_view_ = {};
  offsets_view_ = std::span<const uint64_t>(kEmptyOffsets, 1);
  borrowed_ = true;
  alphabet_size_ = 0;
  max_width_ = 0;
}

TransactionDb::TransactionDb(const TransactionDb& other)
    : items_(other.items_),
      offsets_(other.offsets_),
      borrowed_(other.borrowed_),
      alphabet_size_(other.alphabet_size_),
      max_width_(other.max_width_),
      catalog_(other.catalog_) {
  if (borrowed_) {
    items_view_ = other.items_view_;
    offsets_view_ = other.offsets_view_;
  } else {
    SyncViews();
  }
}

TransactionDb& TransactionDb::operator=(const TransactionDb& other) {
  if (this != &other) {
    items_ = other.items_;
    offsets_ = other.offsets_;
    borrowed_ = other.borrowed_;
    alphabet_size_ = other.alphabet_size_;
    max_width_ = other.max_width_;
    catalog_ = other.catalog_;
    if (borrowed_) {
      items_view_ = other.items_view_;
      offsets_view_ = other.offsets_view_;
    } else {
      SyncViews();
    }
  }
  return *this;
}

TransactionDb::TransactionDb(TransactionDb&& other) noexcept
    : items_(std::move(other.items_)),
      offsets_(std::move(other.offsets_)),
      borrowed_(other.borrowed_),
      alphabet_size_(other.alphabet_size_),
      max_width_(other.max_width_),
      catalog_(std::move(other.catalog_)) {
  if (borrowed_) {
    items_view_ = other.items_view_;
    offsets_view_ = other.offsets_view_;
  } else {
    SyncViews();
  }
  other.ResetToEmpty();
}

TransactionDb& TransactionDb::operator=(TransactionDb&& other) noexcept {
  if (this != &other) {
    items_ = std::move(other.items_);
    offsets_ = std::move(other.offsets_);
    borrowed_ = other.borrowed_;
    alphabet_size_ = other.alphabet_size_;
    max_width_ = other.max_width_;
    catalog_ = std::move(other.catalog_);
    if (borrowed_) {
      items_view_ = other.items_view_;
      offsets_view_ = other.offsets_view_;
    } else {
      SyncViews();
    }
    other.ResetToEmpty();
  }
  return *this;
}

TransactionDb TransactionDb::FromBorrowed(std::span<const uint64_t> offsets,
                                          std::span<const ItemId> items,
                                          ItemId alphabet_size,
                                          uint32_t max_width) {
  TransactionDb db;
  db.offsets_.clear();
  db.items_view_ = items;
  db.offsets_view_ = offsets;
  db.borrowed_ = true;
  db.alphabet_size_ = alphabet_size;
  db.max_width_ = max_width;
  return db;
}

void TransactionDb::EnsureOwned() {
  if (!borrowed_) return;
  items_.assign(items_view_.begin(), items_view_.end());
  offsets_.assign(offsets_view_.begin(), offsets_view_.end());
  borrowed_ = false;
  SyncViews();
}

void TransactionDb::Add(std::span<const ItemId> items) {
  EnsureOwned();
  catalog_.reset();  // boundaries/contents no longer describe this db
  const size_t start = items_.size();
  items_.insert(items_.end(), items.begin(), items.end());
  auto begin = items_.begin() + static_cast<ptrdiff_t>(start);
  std::sort(begin, items_.end());
  items_.erase(std::unique(begin, items_.end()), items_.end());
  offsets_.push_back(items_.size());
  const auto width = static_cast<uint32_t>(items_.size() - start);
  max_width_ = std::max(max_width_, width);
  if (width > 0) {
    alphabet_size_ = std::max(alphabet_size_, items_.back() + 1);
  }
  SyncViews();
}

bool TransactionDb::Contains(TxnId t, const Itemset& itemset) const {
  std::span<const ItemId> txn = Get(t);
  return std::includes(txn.begin(), txn.end(), itemset.begin(),
                       itemset.end());
}

uint32_t TransactionDb::CountSupport(const Itemset& itemset) const {
  uint32_t count = 0;
  for (TxnId t = 0; t < size(); ++t) {
    if (Contains(t, itemset)) ++count;
  }
  return count;
}

std::vector<uint32_t> TransactionDb::ItemFrequencies() const {
  std::vector<uint32_t> freq(alphabet_size_, 0);
  for (ItemId it : items_view_) ++freq[it];
  return freq;
}

TransactionDb TransactionDb::Generalize(std::span<const ItemId> ancestor_of,
                                        ThreadPool* pool) const {
  const auto generalize_range = [&](TransactionDb* out, size_t lo,
                                    size_t hi) {
    std::vector<ItemId> buffer;
    for (size_t t = lo; t < hi; ++t) {
      buffer.clear();
      for (ItemId it : Get(static_cast<TxnId>(t))) {
        const ItemId anc = it < ancestor_of.size() ? ancestor_of[it]
                                                   : kInvalidItem;
        if (anc != kInvalidItem) buffer.push_back(anc);
      }
      out->Add(buffer);
    }
  };

  const int num_shards = ShardCount(size(), pool, 1024);
  if (num_shards <= 1) {
    TransactionDb out;
    out.Reserve(size(), total_items());
    generalize_range(&out, 0, size());
    return out;
  }

  std::vector<TransactionDb> parts(static_cast<size_t>(num_shards));
  ParallelFor(pool, 0, size(), num_shards,
              [&](int shard, size_t lo, size_t hi) {
                TransactionDb& part = parts[static_cast<size_t>(shard)];
                part.Reserve(static_cast<uint32_t>(hi - lo),
                             offsets_view_[hi] - offsets_view_[lo]);
                generalize_range(&part, lo, hi);
              });
  TransactionDb out;
  out.Reserve(size(), total_items());
  for (const TransactionDb& part : parts) out.Append(part);
  return out;
}

void TransactionDb::Append(const TransactionDb& other) {
  EnsureOwned();
  catalog_.reset();
  const uint64_t base = items_.size();
  items_.insert(items_.end(), other.items_view_.begin(),
                other.items_view_.end());
  for (size_t i = 1; i < other.offsets_view_.size(); ++i) {
    offsets_.push_back(base + other.offsets_view_[i]);
  }
  alphabet_size_ = std::max(alphabet_size_, other.alphabet_size_);
  max_width_ = std::max(max_width_, other.max_width_);
  SyncViews();
}

}  // namespace flipper
