#include "data/transaction_db.h"

#include <algorithm>

namespace flipper {

void TransactionDb::Add(std::span<const ItemId> items) {
  const size_t start = items_.size();
  items_.insert(items_.end(), items.begin(), items.end());
  auto begin = items_.begin() + static_cast<ptrdiff_t>(start);
  std::sort(begin, items_.end());
  items_.erase(std::unique(begin, items_.end()), items_.end());
  offsets_.push_back(items_.size());
  const auto width = static_cast<uint32_t>(items_.size() - start);
  max_width_ = std::max(max_width_, width);
  if (width > 0) {
    alphabet_size_ = std::max(alphabet_size_, items_.back() + 1);
  }
}

bool TransactionDb::Contains(TxnId t, const Itemset& itemset) const {
  std::span<const ItemId> txn = Get(t);
  return std::includes(txn.begin(), txn.end(), itemset.begin(),
                       itemset.end());
}

uint32_t TransactionDb::CountSupport(const Itemset& itemset) const {
  uint32_t count = 0;
  for (TxnId t = 0; t < size(); ++t) {
    if (Contains(t, itemset)) ++count;
  }
  return count;
}

std::vector<uint32_t> TransactionDb::ItemFrequencies() const {
  std::vector<uint32_t> freq(alphabet_size_, 0);
  for (ItemId it : items_) ++freq[it];
  return freq;
}

TransactionDb TransactionDb::Generalize(
    std::span<const ItemId> ancestor_of) const {
  TransactionDb out;
  out.Reserve(size(), total_items());
  std::vector<ItemId> buffer;
  for (TxnId t = 0; t < size(); ++t) {
    buffer.clear();
    for (ItemId it : Get(t)) {
      const ItemId anc = it < ancestor_of.size() ? ancestor_of[it]
                                                 : kInvalidItem;
      if (anc != kInvalidItem) buffer.push_back(anc);
    }
    out.Add(buffer);
  }
  return out;
}

}  // namespace flipper
