// Shared output type of the real-dataset simulators (§5.2
// substitutions; see DESIGN.md §4).

#ifndef FLIPPER_DATAGEN_SIM_DATASET_H_
#define FLIPPER_DATAGEN_SIM_DATASET_H_

#include <string>
#include <vector>

#include "core/config.h"
#include "data/item_dictionary.h"
#include "data/transaction_db.h"
#include "taxonomy/taxonomy.h"

namespace flipper {

/// A flip structure a simulator planted on purpose; tests assert the
/// miners recover these.
struct PlantedFlip {
  /// Leaf item names of the pattern.
  std::vector<std::string> leaf_names;
  /// Expected label of level 1 ("POS"/"NEG"); deeper levels alternate.
  std::string level1_label;
  std::string description;
};

struct SimulatedDataset {
  std::string name;
  ItemDictionary dict;
  Taxonomy taxonomy;
  TransactionDb db;
  /// The thresholds the paper's Table 4 uses for this dataset.
  MiningConfig paper_config;
  std::vector<PlantedFlip> planted;
};

}  // namespace flipper

#endif  // FLIPPER_DATAGEN_SIM_DATASET_H_
