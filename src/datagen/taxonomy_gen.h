// Random balanced taxonomies for synthetic workloads (paper §5.1:
// "The number of distinct categories at the first level is 10, the
// fanout is 5", H = 4).

#ifndef FLIPPER_DATAGEN_TAXONOMY_GEN_H_
#define FLIPPER_DATAGEN_TAXONOMY_GEN_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "data/item_dictionary.h"
#include "taxonomy/taxonomy.h"

namespace flipper {

struct TaxonomyGenParams {
  /// Number of level-1 nodes.
  uint32_t num_roots = 10;
  /// Children per internal node.
  uint32_t fanout = 5;
  /// Number of levels H (1 = roots only).
  uint32_t depth = 4;
  /// Node-name prefix; names look like "c3", "c3.1", "c3.1.4", ...
  std::string prefix = "c";
};

/// Builds a balanced taxonomy, interning node names into `dict`.
Result<Taxonomy> GenerateBalancedTaxonomy(const TaxonomyGenParams& params,
                                          ItemDictionary* dict);

}  // namespace flipper

#endif  // FLIPPER_DATAGEN_TAXONOMY_GEN_H_
