// GroceriesSim: a synthetic stand-in for the GROCERIES dataset [5]
// used in the paper's §5.2 (1 month of point-of-sale data, 9,800
// transactions, 3-level store taxonomy).
//
// The simulator plants the paper's reported pattern families:
//  * a POS/NEG/POS flip in the spirit of {canned beer, diapers}
//    (Figure 10 A): the two products sell together while their
//    categories do not, and the departments co-occur broadly;
//  * a NEG/POS/NEG flip in the spirit of {eggs, fish} (Figure 2(b)):
//    the two products avoid each other while their categories are
//    bought together, and the departments are anti-correlated.
//
// Transactions are built from deterministic co-occurrence blocks (so
// the planted correlations are exactly computable) plus Poisson noise
// drawn from uninvolved departments.

#ifndef FLIPPER_DATAGEN_GROCERIES_SIM_H_
#define FLIPPER_DATAGEN_GROCERIES_SIM_H_

#include <cstdint>

#include "common/status.h"
#include "datagen/sim_dataset.h"

namespace flipper {

struct GroceriesParams {
  /// The real dataset's size; scalable for benches.
  uint32_t num_transactions = 9'800;
  uint64_t seed = 11;
};

Result<SimulatedDataset> GenerateGroceries(const GroceriesParams& params);

}  // namespace flipper

#endif  // FLIPPER_DATAGEN_GROCERIES_SIM_H_
