#include "datagen/template_mixture.h"

#include <algorithm>

namespace flipper {

TemplateMixtureGenerator::TemplateMixtureGenerator(
    std::vector<ItemTemplate> templates, std::vector<ItemId> noise_pool)
    : templates_(std::move(templates)),
      noise_pool_(std::move(noise_pool)) {}

Result<TransactionDb> TemplateMixtureGenerator::Generate(
    const MixtureParams& params) const {
  if (templates_.empty()) {
    return Status::InvalidArgument("mixture requires >= 1 template");
  }
  double weight_sum = 0.0;
  for (const ItemTemplate& t : templates_) {
    if (t.weight <= 0.0) {
      return Status::InvalidArgument("template weights must be > 0");
    }
    weight_sum += t.weight;
  }
  std::vector<double> cdf(templates_.size());
  double acc = 0.0;
  for (size_t i = 0; i < templates_.size(); ++i) {
    acc += templates_[i].weight / weight_sum;
    cdf[i] = acc;
  }
  cdf.back() = 1.0;

  Rng rng(params.seed);
  TransactionDb db;
  db.Reserve(params.num_transactions,
             static_cast<uint64_t>(
                 params.num_transactions *
                 (params.avg_templates_per_txn * 2.0 +
                  params.avg_noise_items)));
  std::vector<ItemId> txn;
  for (uint32_t t = 0; t < params.num_transactions; ++t) {
    txn.clear();
    const uint32_t picks =
        std::max<uint32_t>(1,
                           rng.Poisson(params.avg_templates_per_txn));
    for (uint32_t p = 0; p < picks; ++p) {
      const double u = rng.NextDouble();
      const size_t idx = static_cast<size_t>(
          std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
      const ItemTemplate& tpl =
          templates_[std::min(idx, templates_.size() - 1)];
      txn.insert(txn.end(), tpl.items.begin(), tpl.items.end());
    }
    if (!noise_pool_.empty()) {
      const uint32_t noise = rng.Poisson(params.avg_noise_items);
      for (uint32_t i = 0; i < noise; ++i) {
        txn.push_back(noise_pool_[rng.Below(noise_pool_.size())]);
      }
    }
    db.Add(txn);  // Add() sorts and dedupes
  }
  return db;
}

}  // namespace flipper
