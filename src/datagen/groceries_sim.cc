#include "datagen/groceries_sim.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "taxonomy/taxonomy_builder.h"

namespace flipper {
namespace {

/// Deterministic block: `count` transactions each containing `items`.
struct Block {
  uint32_t count;
  std::vector<ItemId> items;
};

}  // namespace

Result<SimulatedDataset> GenerateGroceries(const GroceriesParams& params) {
  if (params.num_transactions < 100) {
    return Status::InvalidArgument(
        "GroceriesSim needs at least 100 transactions");
  }
  SimulatedDataset out;
  out.name = "GROCERIES";
  ItemDictionary& dict = out.dict;
  TaxonomyBuilder builder;

  // --- Taxonomy: 10 departments x 4 categories x 3 products. Named
  // nodes carry the planted pattern families; the rest are fillers.
  auto add_root = [&](const std::string& name) {
    const ItemId id = dict.Intern(name);
    builder.AddRoot(id);
    return id;
  };
  auto add_child = [&](ItemId parent, const std::string& name) {
    const ItemId id = dict.Intern(name);
    Status s = builder.AddEdge(parent, id);
    (void)s;  // names are unique by construction
    return id;
  };

  const ItemId drinks = add_root("drinks");
  const ItemId non_food = add_root("non_food");
  const ItemId fresh_produce = add_root("fresh_produce");
  const ItemId meat_fish = add_root("meat_fish");
  std::vector<ItemId> filler_roots;
  for (const char* dept : {"dairy", "bakery", "pantry", "snacks",
                           "frozen", "household"}) {
    filler_roots.push_back(add_root(dept));
  }

  // drinks
  const ItemId beer = add_child(drinks, "beer");
  const ItemId canned_beer = add_child(beer, "canned_beer");
  const ItemId bottled_beer = add_child(beer, "bottled_beer");
  add_child(beer, "craft_beer");
  const ItemId soda = add_child(drinks, "soda");
  const ItemId cola = add_child(soda, "cola");
  add_child(soda, "lemonade");
  add_child(soda, "tonic");
  // non_food
  const ItemId baby = add_child(non_food, "baby");
  const ItemId diapers = add_child(baby, "diapers");
  const ItemId baby_wipes = add_child(baby, "baby_wipes");
  add_child(baby, "baby_lotion");
  const ItemId cleaning = add_child(non_food, "cleaning");
  const ItemId detergent = add_child(cleaning, "detergent");
  add_child(cleaning, "sponges");
  add_child(cleaning, "bleach");
  // fresh_produce
  const ItemId eggs_cat = add_child(fresh_produce, "eggs");
  const ItemId eggs_large = add_child(eggs_cat, "eggs_large");
  const ItemId eggs_small = add_child(eggs_cat, "eggs_small");
  add_child(eggs_cat, "eggs_organic");
  const ItemId vegetables = add_child(fresh_produce, "vegetables");
  const ItemId lettuce = add_child(vegetables, "lettuce");
  add_child(vegetables, "tomatoes");
  add_child(vegetables, "onions");
  // meat_fish
  const ItemId fish_cat = add_child(meat_fish, "fish");
  const ItemId fresh_fish = add_child(fish_cat, "fresh_fish");
  const ItemId smoked_fish = add_child(fish_cat, "smoked_fish");
  add_child(fish_cat, "shellfish");
  const ItemId beef_cat = add_child(meat_fish, "beef");
  const ItemId ground_beef = add_child(beef_cat, "ground_beef");
  add_child(beef_cat, "steak");
  add_child(beef_cat, "roast");

  // Filler departments: 4 categories x 3 products each; these feed the
  // background noise pool.
  std::vector<ItemId> noise_pool;
  for (size_t d = 0; d < filler_roots.size(); ++d) {
    for (int c = 0; c < 4; ++c) {
      const std::string cat_name = std::string(dict.Name(filler_roots[d])) +
                                   "_cat" + std::to_string(c);
      const ItemId cat = add_child(filler_roots[d], cat_name);
      for (int p = 0; p < 3; ++p) {
        noise_pool.push_back(
            add_child(cat, cat_name + "_prod" + std::to_string(p)));
      }
    }
  }
  FLIPPER_ASSIGN_OR_RETURN(out.taxonomy, builder.Build());

  // --- Transaction blocks. Fractions are relative to the reference
  // size (9,800) so the correlation structure is scale-invariant.
  const double n = static_cast<double>(params.num_transactions);
  auto cnt = [&](double fraction) {
    return std::max<uint32_t>(
        1, static_cast<uint32_t>(std::llround(fraction * n)));
  };

  std::vector<Block> blocks;
  // Family 1 (Figure 10 A flavour): {canned_beer, diapers}
  //   L3 POS (they sell together), L2 NEG (beer vs baby avoid each
  //   other), L1 POS (drinks and non_food co-occur broadly).
  blocks.push_back({cnt(120.0 / 9800), {canned_beer, diapers}});
  blocks.push_back({cnt(1000.0 / 9800), {cola, detergent}});
  blocks.push_back({cnt(1200.0 / 9800), {bottled_beer}});
  blocks.push_back({cnt(1200.0 / 9800), {baby_wipes}});

  // Family 2 (Figure 2(b) flavour): {eggs_large, fresh_fish}
  //   L3 NEG (the products avoid each other), L2 POS (egg and fish
  //   categories sell together), L1 NEG (the departments do not).
  blocks.push_back({cnt(300.0 / 9800), {eggs_small, smoked_fish}});
  blocks.push_back({cnt(4.0 / 9800), {eggs_large, fresh_fish}});
  blocks.push_back({cnt(100.0 / 9800), {eggs_large}});
  blocks.push_back({cnt(100.0 / 9800), {fresh_fish}});
  blocks.push_back({cnt(2800.0 / 9800), {lettuce}});
  blocks.push_back({cnt(2800.0 / 9800), {ground_beef}});

  // --- Materialize: blocks + per-transaction noise + filler-only
  // transactions, shuffled.
  Rng rng(params.seed);
  std::vector<std::vector<ItemId>> txns;
  txns.reserve(params.num_transactions);
  for (const Block& block : blocks) {
    for (uint32_t i = 0; i < block.count; ++i) {
      std::vector<ItemId> txn = block.items;
      const uint32_t noise = rng.Poisson(1.5);
      for (uint32_t j = 0; j < noise; ++j) {
        txn.push_back(noise_pool[rng.Below(noise_pool.size())]);
      }
      txns.push_back(std::move(txn));
    }
  }
  while (txns.size() < params.num_transactions) {
    std::vector<ItemId> txn;
    const uint32_t width = 2 + rng.Poisson(1.5);
    for (uint32_t j = 0; j < width; ++j) {
      txn.push_back(noise_pool[rng.Below(noise_pool.size())]);
    }
    txns.push_back(std::move(txn));
  }
  txns.resize(params.num_transactions);
  rng.Shuffle(&txns);
  out.db.Reserve(params.num_transactions, params.num_transactions * 4);
  for (const auto& txn : txns) out.db.Add(txn);

  // --- Table 4 row G thresholds.
  out.paper_config.gamma = 0.15;
  out.paper_config.epsilon = 0.10;
  out.paper_config.min_support = {0.001, 0.0005, 0.0002};
  out.paper_config.measure = MeasureKind::kKulczynski;

  out.planted.push_back({{"canned_beer", "diapers"},
                         "POS",
                         "products sell together, categories do not"});
  out.planted.push_back({{"eggs_large", "fresh_fish"},
                         "NEG",
                         "products avoid each other, categories pair"});
  return out;
}

}  // namespace flipper
