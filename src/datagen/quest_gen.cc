#include "datagen/quest_gen.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace flipper {

Status QuestParams::Validate() const {
  if (avg_width < 1.0) {
    return Status::InvalidArgument("avg_width must be >= 1");
  }
  if (num_patterns == 0) {
    return Status::InvalidArgument("num_patterns must be >= 1");
  }
  if (avg_pattern_size < 1.0) {
    return Status::InvalidArgument("avg_pattern_size must be >= 1");
  }
  if (correlation < 0.0 || correlation > 1.0) {
    return Status::InvalidArgument("correlation must be in [0, 1]");
  }
  if (corruption_mean < 0.0 || corruption_mean >= 1.0) {
    return Status::InvalidArgument("corruption_mean must be in [0, 1)");
  }
  if (phases > num_patterns) {
    return Status::InvalidArgument(
        "phases must not exceed num_patterns (every phase needs at "
        "least one pattern)");
  }
  return Status::OK();
}

Result<TransactionDb> GenerateQuest(const QuestParams& params,
                                    const Taxonomy& taxonomy) {
  FLIPPER_RETURN_IF_ERROR(params.Validate());
  const std::vector<ItemId>& leaves = taxonomy.Leaves();
  if (leaves.size() < 2) {
    return Status::InvalidArgument(
        "Quest generation needs a taxonomy with at least 2 leaves");
  }
  Rng rng(params.seed);

  // --- Potentially-frequent itemset pool. ---
  struct Pattern {
    std::vector<ItemId> items;
    double weight;      // pick probability (normalized below)
    double corruption;  // per-use item-drop level
  };
  std::vector<Pattern> pool(params.num_patterns);
  double weight_sum = 0.0;
  for (uint32_t p = 0; p < params.num_patterns; ++p) {
    Pattern& pat = pool[p];
    const uint32_t size = std::max<uint32_t>(
        1, std::min<uint32_t>(rng.Poisson(params.avg_pattern_size),
                              static_cast<uint32_t>(leaves.size())));
    // Inherit a prefix of the previous pattern ("correlation"), fill
    // the rest with random leaves.
    if (p > 0 && params.correlation > 0.0) {
      const double frac = std::min(
          1.0, rng.Exponential(1.0 / std::max(1e-9, params.correlation)));
      const auto& prev = pool[p - 1].items;
      const auto take = static_cast<uint32_t>(
          std::min<double>(std::round(frac * size),
                           static_cast<double>(prev.size())));
      pat.items.assign(prev.begin(), prev.begin() + take);
    }
    while (pat.items.size() < size) {
      const ItemId leaf = leaves[rng.Below(leaves.size())];
      if (std::find(pat.items.begin(), pat.items.end(), leaf) ==
          pat.items.end()) {
        pat.items.push_back(leaf);
      }
    }
    pat.weight = rng.Exponential(1.0);
    weight_sum += pat.weight;
    pat.corruption =
        std::clamp(params.corruption_mean + 0.1 * rng.Gaussian(), 0.0,
                   0.95);
  }
  // Cumulative distribution for weighted pattern picks.
  std::vector<double> cdf(pool.size());
  double acc = 0.0;
  for (size_t i = 0; i < pool.size(); ++i) {
    acc += pool[i].weight / weight_sum;
    cdf[i] = acc;
  }
  cdf.back() = 1.0;

  // Weighted pick, optionally restricted to the pattern slice of the
  // transaction's phase (rescaling the cumulative distribution onto
  // the slice keeps the relative weights intact).
  const uint32_t phases = params.phases >= 2 ? params.phases : 1;
  auto pick_pattern = [&](uint32_t phase) -> const Pattern& {
    size_t lo = 0;
    size_t hi = pool.size();
    if (phases > 1) {
      lo = static_cast<size_t>(phase) * pool.size() / phases;
      hi = static_cast<size_t>(phase + 1) * pool.size() / phases;
    }
    const double cdf_lo = lo == 0 ? 0.0 : cdf[lo - 1];
    const double cdf_hi = cdf[hi - 1];
    const double u =
        cdf_lo + rng.NextDouble() * (cdf_hi - cdf_lo);
    const size_t idx = static_cast<size_t>(
        std::lower_bound(cdf.begin() + static_cast<ptrdiff_t>(lo),
                         cdf.begin() + static_cast<ptrdiff_t>(hi), u) -
        cdf.begin());
    return pool[std::min(idx, hi - 1)];
  };

  // --- Transactions. ---
  TransactionDb db;
  db.Reserve(params.num_transactions,
             static_cast<uint64_t>(params.num_transactions *
                                   params.avg_width));
  std::vector<ItemId> txn;
  std::vector<ItemId> corrupted;
  for (uint32_t t = 0; t < params.num_transactions; ++t) {
    const uint32_t phase = static_cast<uint32_t>(
        uint64_t{t} * phases / params.num_transactions);
    const uint32_t width =
        std::max<uint32_t>(1, rng.Poisson(params.avg_width));
    txn.clear();
    // Guard against pathological loops when corruption drops
    // everything repeatedly.
    int attempts = 0;
    while (txn.size() < width && attempts < 64) {
      ++attempts;
      const Pattern& pat = pick_pattern(phase);
      corrupted = pat.items;
      // Classic Quest corruption: keep dropping a random item while a
      // coin toss stays below the pattern's corruption level.
      while (!corrupted.empty() && rng.NextDouble() < pat.corruption) {
        corrupted.erase(corrupted.begin() +
                        static_cast<ptrdiff_t>(
                            rng.Below(corrupted.size())));
      }
      if (corrupted.empty()) continue;
      if (txn.size() + corrupted.size() > width) {
        // Oversize pattern: half the time it goes in anyway, otherwise
        // the transaction closes.
        if (rng.Bernoulli(0.5)) {
          txn.insert(txn.end(), corrupted.begin(), corrupted.end());
        }
        break;
      }
      txn.insert(txn.end(), corrupted.begin(), corrupted.end());
    }
    if (txn.empty()) {
      txn.push_back(leaves[rng.Below(leaves.size())]);
    }
    db.Add(txn);
  }
  return db;
}

}  // namespace flipper
