// CensusSim: a synthetic stand-in for the CENSUS (UCI Adult) dataset
// used in the paper's §5.2 (32,000 records, income discretized at
// $50K/yr, manually built 2-level sub-population hierarchies).
//
// Items are population-segment indicators. Two hierarchies generalize
// them: occupation -> occupation|education and age -> age|occupation;
// the two income items are shallow level-1 leaves that represent
// themselves at level 2 (Figure-3[B] self-copies). Each record becomes
// the 3-item transaction {occ|edu, age|occ, income}.
//
// Planted structure (Figure 11):
//  * Pattern A — craft_repair workers correlate negatively with
//    income>=50K, but craft_repair AND bachelor-degree holders
//    correlate positively (NEG -> POS flip);
//  * Pattern B — the 60-65 age group correlates negatively with
//    income>=50K unless the occupation is executive (NEG -> POS flip).

#ifndef FLIPPER_DATAGEN_CENSUS_SIM_H_
#define FLIPPER_DATAGEN_CENSUS_SIM_H_

#include <cstdint>

#include "common/status.h"
#include "datagen/sim_dataset.h"

namespace flipper {

struct CensusParams {
  uint32_t num_records = 32'000;
  uint64_t seed = 13;
};

Result<SimulatedDataset> GenerateCensus(const CensusParams& params);

}  // namespace flipper

#endif  // FLIPPER_DATAGEN_CENSUS_SIM_H_
