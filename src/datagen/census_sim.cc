#include "datagen/census_sim.h"

#include <algorithm>
#include <array>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "taxonomy/taxonomy_builder.h"

namespace flipper {
namespace {

constexpr std::array<const char*, 12> kOccupations = {
    "executive",   "craft_repair", "sales",      "tech_support",
    "clerical",    "farming",      "transport",  "protective",
    "service",     "machine_op",   "professional", "armed_forces"};

constexpr std::array<const char*, 4> kEducations = {
    "hs_grad", "some_college", "bachelor", "masters"};
constexpr std::array<double, 4> kEducationWeights = {0.45, 0.25, 0.20,
                                                     0.10};

constexpr std::array<const char*, 7> kAgeGroups = {
    "17-25", "26-35", "36-45", "46-55", "56-60", "60-65", "66+"};
constexpr std::array<double, 7> kAgeWeights = {0.14, 0.22, 0.22, 0.18,
                                               0.08, 0.08, 0.08};

size_t SampleIndex(Rng* rng, std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double u = rng->NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace

Result<SimulatedDataset> GenerateCensus(const CensusParams& params) {
  if (params.num_records < 100) {
    return Status::InvalidArgument(
        "CensusSim needs at least 100 records");
  }
  SimulatedDataset out;
  out.name = "CENSUS";
  ItemDictionary& dict = out.dict;
  TaxonomyBuilder builder;

  // Occupation hierarchy: occ:X -> occ:X|edu:Y.
  std::array<ItemId, kOccupations.size()> occ_nodes{};
  std::array<std::array<ItemId, kEducations.size()>, kOccupations.size()>
      occ_edu_leaves{};
  for (size_t o = 0; o < kOccupations.size(); ++o) {
    occ_nodes[o] = dict.Intern(std::string("occ:") + kOccupations[o]);
    builder.AddRoot(occ_nodes[o]);
    for (size_t e = 0; e < kEducations.size(); ++e) {
      occ_edu_leaves[o][e] =
          dict.Intern(std::string("occ:") + kOccupations[o] +
                      "|edu:" + kEducations[e]);
      FLIPPER_RETURN_IF_ERROR(
          builder.AddEdge(occ_nodes[o], occ_edu_leaves[o][e]));
    }
  }
  // Age hierarchy: age:Z -> age:Z|occ:X.
  std::array<ItemId, kAgeGroups.size()> age_nodes{};
  std::array<std::array<ItemId, kOccupations.size()>, kAgeGroups.size()>
      age_occ_leaves{};
  for (size_t a = 0; a < kAgeGroups.size(); ++a) {
    age_nodes[a] = dict.Intern(std::string("age:") + kAgeGroups[a]);
    builder.AddRoot(age_nodes[a]);
    for (size_t o = 0; o < kOccupations.size(); ++o) {
      age_occ_leaves[a][o] =
          dict.Intern(std::string("age:") + kAgeGroups[a] +
                      "|occ:" + kOccupations[o]);
      FLIPPER_RETURN_IF_ERROR(
          builder.AddEdge(age_nodes[a], age_occ_leaves[a][o]));
    }
  }
  // Income: shallow level-1 leaves (self-copies at level 2).
  const ItemId income_high = dict.Intern("income:>=50K");
  const ItemId income_low = dict.Intern("income:<50K");
  builder.AddRoot(income_high);
  builder.AddRoot(income_low);
  FLIPPER_ASSIGN_OR_RETURN(out.taxonomy, builder.Build());

  const size_t kCraft = 1;      // craft_repair
  const size_t kExecutive = 0;  // executive
  const size_t kBachelor = 2;   // bachelor
  const size_t kAge60 = 5;      // 60-65

  Rng rng(params.seed);
  out.db.Reserve(params.num_records, params.num_records * 3ull);
  std::vector<ItemId> txn;
  for (uint32_t r = 0; r < params.num_records; ++r) {
    const size_t o = rng.Below(kOccupations.size());
    const size_t e = SampleIndex(&rng, kEducationWeights);
    const size_t a = SampleIndex(&rng, kAgeWeights);

    // Income model. Baseline 25% high earners; planted conditionals
    // create the two Figure-11 flips.
    double p_high = 0.25;
    if (o == kCraft) p_high = e == kBachelor ? 0.75 : 0.02;
    if (a == kAge60) {
      p_high = o == kExecutive ? 0.70 : std::min(p_high, 0.04);
    }
    const ItemId income = rng.Bernoulli(p_high) ? income_high : income_low;

    txn = {occ_edu_leaves[o][e], age_occ_leaves[a][o], income};
    out.db.Add(txn);
  }

  // Table 4 row C thresholds.
  out.paper_config.gamma = 0.25;
  out.paper_config.epsilon = 0.15;
  out.paper_config.min_support = {0.002, 0.001};
  out.paper_config.measure = MeasureKind::kKulczynski;

  out.planted.push_back(
      {{"occ:craft_repair|edu:bachelor", "income:>=50K"},
       "NEG",
       "craft-repair flips to positive with a bachelor degree"});
  out.planted.push_back(
      {{"age:60-65|occ:executive", "income:>=50K"},
       "NEG",
       "age 60-65 flips to positive for executives"});
  return out;
}

}  // namespace flipper
