#include "datagen/taxonomy_gen.h"

#include <vector>

#include "taxonomy/taxonomy_builder.h"

namespace flipper {

Result<Taxonomy> GenerateBalancedTaxonomy(const TaxonomyGenParams& params,
                                          ItemDictionary* dict) {
  if (params.num_roots == 0 || params.depth == 0) {
    return Status::InvalidArgument(
        "taxonomy generator requires num_roots >= 1 and depth >= 1");
  }
  if (params.depth > 1 && params.fanout == 0) {
    return Status::InvalidArgument(
        "taxonomy generator requires fanout >= 1 when depth > 1");
  }
  TaxonomyBuilder builder;
  struct Pending {
    ItemId id;
    std::string name;
  };
  std::vector<Pending> frontier;
  for (uint32_t r = 0; r < params.num_roots; ++r) {
    const std::string name = params.prefix + std::to_string(r);
    const ItemId id = dict->Intern(name);
    builder.AddRoot(id);
    frontier.push_back({id, name});
  }
  for (uint32_t level = 2; level <= params.depth; ++level) {
    std::vector<Pending> next;
    next.reserve(frontier.size() * params.fanout);
    for (const Pending& parent : frontier) {
      for (uint32_t c = 0; c < params.fanout; ++c) {
        const std::string name = parent.name + "." + std::to_string(c);
        const ItemId id = dict->Intern(name);
        FLIPPER_RETURN_IF_ERROR(builder.AddEdge(parent.id, id));
        next.push_back({id, name});
      }
    }
    frontier = std::move(next);
  }
  return builder.Build();
}

}  // namespace flipper
