// Reimplementation of the Srikant & Agrawal ("Quest") synthetic
// transaction generator used in the paper's §5.1 performance study.
// The original tool is proprietary; this follows the published
// description (VLDB'94/'95): a pool of weighted "potentially frequent"
// itemsets with inter-pattern correlation and per-pattern corruption
// drives Poisson-width transactions over the taxonomy's leaves.

#ifndef FLIPPER_DATAGEN_QUEST_GEN_H_
#define FLIPPER_DATAGEN_QUEST_GEN_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "data/transaction_db.h"
#include "taxonomy/taxonomy.h"

namespace flipper {

struct QuestParams {
  /// |D| — number of transactions.
  uint32_t num_transactions = 100'000;
  /// |T| — average transaction width (Poisson-distributed).
  double avg_width = 5.0;
  /// |L| — size of the potentially-frequent itemset pool.
  uint32_t num_patterns = 500;
  /// |I| — average size of a potentially-frequent itemset.
  double avg_pattern_size = 2.5;
  /// Fraction of items a pattern inherits from its predecessor
  /// (exponentially distributed with this mean).
  double correlation = 0.5;
  /// Mean of the per-pattern corruption level (clipped N(mean, 0.1)).
  double corruption_mean = 0.5;
  /// Temporal skew: with `phases` >= 2 the transaction stream is split
  /// into that many consecutive phases and phase p draws only from the
  /// p-th slice of the pattern pool, so item populations drift across
  /// the file (the "skewed" scenario segment catalogs can skip into).
  /// 0 or 1 keeps the classic stationary generator — bit-identical to
  /// the pre-phases output for any seed.
  uint32_t phases = 0;
  uint64_t seed = 1;

  Status Validate() const;
};

/// Generates a transaction database over `taxonomy`'s leaves.
Result<TransactionDb> GenerateQuest(const QuestParams& params,
                                    const Taxonomy& taxonomy);

}  // namespace flipper

#endif  // FLIPPER_DATAGEN_QUEST_GEN_H_
