#include "datagen/medline_sim.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "taxonomy/taxonomy_builder.h"

namespace flipper {
namespace {

struct Block {
  uint32_t count;
  std::vector<ItemId> items;
};

}  // namespace

Result<SimulatedDataset> GenerateMedline(const MedlineParams& params) {
  if (params.num_citations < 1000) {
    return Status::InvalidArgument(
        "MedlineSim needs at least 1000 citations");
  }
  SimulatedDataset out;
  out.name = "MEDLINE";
  ItemDictionary& dict = out.dict;
  TaxonomyBuilder builder;

  auto add_root = [&](const std::string& name) {
    const ItemId id = dict.Intern(name);
    builder.AddRoot(id);
    return id;
  };
  auto add_child = [&](ItemId parent, const std::string& name) {
    const ItemId id = dict.Intern(name);
    Status s = builder.AddEdge(parent, id);
    (void)s;  // names unique by construction
    return id;
  };

  // --- Named MeSH-like branches carrying the planted families. ---
  const ItemId mental = add_root("mental_disorders");
  const ItemId substance = add_child(mental, "substance_related");
  const ItemId withdrawal = add_child(substance, "withdrawal_syndrome");
  const ItemId substance_abuse = add_child(substance, "substance_abuse");
  const ItemId mood = add_child(mental, "mood_disorders");
  const ItemId depression = add_child(mood, "depression");

  const ItemId activities = add_root("human_activities");
  const ItemId temperance_grp = add_child(activities, "temperance_group");
  const ItemId temperance = add_child(temperance_grp, "temperance");
  const ItemId abstinence = add_child(temperance_grp, "abstinence");
  const ItemId leisure = add_child(activities, "leisure");
  const ItemId exercise = add_child(leisure, "exercise");

  const ItemId phenomena = add_root("psych_phenomena");
  const ItemId psychophys = add_child(phenomena, "psychophysiology");
  const ItemId biofeedback = add_child(psychophys, "biofeedback");
  const ItemId arousal = add_child(psychophys, "arousal");
  const ItemId cognition_grp = add_child(phenomena, "cognition");
  const ItemId memory = add_child(cognition_grp, "memory");

  const ItemId disciplines = add_root("behavioral_disciplines");
  const ItemId psychotherapy = add_child(disciplines, "psychotherapy");
  const ItemId behavior_therapy =
      add_child(psychotherapy, "behavior_therapy");
  const ItemId group_therapy = add_child(psychotherapy, "group_therapy");
  const ItemId psychoanalysis = add_child(disciplines, "psychoanalysis");
  const ItemId dream_analysis = add_child(psychoanalysis, "dream_analysis");

  // Pad the named categories to 8 subtopics x 7 leaves so their shape
  // matches the background categories.
  std::vector<ItemId> named_roots = {mental, activities, phenomena,
                                     disciplines};
  for (ItemId root : named_roots) {
    for (int s = 0; s < 6; ++s) {
      const ItemId sub = add_child(
          root, std::string(dict.Name(root)) + ".s" + std::to_string(s));
      for (int l = 0; l < 7; ++l) {
        add_child(sub,
                  std::string(dict.Name(sub)) + ".t" + std::to_string(l));
      }
    }
  }

  // --- 11 background categories: 8 subtopics x 7 leaves each. ---
  std::vector<std::vector<ItemId>> background_leaves;  // per category
  for (int c = 0; c < 11; ++c) {
    const std::string cat_name = "mesh:C" + std::to_string(c);
    const ItemId cat = add_root(cat_name);
    std::vector<ItemId> leaves;
    for (int s = 0; s < 8; ++s) {
      const ItemId sub = add_child(cat, cat_name + ".s" + std::to_string(s));
      for (int l = 0; l < 7; ++l) {
        leaves.push_back(
            add_child(sub, cat_name + ".s" + std::to_string(s) + ".t" +
                               std::to_string(l)));
      }
    }
    background_leaves.push_back(std::move(leaves));
  }
  FLIPPER_ASSIGN_OR_RETURN(out.taxonomy, builder.Build());

  const double n = static_cast<double>(params.num_citations);
  auto cnt = [&](double fraction) {
    return std::max<uint32_t>(
        1, static_cast<uint32_t>(std::llround(fraction * n)));
  };

  // --- Planted blocks (fractions of the reference 640K). ---
  std::vector<Block> blocks;
  // Family A: NEG / POS / NEG for {withdrawal_syndrome, temperance}.
  blocks.push_back({cnt(0.0030), {substance_abuse, abstinence}});
  blocks.push_back({cnt(0.0002), {withdrawal, temperance}});
  blocks.push_back({cnt(0.0020), {withdrawal}});
  blocks.push_back({cnt(0.0020), {temperance}});
  blocks.push_back({cnt(0.0300), {depression}});   // mental_disorders mass
  blocks.push_back({cnt(0.0300), {exercise}});     // human_activities mass

  // Family B: POS / NEG / POS for {biofeedback, behavior_therapy}.
  blocks.push_back({cnt(0.0020), {biofeedback, behavior_therapy}});
  blocks.push_back({cnt(0.0010), {biofeedback}});
  blocks.push_back({cnt(0.0010), {behavior_therapy}});
  blocks.push_back({cnt(0.0230), {arousal}});       // psychophysiology mass
  blocks.push_back({cnt(0.0230), {group_therapy}}); // psychotherapy mass
  blocks.push_back({cnt(0.0410), {memory, dream_analysis}});  // L1 joint

  // --- Materialize blocks, then fill with background citations. ---
  Rng rng(params.seed);
  std::vector<std::vector<ItemId>> txns;
  txns.reserve(params.num_citations);
  ZipfDistribution cat_zipf(
      static_cast<uint32_t>(background_leaves.size()), 0.8);
  ZipfDistribution leaf_zipf(
      static_cast<uint32_t>(background_leaves[0].size()), 0.9);

  auto background_topics = [&](std::vector<ItemId>* txn) {
    const uint32_t cat = cat_zipf.Sample(&rng);
    const auto& leaves = background_leaves[cat];
    const uint32_t picks = 2 + rng.Poisson(1.2);
    for (uint32_t i = 0; i < picks; ++i) {
      txn->push_back(leaves[leaf_zipf.Sample(&rng)]);
    }
    // Weak cross-category mixing: the source of the huge negative-pair
    // population (Table 4 row M).
    if (rng.Bernoulli(0.30)) {
      const uint32_t other = cat_zipf.Sample(&rng);
      txn->push_back(background_leaves[other][leaf_zipf.Sample(&rng)]);
    }
  };

  for (const Block& block : blocks) {
    for (uint32_t i = 0; i < block.count; ++i) {
      std::vector<ItemId> txn = block.items;
      if (rng.Bernoulli(0.5)) background_topics(&txn);
      txns.push_back(std::move(txn));
    }
  }
  while (txns.size() < params.num_citations) {
    std::vector<ItemId> txn;
    background_topics(&txn);
    txns.push_back(std::move(txn));
  }
  txns.resize(params.num_citations);
  rng.Shuffle(&txns);
  out.db.Reserve(params.num_citations, params.num_citations * 4ull);
  for (const auto& txn : txns) out.db.Add(txn);

  // Table 4 row M thresholds.
  out.paper_config.gamma = 0.40;
  out.paper_config.epsilon = 0.10;
  out.paper_config.min_support = {0.001, 0.0005, 0.0001};
  out.paper_config.measure = MeasureKind::kKulczynski;

  out.planted.push_back(
      {{"withdrawal_syndrome", "temperance"},
       "NEG",
       "underrepresented topic pair under co-studied subtopics"});
  out.planted.push_back(
      {{"biofeedback", "behavior_therapy"},
       "POS",
       "co-studied topics under rarely combined subtopics"});
  return out;
}

}  // namespace flipper
