// TemplateMixtureGenerator: transactions as unions of weighted item
// templates plus background noise. The real-dataset simulators use it
// to plant controlled co-occurrence structure (and hence controlled
// flipping correlations) while keeping realistic marginals.

#ifndef FLIPPER_DATAGEN_TEMPLATE_MIXTURE_H_
#define FLIPPER_DATAGEN_TEMPLATE_MIXTURE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/transaction_db.h"
#include "data/types.h"

namespace flipper {

/// One co-occurrence template: when picked, all of its items enter the
/// transaction together.
struct ItemTemplate {
  std::vector<ItemId> items;
  /// Relative pick weight (> 0).
  double weight = 1.0;
};

struct MixtureParams {
  uint32_t num_transactions = 10'000;
  /// Average number of templates merged per transaction (Poisson,
  /// minimum 1).
  double avg_templates_per_txn = 2.0;
  /// Average number of extra noise items appended (Poisson).
  double avg_noise_items = 1.0;
  uint64_t seed = 7;
};

class TemplateMixtureGenerator {
 public:
  TemplateMixtureGenerator(std::vector<ItemTemplate> templates,
                           std::vector<ItemId> noise_pool);

  /// Generates a database. Fails when no templates were supplied or a
  /// weight is non-positive.
  Result<TransactionDb> Generate(const MixtureParams& params) const;

 private:
  std::vector<ItemTemplate> templates_;
  std::vector<ItemId> noise_pool_;
};

}  // namespace flipper

#endif  // FLIPPER_DATAGEN_TEMPLATE_MIXTURE_H_
