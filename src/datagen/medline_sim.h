// MedlineSim: a synthetic stand-in for the MEDLINE-2010 citation set
// used in the paper's §5.2 (640,000 citations; items are MeSH topics,
// restricted to the top three hierarchy levels).
//
// The topic tree has 15 top categories x 8 subtopics x 7 leaf topics.
// Background citations pick topics inside one category (plus weak
// cross-category mixing), which yields the dataset's signature: a very
// large number of weakly co-occurring — hence negatively labeled —
// topic pairs (Table 4 row M).
//
// Planted structure (Figure 12):
//  * Pattern A — withdrawal_syndrome x temperance: NEG at the leaves
//    (an underrepresented research combination), POS one level up
//    (substance-related disorders are often studied with the
//    temperance group), NEG at the top (mental disorders vs human
//    activities) — a NEG/POS/NEG chain;
//  * Pattern B — biofeedback x behavior_therapy: POS at the leaves,
//    NEG between psychophysiology and psychotherapy, POS between
//    psychological phenomena and behavioral disciplines — POS/NEG/POS.

#ifndef FLIPPER_DATAGEN_MEDLINE_SIM_H_
#define FLIPPER_DATAGEN_MEDLINE_SIM_H_

#include <cstdint>

#include "common/status.h"
#include "datagen/sim_dataset.h"

namespace flipper {

struct MedlineParams {
  /// The paper uses 640,000 citations; scale down for quick runs.
  uint32_t num_citations = 640'000;
  uint64_t seed = 17;
};

Result<SimulatedDataset> GenerateMedline(const MedlineParams& params);

}  // namespace flipper

#endif  // FLIPPER_DATAGEN_MEDLINE_SIM_H_
