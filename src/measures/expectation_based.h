// Expectation-based correlation measures (Lift, leverage, chi-square).
//
// These are NOT null-invariant: their verdicts depend on the total
// number of transactions N, which the paper's Table 1 / Example 2 shows
// makes them unreliable on large sparse databases. They are included
// solely to regenerate that demonstration (bench_table1_expectation)
// and for the null-invariance property tests.

#ifndef FLIPPER_MEASURES_EXPECTATION_BASED_H_
#define FLIPPER_MEASURES_EXPECTATION_BASED_H_

#include <cstdint>
#include <span>

namespace flipper {

/// E(sup(A)) = N * prod_i (sup(a_i) / N) — the independence expectation.
double ExpectedSupport(std::span<const uint32_t> item_sups, uint32_t n);

/// Lift(A) = sup(A) / E(sup(A)). > 1 reads "positive", < 1 "negative".
double Lift(uint32_t sup_itemset, std::span<const uint32_t> item_sups,
            uint32_t n);

/// Leverage = (sup(A) - E(sup(A))) / N ("deviation from the expected").
double Leverage(uint32_t sup_itemset, std::span<const uint32_t> item_sups,
                uint32_t n);

/// Pearson chi-square statistic of the 2x2 contingency table of two
/// items (1 degree of freedom).
double ChiSquare2x2(uint32_t sup_ab, uint32_t sup_a, uint32_t sup_b,
                    uint32_t n);

/// phi coefficient of the 2x2 table (signed correlation in [-1, 1]).
double PhiCoefficient(uint32_t sup_ab, uint32_t sup_a, uint32_t sup_b,
                      uint32_t n);

/// Sign of the expectation-based verdict: +1 when sup(A) > E(sup(A)),
/// -1 when below, 0 on a tie. Table 1 shows this flips with N.
int ExpectationVerdict(uint32_t sup_itemset,
                       std::span<const uint32_t> item_sups, uint32_t n);

}  // namespace flipper

#endif  // FLIPPER_MEASURES_EXPECTATION_BASED_H_
