#include "measures/expectation_based.h"

#include <cassert>
#include <cmath>

namespace flipper {

double ExpectedSupport(std::span<const uint32_t> item_sups, uint32_t n) {
  assert(n > 0);
  double expected = static_cast<double>(n);
  for (uint32_t s : item_sups) {
    expected *= static_cast<double>(s) / static_cast<double>(n);
  }
  return expected;
}

double Lift(uint32_t sup_itemset, std::span<const uint32_t> item_sups,
            uint32_t n) {
  const double expected = ExpectedSupport(item_sups, n);
  if (expected == 0.0) return 0.0;
  return static_cast<double>(sup_itemset) / expected;
}

double Leverage(uint32_t sup_itemset, std::span<const uint32_t> item_sups,
                uint32_t n) {
  return (static_cast<double>(sup_itemset) -
          ExpectedSupport(item_sups, n)) /
         static_cast<double>(n);
}

double ChiSquare2x2(uint32_t sup_ab, uint32_t sup_a, uint32_t sup_b,
                    uint32_t n) {
  assert(sup_a <= n && sup_b <= n && sup_ab <= sup_a && sup_ab <= sup_b);
  // Observed cells: (a,b), (a,!b), (!a,b), (!a,!b).
  const double o11 = sup_ab;
  const double o10 = sup_a - sup_ab;
  const double o01 = sup_b - sup_ab;
  const double o00 = static_cast<double>(n) - sup_a - sup_b + sup_ab;
  const double pa = static_cast<double>(sup_a) / n;
  const double pb = static_cast<double>(sup_b) / n;
  const double e11 = n * pa * pb;
  const double e10 = n * pa * (1 - pb);
  const double e01 = n * (1 - pa) * pb;
  const double e00 = n * (1 - pa) * (1 - pb);
  double chi2 = 0.0;
  if (e11 > 0) chi2 += (o11 - e11) * (o11 - e11) / e11;
  if (e10 > 0) chi2 += (o10 - e10) * (o10 - e10) / e10;
  if (e01 > 0) chi2 += (o01 - e01) * (o01 - e01) / e01;
  if (e00 > 0) chi2 += (o00 - e00) * (o00 - e00) / e00;
  return chi2;
}

double PhiCoefficient(uint32_t sup_ab, uint32_t sup_a, uint32_t sup_b,
                      uint32_t n) {
  const double pa = static_cast<double>(sup_a) / n;
  const double pb = static_cast<double>(sup_b) / n;
  const double pab = static_cast<double>(sup_ab) / n;
  const double denom =
      std::sqrt(pa * (1 - pa) * pb * (1 - pb));
  if (denom == 0.0) return 0.0;
  return (pab - pa * pb) / denom;
}

int ExpectationVerdict(uint32_t sup_itemset,
                       std::span<const uint32_t> item_sups, uint32_t n) {
  const double expected = ExpectedSupport(item_sups, n);
  const double sup = static_cast<double>(sup_itemset);
  if (sup > expected) return 1;
  if (sup < expected) return -1;
  return 0;
}

}  // namespace flipper
