#include "measures/bounds.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace flipper {

double TheoremOneBound(std::span<const double> subset_corrs) {
  double bound = 0.0;
  for (double c : subset_corrs) bound = std::max(bound, c);
  return bound;
}

bool CheckTheoremOne(MeasureKind kind, uint32_t sup_itemset,
                     std::span<const uint32_t> item_sups,
                     std::span<const uint32_t> subset_sups) {
  const size_t k = item_sups.size();
  assert(subset_sups.size() == k);
  const double corr_a = Correlation(kind, sup_itemset, item_sups);

  // Corr of each (k-1)-subset B_i = A - {a_i}.
  std::vector<double> subset_corrs;
  subset_corrs.reserve(k);
  std::vector<uint32_t> sups;
  for (size_t i = 0; i < k; ++i) {
    sups.clear();
    for (size_t j = 0; j < k; ++j) {
      if (j != i) sups.push_back(item_sups[j]);
    }
    subset_corrs.push_back(Correlation(kind, subset_sups[i], sups));
  }
  // Tolerance for the geometric-mean (log-space) path.
  return corr_a <= TheoremOneBound(subset_corrs) + 1e-9;
}

bool CheckTheoremTwo(MeasureKind kind, double gamma, uint32_t sup_itemset,
                     std::span<const uint32_t> item_sups,
                     std::span<const uint32_t> subset_with_a_sups) {
  const size_t k = item_sups.size();
  assert(k >= 2);
  assert(subset_with_a_sups.size() == k - 1);

  // Premise (2): some item other than a (= index 0) has support >=
  // sup(a).
  bool has_bigger = false;
  for (size_t i = 1; i < k; ++i) {
    if (item_sups[i] >= item_sups[0]) {
      has_bigger = true;
      break;
    }
  }
  if (!has_bigger) return true;  // premise fails; implication vacuous

  // Premise (1): every (k-1)-subset containing a has Corr < gamma.
  // Subset j drops item (j+1).
  std::vector<uint32_t> sups;
  for (size_t j = 0; j + 1 < k; ++j) {
    sups.clear();
    for (size_t i = 0; i < k; ++i) {
      if (i != j + 1) sups.push_back(item_sups[i]);
    }
    const double c = Correlation(kind, subset_with_a_sups[j], sups);
    if (c >= gamma) return true;  // premise fails; implication vacuous
  }

  // Conclusion: Corr(A) < gamma.
  return Correlation(kind, sup_itemset, item_sups) < gamma + 1e-9;
}

}  // namespace flipper
