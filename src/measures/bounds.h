// Correlation bounds backing the Flipper pruning stack.
//
// Theorem 1 (correlation upper bound): for a k-itemset A with
// (k-1)-subsets S, Corr(A) <= max_{B in S} Corr(B) for every
// null-invariant measure.
//
// Theorem 2 (single-item bound): if every (k-1)-subset of A containing
// a shared item a has Corr < gamma, and some other item of A has
// support >= sup(a), then Corr(A) < gamma.
//
// These helpers verify/apply the inequalities; the property tests
// exercise them on randomized support configurations.

#ifndef FLIPPER_MEASURES_BOUNDS_H_
#define FLIPPER_MEASURES_BOUNDS_H_

#include <cstdint>
#include <span>

#include "measures/measure.h"

namespace flipper {

/// max over the given subset correlations — the Theorem-1 bound for the
/// superset. Returns 0 for an empty list.
double TheoremOneBound(std::span<const double> subset_corrs);

/// Checks the Theorem-1 inequality for a concrete itemset given
/// sup(A) = sup_itemset and the item supports. Computes Corr(A) and the
/// correlations of all (k-1)-subsets directly; used by tests.
/// subset_sups[i] must be sup(A - {a_i}).
bool CheckTheoremOne(MeasureKind kind, uint32_t sup_itemset,
                     std::span<const uint32_t> item_sups,
                     std::span<const uint32_t> subset_sups);

/// Checks the Theorem-2 premise -> conclusion on concrete numbers:
/// premise: all (k-1)-subsets containing item index 0 ("a") have
/// Corr < gamma and some other item has support >= sup(a);
/// conclusion: Corr(A) < gamma. Returns true when the implication
/// holds (vacuously true when the premise fails). Used by tests.
/// subset_with_a_sups[j] = sup of the j-th (k-1)-subset containing a.
bool CheckTheoremTwo(MeasureKind kind, double gamma, uint32_t sup_itemset,
                     std::span<const uint32_t> item_sups,
                     std::span<const uint32_t> subset_with_a_sups);

}  // namespace flipper

#endif  // FLIPPER_MEASURES_BOUNDS_H_
