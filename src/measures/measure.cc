#include "measures/measure.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace flipper {

const char* MeasureKindToString(MeasureKind kind) {
  switch (kind) {
    case MeasureKind::kAllConfidence:
      return "all_confidence";
    case MeasureKind::kCoherence:
      return "coherence";
    case MeasureKind::kCosine:
      return "cosine";
    case MeasureKind::kKulczynski:
      return "kulczynski";
    case MeasureKind::kMaxConfidence:
      return "max_confidence";
  }
  return "?";
}

Result<MeasureKind> ParseMeasureKind(const std::string& name) {
  for (MeasureKind kind : kAllMeasures) {
    if (name == MeasureKindToString(kind)) return kind;
  }
  if (name == "kulc") return MeasureKind::kKulczynski;
  return Status::InvalidArgument("unknown correlation measure: '" + name +
                                 "'");
}

double Correlation(MeasureKind kind, uint32_t sup_itemset,
                   std::span<const uint32_t> item_sups) {
  assert(!item_sups.empty());
  if (sup_itemset == 0) return 0.0;
  const double sup = static_cast<double>(sup_itemset);
  const size_t k = item_sups.size();

  switch (kind) {
    case MeasureKind::kAllConfidence: {
      uint32_t max_sup = 0;
      for (uint32_t s : item_sups) max_sup = std::max(max_sup, s);
      return sup / static_cast<double>(max_sup);
    }
    case MeasureKind::kMaxConfidence: {
      uint32_t min_sup = item_sups[0];
      for (uint32_t s : item_sups) min_sup = std::min(min_sup, s);
      return sup / static_cast<double>(min_sup);
    }
    case MeasureKind::kCoherence: {
      // Harmonic mean of P_i = k / sum(1/P_i) = k * sup / sum(sup_i).
      double denom = 0.0;
      for (uint32_t s : item_sups) denom += static_cast<double>(s);
      return static_cast<double>(k) * sup / denom;
    }
    case MeasureKind::kCosine: {
      // Geometric mean, computed in log space for numerical stability.
      double log_sum = 0.0;
      for (uint32_t s : item_sups) {
        log_sum += std::log(static_cast<double>(s));
      }
      return sup / std::exp(log_sum / static_cast<double>(k));
    }
    case MeasureKind::kKulczynski: {
      double sum = 0.0;
      for (uint32_t s : item_sups) sum += sup / static_cast<double>(s);
      return sum / static_cast<double>(k);
    }
  }
  return 0.0;
}

double Correlation2(MeasureKind kind, uint32_t sup_ab, uint32_t sup_a,
                    uint32_t sup_b) {
  const uint32_t sups[2] = {sup_a, sup_b};
  return Correlation(kind, sup_ab, sups);
}

bool IsAntiMonotonic(MeasureKind kind) {
  return kind == MeasureKind::kAllConfidence ||
         kind == MeasureKind::kCoherence;
}

}  // namespace flipper
