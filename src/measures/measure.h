// The five null-(transaction-)invariant correlation measures of the
// paper's Table 2. Each is a generalized mean of the conditional
// probabilities P(A | a_i) = sup(A) / sup(a_i):
//
//   All-Confidence   minimum
//   Coherence        harmonic mean   (re-definition of [22], see §2.1)
//   Cosine           geometric mean
//   Kulczynski       arithmetic mean
//   Max-Confidence   maximum
//
// which yields the fixed ordering AllConf <= Coherence <= Cosine <=
// Kulc <= MaxConf for any support configuration. Null-invariance: none
// of these depends on the total number of transactions N.

#ifndef FLIPPER_MEASURES_MEASURE_H_
#define FLIPPER_MEASURES_MEASURE_H_

#include <cstdint>
#include <span>
#include <string>

#include "common/status.h"

namespace flipper {

enum class MeasureKind {
  kAllConfidence = 0,
  kCoherence = 1,
  kCosine = 2,
  kKulczynski = 3,
  kMaxConfidence = 4,
};

inline constexpr MeasureKind kAllMeasures[] = {
    MeasureKind::kAllConfidence, MeasureKind::kCoherence,
    MeasureKind::kCosine, MeasureKind::kKulczynski,
    MeasureKind::kMaxConfidence};

const char* MeasureKindToString(MeasureKind kind);
Result<MeasureKind> ParseMeasureKind(const std::string& name);

/// Corr(A) for the k-itemset A with sup(A) = `sup_itemset` and single
/// item supports `item_sups` (all k of them, order irrelevant).
///
/// Domain: item_sups[i] >= sup_itemset (anti-monotonicity of support)
/// and k >= 1. If sup_itemset == 0 the result is 0. Items with zero
/// support make the conditional probabilities undefined; since
/// sup(A) <= sup(a_i), that can only occur with sup_itemset == 0,
/// which short-circuits to 0.
double Correlation(MeasureKind kind, uint32_t sup_itemset,
                   std::span<const uint32_t> item_sups);

/// Convenience overload for pairs.
double Correlation2(MeasureKind kind, uint32_t sup_ab, uint32_t sup_a,
                    uint32_t sup_b);

/// True if the measure is anti-monotonic (adding an item can never
/// increase the value): All-Confidence and Coherence are; Cosine,
/// Kulczynski and Max-Confidence are not (paper §2.1, §3).
bool IsAntiMonotonic(MeasureKind kind);

}  // namespace flipper

#endif  // FLIPPER_MEASURES_MEASURE_H_
