#include "service/store_registry.h"

#include <cinttypes>
#include <cstdio>

#ifndef _WIN32
#include <sys/stat.h>
#endif

#include "common/thread_pool.h"

namespace flipper {
namespace service {
namespace {

struct FileStamp {
  uint64_t size = 0;
  uint64_t mtime_ns = 0;
};

Result<FileStamp> StatFile(const std::string& path) {
#ifdef _WIN32
  (void)path;
  return Status::FailedPrecondition("store registry requires POSIX stat");
#else
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IoError("cannot stat store file: " + path);
  }
  FileStamp stamp;
  stamp.size = static_cast<uint64_t>(st.st_size);
  stamp.mtime_ns = static_cast<uint64_t>(st.st_mtim.tv_sec) *
                       1'000'000'000ull +
                   static_cast<uint64_t>(st.st_mtim.tv_nsec);
  return stamp;
#endif
}

/// FNV-1a over the identity-bearing numbers; rendered as 16 hex chars.
std::string Fingerprint(const FileStamp& stamp,
                        const storage::FileHeader& header) {
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(stamp.size);
  mix(stamp.mtime_ns);
  mix(header.num_transactions);
  mix(header.num_items);
  mix(header.version);
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, h);
  return buf;
}

}  // namespace

Status StoreRegistry::Add(const std::string& name,
                          const std::string& path) {
  if (name.empty() || name.find(' ') != std::string::npos) {
    return Status::InvalidArgument(
        "store name must be non-empty and contain no spaces, got '" +
        name + "'");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stores_.count(name) > 0) {
      return Status::AlreadyExists("store '" + name +
                                   "' is already registered");
    }
  }
  FLIPPER_ASSIGN_OR_RETURN(std::shared_ptr<const StoreEntry> entry,
                           Load(name, path));
  std::lock_guard<std::mutex> lock(mu_);
  if (!stores_.emplace(name, std::move(entry)).second) {
    return Status::AlreadyExists("store '" + name +
                                 "' is already registered");
  }
  return Status::OK();
}

Result<std::shared_ptr<const StoreEntry>> StoreRegistry::Get(
    const std::string& name) {
  std::shared_ptr<const StoreEntry> current;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = stores_.find(name);
    if (it == stores_.end()) {
      return Status::NotFound("unknown store '" + name + "'");
    }
    current = it->second;
  }
  FLIPPER_ASSIGN_OR_RETURN(FileStamp stamp, StatFile(current->path));
  if (stamp.size == current->file_size &&
      stamp.mtime_ns == current->mtime_ns) {
    return current;
  }
  // The file changed under us: reload outside the lock (slow), then
  // publish. A concurrent reload of the same store is harmless — last
  // writer wins, both entries are valid snapshots, and in-flight
  // queries keep whatever entry they already hold.
  FLIPPER_ASSIGN_OR_RETURN(std::shared_ptr<const StoreEntry> fresh,
                           Load(name, current->path));
  std::lock_guard<std::mutex> lock(mu_);
  stores_[name] = fresh;
  return fresh;
}

std::vector<std::string> StoreRegistry::Names() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(mu_);
  names.reserve(stores_.size());
  for (const auto& [name, entry] : stores_) names.push_back(name);
  return names;
}

Result<std::shared_ptr<const StoreEntry>> StoreRegistry::Load(
    const std::string& name, const std::string& path) const {
  FLIPPER_ASSIGN_OR_RETURN(FileStamp stamp, StatFile(path));
  storage::OpenOptions open_options;
  open_options.validate = options_.validate;
  FLIPPER_ASSIGN_OR_RETURN(storage::StoreReader reader,
                           storage::StoreReader::Open(path, open_options));
  // Build the shared views once, catalogs included, with a build-only
  // pool; the views keep no reference to it (LevelViews::Build).
  ThreadPool build_pool(options_.build_threads);
  LevelViews::BuildOptions view_options;
  view_options.build_catalogs = true;
  auto views = LevelViews::Build(reader.db(), reader.taxonomy(),
                                 &build_pool, view_options);
  if (!views.ok()) return views.status();
  auto entry = std::make_shared<StoreEntry>(std::move(reader),
                                            std::move(views).value());
  entry->name = name;
  entry->path = path;
  entry->file_size = stamp.size;
  entry->mtime_ns = stamp.mtime_ns;
  entry->fingerprint = Fingerprint(stamp, entry->reader.header());
  return std::shared_ptr<const StoreEntry>(std::move(entry));
}

}  // namespace service
}  // namespace flipper
