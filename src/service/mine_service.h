// MineRequest: the canonical, validated description of one mining
// query, shared by the CLI `mine` command and the serve daemon so the
// two paths cannot drift apart.
//
// Every option value — whether it arrived as a --flag on the command
// line or as a `key value` line in a service request — goes through
// ApplyMineOption, the single checked parser: strict numeric parsing
// (no trailing garbage), range validation at parse time, and error
// messages that always quote the offending token. Callers surface the
// Status verbatim (the CLI exits 2 with usage).
//
// ExecuteMineRequest is the shared execution path: config assembly,
// the miner run (over borrowed store views when given), top-k
// selection and rendering. The daemon's response body for a request
// is byte-identical to what a solo `flipper_cli mine` run with the
// same options prints, because both are this one function.

#ifndef FLIPPER_SERVICE_MINE_SERVICE_H_
#define FLIPPER_SERVICE_MINE_SERVICE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/config.h"
#include "core/level_views.h"
#include "core/pattern.h"
#include "data/item_dictionary.h"
#include "data/transaction_db.h"
#include "taxonomy/taxonomy.h"

namespace flipper {
namespace service {

/// One mining query, fully parsed and range-checked. Defaults mirror
/// the CLI's flag defaults.
struct MineRequest {
  // Output-affecting options (part of the result-cache key).
  double gamma = 0.3;
  double epsilon = 0.1;
  std::vector<double> min_support = {0.01, 0.001, 0.0005};
  MeasureKind measure = MeasureKind::kKulczynski;
  PruningOptions pruning = PruningOptions::Full();
  int64_t topk = 0;  // 0 = keep everything
  std::string format = "text";  // text|csv|json

  // Execution knobs. These never change mining output (the invariance
  // suites prove bit-identical results across all of them), so
  // CanonicalCacheKey() deliberately excludes them: a cached body
  // computed under any knob combination answers them all.
  CounterKind counter = CounterKind::kHorizontal;
  int num_threads = 0;
  bool enable_pipelining = true;
  bool enable_row_overlap = true;
  bool enable_arena_scan_counters = true;
  bool enable_segment_skipping = true;
  bool enable_flat_trie = true;
  bool enable_txn_prefilter = true;

  /// Optional cooperative-cancellation token plumbed into the run
  /// (common/cancellation.h). Not an option key and — like the other
  /// execution knobs — never part of CanonicalCacheKey(): an un-fired
  /// token is proven byte-identity-preserving by the fuzz harness. Not
  /// owned; must outlive ExecuteMineRequest.
  const CancelToken* cancel = nullptr;
};

/// The option keys ApplyMineOption understands, in CLI flag spelling
/// (gamma, epsilon, minsup, measure, pruning, counter, threads,
/// pipeline, row-overlap, arena-counters, segment-skipping, flat-trie,
/// txn-prefilter, topk, format). The CLI iterates this list to route
/// every present flag through the checked parser.
const std::vector<std::string>& MineOptionKeys();

/// Parses and validates one option value into `request`. Unknown keys,
/// malformed numbers (trailing garbage included) and out-of-range
/// values fail with a Status naming the key and quoting the offending
/// token.
Status ApplyMineOption(MineRequest* request, std::string_view key,
                       std::string_view value);

/// Builds a request from `key value` pairs (the service protocol's
/// params), applying them in order over the defaults.
Result<MineRequest> MineRequestFromParams(
    const std::vector<std::pair<std::string, std::string>>& params);

/// The MiningConfig this request describes (metrics left null; the
/// caller attaches its per-query registry).
MiningConfig ToMiningConfig(const MineRequest& request);

/// Deterministic cache-key text of the request's output-affecting
/// options. Two requests with equal keys produce byte-identical
/// bodies over the same store contents.
std::string CanonicalCacheKey(const MineRequest& request);

/// Renders `patterns` in the request's format — the one emission path
/// behind both the CLI and the daemon. Text format matches the CLI's
/// historical output exactly.
Status RenderPatterns(const std::vector<FlippingPattern>& patterns,
                      const ItemDictionary* dict,
                      const std::string& format, std::ostream& out);

/// What a query run reports besides its body.
struct MineOutcome {
  std::string body;
  size_t num_patterns = 0;
  /// MiningStats::ToString() of the run (the CLI's --stats output).
  std::string stats_text;
};

/// Runs the full query: config assembly, FlipperMiner over
/// `shared_views` when non-null (the daemon's borrowed store views;
/// null = build owned views, the solo path), top-k, render. `metrics`
/// (may be null) receives the run's pipeline metrics.
Result<MineOutcome> ExecuteMineRequest(const TransactionDb& db,
                                       const Taxonomy& taxonomy,
                                       const ItemDictionary* dict,
                                       const LevelViews* shared_views,
                                       const MineRequest& request,
                                       MetricsRegistry* metrics);

}  // namespace service
}  // namespace flipper

#endif  // FLIPPER_SERVICE_MINE_SERVICE_H_
