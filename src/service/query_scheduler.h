// QueryScheduler: admission control for the serve daemon's mining
// queries. At most `max_concurrent` queries execute at once; up to
// `max_queued` more wait in strict FIFO ticket order (fairness: the
// oldest waiter is always admitted next, so a stream of cheap queries
// can never starve an expensive one). A query arriving with the
// waiting room full is rejected immediately with ResourceExhausted —
// the daemon turns that into an `error overloaded: ...` response
// instead of letting connections pile up unboundedly.

#ifndef FLIPPER_SERVICE_QUERY_SCHEDULER_H_
#define FLIPPER_SERVICE_QUERY_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/status.h"

namespace flipper {
namespace service {

class QueryScheduler {
 public:
  QueryScheduler(int max_concurrent, int max_queued)
      : max_concurrent_(max_concurrent > 0 ? max_concurrent : 1),
        max_queued_(max_queued >= 0 ? max_queued : 0) {}

  /// RAII admission slot; releases (and wakes the next waiter) on
  /// destruction. Move-only.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept : scheduler_(other.scheduler_) {
      other.scheduler_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        scheduler_ = other.scheduler_;
        other.scheduler_ = nullptr;
      }
      return *this;
    }
    ~Ticket() { Release(); }

    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

   private:
    friend class QueryScheduler;
    explicit Ticket(QueryScheduler* scheduler)
        : scheduler_(scheduler) {}
    void Release();
    QueryScheduler* scheduler_ = nullptr;
  };

  /// Blocks until this caller's FIFO turn comes and a slot frees, then
  /// returns the held slot. Fails with ResourceExhausted without
  /// blocking when the waiting room is full.
  Result<Ticket> Admit();

  struct Stats {
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    int running = 0;
    int waiting = 0;
  };
  Stats stats() const;

 private:
  friend class Ticket;
  void Release();

  const int max_concurrent_;
  const int max_queued_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// FIFO tickets: a waiter's turn is `enqueued` at arrival; it may
  /// start once every earlier ticket has started and a slot is free.
  uint64_t enqueued_ = 0;
  uint64_t started_ = 0;
  int running_ = 0;
  uint64_t admitted_total_ = 0;
  uint64_t rejected_total_ = 0;
};

}  // namespace service
}  // namespace flipper

#endif  // FLIPPER_SERVICE_QUERY_SCHEDULER_H_
