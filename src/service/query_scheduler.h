// QueryScheduler: admission control for the serve daemon's mining
// queries. At most `max_concurrent` queries execute at once; up to
// `max_queued` more wait in strict FIFO ticket order (fairness: the
// oldest waiter is always admitted next, so a stream of cheap queries
// can never starve an expensive one). A query arriving with the
// waiting room full is rejected immediately with ResourceExhausted —
// the daemon turns that into an `error overloaded: ...` response
// instead of letting connections pile up unboundedly.
//
// A waiter may pass a deadline: when it lapses before admission the
// waiter leaves the waiting room with DeadlineExceeded instead of
// running doomed work. Leaving is FIFO-safe — the departing waiter
// marks its turn abandoned and the turn counter sweeps over abandoned
// turns, so successors are never blocked by a ghost ticket.
// Shutdown() (daemon drain) fails all waiters, and every later Admit,
// with Cancelled.

#ifndef FLIPPER_SERVICE_QUERY_SCHEDULER_H_
#define FLIPPER_SERVICE_QUERY_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_set>

#include "common/status.h"

namespace flipper {
namespace service {

class QueryScheduler {
 public:
  QueryScheduler(int max_concurrent, int max_queued)
      : max_concurrent_(max_concurrent > 0 ? max_concurrent : 1),
        max_queued_(max_queued >= 0 ? max_queued : 0) {}

  /// RAII admission slot; releases (and wakes the next waiter) on
  /// destruction. Move-only.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept : scheduler_(other.scheduler_) {
      other.scheduler_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        scheduler_ = other.scheduler_;
        other.scheduler_ = nullptr;
      }
      return *this;
    }
    ~Ticket() { Release(); }

    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

   private:
    friend class QueryScheduler;
    explicit Ticket(QueryScheduler* scheduler)
        : scheduler_(scheduler) {}
    void Release();
    QueryScheduler* scheduler_ = nullptr;
  };

  /// Blocks until this caller's FIFO turn comes and a slot frees, then
  /// returns the held slot. Fails with ResourceExhausted without
  /// blocking when the waiting room is full.
  Result<Ticket> Admit() {
    return Admit(std::chrono::steady_clock::time_point::max());
  }

  /// As Admit(), but gives up with DeadlineExceeded once `deadline`
  /// lapses (the abandoned turn never blocks later waiters), and with
  /// Cancelled when the scheduler shuts down while waiting.
  Result<Ticket> Admit(std::chrono::steady_clock::time_point deadline);

  /// Drain support: fails all current waiters and every later Admit
  /// with Cancelled. Running queries keep their tickets.
  void Shutdown();

  struct Stats {
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    /// Waiters whose deadline lapsed in the waiting room.
    uint64_t timed_out = 0;
    int running = 0;
    int waiting = 0;
  };
  Stats stats() const;

 private:
  friend class Ticket;
  void Release();

  /// Advances started_ over turns whose waiters left. Call with mu_
  /// held after started_ moves or a turn is abandoned; keeps the
  /// invariant that every turn in abandoned_ is >= started_.
  void SweepAbandonedLocked();

  const int max_concurrent_;
  const int max_queued_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// FIFO tickets: a waiter's turn is `enqueued` at arrival; it may
  /// start once every earlier ticket has started and a slot is free.
  uint64_t enqueued_ = 0;
  uint64_t started_ = 0;
  /// Turns whose waiters gave up (deadline/shutdown) before starting.
  std::unordered_set<uint64_t> abandoned_;
  int running_ = 0;
  bool closed_ = false;
  uint64_t admitted_total_ = 0;
  uint64_t rejected_total_ = 0;
  uint64_t timed_out_total_ = 0;
};

}  // namespace service
}  // namespace flipper

#endif  // FLIPPER_SERVICE_QUERY_SCHEDULER_H_
