#include "service/mine_service.h"

#include <cinttypes>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/string_util.h"
#include "core/flipper_miner.h"
#include "core/mining_result.h"
#include "core/pattern_io.h"
#include "core/topk.h"

namespace flipper {
namespace service {
namespace {

Status BadValue(std::string_view key, std::string_view value,
                std::string_view expected) {
  return Status::InvalidArgument("--" + std::string(key) + " must be " +
                                 std::string(expected) + ", got '" +
                                 std::string(value) + "'");
}

/// Strict double with a range check; quotes the token on any failure.
Status ParseCheckedDouble(std::string_view key, std::string_view value,
                          double lo, bool lo_open, double hi,
                          bool hi_open, std::string_view expected,
                          double* out) {
  auto parsed = ParseDouble(value);
  if (!parsed.ok()) return BadValue(key, value, expected);
  const double v = *parsed;
  const bool below = lo_open ? v <= lo : v < lo;
  const bool above = hi_open ? v >= hi : v > hi;
  if (below || above) return BadValue(key, value, expected);
  *out = v;
  return Status::OK();
}

Status ParseOnOff(std::string_view key, std::string_view value,
                  bool* out) {
  if (value == "on") {
    *out = true;
  } else if (value == "off") {
    *out = false;
  } else {
    return BadValue(key, value, "on|off");
  }
  return Status::OK();
}

/// %.17g — round-trips every double, so distinct thresholds can never
/// collide into one cache key.
std::string KeyDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

const std::vector<std::string>& MineOptionKeys() {
  static const std::vector<std::string> kKeys = {
      "gamma",        "epsilon",       "minsup",
      "measure",      "pruning",       "counter",
      "threads",      "pipeline",      "row-overlap",
      "arena-counters", "segment-skipping", "flat-trie",
      "txn-prefilter", "topk",         "format"};
  return kKeys;
}

Status ApplyMineOption(MineRequest* request, std::string_view key,
                       std::string_view value) {
  if (key == "gamma") {
    return ParseCheckedDouble(key, value, 0.0, true, 1.0, false,
                              "a number in (0, 1]", &request->gamma);
  }
  if (key == "epsilon") {
    return ParseCheckedDouble(key, value, 0.0, false, 1.0, true,
                              "a number in [0, 1)", &request->epsilon);
  }
  if (key == "minsup") {
    std::vector<double> thresholds;
    for (const std::string& token : Split(value, ',')) {
      double v = 0;
      FLIPPER_RETURN_IF_ERROR(ParseCheckedDouble(
          key, token, 0.0, true, 1.0, false,
          "comma-separated fractions in (0, 1]", &v));
      thresholds.push_back(v);
    }
    if (thresholds.empty()) {
      return Status::InvalidArgument(
          "--minsup needs at least one value");
    }
    request->min_support = std::move(thresholds);
    return Status::OK();
  }
  if (key == "measure") {
    FLIPPER_ASSIGN_OR_RETURN(request->measure,
                             ParseMeasureKind(std::string(value)));
    return Status::OK();
  }
  if (key == "pruning") {
    if (value == "full") {
      request->pruning = PruningOptions::Full();
    } else if (value == "tpg") {
      request->pruning = PruningOptions::FlippingTpg();
    } else if (value == "flipping") {
      request->pruning = PruningOptions::FlippingOnly();
    } else if (value == "support") {
      request->pruning = PruningOptions::Basic();
    } else {
      return BadValue(key, value, "one of full|tpg|flipping|support");
    }
    return Status::OK();
  }
  if (key == "counter") {
    if (value == "horizontal") {
      request->counter = CounterKind::kHorizontal;
    } else if (value == "vertical") {
      request->counter = CounterKind::kVertical;
    } else {
      return BadValue(key, value, "horizontal|vertical");
    }
    return Status::OK();
  }
  if (key == "threads") {
    auto parsed = ParseInt(value);
    if (!parsed.ok() || *parsed < 0 ||
        *parsed > std::numeric_limits<int>::max()) {
      return BadValue(key, value, "a non-negative thread count");
    }
    request->num_threads = static_cast<int>(*parsed);
    return Status::OK();
  }
  if (key == "pipeline") {
    return ParseOnOff(key, value, &request->enable_pipelining);
  }
  if (key == "row-overlap") {
    return ParseOnOff(key, value, &request->enable_row_overlap);
  }
  if (key == "arena-counters") {
    return ParseOnOff(key, value,
                      &request->enable_arena_scan_counters);
  }
  if (key == "segment-skipping") {
    return ParseOnOff(key, value, &request->enable_segment_skipping);
  }
  if (key == "flat-trie") {
    return ParseOnOff(key, value, &request->enable_flat_trie);
  }
  if (key == "txn-prefilter") {
    return ParseOnOff(key, value, &request->enable_txn_prefilter);
  }
  if (key == "topk") {
    auto parsed = ParseInt(value);
    if (!parsed.ok() || *parsed < 0) {
      return BadValue(key, value, "a non-negative pattern count");
    }
    request->topk = *parsed;
    return Status::OK();
  }
  if (key == "format") {
    if (value != "text" && value != "csv" && value != "json") {
      return BadValue(key, value, "text|csv|json");
    }
    request->format = std::string(value);
    return Status::OK();
  }
  return Status::InvalidArgument("unknown mine option '" +
                                 std::string(key) + "'");
}

Result<MineRequest> MineRequestFromParams(
    const std::vector<std::pair<std::string, std::string>>& params) {
  MineRequest request;
  for (const auto& [key, value] : params) {
    FLIPPER_RETURN_IF_ERROR(ApplyMineOption(&request, key, value));
  }
  return request;
}

MiningConfig ToMiningConfig(const MineRequest& request) {
  MiningConfig config;
  config.gamma = request.gamma;
  config.epsilon = request.epsilon;
  config.min_support = request.min_support;
  config.measure = request.measure;
  config.pruning = request.pruning;
  config.counter = request.counter;
  config.num_threads = request.num_threads;
  config.enable_pipelining = request.enable_pipelining;
  config.enable_row_overlap = request.enable_row_overlap;
  config.enable_arena_scan_counters =
      request.enable_arena_scan_counters;
  config.enable_segment_skipping = request.enable_segment_skipping;
  config.enable_flat_trie = request.enable_flat_trie;
  config.enable_txn_prefilter = request.enable_txn_prefilter;
  config.cancel = request.cancel;
  return config;
}

std::string CanonicalCacheKey(const MineRequest& request) {
  std::string key = "gamma=" + KeyDouble(request.gamma) +
                    ";epsilon=" + KeyDouble(request.epsilon) +
                    ";minsup=";
  for (size_t i = 0; i < request.min_support.size(); ++i) {
    if (i > 0) key += ',';
    key += KeyDouble(request.min_support[i]);
  }
  key += ";measure=";
  key += MeasureKindToString(request.measure);
  key += ";pruning=" + request.pruning.ToString();
  key += ";topk=" + std::to_string(request.topk);
  key += ";format=" + request.format;
  return key;
}

Status RenderPatterns(const std::vector<FlippingPattern>& patterns,
                      const ItemDictionary* dict,
                      const std::string& format, std::ostream& out) {
  if (format == "csv") return WritePatternsCsv(patterns, dict, out);
  if (format == "json") return WritePatternsJson(patterns, dict, out);
  if (format != "text") {
    return Status::InvalidArgument("--format must be text|csv|json, got '" +
                                   format + "'");
  }
  out << patterns.size() << " flipping patterns\n\n";
  for (const FlippingPattern& p : patterns) {
    out << dict->Render(p.leaf_itemset) << "  (flip gap "
        << FormatDouble(p.FlipGap(), 4) << ")\n"
        << p.ToString(dict) << "\n";
  }
  return Status::OK();
}

Result<MineOutcome> ExecuteMineRequest(const TransactionDb& db,
                                       const Taxonomy& taxonomy,
                                       const ItemDictionary* dict,
                                       const LevelViews* shared_views,
                                       const MineRequest& request,
                                       MetricsRegistry* metrics) {
  MiningConfig config = ToMiningConfig(request);
  config.metrics = metrics;
  FLIPPER_ASSIGN_OR_RETURN(
      MiningResult result,
      FlipperMiner::Run(db, taxonomy, config, shared_views));
  std::vector<FlippingPattern> patterns = std::move(result.patterns);
  if (request.topk > 0) {
    patterns = TopKMostFlipping(std::move(patterns),
                                static_cast<size_t>(request.topk));
  }
  std::ostringstream body;
  FLIPPER_RETURN_IF_ERROR(
      RenderPatterns(patterns, dict, request.format, body));
  MineOutcome outcome;
  outcome.body = std::move(body).str();
  outcome.num_patterns = patterns.size();
  outcome.stats_text = result.stats.ToString();
  return outcome;
}

}  // namespace service
}  // namespace flipper
