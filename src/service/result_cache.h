// ResultCache: byte-capped LRU of rendered query bodies, keyed by
// "<store fingerprint>|<canonical mine-request key>". The fingerprint
// changes whenever the store file changes on disk (StoreRegistry), so
// a reload invalidates every cached body of the old contents without
// an explicit flush — stale keys simply never match again and age out
// of the LRU. The canonical key covers only output-affecting options
// (service::CanonicalCacheKey); execution knobs hit the same entry
// because they are proven not to change the bytes.

#ifndef FLIPPER_SERVICE_RESULT_CACHE_H_
#define FLIPPER_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace flipper {
namespace service {

class ResultCache {
 public:
  struct CachedResult {
    std::string body;
    uint64_t num_patterns = 0;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;
    uint64_t bytes = 0;
  };

  /// `capacity_bytes` bounds the sum of cached body sizes; 0 disables
  /// caching entirely (every Get misses, Put is a no-op).
  explicit ResultCache(size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  /// Returns the cached result and marks it most-recently-used.
  std::optional<CachedResult> Get(const std::string& key);

  /// Inserts (or refreshes) `result` under `key`, evicting
  /// least-recently-used entries until the cache fits. A body larger
  /// than the whole capacity is not cached.
  void Put(const std::string& key, CachedResult result);

  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    CachedResult result;
  };

  const size_t capacity_bytes_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  uint64_t bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t insertions_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace service
}  // namespace flipper

#endif  // FLIPPER_SERVICE_RESULT_CACHE_H_
