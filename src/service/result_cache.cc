#include "service/result_cache.h"

namespace flipper {
namespace service {

std::optional<ResultCache::CachedResult> ResultCache::Get(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return it->second->result;
}

void ResultCache::Put(const std::string& key, CachedResult result) {
  const size_t size = result.body.size();
  if (size > capacity_bytes_) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->result.body.size();
    bytes_ += size;
    it->second->result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(result)});
    index_[key] = lru_.begin();
    bytes_ += size;
    ++insertions_;
  }
  while (bytes_ > capacity_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.result.body.size();
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.insertions = insertions_;
  stats.evictions = evictions_;
  stats.entries = lru_.size();
  stats.bytes = bytes_;
  return stats;
}

}  // namespace service
}  // namespace flipper
