// Server: the long-lived flipper mining daemon. Binds a unix-domain
// stream socket, mmaps its configured stores once (StoreRegistry) and
// serves framed requests (protocol.h): `mine` queries run through the
// re-entrant miner over the shared store views, behind FIFO admission
// control (QueryScheduler) and a fingerprint-keyed result cache
// (ResultCache).
//
// Threading: one accept thread plus one thread per live connection; a
// connection serves its requests serially, so query concurrency equals
// client connection concurrency, capped by the scheduler. Each mine
// query gets its own trace::Session (attached for the duration, so
// concurrent traced queries can never interleave spans) and its own
// MetricsRegistry; the daemon folds per-query latency and counters
// into one aggregate registry whose JSON — p50/p95 latency histograms
// included — answers the `stats` verb.
//
// Robustness: every mine query runs under a per-query CancelToken.
// The token fires when the query's deadline (`deadline_ms` request
// param, clamped by ServerOptions) lapses, when the client hangs up
// mid-mine (a watcher thread polls the connection fd so abandoned
// queries release their scheduler slot instead of burning it to
// completion), or when the daemon drains. Frame I/O carries poll()
// deadlines so a wedged peer cannot pin a connection thread forever.
//
// Shutdown: a `shutdown` request (or Stop()) ends the accept loop,
// then drains gracefully — in-flight queries get drain_grace_ms to
// finish before the drain token cancels them — and joins all threads;
// Wait() returns once a shutdown has been requested. Finished
// connection threads are reaped as the accept loop runs, so a
// long-lived daemon never accumulates dead threads.

#ifndef FLIPPER_SERVICE_SERVER_H_
#define FLIPPER_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/pipeline_metrics.h"
#include "service/protocol.h"
#include "service/query_scheduler.h"
#include "service/result_cache.h"
#include "service/store_registry.h"

namespace flipper {
namespace service {

struct ServerOptions {
  std::string socket_path;
  /// Mining queries executing at once; more wait FIFO.
  int max_concurrent = 8;
  /// Waiting-room size; arrivals beyond it get `error overloaded`.
  int max_queued = 64;
  /// Result-cache budget over rendered body bytes (0 disables).
  size_t cache_bytes = 64u << 20;
  /// Payload-validate stores on open/reload.
  bool validate_stores = true;
  /// Deadline applied to mine queries that do not send their own
  /// `deadline_ms` param (0 = none).
  int default_deadline_ms = 0;
  /// Upper clamp on any query deadline; 0 = unlimited. When set, even
  /// queries that sent no deadline are bounded by it.
  int max_deadline_ms = 0;
  /// How long Stop() lets in-flight queries finish before the drain
  /// token cancels them.
  int drain_grace_ms = 5000;
  /// Per-call bound on socket reads/writes once a frame has started
  /// (0 = unbounded). Idle waits between requests are never bounded.
  int io_timeout_ms = 30000;
};

class Server {
 public:
  explicit Server(const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers a store before or after Start().
  Status AddStore(const std::string& name, const std::string& path);

  /// Binds + listens on the socket and spawns the accept loop.
  Status Start();

  /// Blocks until a shutdown has been requested (the `shutdown` verb
  /// or Stop()), then tears the server down. Safe to call once.
  void Wait();

  /// Requests shutdown and tears everything down: closes the listen
  /// socket, unblocks live connections, joins all threads. Idempotent.
  void Stop();

  const std::string& socket_path() const {
    return options_.socket_path;
  }

  /// The daemon's aggregate metrics (latency histogram, query/cache
  /// counters) — also what `stats` serves.
  const MetricsRegistry& metrics() const { return metrics_; }

 private:
  void AcceptLoop();
  void ServeConnection(uint64_t conn_id, int fd);
  /// Joins connection threads that have already finished. Requires
  /// conn_mu_; joins complete immediately because finished threads
  /// registered themselves only after leaving ServeConnection's body.
  void ReapFinishedLocked();

  Response Handle(const Request& request, int fd);
  Response HandleMine(const Request& request, int fd);
  Response HandlePing();
  Response HandleStats();
  Response HandleList();

  ServerOptions options_;
  StoreRegistry registry_;
  ResultCache cache_;
  QueryScheduler scheduler_;
  MetricsRegistry metrics_;
  /// Fires when the daemon drains; every query token chains to it.
  CancelToken drain_token_;
  WallTimer uptime_timer_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex conn_mu_;
  uint64_t next_conn_id_ = 0;
  std::unordered_map<uint64_t, std::thread> conn_threads_;
  std::vector<uint64_t> finished_conn_ids_;
  std::unordered_set<int> conn_fds_;

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool torn_down_ = false;
};

}  // namespace service
}  // namespace flipper

#endif  // FLIPPER_SERVICE_SERVER_H_
