#include "service/query_scheduler.h"

namespace flipper {
namespace service {

Result<QueryScheduler::Ticket> QueryScheduler::Admit() {
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t waiting = enqueued_ - started_;
  const bool must_wait = waiting > 0 || running_ >= max_concurrent_;
  if (must_wait && waiting >= static_cast<uint64_t>(max_queued_)) {
    ++rejected_total_;
    return Status::ResourceExhausted(
        "overloaded: " + std::to_string(running_) + " running, " +
        std::to_string(waiting) + " queued (queue cap " +
        std::to_string(max_queued_) + ")");
  }
  const uint64_t turn = enqueued_++;
  cv_.wait(lock, [&] {
    return started_ == turn && running_ < max_concurrent_;
  });
  ++started_;
  ++running_;
  ++admitted_total_;
  // Starting this ticket may unblock the next-in-line waiter (its
  // started_ == turn predicate just became true).
  cv_.notify_all();
  return Ticket(this);
}

void QueryScheduler::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
  }
  cv_.notify_all();
}

void QueryScheduler::Ticket::Release() {
  if (scheduler_ != nullptr) {
    scheduler_->Release();
    scheduler_ = nullptr;
  }
}

QueryScheduler::Stats QueryScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.admitted = admitted_total_;
  stats.rejected = rejected_total_;
  stats.running = running_;
  stats.waiting = static_cast<int>(enqueued_ - started_);
  return stats;
}

}  // namespace service
}  // namespace flipper
