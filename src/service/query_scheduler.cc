#include "service/query_scheduler.h"

namespace flipper {
namespace service {

void QueryScheduler::SweepAbandonedLocked() {
  while (abandoned_.erase(started_) > 0) ++started_;
}

Result<QueryScheduler::Ticket> QueryScheduler::Admit(
    std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) {
    return Status::Cancelled("cancelled: scheduler shutting down");
  }
  // abandoned_ turns are all >= started_ (sweep invariant), so they
  // are contained in enqueued_ - started_ and no longer waiting.
  const uint64_t waiting = enqueued_ - started_ - abandoned_.size();
  const bool must_wait = waiting > 0 || running_ >= max_concurrent_;
  if (must_wait && waiting >= static_cast<uint64_t>(max_queued_)) {
    ++rejected_total_;
    return Status::ResourceExhausted(
        "overloaded: " + std::to_string(running_) + " running, " +
        std::to_string(waiting) + " queued (queue cap " +
        std::to_string(max_queued_) + ")");
  }
  const uint64_t turn = enqueued_++;
  const auto my_turn = [&] {
    return (started_ == turn && running_ < max_concurrent_) || closed_;
  };
  if (deadline == std::chrono::steady_clock::time_point::max()) {
    cv_.wait(lock, my_turn);
  } else if (!cv_.wait_until(lock, deadline, my_turn)) {
    // Deadline lapsed in the waiting room: vacate the FIFO turn so
    // successors are not blocked behind a ghost ticket, and report
    // without ever having run.
    ++timed_out_total_;
    abandoned_.insert(turn);
    SweepAbandonedLocked();
    lock.unlock();
    cv_.notify_all();
    return Status::DeadlineExceeded(
        "deadline_exceeded: deadline lapsed while queued");
  }
  if (closed_) {
    abandoned_.insert(turn);
    SweepAbandonedLocked();
    lock.unlock();
    cv_.notify_all();
    return Status::Cancelled("cancelled: scheduler shutting down");
  }
  ++started_;
  // Immediate successors may themselves have abandoned their turns.
  SweepAbandonedLocked();
  ++running_;
  ++admitted_total_;
  lock.unlock();
  // Starting this ticket may unblock the next-in-line waiter (its
  // started_ == turn predicate just became true).
  cv_.notify_all();
  return Ticket(this);
}

void QueryScheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

void QueryScheduler::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
  }
  cv_.notify_all();
}

void QueryScheduler::Ticket::Release() {
  if (scheduler_ != nullptr) {
    scheduler_->Release();
    scheduler_ = nullptr;
  }
}

QueryScheduler::Stats QueryScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.admitted = admitted_total_;
  stats.rejected = rejected_total_;
  stats.timed_out = timed_out_total_;
  stats.running = running_;
  stats.waiting =
      static_cast<int>(enqueued_ - started_ - abandoned_.size());
  return stats;
}

}  // namespace service
}  // namespace flipper
