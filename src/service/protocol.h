// The serve daemon's wire protocol over a unix-domain stream socket.
//
// Framing: every message — request or response — is one frame:
//
//   uint32 little-endian payload length | payload bytes
//
// Payloads are capped at kMaxFrameBytes; an oversized length prefix is
// a protocol error and the connection is dropped.
//
// Request payload (text):
//
//   <verb>\n
//   <key> <value>\n        (zero or more parameter lines)
//
// Verbs: `mine` (params: `store <name>` plus any mine option key from
// service::MineOptionKeys(), and `cache on|off`), `stats`, `ping`,
// `list`, `shutdown`.
//
// Response payload:
//
//   ok\n            or       error <single-line message>\n
//   <key> <value>\n          (zero or more meta lines)
//   \n
//   <body bytes>             (raw; everything after the blank line)
//
// For `mine` the body is byte-identical to what a solo
// `flipper_cli mine` run with the same options prints to stdout; meta
// lines carry `cache hit|miss`, `patterns N` and `latency_ms X`. For
// `stats` the body is the daemon's aggregate MetricsRegistry JSON.

#ifndef FLIPPER_SERVICE_PROTOCOL_H_
#define FLIPPER_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace flipper {
namespace service {

/// Hard cap on one frame's payload (requests are tiny; responses carry
/// pattern bodies, which stay far below this for any sane store).
constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Writes one length-prefixed frame, handling short writes and EINTR.
Status WriteFrame(int fd, std::string_view payload);

/// Reads one frame. A clean EOF at a frame boundary returns NotFound
/// ("connection closed") so callers can tell an orderly hangup from a
/// torn frame (IoError).
Result<std::string> ReadFrame(int fd);

struct Request {
  std::string verb;
  std::vector<std::pair<std::string, std::string>> params;

  /// Last value of `key`, or `fallback` when absent.
  std::string Param(std::string_view key,
                    std::string_view fallback = "") const;
};

std::string EncodeRequest(const Request& request);
Result<Request> DecodeRequest(std::string_view payload);

struct Response {
  bool ok = false;
  std::string error;  // single line; set when !ok
  std::vector<std::pair<std::string, std::string>> meta;
  std::string body;

  std::string Meta(std::string_view key,
                   std::string_view fallback = "") const;
};

std::string EncodeResponse(const Response& response);
Result<Response> DecodeResponse(std::string_view payload);

}  // namespace service
}  // namespace flipper

#endif  // FLIPPER_SERVICE_PROTOCOL_H_
