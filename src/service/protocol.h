// The serve daemon's wire protocol over a unix-domain stream socket.
//
// Framing: every message — request or response — is one frame:
//
//   uint32 little-endian payload length | payload bytes
//
// Payloads are capped at kMaxFrameBytes; an oversized length prefix is
// a protocol error and the connection is dropped.
//
// Request payload (text):
//
//   <verb>\n
//   <key> <value>\n        (zero or more parameter lines)
//
// Verbs: `mine` (params: `store <name>` plus any mine option key from
// service::MineOptionKeys(), and `cache on|off`), `stats`, `ping`,
// `list`, `shutdown`.
//
// Response payload:
//
//   ok\n            or       error <single-line message>\n
//   <key> <value>\n          (zero or more meta lines)
//   \n
//   <body bytes>             (raw; everything after the blank line)
//
// For `mine` the body is byte-identical to what a solo
// `flipper_cli mine` run with the same options prints to stdout; meta
// lines carry `cache hit|miss`, `patterns N` and `latency_ms X`. For
// `stats` the body is the daemon's aggregate MetricsRegistry JSON.

#ifndef FLIPPER_SERVICE_PROTOCOL_H_
#define FLIPPER_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace flipper {
namespace service {

/// Hard cap on one frame's payload (requests are tiny; responses carry
/// pattern bodies, which stay far below this for any sane store).
constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Wire-protocol schema version. Carried as `schema` meta on every
/// `ping` response; clients (Client::ConnectWithRetry, loadgen, the
/// smoke script) assert equality before trusting a daemon instead of
/// accepting any `ok`. Bump on any incompatible framing or verb
/// change.
constexpr int kProtocolSchemaVersion = 1;

/// Byte-stream seam under the frame codec. The production
/// implementation is FdStream (a socket fd with poll()-based
/// deadlines); FaultInjectingStream wraps an fd to kill or stall the
/// connection at an exact byte offset in either direction — the
/// network mirror of storage's FaultInjectingFileSystem.
class Stream {
 public:
  virtual ~Stream() = default;

  /// Reads up to `len` bytes into `data`; returns the count, 0 on EOF.
  /// `timeout_ms` > 0 bounds the whole call (DeadlineExceeded on
  /// lapse); 0 blocks indefinitely.
  virtual Result<size_t> ReadSome(char* data, size_t len,
                                  int timeout_ms) = 0;

  /// Writes all `len` bytes. `timeout_ms` > 0 bounds the whole call —
  /// a reader that stops draining its socket gets DeadlineExceeded
  /// here instead of pinning the writer forever; 0 blocks.
  virtual Status WriteAll(const char* data, size_t len,
                          int timeout_ms) = 0;
};

/// A connected socket fd. Does not own the fd. Deadlines are
/// implemented with poll() + non-blocking I/O, so the fd's own
/// blocking mode is never changed.
class FdStream final : public Stream {
 public:
  explicit FdStream(int fd) : fd_(fd) {}
  Result<size_t> ReadSome(char* data, size_t len, int timeout_ms) override;
  Status WriteAll(const char* data, size_t len, int timeout_ms) override;

 private:
  int fd_;
};

/// Frame-level I/O deadlines.
struct FrameIo {
  /// Bound on waiting for a frame to *start* (first byte of the length
  /// prefix). 0 = wait forever — the server's idle keep-alive between
  /// requests.
  int idle_timeout_ms = 0;
  /// Bound on every subsequent read (a frame, once started, must
  /// arrive promptly) and on each write call. 0 = no bound.
  int io_timeout_ms = 0;
};

/// Writes one length-prefixed frame, handling short writes and EINTR.
Status WriteFrame(Stream* stream, std::string_view payload,
                  const FrameIo& io = {});
Status WriteFrame(int fd, std::string_view payload);

/// Reads one frame. A clean EOF at a frame boundary returns NotFound
/// ("connection closed") so callers can tell an orderly hangup from a
/// torn frame (IoError); a lapsed deadline returns DeadlineExceeded.
Result<std::string> ReadFrame(Stream* stream, const FrameIo& io = {});
Result<std::string> ReadFrame(int fd);

/// Where and how a FaultInjectingStream breaks the connection. Offsets
/// count bytes through that direction of the wrapped stream since
/// construction; kNever disables the fault.
struct StreamFaultPlan {
  static constexpr uint64_t kNever = ~uint64_t{0};
  /// Hard-kill (shutdown both directions) once this many bytes have
  /// been written / read — mid-length-prefix, mid-payload, anywhere.
  uint64_t kill_after_write_bytes = kNever;
  uint64_t kill_after_read_bytes = kNever;
  /// One-shot stall (sleep stall_ms) just before this byte offset
  /// crosses, then continue normally — a slow/wedged peer.
  uint64_t stall_before_write_byte = kNever;
  uint64_t stall_before_read_byte = kNever;
  int stall_ms = 0;
};

/// Wraps a connected fd and executes the fault plan. Used by the
/// robustness tests and `loadgen --chaos` on the *client* side of a
/// connection to torture the daemon with mid-frame disconnects and
/// stalls over the real socket. Does not own the fd (kill uses
/// ::shutdown, not ::close).
class FaultInjectingStream final : public Stream {
 public:
  FaultInjectingStream(int fd, const StreamFaultPlan& plan)
      : inner_(fd), fd_(fd), plan_(plan) {}

  Result<size_t> ReadSome(char* data, size_t len, int timeout_ms) override;
  Status WriteAll(const char* data, size_t len, int timeout_ms) override;

  bool killed() const { return killed_; }
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t bytes_read() const { return bytes_read_; }

 private:
  Status Kill(const char* direction, uint64_t offset);
  void MaybeStall(uint64_t counter, uint64_t offset, bool* armed);

  FdStream inner_;
  int fd_;
  StreamFaultPlan plan_;
  uint64_t bytes_written_ = 0;
  uint64_t bytes_read_ = 0;
  bool killed_ = false;
  bool write_stall_armed_ = true;
  bool read_stall_armed_ = true;
};

struct Request {
  std::string verb;
  std::vector<std::pair<std::string, std::string>> params;

  /// Last value of `key`, or `fallback` when absent.
  std::string Param(std::string_view key,
                    std::string_view fallback = "") const;
};

std::string EncodeRequest(const Request& request);
Result<Request> DecodeRequest(std::string_view payload);

struct Response {
  bool ok = false;
  std::string error;  // single line; set when !ok
  std::vector<std::pair<std::string, std::string>> meta;
  std::string body;

  std::string Meta(std::string_view key,
                   std::string_view fallback = "") const;
};

std::string EncodeResponse(const Response& response);
Result<Response> DecodeResponse(std::string_view payload);

}  // namespace service
}  // namespace flipper

#endif  // FLIPPER_SERVICE_PROTOCOL_H_
