// Client: a blocking unix-socket connection to a serve daemon.
// One Call() is one request/response frame exchange; a connection
// serves calls serially (the daemon mirrors that), so N-way query
// concurrency means N clients.
//
// ConnectWithRetry polls with jittered exponential backoff (not a
// fixed-period busy loop) and only trusts a daemon whose ping reports
// the expected protocol schema version. Calls may carry an I/O
// deadline so a wedged daemon surfaces as DeadlineExceeded instead of
// hanging the caller.

#ifndef FLIPPER_SERVICE_CLIENT_H_
#define FLIPPER_SERVICE_CLIENT_H_

#include <string>

#include "common/status.h"
#include "service/protocol.h"

namespace flipper {
namespace service {

class Client {
 public:
  /// Connects to the daemon at `socket_path`.
  static Result<Client> Connect(const std::string& socket_path);

  /// Connect with retry (jittered exponential backoff) until the
  /// daemon answers a ping carrying the expected `schema` meta or
  /// `timeout_ms` elapses — startup synchronization for scripts and
  /// tests that just launched the daemon. A daemon reporting a
  /// different schema version fails immediately.
  static Result<Client> ConnectWithRetry(const std::string& socket_path,
                                         int timeout_ms);

  /// Connects and returns the raw connected fd (caller owns/closes).
  /// The seam for wrapping a connection in a FaultInjectingStream.
  static Result<int> ConnectRawFd(const std::string& socket_path);

  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&& other) noexcept;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One round trip: sends the request frame, reads the response
  /// frame. An `error ...` response decodes as ok here (the Response
  /// carries it); only transport failures return a non-OK status.
  /// `io_timeout_ms` > 0 bounds every socket read/write of the
  /// exchange (DeadlineExceeded past it); 0 blocks indefinitely.
  Result<Response> Call(const Request& request, int io_timeout_ms = 0);

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace service
}  // namespace flipper

#endif  // FLIPPER_SERVICE_CLIENT_H_
