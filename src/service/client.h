// Client: a blocking unix-socket connection to a serve daemon.
// One Call() is one request/response frame exchange; a connection
// serves calls serially (the daemon mirrors that), so N-way query
// concurrency means N clients.

#ifndef FLIPPER_SERVICE_CLIENT_H_
#define FLIPPER_SERVICE_CLIENT_H_

#include <string>

#include "common/status.h"
#include "service/protocol.h"

namespace flipper {
namespace service {

class Client {
 public:
  /// Connects to the daemon at `socket_path`.
  static Result<Client> Connect(const std::string& socket_path);

  /// Connect with retry until the daemon answers a ping or
  /// `timeout_ms` elapses — startup synchronization for scripts and
  /// tests that just launched the daemon.
  static Result<Client> ConnectWithRetry(const std::string& socket_path,
                                         int timeout_ms);

  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&& other) noexcept;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One round trip: sends the request frame, reads the response
  /// frame. An `error ...` response decodes as ok here (the Response
  /// carries it); only transport failures return a non-OK status.
  Result<Response> Call(const Request& request);

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace service
}  // namespace flipper

#endif  // FLIPPER_SERVICE_CLIENT_H_
