// StoreRegistry: the daemon's set of long-lived, shared FlipperStore
// mappings. Each named store is opened (mmapped) once into a
// StoreEntry — the StoreReader plus level views pre-built with
// catalogs and a content fingerprint — and every concurrent query
// borrows the same immutable entry via shared_ptr, so admission never
// re-reads or re-generalizes the dataset.
//
// Invalidation is stat-based: Get() re-stats the file and, when size
// or mtime changed, reopens the store into a fresh entry with a new
// fingerprint while in-flight queries keep the old entry alive through
// their shared_ptr. Result-cache keys embed the fingerprint, so a
// reload implicitly invalidates every cached body of the old contents.

#ifndef FLIPPER_SERVICE_STORE_REGISTRY_H_
#define FLIPPER_SERVICE_STORE_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/level_views.h"
#include "storage/store_reader.h"

namespace flipper {
namespace service {

/// One opened store: immutable once published; queries only read it.
struct StoreEntry {
  StoreEntry(storage::StoreReader r, LevelViews v)
      : reader(std::move(r)), views(std::move(v)) {}

  std::string name;
  std::string path;
  /// Content fingerprint (file size + mtime + header identity); part
  /// of every result-cache key derived from this entry.
  std::string fingerprint;
  storage::StoreReader reader;
  /// Pre-built with catalogs over all levels. Queries whose config
  /// disables skipping simply never consult them — results stay
  /// byte-identical to a solo run either way (see
  /// CellPipeline::Execute's borrowed-views contract).
  LevelViews views;
  uint64_t file_size = 0;
  uint64_t mtime_ns = 0;
};

class StoreRegistry {
 public:
  struct Options {
    /// Run the payload-validation scan on open (OpenOptions::validate).
    bool validate = true;
    /// Worker threads for the one-time view build (0 = hardware).
    int build_threads = 0;
  };

  StoreRegistry() : StoreRegistry(Options()) {}
  explicit StoreRegistry(const Options& options) : options_(options) {}

  /// Opens `path` and publishes it under `name`. Fails on duplicate
  /// names and on any open/build error.
  Status Add(const std::string& name, const std::string& path);

  /// The current entry for `name`, reloading first when the file
  /// changed on disk since the entry was built.
  Result<std::shared_ptr<const StoreEntry>> Get(const std::string& name);

  /// Registered store names, sorted.
  std::vector<std::string> Names() const;

 private:
  Result<std::shared_ptr<const StoreEntry>> Load(
      const std::string& name, const std::string& path) const;

  const Options options_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const StoreEntry>> stores_;
};

}  // namespace service
}  // namespace flipper

#endif  // FLIPPER_SERVICE_STORE_REGISTRY_H_
