#include "service/protocol.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstring>
#include <thread>

#ifndef _WIN32
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace flipper {
namespace service {
namespace {

#ifndef _WIN32

using SteadyClock = std::chrono::steady_clock;

int RemainingMs(SteadyClock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - SteadyClock::now())
                        .count();
  if (left <= 0) return 0;
  if (left > INT_MAX) return INT_MAX;
  return static_cast<int>(left);
}

/// Waits until `events` is ready on `fd` or the deadline lapses.
Status PollFor(int fd, short events, SteadyClock::time_point deadline,
               const char* what) {
  for (;;) {
    const int wait = RemainingMs(deadline);
    if (wait == 0) {
      return Status::DeadlineExceeded(std::string("socket ") + what +
                                      " timed out");
    }
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int r = ::poll(&p, 1, wait);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("poll failed: ") +
                             std::strerror(errno));
    }
    // Any event — including POLLHUP/POLLERR — means the following
    // read/write will complete without blocking and surface the error.
    if (r > 0) return Status::OK();
  }
}

/// Reads exactly `len` bytes from the stream. `*eof` is set (and OK
/// returned with zero bytes consumed) only when EOF lands before the
/// first byte; `first_timeout_ms` bounds the wait for that byte,
/// `rest_timeout_ms` each later read.
Status ReadExact(Stream* stream, char* data, size_t len,
                 int first_timeout_ms, int rest_timeout_ms, bool* eof) {
  *eof = false;
  size_t done = 0;
  while (done < len) {
    FLIPPER_ASSIGN_OR_RETURN(
        const size_t n,
        stream->ReadSome(data + done, len - done,
                         done == 0 ? first_timeout_ms : rest_timeout_ms));
    if (n == 0) {
      if (done == 0) {
        *eof = true;
        return Status::OK();
      }
      return Status::IoError("connection closed mid-frame");
    }
    done += n;
  }
  return Status::OK();
}

#endif  // !_WIN32

/// One `key value` line; the value runs to end of line (values may
/// contain spaces, keys may not).
void SplitKeyValue(std::string_view line, std::string* key,
                   std::string* value) {
  const size_t space = line.find(' ');
  if (space == std::string_view::npos) {
    *key = std::string(line);
    value->clear();
  } else {
    *key = std::string(line.substr(0, space));
    *value = std::string(line.substr(space + 1));
  }
}

/// Strips one trailing '\n' (lines in payloads are newline-terminated).
std::string_view ChopLine(std::string_view payload, size_t* pos) {
  const size_t eol = payload.find('\n', *pos);
  if (eol == std::string_view::npos) {
    std::string_view line = payload.substr(*pos);
    *pos = payload.size();
    return line;
  }
  std::string_view line = payload.substr(*pos, eol - *pos);
  *pos = eol + 1;
  return line;
}

}  // namespace

Result<size_t> FdStream::ReadSome(char* data, size_t len,
                                  int timeout_ms) {
#ifdef _WIN32
  (void)data;
  (void)len;
  (void)timeout_ms;
  return Status::FailedPrecondition(
      "the serve protocol requires POSIX sockets");
#else
  if (timeout_ms <= 0) {
    for (;;) {
      const ssize_t n = ::read(fd_, data, len);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(std::string("socket read failed: ") +
                               std::strerror(errno));
      }
      return static_cast<size_t>(n);
    }
  }
  const auto deadline =
      SteadyClock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    FLIPPER_RETURN_IF_ERROR(PollFor(fd_, POLLIN, deadline, "read"));
    // Non-blocking via the recv flag (never the fd's mode — the fd is
    // shared with code that expects it blocking).
    const ssize_t n = ::recv(fd_, data, len, MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // raced
      return Status::IoError(std::string("socket read failed: ") +
                             std::strerror(errno));
    }
    return static_cast<size_t>(n);
  }
#endif
}

Status FdStream::WriteAll(const char* data, size_t len, int timeout_ms) {
#ifdef _WIN32
  (void)data;
  (void)len;
  (void)timeout_ms;
  return Status::FailedPrecondition(
      "the serve protocol requires POSIX sockets");
#else
  // MSG_NOSIGNAL throughout: a peer that hung up must surface as
  // EPIPE, not a process-killing SIGPIPE.
  if (timeout_ms <= 0) {
    size_t done = 0;
    while (done < len) {
      const ssize_t n =
          ::send(fd_, data + done, len - done, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(std::string("socket write failed: ") +
                               std::strerror(errno));
      }
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }
  const auto deadline =
      SteadyClock::now() + std::chrono::milliseconds(timeout_ms);
  size_t done = 0;
  while (done < len) {
    FLIPPER_RETURN_IF_ERROR(PollFor(fd_, POLLOUT, deadline, "write"));
    const ssize_t n = ::send(fd_, data + done, len - done,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // raced
      return Status::IoError(std::string("socket write failed: ") +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
#endif
}

Status WriteFrame(Stream* stream, std::string_view payload,
                  const FrameIo& io) {
#ifdef _WIN32
  (void)stream;
  (void)payload;
  (void)io;
  return Status::FailedPrecondition(
      "the serve protocol requires POSIX sockets");
#else
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload exceeds " +
                                   std::to_string(kMaxFrameBytes) +
                                   " bytes");
  }
  const uint32_t len = static_cast<uint32_t>(payload.size());
  char prefix[4] = {static_cast<char>(len & 0xff),
                    static_cast<char>((len >> 8) & 0xff),
                    static_cast<char>((len >> 16) & 0xff),
                    static_cast<char>((len >> 24) & 0xff)};
  FLIPPER_RETURN_IF_ERROR(
      stream->WriteAll(prefix, sizeof(prefix), io.io_timeout_ms));
  if (payload.empty()) return Status::OK();
  return stream->WriteAll(payload.data(), payload.size(),
                          io.io_timeout_ms);
#endif
}

Status WriteFrame(int fd, std::string_view payload) {
  FdStream stream(fd);
  return WriteFrame(&stream, payload);
}

Result<std::string> ReadFrame(Stream* stream, const FrameIo& io) {
#ifdef _WIN32
  (void)stream;
  (void)io;
  return Status::FailedPrecondition(
      "the serve protocol requires POSIX sockets");
#else
  char prefix[4];
  bool eof = false;
  FLIPPER_RETURN_IF_ERROR(ReadExact(stream, prefix, sizeof(prefix),
                                    io.idle_timeout_ms, io.io_timeout_ms,
                                    &eof));
  if (eof) return Status::NotFound("connection closed");
  const uint32_t len = static_cast<uint32_t>(
      static_cast<uint8_t>(prefix[0]) |
      (static_cast<uint8_t>(prefix[1]) << 8) |
      (static_cast<uint8_t>(prefix[2]) << 16) |
      (static_cast<uint32_t>(static_cast<uint8_t>(prefix[3])) << 24));
  if (len > kMaxFrameBytes) {
    return Status::CorruptedData("frame length " + std::to_string(len) +
                                 " exceeds the " +
                                 std::to_string(kMaxFrameBytes) +
                                 "-byte cap");
  }
  std::string payload(len, '\0');
  if (len > 0) {
    FLIPPER_RETURN_IF_ERROR(ReadExact(stream, payload.data(), len,
                                      io.io_timeout_ms, io.io_timeout_ms,
                                      &eof));
    if (eof) return Status::IoError("connection closed mid-frame");
  }
  return payload;
#endif
}

Result<std::string> ReadFrame(int fd) {
  FdStream stream(fd);
  return ReadFrame(&stream);
}

Status FaultInjectingStream::Kill(const char* direction,
                                  uint64_t offset) {
  killed_ = true;
#ifndef _WIN32
  ::shutdown(fd_, SHUT_RDWR);
#endif
  return Status::IoError(std::string("fault injected: killed after ") +
                         direction + " byte " + std::to_string(offset));
}

void FaultInjectingStream::MaybeStall(uint64_t counter, uint64_t offset,
                                      bool* armed) {
  if (!*armed || offset == StreamFaultPlan::kNever || counter < offset) {
    return;
  }
  *armed = false;
  std::this_thread::sleep_for(std::chrono::milliseconds(plan_.stall_ms));
}

Result<size_t> FaultInjectingStream::ReadSome(char* data, size_t len,
                                              int timeout_ms) {
  if (killed_) return Status::IoError("fault injected: stream killed");
  if (plan_.kill_after_read_bytes != StreamFaultPlan::kNever) {
    if (bytes_read_ >= plan_.kill_after_read_bytes) {
      return Kill("read", bytes_read_);
    }
    len = static_cast<size_t>(std::min<uint64_t>(
        len, plan_.kill_after_read_bytes - bytes_read_));
  }
  MaybeStall(bytes_read_, plan_.stall_before_read_byte,
             &read_stall_armed_);
  Result<size_t> n = inner_.ReadSome(data, len, timeout_ms);
  if (n.ok()) bytes_read_ += *n;
  return n;
}

Status FaultInjectingStream::WriteAll(const char* data, size_t len,
                                      int timeout_ms) {
  if (killed_) return Status::IoError("fault injected: stream killed");
  size_t done = 0;
  while (done < len) {
    size_t chunk = len - done;
    if (plan_.kill_after_write_bytes != StreamFaultPlan::kNever) {
      if (bytes_written_ >= plan_.kill_after_write_bytes) {
        return Kill("write", bytes_written_);
      }
      chunk = static_cast<size_t>(std::min<uint64_t>(
          chunk, plan_.kill_after_write_bytes - bytes_written_));
    }
    MaybeStall(bytes_written_, plan_.stall_before_write_byte,
               &write_stall_armed_);
    if (write_stall_armed_ &&
        plan_.stall_before_write_byte != StreamFaultPlan::kNever &&
        bytes_written_ + chunk > plan_.stall_before_write_byte) {
      // Split the write so the stall lands exactly at its offset.
      chunk = static_cast<size_t>(plan_.stall_before_write_byte -
                                  bytes_written_);
    }
    FLIPPER_RETURN_IF_ERROR(inner_.WriteAll(data + done, chunk,
                                            timeout_ms));
    bytes_written_ += chunk;
    done += chunk;
  }
  return Status::OK();
}

std::string Request::Param(std::string_view key,
                           std::string_view fallback) const {
  std::string out(fallback);
  for (const auto& [k, v] : params) {
    if (k == key) out = v;
  }
  return out;
}

std::string EncodeRequest(const Request& request) {
  std::string payload = request.verb + "\n";
  for (const auto& [key, value] : request.params) {
    payload += key;
    payload += ' ';
    payload += value;
    payload += '\n';
  }
  return payload;
}

Result<Request> DecodeRequest(std::string_view payload) {
  Request request;
  size_t pos = 0;
  request.verb = std::string(ChopLine(payload, &pos));
  if (request.verb.empty()) {
    return Status::InvalidArgument("request has no verb");
  }
  while (pos < payload.size()) {
    const std::string_view line = ChopLine(payload, &pos);
    if (line.empty()) continue;
    std::string key, value;
    SplitKeyValue(line, &key, &value);
    request.params.emplace_back(std::move(key), std::move(value));
  }
  return request;
}

std::string Response::Meta(std::string_view key,
                           std::string_view fallback) const {
  std::string out(fallback);
  for (const auto& [k, v] : meta) {
    if (k == key) out = v;
  }
  return out;
}

std::string EncodeResponse(const Response& response) {
  std::string payload;
  if (response.ok) {
    payload = "ok\n";
  } else {
    // The status line must stay one line; fold any embedded newlines.
    std::string message = response.error;
    for (char& c : message) {
      if (c == '\n' || c == '\r') c = ' ';
    }
    payload = "error " + message + "\n";
  }
  for (const auto& [key, value] : response.meta) {
    payload += key;
    payload += ' ';
    payload += value;
    payload += '\n';
  }
  payload += '\n';
  payload += response.body;
  return payload;
}

Result<Response> DecodeResponse(std::string_view payload) {
  Response response;
  size_t pos = 0;
  const std::string_view status_line = ChopLine(payload, &pos);
  if (status_line == "ok") {
    response.ok = true;
  } else if (status_line.rfind("error", 0) == 0) {
    response.ok = false;
    response.error = std::string(
        status_line.size() > 6 ? status_line.substr(6) : "");
  } else {
    return Status::CorruptedData(
        "response does not start with ok/error");
  }
  while (pos < payload.size()) {
    const std::string_view line = ChopLine(payload, &pos);
    if (line.empty()) break;  // blank separator: body follows
    std::string key, value;
    SplitKeyValue(line, &key, &value);
    response.meta.emplace_back(std::move(key), std::move(value));
  }
  response.body = std::string(payload.substr(pos));
  return response;
}

}  // namespace service
}  // namespace flipper
