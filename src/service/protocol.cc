#include "service/protocol.h"

#include <cerrno>
#include <cstring>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace flipper {
namespace service {
namespace {

#ifndef _WIN32

Status WriteAll(int fd, const char* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("socket write failed: ") +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `len` bytes. `*eof` is set (and OK returned with zero
/// bytes consumed) only when EOF lands before the first byte.
Status ReadAll(int fd, char* data, size_t len, bool* eof) {
  *eof = false;
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::read(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("socket read failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) {
      if (done == 0) {
        *eof = true;
        return Status::OK();
      }
      return Status::IoError("connection closed mid-frame");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

#endif  // !_WIN32

/// One `key value` line; the value runs to end of line (values may
/// contain spaces, keys may not).
void SplitKeyValue(std::string_view line, std::string* key,
                   std::string* value) {
  const size_t space = line.find(' ');
  if (space == std::string_view::npos) {
    *key = std::string(line);
    value->clear();
  } else {
    *key = std::string(line.substr(0, space));
    *value = std::string(line.substr(space + 1));
  }
}

/// Strips one trailing '\n' (lines in payloads are newline-terminated).
std::string_view ChopLine(std::string_view payload, size_t* pos) {
  const size_t eol = payload.find('\n', *pos);
  if (eol == std::string_view::npos) {
    std::string_view line = payload.substr(*pos);
    *pos = payload.size();
    return line;
  }
  std::string_view line = payload.substr(*pos, eol - *pos);
  *pos = eol + 1;
  return line;
}

}  // namespace

Status WriteFrame(int fd, std::string_view payload) {
#ifdef _WIN32
  (void)fd;
  (void)payload;
  return Status::FailedPrecondition(
      "the serve protocol requires POSIX sockets");
#else
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload exceeds " +
                                   std::to_string(kMaxFrameBytes) +
                                   " bytes");
  }
  const uint32_t len = static_cast<uint32_t>(payload.size());
  char prefix[4] = {static_cast<char>(len & 0xff),
                    static_cast<char>((len >> 8) & 0xff),
                    static_cast<char>((len >> 16) & 0xff),
                    static_cast<char>((len >> 24) & 0xff)};
  FLIPPER_RETURN_IF_ERROR(WriteAll(fd, prefix, sizeof(prefix)));
  return WriteAll(fd, payload.data(), payload.size());
#endif
}

Result<std::string> ReadFrame(int fd) {
#ifdef _WIN32
  (void)fd;
  return Status::FailedPrecondition(
      "the serve protocol requires POSIX sockets");
#else
  char prefix[4];
  bool eof = false;
  FLIPPER_RETURN_IF_ERROR(ReadAll(fd, prefix, sizeof(prefix), &eof));
  if (eof) return Status::NotFound("connection closed");
  const uint32_t len = static_cast<uint32_t>(
      static_cast<uint8_t>(prefix[0]) |
      (static_cast<uint8_t>(prefix[1]) << 8) |
      (static_cast<uint8_t>(prefix[2]) << 16) |
      (static_cast<uint32_t>(static_cast<uint8_t>(prefix[3])) << 24));
  if (len > kMaxFrameBytes) {
    return Status::CorruptedData("frame length " + std::to_string(len) +
                                 " exceeds the " +
                                 std::to_string(kMaxFrameBytes) +
                                 "-byte cap");
  }
  std::string payload(len, '\0');
  if (len > 0) {
    FLIPPER_RETURN_IF_ERROR(ReadAll(fd, payload.data(), len, &eof));
    if (eof) return Status::IoError("connection closed mid-frame");
  }
  return payload;
#endif
}

std::string Request::Param(std::string_view key,
                           std::string_view fallback) const {
  std::string out(fallback);
  for (const auto& [k, v] : params) {
    if (k == key) out = v;
  }
  return out;
}

std::string EncodeRequest(const Request& request) {
  std::string payload = request.verb + "\n";
  for (const auto& [key, value] : request.params) {
    payload += key;
    payload += ' ';
    payload += value;
    payload += '\n';
  }
  return payload;
}

Result<Request> DecodeRequest(std::string_view payload) {
  Request request;
  size_t pos = 0;
  request.verb = std::string(ChopLine(payload, &pos));
  if (request.verb.empty()) {
    return Status::InvalidArgument("request has no verb");
  }
  while (pos < payload.size()) {
    const std::string_view line = ChopLine(payload, &pos);
    if (line.empty()) continue;
    std::string key, value;
    SplitKeyValue(line, &key, &value);
    request.params.emplace_back(std::move(key), std::move(value));
  }
  return request;
}

std::string Response::Meta(std::string_view key,
                           std::string_view fallback) const {
  std::string out(fallback);
  for (const auto& [k, v] : meta) {
    if (k == key) out = v;
  }
  return out;
}

std::string EncodeResponse(const Response& response) {
  std::string payload;
  if (response.ok) {
    payload = "ok\n";
  } else {
    // The status line must stay one line; fold any embedded newlines.
    std::string message = response.error;
    for (char& c : message) {
      if (c == '\n' || c == '\r') c = ' ';
    }
    payload = "error " + message + "\n";
  }
  for (const auto& [key, value] : response.meta) {
    payload += key;
    payload += ' ';
    payload += value;
    payload += '\n';
  }
  payload += '\n';
  payload += response.body;
  return payload;
}

Result<Response> DecodeResponse(std::string_view payload) {
  Response response;
  size_t pos = 0;
  const std::string_view status_line = ChopLine(payload, &pos);
  if (status_line == "ok") {
    response.ok = true;
  } else if (status_line.rfind("error", 0) == 0) {
    response.ok = false;
    response.error = std::string(
        status_line.size() > 6 ? status_line.substr(6) : "");
  } else {
    return Status::CorruptedData(
        "response does not start with ok/error");
  }
  while (pos < payload.size()) {
    const std::string_view line = ChopLine(payload, &pos);
    if (line.empty()) break;  // blank separator: body follows
    std::string key, value;
    SplitKeyValue(line, &key, &value);
    response.meta.emplace_back(std::move(key), std::move(value));
  }
  response.body = std::string(payload.substr(pos));
  return response;
}

}  // namespace service
}  // namespace flipper
