#include "service/client.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace flipper {
namespace service {

Result<Client> Client::Connect(const std::string& socket_path) {
#ifdef _WIN32
  (void)socket_path;
  return Status::FailedPrecondition(
      "the serve protocol requires POSIX unix-domain sockets");
#else
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() ||
      socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad socket path: '" + socket_path +
                                   "'");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(),
              socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket() failed: ") +
                           std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status status = Status::IoError(
        "connect(" + socket_path + ") failed: " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  return Client(fd);
#endif
}

Result<Client> Client::ConnectWithRetry(const std::string& socket_path,
                                        int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  Status last = Status::IoError("never attempted");
  while (true) {
    auto client = Connect(socket_path);
    if (client.ok()) {
      Request ping;
      ping.verb = "ping";
      auto pong = client->Call(ping);
      if (pong.ok() && pong->ok) return client;
      last = pong.ok() ? Status::IoError("ping rejected: " + pong->error)
                       : pong.status();
    } else {
      last = client.status();
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::IoError("daemon at " + socket_path +
                             " not ready within " +
                             std::to_string(timeout_ms) +
                             " ms (last: " + last.ToString() + ")");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

Client& Client::operator=(Client&& other) noexcept {
#ifndef _WIN32
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
#endif
  return *this;
}

Client::~Client() {
#ifndef _WIN32
  if (fd_ >= 0) ::close(fd_);
#endif
}

Result<Response> Client::Call(const Request& request) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client not connected");
  }
  FLIPPER_RETURN_IF_ERROR(WriteFrame(fd_, EncodeRequest(request)));
  FLIPPER_ASSIGN_OR_RETURN(std::string payload, ReadFrame(fd_));
  return DecodeResponse(payload);
}

}  // namespace service
}  // namespace flipper
