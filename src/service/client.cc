#include "service/client.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "common/backoff.h"

namespace flipper {
namespace service {

Result<int> Client::ConnectRawFd(const std::string& socket_path) {
#ifdef _WIN32
  (void)socket_path;
  return Status::FailedPrecondition(
      "the serve protocol requires POSIX unix-domain sockets");
#else
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() ||
      socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad socket path: '" + socket_path +
                                   "'");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(),
              socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket() failed: ") +
                           std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status status = Status::IoError(
        "connect(" + socket_path + ") failed: " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  return fd;
#endif
}

Result<Client> Client::Connect(const std::string& socket_path) {
  FLIPPER_ASSIGN_OR_RETURN(int fd, ConnectRawFd(socket_path));
  return Client(fd);
}

Result<Client> Client::ConnectWithRetry(const std::string& socket_path,
                                        int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  // Deterministic seed: retry jitter needs decorrelation across
  // concurrent clients, not entropy across runs.
  JitteredBackoff::Options backoff_options;
  backoff_options.initial_ms = 10;
  backoff_options.max_ms = 250;
  JitteredBackoff backoff(0x636f6e6e656374ull, backoff_options);
  Status last = Status::IoError("never attempted");
  while (true) {
    auto client = Connect(socket_path);
    if (client.ok()) {
      Request ping;
      ping.verb = "ping";
      auto pong = client->Call(ping);
      if (pong.ok() && pong->ok) {
        // A live daemon speaking a different protocol revision is a
        // deployment error, not a not-ready-yet condition.
        const std::string schema = pong->Meta("schema");
        if (schema !=
            std::to_string(kProtocolSchemaVersion)) {
          return Status::FailedPrecondition(
              "daemon at " + socket_path + " speaks protocol schema '" +
              schema + "', expected " +
              std::to_string(kProtocolSchemaVersion));
        }
        return client;
      }
      last = pong.ok() ? Status::IoError("ping rejected: " + pong->error)
                       : pong.status();
    } else {
      last = client.status();
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::IoError("daemon at " + socket_path +
                             " not ready within " +
                             std::to_string(timeout_ms) +
                             " ms (last: " + last.ToString() + ")");
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(backoff.NextDelayMs()));
  }
}

Client& Client::operator=(Client&& other) noexcept {
#ifndef _WIN32
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
#endif
  return *this;
}

Client::~Client() {
#ifndef _WIN32
  if (fd_ >= 0) ::close(fd_);
#endif
}

Result<Response> Client::Call(const Request& request,
                              int io_timeout_ms) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client not connected");
  }
  FdStream stream(fd_);
  FrameIo io;
  // The response may legitimately take as long as the query runs, so
  // the first-byte wait gets the same bound as the rest (not the
  // server's infinite idle wait).
  io.idle_timeout_ms = io_timeout_ms;
  io.io_timeout_ms = io_timeout_ms;
  FLIPPER_RETURN_IF_ERROR(
      WriteFrame(&stream, EncodeRequest(request), io));
  FLIPPER_ASSIGN_OR_RETURN(std::string payload, ReadFrame(&stream, io));
  return DecodeResponse(payload);
}

}  // namespace service
}  // namespace flipper
