#include "service/server.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>

#ifndef _WIN32
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "common/string_util.h"
#include "common/timer.h"
#include "common/trace.h"
#include "service/mine_service.h"

namespace flipper {
namespace service {
namespace {

Response ErrorResponse(const Status& status) {
  Response response;
  response.ok = false;
  response.error = status.ToString();
  return response;
}

#ifndef _WIN32

/// Watches a connection fd while its query mines: fires the query's
/// CancelToken the moment the peer hangs up, so an abandoned query
/// releases its scheduler slot instead of burning it to completion.
/// Joined (and stopped) by the destructor.
class FdHangupWatch {
 public:
  FdHangupWatch(int fd, CancelToken* token)
      : fd_(fd), token_(token), thread_([this] { Run(); }) {}

  ~FdHangupWatch() {
    done_.store(true, std::memory_order_relaxed);
    thread_.join();
  }

  FdHangupWatch(const FdHangupWatch&) = delete;
  FdHangupWatch& operator=(const FdHangupWatch&) = delete;

  bool disconnected() const {
    return disconnected_.load(std::memory_order_relaxed);
  }

 private:
  void Run() {
    while (!done_.load(std::memory_order_relaxed)) {
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLIN;
#ifdef POLLRDHUP
      pfd.events |= POLLRDHUP;
#endif
      const int n = ::poll(&pfd, 1, 20);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (n == 0) continue;
      bool gone = (pfd.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
#ifdef POLLRDHUP
      gone = gone || (pfd.revents & POLLRDHUP) != 0;
#endif
      if (!gone && (pfd.revents & POLLIN) != 0) {
        // Readable could mean EOF or a pipelined next request from a
        // live client; peek to tell them apart without consuming.
        char b;
        const ssize_t r =
            ::recv(fd_, &b, 1, MSG_PEEK | MSG_DONTWAIT);
        if (r == 0) {
          gone = true;
        } else if (r < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          gone = true;
        } else if (r > 0) {
          // Pipelined data keeps the fd readable; back off so the
          // watcher does not spin until the query finishes.
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
      }
      if (gone) {
        disconnected_.store(true, std::memory_order_relaxed);
        token_->Cancel();
        return;
      }
    }
  }

  const int fd_;
  CancelToken* const token_;
  std::atomic<bool> done_{false};
  std::atomic<bool> disconnected_{false};
  std::thread thread_;
};

#endif  // !_WIN32

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options),
      registry_(StoreRegistry::Options{options.validate_stores, 0}),
      cache_(options.cache_bytes),
      scheduler_(options.max_concurrent, options.max_queued) {}

Server::~Server() { Stop(); }

Status Server::AddStore(const std::string& name,
                        const std::string& path) {
  return registry_.Add(name, path);
}

Status Server::Start() {
#ifdef _WIN32
  return Status::FailedPrecondition(
      "the serve daemon requires POSIX unix-domain sockets");
#else
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("server already started");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        "socket path must be 1.." +
        std::to_string(sizeof(addr.sun_path) - 1) + " bytes, got '" +
        options_.socket_path + "'");
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket() failed: ") +
                           std::strerror(errno));
  }
  // A stale socket file from a dead daemon would make bind fail;
  // unlink first (a live daemon would still hold the listen fd, and
  // two daemons on one path is an operator error either way).
  ::unlink(options_.socket_path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status status = Status::IoError(
        "bind(" + options_.socket_path + ") failed: " +
        std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    const Status status = Status::IoError(
        std::string("listen() failed: ") + std::strerror(errno));
    ::close(fd);
    ::unlink(options_.socket_path.c_str());
    return status;
  }
  listen_fd_ = fd;
  uptime_timer_.Restart();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
#endif
}

void Server::Wait() {
  {
    std::unique_lock<std::mutex> lock(shutdown_mu_);
    shutdown_cv_.wait(lock, [&] { return shutdown_requested_; });
  }
  Stop();
}

void Server::Stop() {
#ifndef _WIN32
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
    if (torn_down_) {
      shutdown_cv_.notify_all();
      return;
    }
    torn_down_ = true;
  }
  shutdown_cv_.notify_all();
  stopping_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) {
    // shutdown() unblocks a blocked accept(); close() releases the fd.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;
  // Graceful drain: no new connections can arrive now; give in-flight
  // queries the grace period to finish on their own before the drain
  // token cancels the stragglers.
  const auto drain_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(
          options_.drain_grace_ms > 0 ? options_.drain_grace_ms : 0);
  while (std::chrono::steady_clock::now() < drain_deadline) {
    const QueryScheduler::Stats sched = scheduler_.stats();
    if (sched.running == 0 && sched.waiting == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  drain_token_.Cancel();
  scheduler_.Shutdown();
  {
    // Unblock every connection thread stuck in read().
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::unordered_map<uint64_t, std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(conn_threads_);
    finished_conn_ids_.clear();
  }
  for (auto& [id, t] : conns) {
    if (t.joinable()) t.join();
  }
  if (!options_.socket_path.empty()) {
    ::unlink(options_.socket_path.c_str());
  }
#endif
}

#ifndef _WIN32

void Server::ReapFinishedLocked() {
  for (uint64_t id : finished_conn_ids_) {
    auto it = conn_threads_.find(id);
    if (it == conn_threads_.end()) continue;
    if (it->second.joinable()) it->second.join();
    conn_threads_.erase(it);
  }
  finished_conn_ids_.clear();
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket closed: shutting down
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    // Reap finished connection threads here so a long-lived daemon
    // under connection churn holds threads only for live connections.
    ReapFinishedLocked();
    const uint64_t id = next_conn_id_++;
    conn_fds_.insert(fd);
    metrics_.AddCounter("connections.opened", 1);
    conn_threads_.emplace(
        id, std::thread([this, id, fd] { ServeConnection(id, fd); }));
  }
}

void Server::ServeConnection(uint64_t conn_id, int fd) {
  FdStream stream(fd);
  FrameIo io;
  io.idle_timeout_ms = 0;  // keep-alive: idle connections are free
  io.io_timeout_ms = options_.io_timeout_ms;
  while (true) {
    auto payload = ReadFrame(&stream, io);
    if (!payload.ok()) break;  // clean EOF, torn frame, or shutdown
    Response response;
    bool is_shutdown = false;
    auto request = DecodeRequest(*payload);
    if (!request.ok()) {
      response = ErrorResponse(request.status());
    } else {
      is_shutdown = request->verb == "shutdown";
      response = Handle(*request, fd);
    }
    const bool wrote =
        WriteFrame(&stream, EncodeResponse(response), io).ok();
    if (is_shutdown) {
      // The acknowledgment frame is on the wire; only now wake Wait()
      // so teardown can't race the client out of its response.
      {
        std::lock_guard<std::mutex> lock(shutdown_mu_);
        shutdown_requested_ = true;
      }
      shutdown_cv_.notify_all();
      break;
    }
    if (!wrote) break;
  }
  ::close(fd);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(fd);
    metrics_.AddCounter("connections.closed", 1);
    // Registering as finished is this thread's last touch of server
    // state; the accept loop (or Stop) joins the thread object later.
    finished_conn_ids_.push_back(conn_id);
  }
}

#else

void Server::AcceptLoop() {}
void Server::ServeConnection(uint64_t, int) {}
void Server::ReapFinishedLocked() {}

#endif  // !_WIN32

Response Server::Handle(const Request& request, int fd) {
  if (request.verb == "mine") return HandleMine(request, fd);
  if (request.verb == "stats") return HandleStats();
  if (request.verb == "list") return HandleList();
  if (request.verb == "ping") return HandlePing();
  if (request.verb == "shutdown") {
    // ServeConnection triggers the actual shutdown after this
    // acknowledgment has been written back to the client.
    Response response;
    response.ok = true;
    return response;
  }
  return ErrorResponse(Status::InvalidArgument(
      "unknown verb '" + request.verb +
      "' (expected mine|stats|ping|list|shutdown)"));
}

Response Server::HandlePing() {
  // Readiness probes assert the schema version instead of trusting any
  // `ok`; uptime lets operators spot silent restarts.
  Response response;
  response.ok = true;
  response.meta.emplace_back("schema",
                             std::to_string(kProtocolSchemaVersion));
  response.meta.emplace_back(
      "uptime_s", FormatDouble(uptime_timer_.ElapsedSeconds(), 3));
  return response;
}

Response Server::HandleMine(const Request& request, int fd) {
#ifdef _WIN32
  (void)fd;
  return ErrorResponse(Status::FailedPrecondition(
      "the serve daemon requires POSIX unix-domain sockets"));
#else
  WallTimer timer;
  metrics_.AddCounter("queries.total", 1);

  const std::string store = request.Param("store");
  if (store.empty()) {
    metrics_.AddCounter("queries.failed", 1);
    return ErrorResponse(Status::InvalidArgument(
        "mine needs a `store <name>` parameter"));
  }
  MineRequest mine;
  for (const auto& [key, value] : request.params) {
    // Request-level params that are not mine option keys.
    if (key == "store" || key == "cache" || key == "deadline_ms") {
      continue;
    }
    const Status applied = ApplyMineOption(&mine, key, value);
    if (!applied.ok()) {
      metrics_.AddCounter("queries.failed", 1);
      return ErrorResponse(applied);
    }
  }
  const bool use_cache = request.Param("cache", "on") != "off";

  // Deadline: the client's `deadline_ms` (0 = none) over the server
  // default, clamped from above by the server maximum.
  int64_t deadline_ms = options_.default_deadline_ms;
  const std::string deadline_text = request.Param("deadline_ms");
  if (!deadline_text.empty()) {
    auto parsed = ParseInt(deadline_text);
    if (!parsed.ok() || *parsed < 0) {
      metrics_.AddCounter("queries.failed", 1);
      return ErrorResponse(Status::InvalidArgument(
          "deadline_ms must be a non-negative integer, got '" +
          deadline_text + "'"));
    }
    deadline_ms = *parsed;
  }
  if (options_.max_deadline_ms > 0 &&
      (deadline_ms == 0 || deadline_ms > options_.max_deadline_ms)) {
    deadline_ms = options_.max_deadline_ms;
  }

  // The query's cancellation token: fires on deadline lapse, client
  // hangup (the watcher below), or daemon drain.
  CancelToken token;
  token.ChainTo(&drain_token_);
  auto admit_deadline = std::chrono::steady_clock::time_point::max();
  if (deadline_ms > 0) {
    token.SetDeadlineAfterMs(deadline_ms);
    admit_deadline = token.deadline();
  }

  // Admission: FIFO-fair, bounded waiting room. Parse errors above
  // never consume a slot; a deadline that lapses while queued leaves
  // the waiting room without ever running.
  auto ticket = scheduler_.Admit(admit_deadline);
  if (!ticket.ok()) {
    const StatusCode code = ticket.status().code();
    if (code == StatusCode::kDeadlineExceeded) {
      metrics_.AddCounter("queries.deadline_exceeded", 1);
    } else if (code == StatusCode::kCancelled) {
      metrics_.AddCounter("queries.cancelled", 1);
    } else {
      metrics_.AddCounter("queries.rejected", 1);
    }
    return ErrorResponse(ticket.status());
  }

  // Resolve the store under admission (a changed file reloads here, so
  // the reload cost is paced like any other query work).
  auto entry = registry_.Get(store);
  if (!entry.ok()) {
    metrics_.AddCounter("queries.failed", 1);
    return ErrorResponse(entry.status());
  }
  const StoreEntry& e = **entry;

  const std::string cache_key =
      e.fingerprint + "|" + CanonicalCacheKey(mine);
  Response response;
  response.ok = true;
  response.meta.emplace_back("store", store);
  response.meta.emplace_back("fingerprint", e.fingerprint);

  if (use_cache) {
    if (auto cached = cache_.Get(cache_key)) {
      metrics_.AddCounter("cache.hits", 1);
      metrics_.AddCounter("queries.ok", 1);
      const double ms = timer.ElapsedSeconds() * 1e3;
      metrics_.ObserveMs("query.latency_ms", ms);
      response.meta.emplace_back("cache", "hit");
      response.meta.emplace_back(
          "patterns", std::to_string(cached->num_patterns));
      response.meta.emplace_back("latency_ms", FormatDouble(ms, 3));
      response.body = std::move(cached->body);
      return response;
    }
    metrics_.AddCounter("cache.misses", 1);
  }

  mine.cancel = &token;

  // The query's own observability context: spans land in a session
  // attached for the duration (concurrent traced queries stay
  // isolated), metrics in a per-query registry folded into the
  // daemon's aggregate afterwards. The hangup watcher cancels the
  // token — and thereby the run — the moment the client disconnects.
  trace::Session session;
  MetricsRegistry query_metrics;
  bool disconnected = false;
  Result<MineOutcome> outcome = [&] {
    FdHangupWatch watch(fd, &token);
    trace::SessionScope scope(&session);
    auto result = ExecuteMineRequest(e.reader.db(), e.reader.taxonomy(),
                                     &e.reader.dict(), &e.views, mine,
                                     &query_metrics);
    disconnected = watch.disconnected();
    return result;
  }();
  if (!outcome.ok()) {
    // Deadline / abandonment outcomes are expected operation, not
    // daemon faults: they get their own counters and never count as
    // `queries.failed` (the smoke script asserts failed == 0).
    const StatusCode code = outcome.status().code();
    if (disconnected) {
      metrics_.AddCounter("queries.disconnected", 1);
      metrics_.AddCounter("queries.cancelled", 1);
    } else if (code == StatusCode::kDeadlineExceeded) {
      metrics_.AddCounter("queries.deadline_exceeded", 1);
    } else if (code == StatusCode::kCancelled) {
      metrics_.AddCounter("queries.cancelled", 1);
    } else {
      metrics_.AddCounter("queries.failed", 1);
    }
    return ErrorResponse(outcome.status());
  }
  if (use_cache) {
    ResultCache::CachedResult cached;
    cached.body = outcome->body;
    cached.num_patterns = outcome->num_patterns;
    cache_.Put(cache_key, std::move(cached));
  }
  metrics_.AddCounter("queries.ok", 1);
  metrics_.AddCounter(
      "patterns.total",
      static_cast<int64_t>(outcome->num_patterns));
  const double ms = timer.ElapsedSeconds() * 1e3;
  metrics_.ObserveMs("query.latency_ms", ms);
  response.meta.emplace_back("cache", use_cache ? "miss" : "off");
  response.meta.emplace_back("patterns",
                             std::to_string(outcome->num_patterns));
  response.meta.emplace_back("latency_ms", FormatDouble(ms, 3));
  response.body = std::move(outcome->body);
  return response;
#endif  // _WIN32
}

Response Server::HandleStats() {
  const ResultCache::Stats cache_stats = cache_.stats();
  metrics_.SetGauge("cache.entries",
                    static_cast<double>(cache_stats.entries));
  metrics_.SetGauge("cache.bytes",
                    static_cast<double>(cache_stats.bytes));
  metrics_.SetGauge("cache.evictions",
                    static_cast<double>(cache_stats.evictions));
  const QueryScheduler::Stats sched = scheduler_.stats();
  metrics_.SetGauge("scheduler.running",
                    static_cast<double>(sched.running));
  metrics_.SetGauge("scheduler.waiting",
                    static_cast<double>(sched.waiting));
  metrics_.SetGauge("scheduler.admitted",
                    static_cast<double>(sched.admitted));
  metrics_.SetGauge("scheduler.rejected",
                    static_cast<double>(sched.rejected));
  metrics_.SetGauge("scheduler.timed_out",
                    static_cast<double>(sched.timed_out));
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    metrics_.SetGauge(
        "connections.live",
        static_cast<double>(conn_fds_.size()));
  }
  std::ostringstream body;
  metrics_.WriteJson(body);
  Response response;
  response.ok = true;
  response.body = std::move(body).str();
  return response;
}

Response Server::HandleList() {
  Response response;
  response.ok = true;
  std::string body;
  for (const std::string& name : registry_.Names()) {
    auto entry = registry_.Get(name);
    if (!entry.ok()) {
      body += name + " error " + entry.status().ToString() + "\n";
      continue;
    }
    body += name + " " + (*entry)->fingerprint + " " +
            std::to_string((*entry)->reader.header().num_transactions) +
            " txns, height " +
            std::to_string((*entry)->reader.taxonomy().height()) + "\n";
  }
  response.body = std::move(body);
  return response;
}

}  // namespace service
}  // namespace flipper
