#include "service/server.h"

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "common/string_util.h"
#include "common/timer.h"
#include "common/trace.h"
#include "service/mine_service.h"

namespace flipper {
namespace service {
namespace {

Response ErrorResponse(const Status& status) {
  Response response;
  response.ok = false;
  response.error = status.ToString();
  return response;
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options),
      registry_(StoreRegistry::Options{options.validate_stores, 0}),
      cache_(options.cache_bytes),
      scheduler_(options.max_concurrent, options.max_queued) {}

Server::~Server() { Stop(); }

Status Server::AddStore(const std::string& name,
                        const std::string& path) {
  return registry_.Add(name, path);
}

Status Server::Start() {
#ifdef _WIN32
  return Status::FailedPrecondition(
      "the serve daemon requires POSIX unix-domain sockets");
#else
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("server already started");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        "socket path must be 1.." +
        std::to_string(sizeof(addr.sun_path) - 1) + " bytes, got '" +
        options_.socket_path + "'");
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket() failed: ") +
                           std::strerror(errno));
  }
  // A stale socket file from a dead daemon would make bind fail;
  // unlink first (a live daemon would still hold the listen fd, and
  // two daemons on one path is an operator error either way).
  ::unlink(options_.socket_path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status status = Status::IoError(
        "bind(" + options_.socket_path + ") failed: " +
        std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    const Status status = Status::IoError(
        std::string("listen() failed: ") + std::strerror(errno));
    ::close(fd);
    ::unlink(options_.socket_path.c_str());
    return status;
  }
  listen_fd_ = fd;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
#endif
}

void Server::Wait() {
  {
    std::unique_lock<std::mutex> lock(shutdown_mu_);
    shutdown_cv_.wait(lock, [&] { return shutdown_requested_; });
  }
  Stop();
}

void Server::Stop() {
#ifndef _WIN32
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
    if (torn_down_) {
      shutdown_cv_.notify_all();
      return;
    }
    torn_down_ = true;
  }
  shutdown_cv_.notify_all();
  stopping_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) {
    // shutdown() unblocks a blocked accept(); close() releases the fd.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;
  {
    // Unblock every connection thread stuck in read().
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(conn_threads_);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
  if (!options_.socket_path.empty()) {
    ::unlink(options_.socket_path.c_str());
  }
#endif
}

#ifndef _WIN32

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket closed: shutting down
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    conn_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void Server::ServeConnection(int fd) {
  while (true) {
    auto payload = ReadFrame(fd);
    if (!payload.ok()) break;  // clean EOF, torn frame, or shutdown
    Response response;
    bool is_shutdown = false;
    auto request = DecodeRequest(*payload);
    if (!request.ok()) {
      response = ErrorResponse(request.status());
    } else {
      is_shutdown = request->verb == "shutdown";
      response = Handle(*request);
    }
    const bool wrote = WriteFrame(fd, EncodeResponse(response)).ok();
    if (is_shutdown) {
      // The acknowledgment frame is on the wire; only now wake Wait()
      // so teardown can't race the client out of its response.
      {
        std::lock_guard<std::mutex> lock(shutdown_mu_);
        shutdown_requested_ = true;
      }
      shutdown_cv_.notify_all();
      break;
    }
    if (!wrote) break;
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(fd);
  }
  ::close(fd);
}

#else

void Server::AcceptLoop() {}
void Server::ServeConnection(int) {}

#endif  // !_WIN32

Response Server::Handle(const Request& request) {
  if (request.verb == "mine") return HandleMine(request);
  if (request.verb == "stats") return HandleStats();
  if (request.verb == "list") return HandleList();
  if (request.verb == "ping") {
    Response response;
    response.ok = true;
    return response;
  }
  if (request.verb == "shutdown") {
    // ServeConnection triggers the actual shutdown after this
    // acknowledgment has been written back to the client.
    Response response;
    response.ok = true;
    return response;
  }
  return ErrorResponse(Status::InvalidArgument(
      "unknown verb '" + request.verb +
      "' (expected mine|stats|ping|list|shutdown)"));
}

Response Server::HandleMine(const Request& request) {
  WallTimer timer;
  metrics_.AddCounter("queries.total", 1);

  const std::string store = request.Param("store");
  if (store.empty()) {
    metrics_.AddCounter("queries.failed", 1);
    return ErrorResponse(Status::InvalidArgument(
        "mine needs a `store <name>` parameter"));
  }
  MineRequest mine;
  for (const auto& [key, value] : request.params) {
    if (key == "store" || key == "cache") continue;
    const Status applied = ApplyMineOption(&mine, key, value);
    if (!applied.ok()) {
      metrics_.AddCounter("queries.failed", 1);
      return ErrorResponse(applied);
    }
  }
  const bool use_cache = request.Param("cache", "on") != "off";

  // Admission: FIFO-fair, bounded waiting room. Parse errors above
  // never consume a slot.
  auto ticket = scheduler_.Admit();
  if (!ticket.ok()) {
    metrics_.AddCounter("queries.rejected", 1);
    return ErrorResponse(ticket.status());
  }

  // Resolve the store under admission (a changed file reloads here, so
  // the reload cost is paced like any other query work).
  auto entry = registry_.Get(store);
  if (!entry.ok()) {
    metrics_.AddCounter("queries.failed", 1);
    return ErrorResponse(entry.status());
  }
  const StoreEntry& e = **entry;

  const std::string cache_key =
      e.fingerprint + "|" + CanonicalCacheKey(mine);
  Response response;
  response.ok = true;
  response.meta.emplace_back("store", store);
  response.meta.emplace_back("fingerprint", e.fingerprint);

  if (use_cache) {
    if (auto cached = cache_.Get(cache_key)) {
      metrics_.AddCounter("cache.hits", 1);
      metrics_.AddCounter("queries.ok", 1);
      const double ms = timer.ElapsedSeconds() * 1e3;
      metrics_.ObserveMs("query.latency_ms", ms);
      response.meta.emplace_back("cache", "hit");
      response.meta.emplace_back(
          "patterns", std::to_string(cached->num_patterns));
      response.meta.emplace_back("latency_ms", FormatDouble(ms, 3));
      response.body = std::move(cached->body);
      return response;
    }
    metrics_.AddCounter("cache.misses", 1);
  }

  // The query's own observability context: spans land in a session
  // attached for the duration (concurrent traced queries stay
  // isolated), metrics in a per-query registry folded into the
  // daemon's aggregate afterwards.
  trace::Session session;
  MetricsRegistry query_metrics;
  Result<MineOutcome> outcome = [&] {
    trace::SessionScope scope(&session);
    return ExecuteMineRequest(e.reader.db(), e.reader.taxonomy(),
                              &e.reader.dict(), &e.views, mine,
                              &query_metrics);
  }();
  if (!outcome.ok()) {
    metrics_.AddCounter("queries.failed", 1);
    return ErrorResponse(outcome.status());
  }
  if (use_cache) {
    ResultCache::CachedResult cached;
    cached.body = outcome->body;
    cached.num_patterns = outcome->num_patterns;
    cache_.Put(cache_key, std::move(cached));
  }
  metrics_.AddCounter("queries.ok", 1);
  metrics_.AddCounter(
      "patterns.total",
      static_cast<int64_t>(outcome->num_patterns));
  const double ms = timer.ElapsedSeconds() * 1e3;
  metrics_.ObserveMs("query.latency_ms", ms);
  response.meta.emplace_back("cache", use_cache ? "miss" : "off");
  response.meta.emplace_back("patterns",
                             std::to_string(outcome->num_patterns));
  response.meta.emplace_back("latency_ms", FormatDouble(ms, 3));
  response.body = std::move(outcome->body);
  return response;
}

Response Server::HandleStats() {
  const ResultCache::Stats cache_stats = cache_.stats();
  metrics_.SetGauge("cache.entries",
                    static_cast<double>(cache_stats.entries));
  metrics_.SetGauge("cache.bytes",
                    static_cast<double>(cache_stats.bytes));
  metrics_.SetGauge("cache.evictions",
                    static_cast<double>(cache_stats.evictions));
  const QueryScheduler::Stats sched = scheduler_.stats();
  metrics_.SetGauge("scheduler.running",
                    static_cast<double>(sched.running));
  metrics_.SetGauge("scheduler.waiting",
                    static_cast<double>(sched.waiting));
  metrics_.SetGauge("scheduler.admitted",
                    static_cast<double>(sched.admitted));
  metrics_.SetGauge("scheduler.rejected",
                    static_cast<double>(sched.rejected));
  std::ostringstream body;
  metrics_.WriteJson(body);
  Response response;
  response.ok = true;
  response.body = std::move(body).str();
  return response;
}

Response Server::HandleList() {
  Response response;
  response.ok = true;
  std::string body;
  for (const std::string& name : registry_.Names()) {
    auto entry = registry_.Get(name);
    if (!entry.ok()) {
      body += name + " error " + entry.status().ToString() + "\n";
      continue;
    }
    body += name + " " + (*entry)->fingerprint + " " +
            std::to_string((*entry)->reader.header().num_transactions) +
            " txns, height " +
            std::to_string((*entry)->reader.taxonomy().height()) + "\n";
  }
  response.body = std::move(body);
  return response;
}

}  // namespace service
}  // namespace flipper
