// Umbrella header: the public API of libflipper.
//
//   #include "flipper.h"
//
// pulls in everything a downstream application needs: transaction and
// taxonomy construction + I/O, the correlation measures, the Flipper
// and baseline miners, pattern types and exports, and the top-K
// extension. Generators/simulators live under datagen/ and are
// included separately by code that needs synthetic data.

#ifndef FLIPPER_FLIPPER_H_
#define FLIPPER_FLIPPER_H_

#include "common/status.h"           // IWYU pragma: export
#include "common/thread_pool.h"      // IWYU pragma: export
#include "core/config.h"             // IWYU pragma: export
#include "core/flipper_miner.h"      // IWYU pragma: export
#include "core/mining_result.h"      // IWYU pragma: export
#include "core/naive_miner.h"        // IWYU pragma: export
#include "core/pattern.h"            // IWYU pragma: export
#include "core/pattern_io.h"         // IWYU pragma: export
#include "core/topk.h"               // IWYU pragma: export
#include "data/db_io.h"              // IWYU pragma: export
#include "data/item_dictionary.h"    // IWYU pragma: export
#include "data/transaction_db.h"     // IWYU pragma: export
#include "measures/measure.h"        // IWYU pragma: export
#include "storage/store_reader.h"    // IWYU pragma: export
#include "storage/store_writer.h"    // IWYU pragma: export
#include "taxonomy/taxonomy.h"       // IWYU pragma: export
#include "taxonomy/taxonomy_builder.h"  // IWYU pragma: export
#include "taxonomy/taxonomy_io.h"    // IWYU pragma: export

#endif  // FLIPPER_FLIPPER_H_
