// The flipper_cli command set as a library entry point, so the test
// suite can drive the tool end-to-end in-process (tools/flipper_cli.cc
// is a thin main() around this).
//
// Commands:
//   flipper_cli mine <basket> <taxonomy> [flags]   mine text inputs
//   flipper_cli mine --input data.fdb [flags]      mine a FlipperStore
//   flipper_cli convert <basket> <taxonomy> <out.fdb>
//   flipper_cli inspect <data.fdb>
//   flipper_cli datagen <scenario> <out.fdb>       groceries|census|
//                                                  medline|quest
//   flipper_cli <basket> <taxonomy> [flags]        legacy spelling of
//                                                  `mine`

#ifndef FLIPPER_CLI_CLI_H_
#define FLIPPER_CLI_CLI_H_

#include <iosfwd>

namespace flipper {

/// Runs the CLI against argv, writing results to `out` and diagnostics
/// to `err`. Returns the process exit code (0 success, 1 runtime
/// error, 2 usage error).
int RunFlipperCli(int argc, const char* const* argv, std::ostream& out,
                  std::ostream& err);

}  // namespace flipper

#endif  // FLIPPER_CLI_CLI_H_
