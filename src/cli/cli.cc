#include "cli/cli.h"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <limits>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/arg_parser.h"
#include "common/backoff.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "common/trace.h"
#include "core/pipeline_metrics.h"
#include "datagen/census_sim.h"
#include "datagen/groceries_sim.h"
#include "datagen/medline_sim.h"
#include "datagen/quest_gen.h"
#include "datagen/taxonomy_gen.h"
#include "flipper.h"
#include "service/client.h"
#include "service/mine_service.h"
#include "service/server.h"
#include "storage/recovery.h"
#include "storage/store_reader.h"
#include "storage/store_writer.h"

namespace flipper {
namespace {

/// The per-level Apriori baseline behind --baseline, producing the
/// same outcome shape as service::ExecuteMineRequest so the emission
/// tail is one code path.
Result<service::MineOutcome> RunBaselineMine(
    const TransactionDb& db, const Taxonomy& taxonomy,
    const ItemDictionary* dict, const service::MineRequest& request,
    MetricsRegistry* metrics) {
  MiningConfig config = service::ToMiningConfig(request);
  config.metrics = metrics;
  FLIPPER_ASSIGN_OR_RETURN(MiningResult result,
                           NaiveMiner::Run(db, taxonomy, config));
  std::vector<FlippingPattern> patterns = std::move(result.patterns);
  if (request.topk > 0) {
    patterns = TopKMostFlipping(std::move(patterns),
                                static_cast<size_t>(request.topk));
  }
  std::ostringstream body;
  FLIPPER_RETURN_IF_ERROR(service::RenderPatterns(
      patterns, dict, request.format, body));
  service::MineOutcome outcome;
  outcome.body = std::move(body).str();
  outcome.num_patterns = patterns.size();
  outcome.stats_text = result.stats.ToString();
  return outcome;
}

/// Writer options from --segment-txns and --store-version.
Result<storage::StoreWriter::Options> ParseWriterOptions(
    const ArgParser& args) {
  storage::StoreWriter::Options options;
  FLIPPER_ASSIGN_OR_RETURN(
      int64_t segment_txns,
      args.GetInt("segment-txns",
                  static_cast<int64_t>(options.segment_txns)));
  if (segment_txns <= 0 ||
      segment_txns > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument(
        "--segment-txns must be a positive 32-bit count");
  }
  options.segment_txns = static_cast<uint32_t>(segment_txns);
  FLIPPER_ASSIGN_OR_RETURN(
      int64_t version,
      args.GetInt("store-version",
                  static_cast<int64_t>(storage::kFormatVersionLatest)));
  if (version != storage::kFormatVersionV1 &&
      version != storage::kFormatVersionV2) {
    return Status::InvalidArgument("--store-version must be 1 or 2");
  }
  options.version = static_cast<uint32_t>(version);
  return options;
}

void AddWriterFlags(ArgParser* args) {
  args->AddFlag("segment-txns",
                "transactions per shard segment (default 65536)", "N");
  args->AddFlag("store-version",
                "on-disk format: 1 (raw columns, zero-copy mmap) or 2 "
                "(delta+varint columns + segment catalog; default)",
                "N");
}

// --- mine -------------------------------------------------------------

int MineCommand(const std::vector<const char*>& argv, std::ostream& out,
                std::ostream& err) {
  bool use_store = false;
  for (const char* arg : argv) {
    const std::string_view view(arg);
    if (view == "--input" || view.rfind("--input=", 0) == 0) {
      use_store = true;
      break;
    }
  }

  ArgParser args("flipper_cli mine",
                 "Mine flipping correlation patterns (Barsky et al., "
                 "VLDB 2011) from a basket file and a taxonomy file, "
                 "or from a binary FlipperStore (.fdb) via --input.");
  if (!use_store) {
    args.AddPositional("basket",
                       "transactions, one per line (item names)");
    args.AddPositional("taxonomy",
                       "'root <name>' / 'edge <parent> <child>' lines");
  }
  args.AddFlag("input", "mine a .fdb FlipperStore instead of text files",
               "PATH");
  args.AddSwitch("no-validate",
                 "with --input: skip the store's payload validation "
                 "scan (trusted files only)");
  args.AddFlag("gamma", "positive correlation threshold (default 0.3)",
               "FLOAT");
  args.AddFlag("epsilon", "negative correlation threshold (default 0.1)",
               "FLOAT");
  args.AddFlag("minsup",
               "comma-separated per-level minimum supports, most "
               "general level first (default 0.01,0.001,0.0005)",
               "F1,F2,...");
  args.AddFlag("measure",
               "all_confidence|coherence|cosine|kulczynski|"
               "max_confidence (default kulczynski)",
               "NAME");
  args.AddFlag("pruning", "full|tpg|flipping|support (default full)",
               "NAME");
  args.AddFlag("counter", "horizontal|vertical (default horizontal)",
               "NAME");
  args.AddFlag("threads",
               "worker threads for counting (default 0 = all hardware "
               "threads)",
               "N");
  args.AddFlag("pipeline",
               "on|off — overlap candidate generation with the "
               "previous cell's support scan (default on; results "
               "are identical either way)",
               "MODE");
  args.AddFlag("row-overlap",
               "on|off — extend the pipeline's speculation window "
               "across taxonomy rows (plan and start the next row's "
               "first cell while the current row's last cell counts; "
               "default on; only effective with --pipeline on; results "
               "are identical either way)",
               "MODE");
  args.AddFlag("arena-counters",
               "on|off — count scan-driven cells in the open-addressed "
               "bump-arena counter table instead of the hash-map "
               "baseline (default on; results are identical either "
               "way)",
               "MODE");
  args.AddFlag("segment-skipping",
               "on|off — let segment catalogs skip candidate-free "
               "segments during counting scans (default on; results "
               "are identical either way)",
               "MODE");
  args.AddFlag("flat-trie",
               "on|off — flat SoA candidate-trie layout with packed/"
               "galloping probe kernels (default on; off = legacy "
               "layer layout; results are identical either way)",
               "MODE");
  args.AddFlag("txn-prefilter",
               "on|off — reject/compact transactions through the "
               "candidate-item prefilter before the trie walk "
               "(default on; results are identical either way)",
               "MODE");
  args.AddFlag("topk", "keep only the K widest flips", "K");
  args.AddFlag("format", "text|csv|json (default text)", "NAME");
  args.AddFlag("out", "write patterns to a file instead of stdout",
               "PATH");
  args.AddSwitch("baseline",
                 "run the per-level Apriori baseline (NaiveMiner)");
  args.AddSwitch("stats", "print mining statistics to stderr");
  args.AddFlag("trace-out",
               "record pipeline spans during the run and write Chrome "
               "trace-event JSON (load in chrome://tracing or "
               "ui.perfetto.dev) to PATH",
               "PATH");
  args.AddFlag("metrics-json",
               "write the machine-readable run report (counters, "
               "per-stage latency histograms, pool utilization) to "
               "PATH, or '-' for stdout",
               "PATH");

  Status parse_status =
      args.Parse(static_cast<int>(argv.size()), argv.data());
  if (!parse_status.ok()) {
    err << "error: " << parse_status << "\n\n" << args.HelpText();
    return 2;
  }
  if (args.help_requested()) {
    out << args.HelpText();
    return 0;
  }

  // --- Route every mining option through the one checked parser
  // (service::ApplyMineOption): strict numeric syntax, range checks,
  // and the offending token quoted in the error. Bad values are a
  // usage error — exit 2 with the help text.
  service::MineRequest request;
  for (const std::string& key : service::MineOptionKeys()) {
    if (!args.Has(key)) continue;
    const Status applied = service::ApplyMineOption(
        &request, key, args.GetString(key, ""));
    if (!applied.ok()) {
      err << "error: " << applied << "\n\n" << args.HelpText();
      return 2;
    }
  }

  // --- Open every output sink up front: an unwritable --out,
  // --trace-out or --metrics-json path must fail before any mining
  // work is spent, not after.
  const std::string trace_path = args.GetString("trace-out", "");
  const std::string metrics_path = args.GetString("metrics-json", "");
  const std::string out_path = args.GetString("out", "");
  const auto open_sink = [&err](const std::string& path,
                                std::optional<std::ofstream>* file) {
    file->emplace(path, std::ios::trunc);
    if (!**file) {
      err << "error: cannot open for writing: " << path << "\n";
      return false;
    }
    return true;
  };
  std::optional<std::ofstream> trace_file;
  std::optional<std::ofstream> metrics_file;
  std::optional<std::ofstream> out_file;
  if (!trace_path.empty() && !open_sink(trace_path, &trace_file)) {
    return 1;
  }
  if (!metrics_path.empty() && metrics_path != "-" &&
      !open_sink(metrics_path, &metrics_file)) {
    return 1;
  }
  if (!out_path.empty() && !open_sink(out_path, &out_file)) {
    return 1;
  }

  // --- Load inputs: either the store's borrowed views or text. ---
  ItemDictionary text_dict;
  Taxonomy text_taxonomy;
  TransactionDb text_db;
  std::optional<storage::StoreReader> reader;
  const ItemDictionary* dict = &text_dict;
  const Taxonomy* taxonomy = &text_taxonomy;
  const TransactionDb* db = &text_db;
  if (use_store) {
    storage::OpenOptions open_options;
    open_options.validate = !args.GetSwitch("no-validate");
    auto opened = storage::StoreReader::Open(args.GetString("input", ""),
                                             open_options);
    if (!opened.ok()) {
      err << "error: " << opened.status() << "\n";
      return 1;
    }
    reader.emplace(std::move(opened).value());
    dict = &reader->dict();
    taxonomy = &reader->taxonomy();
    db = &reader->db();
  } else {
    auto loaded_taxonomy =
        ReadTaxonomyFile(args.GetPositional("taxonomy"), &text_dict);
    if (!loaded_taxonomy.ok()) {
      err << "error: " << loaded_taxonomy.status() << "\n";
      return 1;
    }
    text_taxonomy = std::move(loaded_taxonomy).value();
    auto loaded_db =
        ReadBasketFile(args.GetPositional("basket"), &text_dict);
    if (!loaded_db.ok()) {
      err << "error: " << loaded_db.status() << "\n";
      return 1;
    }
    text_db = std::move(loaded_db).value();
  }

  // --- Mine inside a per-query trace session. Spans land in this
  // run's own session — never in the process-wide default — so
  // concurrent in-process callers (the daemon, tests) can each trace
  // without interleaving, and the global tracing state is untouched.
  MetricsRegistry metrics;
  MetricsRegistry* metrics_ptr =
      metrics_path.empty() ? nullptr : &metrics;
  trace::Session session;
  const bool tracing = !trace_path.empty();
  if (tracing) session.SetEnabled(true);
  auto outcome = [&]() -> Result<service::MineOutcome> {
    trace::SessionScope scope(&session);
    if (args.GetSwitch("baseline")) {
      return RunBaselineMine(*db, *taxonomy, dict, request,
                             metrics_ptr);
    }
    return service::ExecuteMineRequest(*db, *taxonomy, dict, nullptr,
                                       request, metrics_ptr);
  }();
  // The miner (and its pool) is gone here, so every span is closed
  // and published; stop recording before touching the buffers.
  if (tracing) session.SetEnabled(false);
  if (!outcome.ok()) {
    err << "error: " << outcome.status() << "\n";
    return 1;
  }
  if (tracing) {
    session.ExportChromeJson(*trace_file);
    trace_file->flush();
    if (!*trace_file) {
      err << "error: write failed: " << trace_path << "\n";
      return 1;
    }
  }
  if (!metrics_path.empty()) {
    if (metrics_path == "-") {
      metrics.WriteJson(out);
    } else {
      metrics.WriteJson(*metrics_file);
      metrics_file->flush();
      if (!*metrics_file) {
        err << "error: write failed: " << metrics_path << "\n";
        return 1;
      }
    }
  }

  // --- Emit (the body bytes are the shared RenderPatterns path, so
  // a daemon response for the same options is byte-identical). ---
  std::ostream* sink = out_file ? &*out_file : &out;
  *sink << outcome->body;
  if (out_file) {
    out_file->flush();
    if (!*out_file) {
      err << "error: write failed: " << out_path << "\n";
      return 1;
    }
  }
  if (args.GetSwitch("stats")) {
    err << outcome->stats_text;
  }
  return 0;
}

// --- convert ----------------------------------------------------------

/// Re-encodes `reader`'s dataset (or fast-copies it when the target
/// version matches and no re-segmentation was requested) into
/// `output`. `same_file` says input and output are one file on disk
/// (any spelling, symlink or hardlink): writing would truncate the
/// store under the reader's live mapping, so it degrades the fast
/// path to validate-only and refuses the re-encode outright.
int ConvertFromStore(const storage::StoreReader& reader,
                     const std::string& input, const std::string& output,
                     const storage::StoreWriter::Options& options,
                     bool resegment, bool same_file, std::ostream& out,
                     std::ostream& err) {
  const uint32_t detected = reader.version();
  // Open() validates structure and semantics, but only the checksum
  // sweep compares bytes nothing else interprets (e.g. dictionary name
  // text) against what was written — run it on every path so bitrot is
  // never laundered into a "fresh" output file.
  Status checksums = reader.VerifyChecksums();
  if (!checksums.ok()) {
    err << "error: " << checksums << "\n";
    return 1;
  }
  if (detected == options.version && !resegment) {
    // Same version in and out: the input has already passed Open()'s
    // validation, so a byte copy is both faster and safer than a
    // decode/re-encode round trip.
    if (!same_file) {
      std::ifstream in_file(input, std::ios::binary);
      std::ofstream out_file(output,
                             std::ios::binary | std::ios::trunc);
      if (!in_file || !(out_file << in_file.rdbuf())) {
        err << "error: cannot copy " << input << " to " << output
            << "\n";
        return 1;
      }
    }
    if (same_file) {
      out << "validated " << input << " in place (already v" << detected
          << ", "
          << FormatBytes(static_cast<int64_t>(reader.file_size()))
          << "; nothing written)\n";
    } else {
      out << "wrote " << output << ": validated copy of " << input
          << " (already v" << detected << ", "
          << FormatBytes(static_cast<int64_t>(reader.file_size()))
          << ")\n";
    }
    return 0;
  }

  if (same_file) {
    err << "error: cannot re-encode " << input
        << " onto itself; write to a different path\n";
    return 2;
  }
  Status written = storage::WriteStoreFile(
      output, reader.db(), reader.dict(), reader.taxonomy(), options);
  if (!written.ok()) {
    err << "error: " << written << "\n";
    return 1;
  }
  auto reopened = storage::StoreReader::Open(output);
  if (!reopened.ok()) {
    err << "error: verification reopen failed: " << reopened.status()
        << "\n";
    return 1;
  }
  out << "wrote " << output << ": v" << detected << " -> v"
      << options.version << ", "
      << FormatCount(static_cast<int64_t>(reader.db().size()))
      << " transactions, "
      << FormatBytes(static_cast<int64_t>(reader.file_size())) << " -> "
      << FormatBytes(static_cast<int64_t>(reopened->file_size()))
      << "\n";
  return 0;
}

int ConvertCommand(const std::vector<const char*>& argv,
                   std::ostream& out, std::ostream& err) {
  bool from_store = false;
  for (const char* arg : argv) {
    const std::string_view view(arg);
    if (view == "--from-fdb" || view.rfind("--from-fdb=", 0) == 0) {
      from_store = true;
      break;
    }
  }

  ArgParser args("flipper_cli convert",
                 "Convert basket + taxonomy text files into a binary "
                 "FlipperStore (.fdb), or re-encode an existing store "
                 "between format versions via --from-fdb (e.g. a v2 -> "
                 "v1 downgrade for older readers).");
  if (!from_store) {
    args.AddPositional("basket",
                       "transactions, one per line (item names)");
    args.AddPositional("taxonomy",
                       "'root <name>' / 'edge <parent> <child>' lines");
  }
  args.AddPositional("output", "the .fdb file to write");
  args.AddFlag("from-fdb",
               "re-encode this .fdb store instead of parsing text "
               "(same-version conversions become a validated copy "
               "unless --segment-txns requests a re-shard)",
               "PATH");
  AddWriterFlags(&args);

  Status parse_status =
      args.Parse(static_cast<int>(argv.size()), argv.data());
  if (!parse_status.ok()) {
    err << "error: " << parse_status << "\n\n" << args.HelpText();
    return 2;
  }
  if (args.help_requested()) {
    out << args.HelpText();
    return 0;
  }
  auto options = ParseWriterOptions(args);
  if (!options.ok()) {
    err << "error: " << options.status() << "\n";
    return 2;
  }
  const std::string& output = args.GetPositional("output");

  if (from_store) {
    const std::string input = args.GetString("from-fdb", "");
    auto reader = storage::StoreReader::Open(input);
    if (!reader.ok()) {
      err << "error: " << reader.status() << "\n";
      return 1;
    }
    // An explicit --segment-txns means "re-cut the shards", which
    // rules out the same-version byte-copy fast path; without one,
    // carry the input's shard granularity over instead of re-cutting
    // at the default size.
    const bool resegment = !args.GetString("segment-txns", "").empty();
    if (!resegment && reader->segments().size() > 1) {
      const uint64_t first_segment =
          reader->segments()[1] - reader->segments()[0];
      if (first_segment > 0 &&
          first_segment <= std::numeric_limits<uint32_t>::max()) {
        options->segment_txns = static_cast<uint32_t>(first_segment);
      }
    }
    // File identity by device+inode (std::filesystem::equivalent), so
    // every aliasing — ./x vs x, symlinks, hardlinks — is caught; an
    // error (e.g. output does not exist yet) means distinct files,
    // with the raw strings as a last-resort fallback.
    std::error_code eq_ec;
    bool same_file = std::filesystem::equivalent(input, output, eq_ec);
    if (eq_ec) same_file = input == output;
    return ConvertFromStore(*reader, input, output, *options, resegment,
                            same_file, out, err);
  }

  ItemDictionary dict;
  auto taxonomy = ReadTaxonomyFile(args.GetPositional("taxonomy"), &dict);
  if (!taxonomy.ok()) {
    err << "error: " << taxonomy.status() << "\n";
    return 1;
  }
  WallTimer timer;
  auto db = ReadBasketFile(args.GetPositional("basket"), &dict);
  if (!db.ok()) {
    err << "error: " << db.status() << "\n";
    return 1;
  }
  const double parse_s = timer.ElapsedSeconds();
  Status written =
      storage::WriteStoreFile(output, *db, dict, *taxonomy, *options);
  if (!written.ok()) {
    err << "error: " << written << "\n";
    return 1;
  }

  auto reopened = storage::StoreReader::Open(output);
  if (!reopened.ok()) {
    err << "error: verification reopen failed: " << reopened.status()
        << "\n";
    return 1;
  }
  out << "wrote " << output << " (v" << reopened->version() << "): "
      << FormatCount(static_cast<int64_t>(db->size()))
      << " transactions, "
      << FormatCount(static_cast<int64_t>(db->total_items()))
      << " items, " << dict.size() << " names, "
      << reopened->segments().size() - 1 << " segments, "
      << FormatBytes(static_cast<int64_t>(reopened->file_size()))
      << " (text parse took " << FormatDouble(parse_s * 1e3, 1)
      << " ms)\n";
  return 0;
}

// --- validate / repair ------------------------------------------------

/// Renders a diagnosis finding list as aligned, offset-bearing lines.
void PrintFindings(const storage::Diagnosis& diagnosis,
                   std::ostream& out) {
  for (const storage::Finding& f : diagnosis.findings) {
    out << "  " << (f.ok ? "ok  " : "BAD ") << f.section << " @ ["
        << f.offset << ", " << f.offset + f.size << "): " << f.detail
        << "\n";
  }
}

/// Maps a repair plan to the `validate` exit code contract:
/// 0 = valid, 1 = corrupt but repairable, 3 = unrecoverable.
int ValidateExitCode(const storage::RepairPlan& plan) {
  switch (plan.action) {
    case storage::RepairPlan::Action::kNone:
      return 0;
    case storage::RepairPlan::Action::kTruncateTail:
    case storage::RepairPlan::Action::kRewriteFrontHeader:
      return 1;
    case storage::RepairPlan::Action::kUnrecoverable:
      return 3;
  }
  return 3;
}

int ValidateCommand(const std::vector<const char*>& argv,
                    std::ostream& out, std::ostream& err) {
  ArgParser args(
      "flipper_cli validate",
      "Deep-check a FlipperStore (.fdb) file: headers, commit trailer, "
      "section table, per-section checksums and payload validation, "
      "with byte offsets for every problem found.\n"
      "\n"
      "exit codes: 0 = valid, 1 = corrupt but repairable (see "
      "`flipper_cli repair`), 2 = usage or I/O error, 3 = corrupt and "
      "unrecoverable.");
  args.AddPositional("store", "the .fdb file to validate");
  args.AddSwitch("quiet", "suppress the per-region findings, print only "
                          "the verdict");

  Status parse_status =
      args.Parse(static_cast<int>(argv.size()), argv.data());
  if (!parse_status.ok()) {
    err << "error: " << parse_status << "\n\n" << args.HelpText();
    return 2;
  }
  if (args.help_requested()) {
    out << args.HelpText();
    return 0;
  }

  const std::string& path = args.GetPositional("store");
  auto diagnosis = storage::DiagnoseStore(path);
  if (!diagnosis.ok()) {
    err << "error: " << diagnosis.status() << "\n";
    return 2;
  }
  const storage::RepairPlan& plan = diagnosis->plan;
  if (diagnosis->valid) {
    out << path << ": valid (" << plan.physical_size
        << " bytes, all checksums and payload validation pass)\n";
  } else if (plan.action ==
             storage::RepairPlan::Action::kUnrecoverable) {
    out << path << ": UNRECOVERABLE — " << plan.detail << "\n";
  } else {
    out << path << ": corrupt but repairable — " << plan.detail
        << " (" << plan.committed_size << " of " << plan.physical_size
        << " bytes committed; run `flipper_cli repair " << path
        << " --apply`)\n";
  }
  if (!args.GetSwitch("quiet")) PrintFindings(*diagnosis, out);
  return ValidateExitCode(plan);
}

int RepairCommand(const std::vector<const char*>& argv, std::ostream& out,
                  std::ostream& err) {
  ArgParser args(
      "flipper_cli repair",
      "Restore a crash-torn FlipperStore (.fdb) to its last committed "
      "state: truncate a torn append tail, or redo a front-header "
      "rewrite from the commit trailer. Dry-run by default — nothing "
      "is modified unless --apply is given. Repair never invents "
      "data; a file with no committed state is refused.");
  args.AddPositional("store", "the .fdb file to repair");
  args.AddSwitch("apply", "perform the repair (default: dry run, "
                          "print what would be done)");
  args.AddSwitch("dry-run",
                 "explicitly request the default dry-run behavior");

  Status parse_status =
      args.Parse(static_cast<int>(argv.size()), argv.data());
  if (!parse_status.ok()) {
    err << "error: " << parse_status << "\n\n" << args.HelpText();
    return 2;
  }
  if (args.help_requested()) {
    out << args.HelpText();
    return 0;
  }
  if (args.GetSwitch("apply") && args.GetSwitch("dry-run")) {
    err << "error: --apply and --dry-run are mutually exclusive\n";
    return 2;
  }

  const std::string& path = args.GetPositional("store");
  auto plan = storage::AnalyzeStore(path);
  if (!plan.ok()) {
    err << "error: " << plan.status() << "\n";
    return 2;
  }
  switch (plan->action) {
    case storage::RepairPlan::Action::kNone:
      out << path << ": already clean (" << plan->committed_size
          << " bytes committed); nothing to do\n";
      return 0;
    case storage::RepairPlan::Action::kUnrecoverable:
      err << "error: " << path << " is unrecoverable: " << plan->detail
          << "\n";
      return 3;
    case storage::RepairPlan::Action::kTruncateTail:
      out << path << ": " << plan->detail << "\n  "
          << (args.GetSwitch("apply") ? "truncating" : "would truncate")
          << " " << plan->torn_bytes << " torn bytes, keeping the "
          << plan->committed_size << " committed bytes\n";
      break;
    case storage::RepairPlan::Action::kRewriteFrontHeader:
      out << path << ": " << plan->detail << "\n  "
          << (args.GetSwitch("apply") ? "rewriting" : "would rewrite")
          << " the front header from the commit trailer ("
          << plan->committed_size << " bytes committed)\n";
      break;
  }
  if (!args.GetSwitch("apply")) {
    out << "  dry run: nothing modified (pass --apply to repair)\n";
    return 0;
  }
  Status applied = storage::ApplyRepair(path, *plan);
  if (!applied.ok()) {
    err << "error: " << applied << "\n";
    return 1;
  }
  out << "  repaired: " << path << " now opens clean ("
      << plan->committed_size << " bytes)\n";
  return 0;
}

// --- inspect ----------------------------------------------------------

int InspectCommand(const std::vector<const char*>& argv,
                   std::ostream& out, std::ostream& err) {
  ArgParser args("flipper_cli inspect",
                 "Validate a FlipperStore (.fdb) file and print its "
                 "header, section table and checksum state.");
  args.AddPositional("store", "the .fdb file to inspect");

  Status parse_status =
      args.Parse(static_cast<int>(argv.size()), argv.data());
  if (!parse_status.ok()) {
    err << "error: " << parse_status << "\n\n" << args.HelpText();
    return 2;
  }
  if (args.help_requested()) {
    out << args.HelpText();
    return 0;
  }

  const std::string& path = args.GetPositional("store");
  auto reader = storage::StoreReader::Open(path);
  if (!reader.ok()) {
    err << "error: " << reader.status() << "\n";
    // A failed open is where a diagnosis is most useful: say *which*
    // region is bad and whether repair can help, not just that the
    // open failed.
    auto diagnosis = storage::DiagnoseStore(path);
    if (diagnosis.ok()) {
      err << "diagnosis:\n";
      PrintFindings(*diagnosis, err);
      const storage::RepairPlan& plan = diagnosis->plan;
      if (plan.action == storage::RepairPlan::Action::kTruncateTail ||
          plan.action ==
              storage::RepairPlan::Action::kRewriteFrontHeader) {
        err << "the last committed state (" << plan.committed_size
            << " bytes) is intact: run `flipper_cli repair " << path
            << " --apply` to restore it\n";
      }
    }
    return 1;
  }
  const storage::FileHeader& h = reader->header();
  out << path << ": FlipperStore v" << h.version << ", "
      << FormatBytes(static_cast<int64_t>(reader->file_size()))
      << (reader->mapped() ? " (mmap)" : " (heap)") << "\n"
      << "  transactions: "
      << FormatCount(static_cast<int64_t>(h.num_transactions))
      << "  items: " << FormatCount(static_cast<int64_t>(h.num_items))
      << "  max width: " << h.max_width << "\n"
      << "  alphabet: " << h.alphabet_size
      << "  dictionary: " << h.dict_size << " names\n"
      << "  taxonomy: height " << reader->taxonomy().height() << ", "
      << h.taxonomy_num_roots << " roots, id space "
      << h.taxonomy_id_space << "\n"
      << "  segments: " << h.num_segments << "\n"
      << "  sections:\n";
  for (const storage::SectionEntry& e : reader->sections()) {
    out << "    " << storage::SectionIdName(storage::SectionId(e.id))
        << ": offset " << e.offset << ", "
        << FormatBytes(static_cast<int64_t>(e.size)) << "\n";
  }
  if (const SegmentCatalog* catalog = reader->catalog()) {
    out << "  catalog: " << catalog->num_segments() << " segments, "
        << catalog->tracked_ids().size() << " tracked items, "
        << catalog->bitset_bits() << "-bit segment bitsets, mean fill "
        << FormatDouble(catalog->MeanBitsetFill() * 100.0, 1) << "%\n";
    if (!catalog->tracked_ids().empty()) {
      out << "  tracked:";
      for (ItemId id : catalog->tracked_ids()) {
        out << " " << reader->dict().Name(id);
      }
      out << "\n";
    }
  } else {
    out << "  catalog: none (v" << h.version
        << " stores carry no segment catalog)\n";
  }
  Status checksums = reader->VerifyChecksums();
  if (!checksums.ok()) {
    err << "error: " << checksums << "\n";
    return 1;
  }
  out << "  checksums: OK\n";
  return 0;
}

// --- datagen ----------------------------------------------------------

int DatagenCommand(const std::vector<const char*>& argv,
                   std::ostream& out, std::ostream& err) {
  ArgParser args("flipper_cli datagen",
                 "Generate a synthetic dataset (the paper's §5 "
                 "workloads) and write it straight to a FlipperStore "
                 "(.fdb) — no text intermediate.");
  args.AddPositional("scenario", "groceries|census|medline|quest");
  args.AddPositional("output", "the .fdb file to write");
  args.AddFlag("txns",
               "transaction count (default: the scenario's paper size)",
               "N");
  args.AddFlag("seed", "generator seed (default: scenario default)",
               "N");
  args.AddFlag("phases",
               "quest only: split the stream into N consecutive phases "
               "drawing from disjoint pattern-pool slices (temporal "
               "skew; default 0 = stationary)",
               "N");
  AddWriterFlags(&args);

  Status parse_status =
      args.Parse(static_cast<int>(argv.size()), argv.data());
  if (!parse_status.ok()) {
    err << "error: " << parse_status << "\n\n" << args.HelpText();
    return 2;
  }
  if (args.help_requested()) {
    out << args.HelpText();
    return 0;
  }
  auto options = ParseWriterOptions(args);
  if (!options.ok()) {
    err << "error: " << options.status() << "\n";
    return 2;
  }
  auto txns = args.GetInt("txns", 0);
  auto seed = args.GetInt("seed", -1);
  auto phases = args.GetInt("phases", 0);
  if (!txns.ok() || !seed.ok() || !phases.ok()) {
    err << "error: "
        << (!txns.ok() ? txns.status()
                       : (!seed.ok() ? seed.status() : phases.status()))
        << "\n";
    return 2;
  }
  if (*txns < 0 || *txns > std::numeric_limits<uint32_t>::max()) {
    err << "error: --txns must be a non-negative 32-bit count\n";
    return 2;
  }
  if (*phases < 0 || *phases > std::numeric_limits<uint32_t>::max()) {
    err << "error: --phases must be a non-negative 32-bit count\n";
    return 2;
  }
  const auto num_txns = static_cast<uint32_t>(*txns);

  const std::string& scenario = args.GetPositional("scenario");
  if (scenario != "groceries" && scenario != "census" &&
      scenario != "medline" && scenario != "quest") {
    err << "error: scenario must be groceries|census|medline|quest, "
           "got '"
        << scenario << "'\n";
    return 2;
  }
  if (*phases > 0 && scenario != "quest") {
    err << "error: --phases is only supported by the quest scenario\n";
    return 2;
  }
  ItemDictionary dict;
  Taxonomy taxonomy;
  TransactionDb db;
  if (scenario == "quest") {
    TaxonomyGenParams tax_params;  // paper §5.1: 10 roots x fanout 5
    auto built = GenerateBalancedTaxonomy(tax_params, &dict);
    if (!built.ok()) {
      err << "error: " << built.status() << "\n";
      return 1;
    }
    taxonomy = std::move(built).value();
    QuestParams params;
    if (num_txns > 0) params.num_transactions = num_txns;
    if (*seed >= 0) params.seed = static_cast<uint64_t>(*seed);
    params.phases = static_cast<uint32_t>(*phases);
    auto generated = GenerateQuest(params, taxonomy);
    if (!generated.ok()) {
      err << "error: " << generated.status() << "\n";
      return 1;
    }
    db = std::move(generated).value();
  } else {
    Result<SimulatedDataset> generated = [&]() {
      if (scenario == "groceries") {
        GroceriesParams params;
        if (num_txns > 0) params.num_transactions = num_txns;
        if (*seed >= 0) params.seed = static_cast<uint64_t>(*seed);
        return GenerateGroceries(params);
      }
      if (scenario == "census") {
        CensusParams params;
        if (num_txns > 0) params.num_records = num_txns;
        if (*seed >= 0) params.seed = static_cast<uint64_t>(*seed);
        return GenerateCensus(params);
      }
      MedlineParams params;
      if (num_txns > 0) params.num_citations = num_txns;
      if (*seed >= 0) params.seed = static_cast<uint64_t>(*seed);
      return GenerateMedline(params);
    }();
    if (!generated.ok()) {
      err << "error: " << generated.status() << "\n";
      return 1;
    }
    dict = std::move(generated->dict);
    taxonomy = std::move(generated->taxonomy);
    db = std::move(generated->db);
  }

  const std::string& output = args.GetPositional("output");
  Status written =
      storage::WriteStoreFile(output, db, dict, taxonomy, *options);
  if (!written.ok()) {
    err << "error: " << written << "\n";
    return 1;
  }
  out << "wrote " << output << " (v" << options->version
      << "): " << scenario << ", "
      << FormatCount(static_cast<int64_t>(db.size()))
      << " transactions, "
      << FormatCount(static_cast<int64_t>(db.total_items())) << " items, "
      << dict.size() << " names\n";
  return 0;
}

// --- serve / query / loadgen ------------------------------------------

#ifndef _WIN32

/// Write end of the serve command's signal self-pipe. The handler may
/// only do async-signal-safe work, so it writes one byte here; a
/// helper thread blocked on the read end performs the actual graceful
/// Stop(). -1 while no serve command is active.
std::atomic<int> g_serve_signal_wfd{-1};

void HandleServeSignal(int) {
  const int wfd = g_serve_signal_wfd.load(std::memory_order_relaxed);
  if (wfd >= 0) {
    const char byte = 1;
    // The pipe is never full (one byte per signal, drained promptly);
    // a failed write just means we are already tearing down.
    [[maybe_unused]] const ssize_t n = ::write(wfd, &byte, 1);
  }
}

#endif  // !_WIN32

/// Range-checked int flag for the service commands; usage errors quote
/// the flag and land on exit 2 in the caller.
Result<int64_t> GetCheckedInt(const ArgParser& args,
                              const std::string& key, int64_t fallback,
                              int64_t lo, int64_t hi) {
  FLIPPER_ASSIGN_OR_RETURN(int64_t v, args.GetInt(key, fallback));
  if (v < lo || v > hi) {
    return Status::InvalidArgument(
        "--" + key + " must be in [" + std::to_string(lo) + ", " +
        std::to_string(hi) + "], got '" + args.GetString(key, "") + "'");
  }
  return v;
}

int ServeCommand(const std::vector<const char*>& argv, std::ostream& out,
                 std::ostream& err) {
  ArgParser args(
      "flipper_cli serve",
      "Run the long-lived mining daemon: mmap the given FlipperStore "
      "(.fdb) files once, pre-build their level views, and serve "
      "framed `mine`/`stats`/`list`/`ping`/`shutdown` requests over a "
      "unix-domain socket. Queries run through the re-entrant miner "
      "over the shared store views behind FIFO admission control and "
      "a result cache; per-query results are byte-identical to solo "
      "`flipper_cli mine` runs with the same options.");
  args.AddFlag("socket", "unix-domain socket path to listen on", "PATH");
  args.AddFlag("stores",
               "comma-separated NAME=PATH.fdb store registrations",
               "NAME=PATH,...");
  args.AddFlag("max-concurrent",
               "mining queries executing at once (default 8)", "N");
  args.AddFlag("max-queued",
               "waiting-room size before `error overloaded` "
               "(default 64)",
               "N");
  args.AddFlag("cache-mb",
               "result-cache budget in MiB, 0 disables (default 64)",
               "N");
  args.AddSwitch("no-validate",
                 "skip the stores' payload validation scan on open and "
                 "reload (trusted files only)");
  args.AddFlag("default-deadline-ms",
               "deadline applied to mine queries that send no "
               "deadline_ms of their own (default 0 = none)",
               "N");
  args.AddFlag("max-deadline-ms",
               "upper clamp on any query deadline; bounds even "
               "queries that sent none (default 0 = unlimited)",
               "N");
  args.AddFlag("drain-grace-ms",
               "how long shutdown lets in-flight queries finish "
               "before cancelling them (default 5000)",
               "N");
  args.AddFlag("io-timeout-ms",
               "per-call bound on socket reads/writes once a frame "
               "has started, 0 = unbounded (default 30000)",
               "N");
  args.AddFlag("pidfile",
               "write the daemon's pid here on startup, remove it on "
               "exit",
               "PATH");

  Status parse_status =
      args.Parse(static_cast<int>(argv.size()), argv.data());
  if (!parse_status.ok()) {
    err << "error: " << parse_status << "\n\n" << args.HelpText();
    return 2;
  }
  if (args.help_requested()) {
    out << args.HelpText();
    return 0;
  }

  service::ServerOptions options;
  options.socket_path = args.GetString("socket", "");
  if (options.socket_path.empty()) {
    err << "error: --socket is required\n\n" << args.HelpText();
    return 2;
  }
  const auto max_concurrent =
      GetCheckedInt(args, "max-concurrent", 8, 1, 1 << 16);
  const auto max_queued = GetCheckedInt(args, "max-queued", 64, 0, 1 << 20);
  const auto cache_mb = GetCheckedInt(args, "cache-mb", 64, 0, 1 << 20);
  const auto default_deadline_ms =
      GetCheckedInt(args, "default-deadline-ms", 0, 0, 24 * 3600 * 1000);
  const auto max_deadline_ms =
      GetCheckedInt(args, "max-deadline-ms", 0, 0, 24 * 3600 * 1000);
  const auto drain_grace_ms =
      GetCheckedInt(args, "drain-grace-ms", 5000, 0, 10 * 60 * 1000);
  const auto io_timeout_ms =
      GetCheckedInt(args, "io-timeout-ms", 30000, 0, 10 * 60 * 1000);
  for (const auto* checked :
       {&max_concurrent, &max_queued, &cache_mb, &default_deadline_ms,
        &max_deadline_ms, &drain_grace_ms, &io_timeout_ms}) {
    if (!checked->ok()) {
      err << "error: " << checked->status() << "\n\n" << args.HelpText();
      return 2;
    }
  }
  options.max_concurrent = static_cast<int>(*max_concurrent);
  options.max_queued = static_cast<int>(*max_queued);
  options.cache_bytes = static_cast<size_t>(*cache_mb) << 20;
  options.validate_stores = !args.GetSwitch("no-validate");
  options.default_deadline_ms = static_cast<int>(*default_deadline_ms);
  options.max_deadline_ms = static_cast<int>(*max_deadline_ms);
  options.drain_grace_ms = static_cast<int>(*drain_grace_ms);
  options.io_timeout_ms = static_cast<int>(*io_timeout_ms);

  const std::string stores = args.GetString("stores", "");
  if (stores.empty()) {
    err << "error: --stores is required\n\n" << args.HelpText();
    return 2;
  }
  service::Server server(options);
  size_t num_stores = 0;
  for (const std::string& spec : Split(stores, ',')) {
    const size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
      err << "error: --stores entries must be NAME=PATH, got '" << spec
          << "'\n\n"
          << args.HelpText();
      return 2;
    }
    Status added =
        server.AddStore(spec.substr(0, eq), spec.substr(eq + 1));
    if (!added.ok()) {
      err << "error: " << added << "\n";
      return 1;
    }
    ++num_stores;
  }

  Status started = server.Start();
  if (!started.ok()) {
    err << "error: " << started << "\n";
    return 1;
  }
#ifndef _WIN32
  const std::string pidfile = args.GetString("pidfile", "");
  if (!pidfile.empty()) {
    std::ofstream pf(pidfile, std::ios::trunc);
    pf << ::getpid() << "\n";
    pf.flush();
    if (!pf) {
      err << "error: cannot write pidfile '" << pidfile << "'\n";
      server.Stop();
      return 1;
    }
  }
  // SIGINT/SIGTERM request the same graceful drain as the `shutdown`
  // verb. The handler only writes to a self-pipe; this helper thread
  // does the real Stop() (which is idempotent against the shutdown
  // verb racing it).
  int sig_pipe[2] = {-1, -1};
  std::thread signal_thread;
  struct sigaction old_int {};
  struct sigaction old_term {};
  if (::pipe(sig_pipe) == 0) {
    g_serve_signal_wfd.store(sig_pipe[1], std::memory_order_relaxed);
    struct sigaction sa {};
    sa.sa_handler = HandleServeSignal;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, &old_int);
    ::sigaction(SIGTERM, &sa, &old_term);
    signal_thread = std::thread([&server, rfd = sig_pipe[0]] {
      char byte;
      // Blocks until a signal writes a byte, or teardown closes the
      // write end (read returns 0: exit without stopping again).
      if (::read(rfd, &byte, 1) > 0) server.Stop();
    });
  }
#endif
  // The readiness line: scripts wait for it (or ping) before sending
  // queries. Flush so a pipe-captured stdout sees it immediately.
  out << "serving " << num_stores << " store"
      << (num_stores == 1 ? "" : "s") << " on " << server.socket_path()
      << "\n";
  out.flush();
  server.Wait();
#ifndef _WIN32
  if (sig_pipe[1] >= 0) {
    ::sigaction(SIGINT, &old_int, nullptr);
    ::sigaction(SIGTERM, &old_term, nullptr);
    g_serve_signal_wfd.store(-1, std::memory_order_relaxed);
    ::close(sig_pipe[1]);  // wakes the helper if no signal ever came
    if (signal_thread.joinable()) signal_thread.join();
    ::close(sig_pipe[0]);
  }
  if (!pidfile.empty()) ::unlink(pidfile.c_str());
#endif

  const MetricsRegistry::Snapshot summary = server.metrics().Snap();
  const auto counter = [&summary](const std::string& name) -> int64_t {
    const auto it = summary.counters.find(name);
    return it == summary.counters.end() ? 0 : it->second;
  };
  out << "shutdown: " << counter("queries.total") << " queries ("
      << counter("queries.ok") << " ok, " << counter("queries.rejected")
      << " rejected), " << counter("cache.hits") << " cache hits\n";
  return 0;
}

int QueryCommand(const std::vector<const char*>& argv, std::ostream& out,
                 std::ostream& err) {
  ArgParser args(
      "flipper_cli query",
      "Send one request to a running serve daemon. The response body "
      "goes to stdout (for `mine` it is byte-identical to a solo "
      "`flipper_cli mine` run with the same options); response meta "
      "lines go to stderr as `# key value`.");
  args.AddFlag("socket", "the daemon's unix-domain socket path", "PATH");
  args.AddFlag("op", "mine|stats|list|ping|shutdown (default mine)",
               "VERB");
  args.AddFlag("store", "which registered store to mine", "NAME");
  args.AddFlag("wait-ms",
               "retry the connection until the daemon answers a ping "
               "or this many ms elapse (default 0 = single attempt)",
               "N");
  args.AddFlag("deadline-ms",
               "per-query deadline: sent to the daemon as the mine "
               "deadline and, plus slack, bounding this client's "
               "socket waits (default 0 = none)",
               "N");
  args.AddSwitch("no-cache",
                 "ask the daemon to bypass its result cache for this "
                 "query");
  args.AddFlag("gamma", "positive correlation threshold", "FLOAT");
  args.AddFlag("epsilon", "negative correlation threshold", "FLOAT");
  args.AddFlag("minsup", "comma-separated per-level minimum supports",
               "F1,F2,...");
  args.AddFlag("measure", "correlation measure name", "NAME");
  args.AddFlag("pruning", "full|tpg|flipping|support", "NAME");
  args.AddFlag("counter", "horizontal|vertical", "NAME");
  args.AddFlag("threads", "worker threads for counting", "N");
  args.AddFlag("pipeline", "on|off", "MODE");
  args.AddFlag("row-overlap", "on|off", "MODE");
  args.AddFlag("arena-counters", "on|off", "MODE");
  args.AddFlag("segment-skipping", "on|off", "MODE");
  args.AddFlag("flat-trie", "on|off", "MODE");
  args.AddFlag("txn-prefilter", "on|off", "MODE");
  args.AddFlag("topk", "keep only the K widest flips", "K");
  args.AddFlag("format", "text|csv|json (default text)", "NAME");

  Status parse_status =
      args.Parse(static_cast<int>(argv.size()), argv.data());
  if (!parse_status.ok()) {
    err << "error: " << parse_status << "\n\n" << args.HelpText();
    return 2;
  }
  if (args.help_requested()) {
    out << args.HelpText();
    return 0;
  }

  const std::string socket_path = args.GetString("socket", "");
  if (socket_path.empty()) {
    err << "error: --socket is required\n\n" << args.HelpText();
    return 2;
  }
  const std::string op = args.GetString("op", "mine");
  if (op != "mine" && op != "stats" && op != "list" && op != "ping" &&
      op != "shutdown") {
    err << "error: --op must be mine|stats|list|ping|shutdown, got '"
        << op << "'\n\n"
        << args.HelpText();
    return 2;
  }
  const auto wait_ms =
      GetCheckedInt(args, "wait-ms", 0, 0, 10 * 60 * 1000);
  const auto deadline_ms =
      GetCheckedInt(args, "deadline-ms", 0, 0, 10 * 60 * 1000);
  for (const auto* checked : {&wait_ms, &deadline_ms}) {
    if (!checked->ok()) {
      err << "error: " << checked->status() << "\n\n" << args.HelpText();
      return 2;
    }
  }

  service::Request request;
  request.verb = op;
  if (op == "mine") {
    const std::string store = args.GetString("store", "");
    if (store.empty()) {
      err << "error: --store is required for --op mine\n\n"
          << args.HelpText();
      return 2;
    }
    request.params.emplace_back("store", store);
    // Validate every mine option client-side with the same checked
    // parser the daemon runs, so a typo fails here as a usage error
    // (exit 2) instead of a round trip.
    service::MineRequest probe;
    for (const std::string& key : service::MineOptionKeys()) {
      if (!args.Has(key)) continue;
      const std::string value = args.GetString(key, "");
      const Status applied =
          service::ApplyMineOption(&probe, key, value);
      if (!applied.ok()) {
        err << "error: " << applied << "\n\n" << args.HelpText();
        return 2;
      }
      request.params.emplace_back(key, value);
    }
    if (args.GetSwitch("no-cache")) {
      request.params.emplace_back("cache", "off");
    }
    if (*deadline_ms > 0) {
      request.params.emplace_back("deadline_ms",
                                  std::to_string(*deadline_ms));
    }
  }

  auto client =
      *wait_ms > 0
          ? service::Client::ConnectWithRetry(socket_path,
                                              static_cast<int>(*wait_ms))
          : service::Client::Connect(socket_path);
  if (!client.ok()) {
    err << "error: " << client.status() << "\n";
    return 1;
  }
  // The daemon answers a deadlined query within its deadline plus
  // admission/render overhead; the slack keeps a healthy-but-busy
  // daemon from tripping the client bound first.
  const int io_timeout_ms =
      *deadline_ms > 0 ? static_cast<int>(*deadline_ms) + 5000 : 0;
  auto response = client->Call(request, io_timeout_ms);
  if (!response.ok()) {
    err << "error: " << response.status() << "\n";
    return 1;
  }
  for (const auto& [key, value] : response->meta) {
    err << "# " << key << " " << value << "\n";
  }
  if (!response->ok) {
    err << "error: " << response->error << "\n";
    return 1;
  }
  out << response->body;
  return 0;
}

/// The loadgen request mix: distinct output-affecting configs, so the
/// daemon's cache cannot satisfy one variant from another, plus enough
/// repetition per variant to guarantee cache hits.
const std::vector<std::vector<std::pair<std::string, std::string>>>&
LoadgenVariants() {
  static const std::vector<
      std::vector<std::pair<std::string, std::string>>>
      kVariants = {
          {{"format", "csv"}},
          {{"format", "csv"}, {"counter", "vertical"}, {"topk", "5"}},
          {{"format", "csv"}, {"gamma", "0.5"}, {"pipeline", "off"}},
          {{"format", "json"}, {"epsilon", "0.05"}},
      };
  return kVariants;
}

int LoadgenCommand(const std::vector<const char*>& argv,
                   std::ostream& out, std::ostream& err) {
  ArgParser args(
      "flipper_cli loadgen",
      "Drive a running serve daemon with concurrent mining queries "
      "cycling through a fixed grid of configurations, byte-verifying "
      "every response against a solo in-process mine of the same "
      "store (--expect-from) and reporting client-side latency "
      "percentiles and cache hits. Exits non-zero on any failed "
      "query or body mismatch.");
  args.AddFlag("socket", "the daemon's unix-domain socket path", "PATH");
  args.AddFlag("store", "which registered store to mine", "NAME");
  args.AddFlag("requests", "total requests to send (default 32)", "N");
  args.AddFlag("connections",
               "concurrent client connections (default 8)", "N");
  args.AddFlag("wait-ms",
               "daemon readiness timeout per connection (default "
               "10000)",
               "N");
  args.AddFlag("expect-from",
               "the daemon's .fdb file for this store; loadgen mines "
               "it solo per variant and byte-compares every response "
               "body against that expectation",
               "PATH");
  args.AddFlag("deadline-ms",
               "per-request deadline_ms param sent with every mine "
               "(default 0 = none)",
               "N");
  args.AddFlag("chaos",
               "after the main run, torture the daemon with this many "
               "fault-injected connections (random mid-frame kills "
               "and stalls in both directions), then verify it still "
               "serves (default 0)",
               "N");
  args.AddFlag("chaos-seed",
               "rng seed for the chaos fault offsets (default 1)",
               "N");

  Status parse_status =
      args.Parse(static_cast<int>(argv.size()), argv.data());
  if (!parse_status.ok()) {
    err << "error: " << parse_status << "\n\n" << args.HelpText();
    return 2;
  }
  if (args.help_requested()) {
    out << args.HelpText();
    return 0;
  }

  const std::string socket_path = args.GetString("socket", "");
  const std::string store = args.GetString("store", "");
  if (socket_path.empty() || store.empty()) {
    err << "error: --socket and --store are required\n\n"
        << args.HelpText();
    return 2;
  }
  const auto requests = GetCheckedInt(args, "requests", 32, 1, 1 << 20);
  const auto connections =
      GetCheckedInt(args, "connections", 8, 1, 1 << 10);
  const auto wait_ms =
      GetCheckedInt(args, "wait-ms", 10000, 1, 10 * 60 * 1000);
  const auto deadline_ms =
      GetCheckedInt(args, "deadline-ms", 0, 0, 10 * 60 * 1000);
  const auto chaos = GetCheckedInt(args, "chaos", 0, 0, 1 << 20);
  const auto chaos_seed = GetCheckedInt(
      args, "chaos-seed", 1, 0, std::numeric_limits<int64_t>::max());
  for (const auto* checked : {&requests, &connections, &wait_ms,
                              &deadline_ms, &chaos, &chaos_seed}) {
    if (!checked->ok()) {
      err << "error: " << checked->status() << "\n\n" << args.HelpText();
      return 2;
    }
  }

  const auto& variants = LoadgenVariants();
  // Solo expectations: mine the store in-process, one run per variant,
  // through the same ExecuteMineRequest the daemon uses — the byte
  // oracle for every response.
  std::vector<std::string> expected;
  const std::string expect_from = args.GetString("expect-from", "");
  if (!expect_from.empty()) {
    auto reader = storage::StoreReader::Open(expect_from);
    if (!reader.ok()) {
      err << "error: " << reader.status() << "\n";
      return 1;
    }
    for (const auto& params : variants) {
      auto mine = service::MineRequestFromParams(params);
      if (!mine.ok()) {
        err << "error: " << mine.status() << "\n";
        return 1;
      }
      auto outcome = service::ExecuteMineRequest(
          reader->db(), reader->taxonomy(), &reader->dict(), nullptr,
          *mine, nullptr);
      if (!outcome.ok()) {
        err << "error: solo expectation mine failed: "
            << outcome.status() << "\n";
        return 1;
      }
      expected.push_back(std::move(outcome->body));
    }
  }

  const int64_t total = *requests;
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> failures{0};
  std::atomic<int64_t> mismatches{0};
  std::atomic<int64_t> cache_hits{0};
  std::mutex report_mu;
  std::vector<double> latencies_ms;
  std::vector<std::string> error_lines;
  const auto record_error = [&](std::string line) {
    std::lock_guard<std::mutex> lock(report_mu);
    if (error_lines.size() < 8) error_lines.push_back(std::move(line));
  };

  WallTimer wall;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(*connections));
  for (int64_t c = 0; c < *connections; ++c) {
    workers.emplace_back([&]() {
      auto client = service::Client::ConnectWithRetry(
          socket_path, static_cast<int>(*wait_ms));
      if (!client.ok()) {
        // Every request this worker would have taken counts as failed.
        while (next.fetch_add(1) < total) failures.fetch_add(1);
        record_error("connect: " + client.status().ToString());
        return;
      }
      // Transient `error overloaded` responses (the waiting room
      // momentarily full) are retried with jittered backoff instead
      // of counting as failures; decorrelate workers by seed.
      JitteredBackoff::Options retry_options;
      retry_options.initial_ms = 5;
      retry_options.max_ms = 200;
      JitteredBackoff retry_backoff(
          0x6c6f6164u ^ static_cast<uint64_t>(next.load()),
          retry_options);
      const int io_timeout_ms =
          *deadline_ms > 0 ? static_cast<int>(*deadline_ms) + 5000 : 0;
      while (true) {
        const int64_t r = next.fetch_add(1);
        if (r >= total) break;
        const size_t v = static_cast<size_t>(r) % variants.size();
        service::Request request;
        request.verb = "mine";
        request.params.emplace_back("store", store);
        for (const auto& [key, value] : variants[v]) {
          request.params.emplace_back(key, value);
        }
        if (*deadline_ms > 0) {
          request.params.emplace_back("deadline_ms",
                                      std::to_string(*deadline_ms));
        }
        WallTimer timer;
        auto response = client->Call(request, io_timeout_ms);
        for (int attempt = 0;
             attempt < 6 && response.ok() && !response->ok &&
             response->error.find("overloaded") != std::string::npos;
             ++attempt) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(retry_backoff.NextDelayMs()));
          response = client->Call(request, io_timeout_ms);
        }
        retry_backoff.Reset();
        const double ms = timer.ElapsedMillis();
        if (!response.ok() || !response->ok) {
          failures.fetch_add(1);
          record_error("request " + std::to_string(r) + ": " +
                       (response.ok() ? response->error
                                      : response.status().ToString()));
          continue;
        }
        if (response->Meta("cache") == "hit") cache_hits.fetch_add(1);
        if (!expected.empty() && response->body != expected[v]) {
          mismatches.fetch_add(1);
          record_error("request " + std::to_string(r) + ": body of " +
                       std::to_string(response->body.size()) +
                       " bytes differs from the solo mine's " +
                       std::to_string(expected[v].size()) + " bytes");
        }
        std::lock_guard<std::mutex> lock(report_mu);
        latencies_ms.push_back(ms);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed_s = wall.ElapsedSeconds();

  int64_t chaos_run = 0;
  bool chaos_healthy = true;
#ifndef _WIN32
  if (*chaos > 0) {
    // Chaos pass: fault-injected connections that kill or stall the
    // socket at random byte offsets in both directions — mid-prefix,
    // mid-payload, anywhere. Any client-side outcome is acceptable;
    // what must hold is that the daemon still serves afterwards.
    std::atomic<int64_t> chaos_next{0};
    const int64_t chaos_total = *chaos;
    const uint64_t seed = static_cast<uint64_t>(*chaos_seed);
    std::vector<std::thread> chaos_workers;
    const int64_t chaos_threads =
        std::min<int64_t>(*connections, chaos_total);
    for (int64_t t = 0; t < chaos_threads; ++t) {
      chaos_workers.emplace_back([&]() {
        while (true) {
          const int64_t r = chaos_next.fetch_add(1);
          if (r >= chaos_total) break;
          Rng rng(seed +
                  static_cast<uint64_t>(r) * 0x9e3779b97f4a7c15ull);
          auto fd = service::Client::ConnectRawFd(socket_path);
          if (!fd.ok()) continue;  // daemon momentarily busy: fine
          service::Request request;
          request.verb = "mine";
          request.params.emplace_back("store", store);
          for (const auto& [key, value] :
               variants[static_cast<size_t>(r) % variants.size()]) {
            request.params.emplace_back(key, value);
          }
          const std::string payload = service::EncodeRequest(request);
          const uint64_t frame_bytes = payload.size() + 4;
          service::StreamFaultPlan plan;
          switch (rng.Below(4)) {
            case 0:
              plan.kill_after_write_bytes = rng.Below(frame_bytes + 1);
              break;
            case 1:
              plan.kill_after_read_bytes = rng.Below(64);
              break;
            case 2:
              plan.stall_before_write_byte = rng.Below(frame_bytes + 1);
              plan.stall_ms = 10 + static_cast<int>(rng.Below(40));
              break;
            default:
              plan.stall_before_read_byte = rng.Below(64);
              plan.stall_ms = 10 + static_cast<int>(rng.Below(40));
              break;
          }
          service::FaultInjectingStream stream(*fd, plan);
          service::FrameIo io;
          io.idle_timeout_ms = 2000;
          io.io_timeout_ms = 2000;
          if (service::WriteFrame(&stream, payload, io).ok()) {
            (void)service::ReadFrame(&stream, io);
          }
          ::close(*fd);
        }
      });
    }
    for (std::thread& w : chaos_workers) w.join();
    chaos_run = chaos_total;
    // Post-storm health check: a fresh connection must complete a
    // real mine (byte-verified when an oracle is available).
    auto survivor = service::Client::ConnectWithRetry(
        socket_path, static_cast<int>(*wait_ms));
    bool healthy = false;
    if (survivor.ok()) {
      service::Request request;
      request.verb = "mine";
      request.params.emplace_back("store", store);
      for (const auto& [key, value] : variants[0]) {
        request.params.emplace_back(key, value);
      }
      auto response = survivor->Call(request, 60000);
      healthy = response.ok() && response->ok &&
                (expected.empty() || response->body == expected[0]);
    }
    chaos_healthy = healthy;
    if (!healthy) record_error("daemon unhealthy after the chaos pass");
  }
#endif  // !_WIN32

  // Nearest-rank percentiles over the client-observed latencies.
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const auto percentile = [&latencies_ms](double p) {
    if (latencies_ms.empty()) return 0.0;
    size_t rank = static_cast<size_t>(
        p * static_cast<double>(latencies_ms.size()) / 100.0);
    if (rank >= latencies_ms.size()) rank = latencies_ms.size() - 1;
    return latencies_ms[rank];
  };
  out << "loadgen: " << total << " requests over " << *connections
      << " connections in " << FormatDouble(elapsed_s, 2) << " s: "
      << failures.load() << " failed, " << mismatches.load()
      << " mismatched, " << cache_hits.load() << " cache hits"
      << (expected.empty() ? " (no --expect-from; bodies unverified)"
                           : "")
      << "\n"
      << "latency ms: p50 " << FormatDouble(percentile(50), 2)
      << ", p95 " << FormatDouble(percentile(95), 2) << ", max "
      << FormatDouble(latencies_ms.empty() ? 0.0 : latencies_ms.back(),
                      2)
      << "\n";
  if (chaos_run > 0) {
    out << "chaos: " << chaos_run << " fault-injected requests, daemon "
        << (chaos_healthy ? "healthy" : "UNHEALTHY") << "\n";
  }
  for (const std::string& line : error_lines) {
    err << "error: " << line << "\n";
  }
  return failures.load() > 0 || mismatches.load() > 0 || !chaos_healthy
             ? 1
             : 0;
}

constexpr char kTopLevelHelp[] =
    "flipper_cli — flipping-correlation mining toolkit\n"
    "\n"
    "usage:\n"
    "  flipper_cli mine <basket> <taxonomy> [flags]\n"
    "  flipper_cli mine --input <data.fdb> [flags]\n"
    "  flipper_cli convert <basket> <taxonomy> <out.fdb>\n"
    "  flipper_cli convert --from-fdb <in.fdb> <out.fdb> "
    "[--store-version N]\n"
    "  flipper_cli inspect <data.fdb>\n"
    "  flipper_cli validate <data.fdb>\n"
    "  flipper_cli repair <data.fdb> [--apply]\n"
    "  flipper_cli datagen <scenario> <out.fdb>\n"
    "  flipper_cli serve --socket <sock> --stores NAME=PATH,...\n"
    "  flipper_cli query --socket <sock> [--op mine] --store NAME "
    "[flags]\n"
    "  flipper_cli loadgen --socket <sock> --store NAME "
    "[--expect-from <data.fdb>]\n"
    "  flipper_cli <basket> <taxonomy> [flags]   (legacy: mine)\n"
    "\n"
    "run `flipper_cli <command> --help` for the command's flags.\n";

}  // namespace

int RunFlipperCli(int argc, const char* const* argv, std::ostream& out,
                  std::ostream& err) {
  const auto sub_argv = [&](const char* program) {
    std::vector<const char*> sub;
    sub.push_back(program);
    for (int i = 2; i < argc; ++i) sub.push_back(argv[i]);
    return sub;
  };
  if (argc >= 2) {
    const std::string_view command(argv[1]);
    if (command == "mine") {
      return MineCommand(sub_argv("flipper_cli mine"), out, err);
    }
    if (command == "convert") {
      return ConvertCommand(sub_argv("flipper_cli convert"), out, err);
    }
    if (command == "inspect") {
      return InspectCommand(sub_argv("flipper_cli inspect"), out, err);
    }
    if (command == "validate") {
      return ValidateCommand(sub_argv("flipper_cli validate"), out, err);
    }
    if (command == "repair") {
      return RepairCommand(sub_argv("flipper_cli repair"), out, err);
    }
    if (command == "datagen") {
      return DatagenCommand(sub_argv("flipper_cli datagen"), out, err);
    }
    if (command == "serve") {
      return ServeCommand(sub_argv("flipper_cli serve"), out, err);
    }
    if (command == "query") {
      return QueryCommand(sub_argv("flipper_cli query"), out, err);
    }
    if (command == "loadgen") {
      return LoadgenCommand(sub_argv("flipper_cli loadgen"), out, err);
    }
    if (argc == 2 && (command == "--help" || command == "-h")) {
      out << kTopLevelHelp;
      return 0;
    }
  }
  // Legacy spelling: flipper_cli <basket> <taxonomy> [flags].
  std::vector<const char*> legacy(argv, argv + argc);
  return MineCommand(legacy, out, err);
}

}  // namespace flipper
