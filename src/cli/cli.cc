#include "cli/cli.h"

#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/arg_parser.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "common/trace.h"
#include "core/pipeline_metrics.h"
#include "datagen/census_sim.h"
#include "datagen/groceries_sim.h"
#include "datagen/medline_sim.h"
#include "datagen/quest_gen.h"
#include "datagen/taxonomy_gen.h"
#include "flipper.h"
#include "storage/recovery.h"
#include "storage/store_reader.h"
#include "storage/store_writer.h"

namespace flipper {
namespace {

Result<std::vector<double>> ParseThresholds(const std::string& csv) {
  std::vector<double> out;
  for (const std::string& token : Split(csv, ',')) {
    FLIPPER_ASSIGN_OR_RETURN(double v, ParseDouble(token));
    out.push_back(v);
  }
  if (out.empty()) {
    return Status::InvalidArgument("--minsup needs at least one value");
  }
  return out;
}

Result<PruningOptions> ParsePruning(const std::string& name) {
  if (name == "full") return PruningOptions::Full();
  if (name == "tpg") return PruningOptions::FlippingTpg();
  if (name == "flipping") return PruningOptions::FlippingOnly();
  if (name == "support") return PruningOptions::Basic();
  return Status::InvalidArgument(
      "--pruning must be one of full|tpg|flipping|support, got '" +
      name + "'");
}

/// Writer options from --segment-txns and --store-version.
Result<storage::StoreWriter::Options> ParseWriterOptions(
    const ArgParser& args) {
  storage::StoreWriter::Options options;
  FLIPPER_ASSIGN_OR_RETURN(
      int64_t segment_txns,
      args.GetInt("segment-txns",
                  static_cast<int64_t>(options.segment_txns)));
  if (segment_txns <= 0 ||
      segment_txns > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument(
        "--segment-txns must be a positive 32-bit count");
  }
  options.segment_txns = static_cast<uint32_t>(segment_txns);
  FLIPPER_ASSIGN_OR_RETURN(
      int64_t version,
      args.GetInt("store-version",
                  static_cast<int64_t>(storage::kFormatVersionLatest)));
  if (version != storage::kFormatVersionV1 &&
      version != storage::kFormatVersionV2) {
    return Status::InvalidArgument("--store-version must be 1 or 2");
  }
  options.version = static_cast<uint32_t>(version);
  return options;
}

void AddWriterFlags(ArgParser* args) {
  args->AddFlag("segment-txns",
                "transactions per shard segment (default 65536)", "N");
  args->AddFlag("store-version",
                "on-disk format: 1 (raw columns, zero-copy mmap) or 2 "
                "(delta+varint columns + segment catalog; default)",
                "N");
}

// --- mine -------------------------------------------------------------

int MineCommand(const std::vector<const char*>& argv, std::ostream& out,
                std::ostream& err) {
  bool use_store = false;
  for (const char* arg : argv) {
    const std::string_view view(arg);
    if (view == "--input" || view.rfind("--input=", 0) == 0) {
      use_store = true;
      break;
    }
  }

  ArgParser args("flipper_cli mine",
                 "Mine flipping correlation patterns (Barsky et al., "
                 "VLDB 2011) from a basket file and a taxonomy file, "
                 "or from a binary FlipperStore (.fdb) via --input.");
  if (!use_store) {
    args.AddPositional("basket",
                       "transactions, one per line (item names)");
    args.AddPositional("taxonomy",
                       "'root <name>' / 'edge <parent> <child>' lines");
  }
  args.AddFlag("input", "mine a .fdb FlipperStore instead of text files",
               "PATH");
  args.AddSwitch("no-validate",
                 "with --input: skip the store's payload validation "
                 "scan (trusted files only)");
  args.AddFlag("gamma", "positive correlation threshold (default 0.3)",
               "FLOAT");
  args.AddFlag("epsilon", "negative correlation threshold (default 0.1)",
               "FLOAT");
  args.AddFlag("minsup",
               "comma-separated per-level minimum supports, most "
               "general level first (default 0.01,0.001,0.0005)",
               "F1,F2,...");
  args.AddFlag("measure",
               "all_confidence|coherence|cosine|kulczynski|"
               "max_confidence (default kulczynski)",
               "NAME");
  args.AddFlag("pruning", "full|tpg|flipping|support (default full)",
               "NAME");
  args.AddFlag("counter", "horizontal|vertical (default horizontal)",
               "NAME");
  args.AddFlag("threads",
               "worker threads for counting (default 0 = all hardware "
               "threads)",
               "N");
  args.AddFlag("pipeline",
               "on|off — overlap candidate generation with the "
               "previous cell's support scan (default on; results "
               "are identical either way)",
               "MODE");
  args.AddFlag("row-overlap",
               "on|off — extend the pipeline's speculation window "
               "across taxonomy rows (plan and start the next row's "
               "first cell while the current row's last cell counts; "
               "default on; only effective with --pipeline on; results "
               "are identical either way)",
               "MODE");
  args.AddFlag("arena-counters",
               "on|off — count scan-driven cells in the open-addressed "
               "bump-arena counter table instead of the hash-map "
               "baseline (default on; results are identical either "
               "way)",
               "MODE");
  args.AddFlag("segment-skipping",
               "on|off — let segment catalogs skip candidate-free "
               "segments during counting scans (default on; results "
               "are identical either way)",
               "MODE");
  args.AddFlag("flat-trie",
               "on|off — flat SoA candidate-trie layout with packed/"
               "galloping probe kernels (default on; off = legacy "
               "layer layout; results are identical either way)",
               "MODE");
  args.AddFlag("txn-prefilter",
               "on|off — reject/compact transactions through the "
               "candidate-item prefilter before the trie walk "
               "(default on; results are identical either way)",
               "MODE");
  args.AddFlag("topk", "keep only the K widest flips", "K");
  args.AddFlag("format", "text|csv|json (default text)", "NAME");
  args.AddFlag("out", "write patterns to a file instead of stdout",
               "PATH");
  args.AddSwitch("baseline",
                 "run the per-level Apriori baseline (NaiveMiner)");
  args.AddSwitch("stats", "print mining statistics to stderr");
  args.AddFlag("trace-out",
               "record pipeline spans during the run and write Chrome "
               "trace-event JSON (load in chrome://tracing or "
               "ui.perfetto.dev) to PATH",
               "PATH");
  args.AddFlag("metrics-json",
               "write the machine-readable run report (counters, "
               "per-stage latency histograms, pool utilization) to "
               "PATH, or '-' for stdout",
               "PATH");

  Status parse_status =
      args.Parse(static_cast<int>(argv.size()), argv.data());
  if (!parse_status.ok()) {
    err << "error: " << parse_status << "\n\n" << args.HelpText();
    return 2;
  }
  if (args.help_requested()) {
    out << args.HelpText();
    return 0;
  }

  // --- Load inputs: either the store's borrowed views or text. ---
  ItemDictionary text_dict;
  Taxonomy text_taxonomy;
  TransactionDb text_db;
  std::optional<storage::StoreReader> reader;
  const ItemDictionary* dict = &text_dict;
  const Taxonomy* taxonomy = &text_taxonomy;
  const TransactionDb* db = &text_db;
  if (use_store) {
    storage::OpenOptions open_options;
    open_options.validate = !args.GetSwitch("no-validate");
    auto opened = storage::StoreReader::Open(args.GetString("input", ""),
                                             open_options);
    if (!opened.ok()) {
      err << "error: " << opened.status() << "\n";
      return 1;
    }
    reader.emplace(std::move(opened).value());
    dict = &reader->dict();
    taxonomy = &reader->taxonomy();
    db = &reader->db();
  } else {
    auto loaded_taxonomy =
        ReadTaxonomyFile(args.GetPositional("taxonomy"), &text_dict);
    if (!loaded_taxonomy.ok()) {
      err << "error: " << loaded_taxonomy.status() << "\n";
      return 1;
    }
    text_taxonomy = std::move(loaded_taxonomy).value();
    auto loaded_db =
        ReadBasketFile(args.GetPositional("basket"), &text_dict);
    if (!loaded_db.ok()) {
      err << "error: " << loaded_db.status() << "\n";
      return 1;
    }
    text_db = std::move(loaded_db).value();
  }

  // --- Assemble the config. ---
  MiningConfig config;
  auto gamma = args.GetDouble("gamma", 0.3);
  auto epsilon = args.GetDouble("epsilon", 0.1);
  if (!gamma.ok() || !epsilon.ok()) {
    err << "error: " << (!gamma.ok() ? gamma.status() : epsilon.status())
        << "\n";
    return 2;
  }
  config.gamma = *gamma;
  config.epsilon = *epsilon;
  auto thresholds =
      ParseThresholds(args.GetString("minsup", "0.01,0.001,0.0005"));
  if (!thresholds.ok()) {
    err << "error: " << thresholds.status() << "\n";
    return 2;
  }
  config.min_support = *thresholds;
  auto measure =
      ParseMeasureKind(args.GetString("measure", "kulczynski"));
  if (!measure.ok()) {
    err << "error: " << measure.status() << "\n";
    return 2;
  }
  config.measure = *measure;
  auto pruning = ParsePruning(args.GetString("pruning", "full"));
  if (!pruning.ok()) {
    err << "error: " << pruning.status() << "\n";
    return 2;
  }
  config.pruning = *pruning;
  const std::string counter = args.GetString("counter", "horizontal");
  if (counter == "vertical") {
    config.counter = CounterKind::kVertical;
  } else if (counter != "horizontal") {
    err << "error: --counter must be horizontal|vertical\n";
    return 2;
  }
  auto threads = args.GetInt("threads", 0);
  if (!threads.ok()) {
    err << "error: " << threads.status() << "\n";
    return 2;
  }
  if (*threads < 0 || *threads > std::numeric_limits<int>::max()) {
    err << "error: --threads must be in [0, "
        << std::numeric_limits<int>::max() << "]\n";
    return 2;
  }
  config.num_threads = static_cast<int>(*threads);
  const std::string pipeline = args.GetString("pipeline", "on");
  if (pipeline == "off") {
    config.enable_pipelining = false;
  } else if (pipeline != "on") {
    err << "error: --pipeline must be on|off\n";
    return 2;
  }
  const std::string row_overlap = args.GetString("row-overlap", "on");
  if (row_overlap == "off") {
    config.enable_row_overlap = false;
  } else if (row_overlap != "on") {
    err << "error: --row-overlap must be on|off\n";
    return 2;
  }
  const std::string arena_counters =
      args.GetString("arena-counters", "on");
  if (arena_counters == "off") {
    config.enable_arena_scan_counters = false;
  } else if (arena_counters != "on") {
    err << "error: --arena-counters must be on|off\n";
    return 2;
  }
  const std::string skipping = args.GetString("segment-skipping", "on");
  if (skipping == "off") {
    config.enable_segment_skipping = false;
  } else if (skipping != "on") {
    err << "error: --segment-skipping must be on|off\n";
    return 2;
  }
  const std::string flat_trie = args.GetString("flat-trie", "on");
  if (flat_trie == "off") {
    config.enable_flat_trie = false;
  } else if (flat_trie != "on") {
    err << "error: --flat-trie must be on|off\n";
    return 2;
  }
  const std::string txn_prefilter = args.GetString("txn-prefilter", "on");
  if (txn_prefilter == "off") {
    config.enable_txn_prefilter = false;
  } else if (txn_prefilter != "on") {
    err << "error: --txn-prefilter must be on|off\n";
    return 2;
  }

  // --- Observability sinks. ---
  const std::string trace_path = args.GetString("trace-out", "");
  const std::string metrics_path = args.GetString("metrics-json", "");
  MetricsRegistry metrics;
  if (!metrics_path.empty()) config.metrics = &metrics;
  const bool tracing = !trace_path.empty();
  if (tracing) {
    // In-process callers (tests) may mine repeatedly; start from an
    // empty span store so the export covers exactly this run.
    trace::Clear();
    trace::SetEnabled(true);
  }

  // --- Mine. ---
  auto result = args.GetSwitch("baseline")
                    ? NaiveMiner::Run(*db, *taxonomy, config)
                    : FlipperMiner::Run(*db, *taxonomy, config);
  // The miner (and its pool) is gone here, so every span is closed
  // and published; stop recording before touching the buffers.
  if (tracing) trace::SetEnabled(false);
  if (!result.ok()) {
    err << "error: " << result.status() << "\n";
    return 1;
  }
  if (tracing) {
    std::ofstream trace_file(trace_path, std::ios::trunc);
    if (!trace_file) {
      err << "error: cannot open for writing: " << trace_path << "\n";
      return 1;
    }
    trace::ExportChromeJson(trace_file);
    trace_file.flush();
    if (!trace_file) {
      err << "error: write failed: " << trace_path << "\n";
      return 1;
    }
  }
  if (!metrics_path.empty()) {
    if (metrics_path == "-") {
      metrics.WriteJson(out);
    } else {
      std::ofstream metrics_file(metrics_path, std::ios::trunc);
      if (!metrics_file) {
        err << "error: cannot open for writing: " << metrics_path
            << "\n";
        return 1;
      }
      metrics.WriteJson(metrics_file);
      metrics_file.flush();
      if (!metrics_file) {
        err << "error: write failed: " << metrics_path << "\n";
        return 1;
      }
    }
  }
  std::vector<FlippingPattern> patterns = std::move(result->patterns);
  auto topk = args.GetInt("topk", 0);
  if (!topk.ok()) {
    err << "error: " << topk.status() << "\n";
    return 2;
  }
  if (*topk > 0) {
    patterns = TopKMostFlipping(std::move(patterns),
                                static_cast<size_t>(*topk));
  }

  // --- Emit. ---
  const std::string format = args.GetString("format", "text");
  const std::string out_path = args.GetString("out", "");
  Status emit;
  if (format == "csv") {
    emit = out_path.empty()
               ? WritePatternsCsv(patterns, dict, out)
               : WritePatternsCsvFile(patterns, dict, out_path);
  } else if (format == "json") {
    emit = out_path.empty()
               ? WritePatternsJson(patterns, dict, out)
               : WritePatternsJsonFile(patterns, dict, out_path);
  } else if (format == "text") {
    std::ofstream file;
    std::ostream* sink = &out;
    if (!out_path.empty()) {
      file.open(out_path, std::ios::trunc);
      if (!file) {
        emit = Status::IoError("cannot open for writing: " + out_path);
      }
      sink = &file;
    }
    if (emit.ok()) {
      *sink << patterns.size() << " flipping patterns\n\n";
      for (const FlippingPattern& p : patterns) {
        *sink << dict->Render(p.leaf_itemset) << "  (flip gap "
              << FormatDouble(p.FlipGap(), 4) << ")\n"
              << p.ToString(dict) << "\n";
      }
      if (!out_path.empty() && !file) {
        emit = Status::IoError("write failed: " + out_path);
      }
    }
  } else {
    err << "error: --format must be text|csv|json\n";
    return 2;
  }
  if (!emit.ok()) {
    err << "error: " << emit << "\n";
    return 1;
  }
  if (args.GetSwitch("stats")) {
    err << result->stats.ToString();
  }
  return 0;
}

// --- convert ----------------------------------------------------------

/// Re-encodes `reader`'s dataset (or fast-copies it when the target
/// version matches and no re-segmentation was requested) into
/// `output`. `same_file` says input and output are one file on disk
/// (any spelling, symlink or hardlink): writing would truncate the
/// store under the reader's live mapping, so it degrades the fast
/// path to validate-only and refuses the re-encode outright.
int ConvertFromStore(const storage::StoreReader& reader,
                     const std::string& input, const std::string& output,
                     const storage::StoreWriter::Options& options,
                     bool resegment, bool same_file, std::ostream& out,
                     std::ostream& err) {
  const uint32_t detected = reader.version();
  // Open() validates structure and semantics, but only the checksum
  // sweep compares bytes nothing else interprets (e.g. dictionary name
  // text) against what was written — run it on every path so bitrot is
  // never laundered into a "fresh" output file.
  Status checksums = reader.VerifyChecksums();
  if (!checksums.ok()) {
    err << "error: " << checksums << "\n";
    return 1;
  }
  if (detected == options.version && !resegment) {
    // Same version in and out: the input has already passed Open()'s
    // validation, so a byte copy is both faster and safer than a
    // decode/re-encode round trip.
    if (!same_file) {
      std::ifstream in_file(input, std::ios::binary);
      std::ofstream out_file(output,
                             std::ios::binary | std::ios::trunc);
      if (!in_file || !(out_file << in_file.rdbuf())) {
        err << "error: cannot copy " << input << " to " << output
            << "\n";
        return 1;
      }
    }
    if (same_file) {
      out << "validated " << input << " in place (already v" << detected
          << ", "
          << FormatBytes(static_cast<int64_t>(reader.file_size()))
          << "; nothing written)\n";
    } else {
      out << "wrote " << output << ": validated copy of " << input
          << " (already v" << detected << ", "
          << FormatBytes(static_cast<int64_t>(reader.file_size()))
          << ")\n";
    }
    return 0;
  }

  if (same_file) {
    err << "error: cannot re-encode " << input
        << " onto itself; write to a different path\n";
    return 2;
  }
  Status written = storage::WriteStoreFile(
      output, reader.db(), reader.dict(), reader.taxonomy(), options);
  if (!written.ok()) {
    err << "error: " << written << "\n";
    return 1;
  }
  auto reopened = storage::StoreReader::Open(output);
  if (!reopened.ok()) {
    err << "error: verification reopen failed: " << reopened.status()
        << "\n";
    return 1;
  }
  out << "wrote " << output << ": v" << detected << " -> v"
      << options.version << ", "
      << FormatCount(static_cast<int64_t>(reader.db().size()))
      << " transactions, "
      << FormatBytes(static_cast<int64_t>(reader.file_size())) << " -> "
      << FormatBytes(static_cast<int64_t>(reopened->file_size()))
      << "\n";
  return 0;
}

int ConvertCommand(const std::vector<const char*>& argv,
                   std::ostream& out, std::ostream& err) {
  bool from_store = false;
  for (const char* arg : argv) {
    const std::string_view view(arg);
    if (view == "--from-fdb" || view.rfind("--from-fdb=", 0) == 0) {
      from_store = true;
      break;
    }
  }

  ArgParser args("flipper_cli convert",
                 "Convert basket + taxonomy text files into a binary "
                 "FlipperStore (.fdb), or re-encode an existing store "
                 "between format versions via --from-fdb (e.g. a v2 -> "
                 "v1 downgrade for older readers).");
  if (!from_store) {
    args.AddPositional("basket",
                       "transactions, one per line (item names)");
    args.AddPositional("taxonomy",
                       "'root <name>' / 'edge <parent> <child>' lines");
  }
  args.AddPositional("output", "the .fdb file to write");
  args.AddFlag("from-fdb",
               "re-encode this .fdb store instead of parsing text "
               "(same-version conversions become a validated copy "
               "unless --segment-txns requests a re-shard)",
               "PATH");
  AddWriterFlags(&args);

  Status parse_status =
      args.Parse(static_cast<int>(argv.size()), argv.data());
  if (!parse_status.ok()) {
    err << "error: " << parse_status << "\n\n" << args.HelpText();
    return 2;
  }
  if (args.help_requested()) {
    out << args.HelpText();
    return 0;
  }
  auto options = ParseWriterOptions(args);
  if (!options.ok()) {
    err << "error: " << options.status() << "\n";
    return 2;
  }
  const std::string& output = args.GetPositional("output");

  if (from_store) {
    const std::string input = args.GetString("from-fdb", "");
    auto reader = storage::StoreReader::Open(input);
    if (!reader.ok()) {
      err << "error: " << reader.status() << "\n";
      return 1;
    }
    // An explicit --segment-txns means "re-cut the shards", which
    // rules out the same-version byte-copy fast path; without one,
    // carry the input's shard granularity over instead of re-cutting
    // at the default size.
    const bool resegment = !args.GetString("segment-txns", "").empty();
    if (!resegment && reader->segments().size() > 1) {
      const uint64_t first_segment =
          reader->segments()[1] - reader->segments()[0];
      if (first_segment > 0 &&
          first_segment <= std::numeric_limits<uint32_t>::max()) {
        options->segment_txns = static_cast<uint32_t>(first_segment);
      }
    }
    // File identity by device+inode (std::filesystem::equivalent), so
    // every aliasing — ./x vs x, symlinks, hardlinks — is caught; an
    // error (e.g. output does not exist yet) means distinct files,
    // with the raw strings as a last-resort fallback.
    std::error_code eq_ec;
    bool same_file = std::filesystem::equivalent(input, output, eq_ec);
    if (eq_ec) same_file = input == output;
    return ConvertFromStore(*reader, input, output, *options, resegment,
                            same_file, out, err);
  }

  ItemDictionary dict;
  auto taxonomy = ReadTaxonomyFile(args.GetPositional("taxonomy"), &dict);
  if (!taxonomy.ok()) {
    err << "error: " << taxonomy.status() << "\n";
    return 1;
  }
  WallTimer timer;
  auto db = ReadBasketFile(args.GetPositional("basket"), &dict);
  if (!db.ok()) {
    err << "error: " << db.status() << "\n";
    return 1;
  }
  const double parse_s = timer.ElapsedSeconds();
  Status written =
      storage::WriteStoreFile(output, *db, dict, *taxonomy, *options);
  if (!written.ok()) {
    err << "error: " << written << "\n";
    return 1;
  }

  auto reopened = storage::StoreReader::Open(output);
  if (!reopened.ok()) {
    err << "error: verification reopen failed: " << reopened.status()
        << "\n";
    return 1;
  }
  out << "wrote " << output << " (v" << reopened->version() << "): "
      << FormatCount(static_cast<int64_t>(db->size()))
      << " transactions, "
      << FormatCount(static_cast<int64_t>(db->total_items()))
      << " items, " << dict.size() << " names, "
      << reopened->segments().size() - 1 << " segments, "
      << FormatBytes(static_cast<int64_t>(reopened->file_size()))
      << " (text parse took " << FormatDouble(parse_s * 1e3, 1)
      << " ms)\n";
  return 0;
}

// --- validate / repair ------------------------------------------------

/// Renders a diagnosis finding list as aligned, offset-bearing lines.
void PrintFindings(const storage::Diagnosis& diagnosis,
                   std::ostream& out) {
  for (const storage::Finding& f : diagnosis.findings) {
    out << "  " << (f.ok ? "ok  " : "BAD ") << f.section << " @ ["
        << f.offset << ", " << f.offset + f.size << "): " << f.detail
        << "\n";
  }
}

/// Maps a repair plan to the `validate` exit code contract:
/// 0 = valid, 1 = corrupt but repairable, 3 = unrecoverable.
int ValidateExitCode(const storage::RepairPlan& plan) {
  switch (plan.action) {
    case storage::RepairPlan::Action::kNone:
      return 0;
    case storage::RepairPlan::Action::kTruncateTail:
    case storage::RepairPlan::Action::kRewriteFrontHeader:
      return 1;
    case storage::RepairPlan::Action::kUnrecoverable:
      return 3;
  }
  return 3;
}

int ValidateCommand(const std::vector<const char*>& argv,
                    std::ostream& out, std::ostream& err) {
  ArgParser args(
      "flipper_cli validate",
      "Deep-check a FlipperStore (.fdb) file: headers, commit trailer, "
      "section table, per-section checksums and payload validation, "
      "with byte offsets for every problem found.\n"
      "\n"
      "exit codes: 0 = valid, 1 = corrupt but repairable (see "
      "`flipper_cli repair`), 2 = usage or I/O error, 3 = corrupt and "
      "unrecoverable.");
  args.AddPositional("store", "the .fdb file to validate");
  args.AddSwitch("quiet", "suppress the per-region findings, print only "
                          "the verdict");

  Status parse_status =
      args.Parse(static_cast<int>(argv.size()), argv.data());
  if (!parse_status.ok()) {
    err << "error: " << parse_status << "\n\n" << args.HelpText();
    return 2;
  }
  if (args.help_requested()) {
    out << args.HelpText();
    return 0;
  }

  const std::string& path = args.GetPositional("store");
  auto diagnosis = storage::DiagnoseStore(path);
  if (!diagnosis.ok()) {
    err << "error: " << diagnosis.status() << "\n";
    return 2;
  }
  const storage::RepairPlan& plan = diagnosis->plan;
  if (diagnosis->valid) {
    out << path << ": valid (" << plan.physical_size
        << " bytes, all checksums and payload validation pass)\n";
  } else if (plan.action ==
             storage::RepairPlan::Action::kUnrecoverable) {
    out << path << ": UNRECOVERABLE — " << plan.detail << "\n";
  } else {
    out << path << ": corrupt but repairable — " << plan.detail
        << " (" << plan.committed_size << " of " << plan.physical_size
        << " bytes committed; run `flipper_cli repair " << path
        << " --apply`)\n";
  }
  if (!args.GetSwitch("quiet")) PrintFindings(*diagnosis, out);
  return ValidateExitCode(plan);
}

int RepairCommand(const std::vector<const char*>& argv, std::ostream& out,
                  std::ostream& err) {
  ArgParser args(
      "flipper_cli repair",
      "Restore a crash-torn FlipperStore (.fdb) to its last committed "
      "state: truncate a torn append tail, or redo a front-header "
      "rewrite from the commit trailer. Dry-run by default — nothing "
      "is modified unless --apply is given. Repair never invents "
      "data; a file with no committed state is refused.");
  args.AddPositional("store", "the .fdb file to repair");
  args.AddSwitch("apply", "perform the repair (default: dry run, "
                          "print what would be done)");
  args.AddSwitch("dry-run",
                 "explicitly request the default dry-run behavior");

  Status parse_status =
      args.Parse(static_cast<int>(argv.size()), argv.data());
  if (!parse_status.ok()) {
    err << "error: " << parse_status << "\n\n" << args.HelpText();
    return 2;
  }
  if (args.help_requested()) {
    out << args.HelpText();
    return 0;
  }
  if (args.GetSwitch("apply") && args.GetSwitch("dry-run")) {
    err << "error: --apply and --dry-run are mutually exclusive\n";
    return 2;
  }

  const std::string& path = args.GetPositional("store");
  auto plan = storage::AnalyzeStore(path);
  if (!plan.ok()) {
    err << "error: " << plan.status() << "\n";
    return 2;
  }
  switch (plan->action) {
    case storage::RepairPlan::Action::kNone:
      out << path << ": already clean (" << plan->committed_size
          << " bytes committed); nothing to do\n";
      return 0;
    case storage::RepairPlan::Action::kUnrecoverable:
      err << "error: " << path << " is unrecoverable: " << plan->detail
          << "\n";
      return 3;
    case storage::RepairPlan::Action::kTruncateTail:
      out << path << ": " << plan->detail << "\n  "
          << (args.GetSwitch("apply") ? "truncating" : "would truncate")
          << " " << plan->torn_bytes << " torn bytes, keeping the "
          << plan->committed_size << " committed bytes\n";
      break;
    case storage::RepairPlan::Action::kRewriteFrontHeader:
      out << path << ": " << plan->detail << "\n  "
          << (args.GetSwitch("apply") ? "rewriting" : "would rewrite")
          << " the front header from the commit trailer ("
          << plan->committed_size << " bytes committed)\n";
      break;
  }
  if (!args.GetSwitch("apply")) {
    out << "  dry run: nothing modified (pass --apply to repair)\n";
    return 0;
  }
  Status applied = storage::ApplyRepair(path, *plan);
  if (!applied.ok()) {
    err << "error: " << applied << "\n";
    return 1;
  }
  out << "  repaired: " << path << " now opens clean ("
      << plan->committed_size << " bytes)\n";
  return 0;
}

// --- inspect ----------------------------------------------------------

int InspectCommand(const std::vector<const char*>& argv,
                   std::ostream& out, std::ostream& err) {
  ArgParser args("flipper_cli inspect",
                 "Validate a FlipperStore (.fdb) file and print its "
                 "header, section table and checksum state.");
  args.AddPositional("store", "the .fdb file to inspect");

  Status parse_status =
      args.Parse(static_cast<int>(argv.size()), argv.data());
  if (!parse_status.ok()) {
    err << "error: " << parse_status << "\n\n" << args.HelpText();
    return 2;
  }
  if (args.help_requested()) {
    out << args.HelpText();
    return 0;
  }

  const std::string& path = args.GetPositional("store");
  auto reader = storage::StoreReader::Open(path);
  if (!reader.ok()) {
    err << "error: " << reader.status() << "\n";
    // A failed open is where a diagnosis is most useful: say *which*
    // region is bad and whether repair can help, not just that the
    // open failed.
    auto diagnosis = storage::DiagnoseStore(path);
    if (diagnosis.ok()) {
      err << "diagnosis:\n";
      PrintFindings(*diagnosis, err);
      const storage::RepairPlan& plan = diagnosis->plan;
      if (plan.action == storage::RepairPlan::Action::kTruncateTail ||
          plan.action ==
              storage::RepairPlan::Action::kRewriteFrontHeader) {
        err << "the last committed state (" << plan.committed_size
            << " bytes) is intact: run `flipper_cli repair " << path
            << " --apply` to restore it\n";
      }
    }
    return 1;
  }
  const storage::FileHeader& h = reader->header();
  out << path << ": FlipperStore v" << h.version << ", "
      << FormatBytes(static_cast<int64_t>(reader->file_size()))
      << (reader->mapped() ? " (mmap)" : " (heap)") << "\n"
      << "  transactions: "
      << FormatCount(static_cast<int64_t>(h.num_transactions))
      << "  items: " << FormatCount(static_cast<int64_t>(h.num_items))
      << "  max width: " << h.max_width << "\n"
      << "  alphabet: " << h.alphabet_size
      << "  dictionary: " << h.dict_size << " names\n"
      << "  taxonomy: height " << reader->taxonomy().height() << ", "
      << h.taxonomy_num_roots << " roots, id space "
      << h.taxonomy_id_space << "\n"
      << "  segments: " << h.num_segments << "\n"
      << "  sections:\n";
  for (const storage::SectionEntry& e : reader->sections()) {
    out << "    " << storage::SectionIdName(storage::SectionId(e.id))
        << ": offset " << e.offset << ", "
        << FormatBytes(static_cast<int64_t>(e.size)) << "\n";
  }
  if (const SegmentCatalog* catalog = reader->catalog()) {
    out << "  catalog: " << catalog->num_segments() << " segments, "
        << catalog->tracked_ids().size() << " tracked items, "
        << catalog->bitset_bits() << "-bit segment bitsets, mean fill "
        << FormatDouble(catalog->MeanBitsetFill() * 100.0, 1) << "%\n";
    if (!catalog->tracked_ids().empty()) {
      out << "  tracked:";
      for (ItemId id : catalog->tracked_ids()) {
        out << " " << reader->dict().Name(id);
      }
      out << "\n";
    }
  } else {
    out << "  catalog: none (v" << h.version
        << " stores carry no segment catalog)\n";
  }
  Status checksums = reader->VerifyChecksums();
  if (!checksums.ok()) {
    err << "error: " << checksums << "\n";
    return 1;
  }
  out << "  checksums: OK\n";
  return 0;
}

// --- datagen ----------------------------------------------------------

int DatagenCommand(const std::vector<const char*>& argv,
                   std::ostream& out, std::ostream& err) {
  ArgParser args("flipper_cli datagen",
                 "Generate a synthetic dataset (the paper's §5 "
                 "workloads) and write it straight to a FlipperStore "
                 "(.fdb) — no text intermediate.");
  args.AddPositional("scenario", "groceries|census|medline|quest");
  args.AddPositional("output", "the .fdb file to write");
  args.AddFlag("txns",
               "transaction count (default: the scenario's paper size)",
               "N");
  args.AddFlag("seed", "generator seed (default: scenario default)",
               "N");
  args.AddFlag("phases",
               "quest only: split the stream into N consecutive phases "
               "drawing from disjoint pattern-pool slices (temporal "
               "skew; default 0 = stationary)",
               "N");
  AddWriterFlags(&args);

  Status parse_status =
      args.Parse(static_cast<int>(argv.size()), argv.data());
  if (!parse_status.ok()) {
    err << "error: " << parse_status << "\n\n" << args.HelpText();
    return 2;
  }
  if (args.help_requested()) {
    out << args.HelpText();
    return 0;
  }
  auto options = ParseWriterOptions(args);
  if (!options.ok()) {
    err << "error: " << options.status() << "\n";
    return 2;
  }
  auto txns = args.GetInt("txns", 0);
  auto seed = args.GetInt("seed", -1);
  auto phases = args.GetInt("phases", 0);
  if (!txns.ok() || !seed.ok() || !phases.ok()) {
    err << "error: "
        << (!txns.ok() ? txns.status()
                       : (!seed.ok() ? seed.status() : phases.status()))
        << "\n";
    return 2;
  }
  if (*txns < 0 || *txns > std::numeric_limits<uint32_t>::max()) {
    err << "error: --txns must be a non-negative 32-bit count\n";
    return 2;
  }
  if (*phases < 0 || *phases > std::numeric_limits<uint32_t>::max()) {
    err << "error: --phases must be a non-negative 32-bit count\n";
    return 2;
  }
  const auto num_txns = static_cast<uint32_t>(*txns);

  const std::string& scenario = args.GetPositional("scenario");
  if (scenario != "groceries" && scenario != "census" &&
      scenario != "medline" && scenario != "quest") {
    err << "error: scenario must be groceries|census|medline|quest, "
           "got '"
        << scenario << "'\n";
    return 2;
  }
  if (*phases > 0 && scenario != "quest") {
    err << "error: --phases is only supported by the quest scenario\n";
    return 2;
  }
  ItemDictionary dict;
  Taxonomy taxonomy;
  TransactionDb db;
  if (scenario == "quest") {
    TaxonomyGenParams tax_params;  // paper §5.1: 10 roots x fanout 5
    auto built = GenerateBalancedTaxonomy(tax_params, &dict);
    if (!built.ok()) {
      err << "error: " << built.status() << "\n";
      return 1;
    }
    taxonomy = std::move(built).value();
    QuestParams params;
    if (num_txns > 0) params.num_transactions = num_txns;
    if (*seed >= 0) params.seed = static_cast<uint64_t>(*seed);
    params.phases = static_cast<uint32_t>(*phases);
    auto generated = GenerateQuest(params, taxonomy);
    if (!generated.ok()) {
      err << "error: " << generated.status() << "\n";
      return 1;
    }
    db = std::move(generated).value();
  } else {
    Result<SimulatedDataset> generated = [&]() {
      if (scenario == "groceries") {
        GroceriesParams params;
        if (num_txns > 0) params.num_transactions = num_txns;
        if (*seed >= 0) params.seed = static_cast<uint64_t>(*seed);
        return GenerateGroceries(params);
      }
      if (scenario == "census") {
        CensusParams params;
        if (num_txns > 0) params.num_records = num_txns;
        if (*seed >= 0) params.seed = static_cast<uint64_t>(*seed);
        return GenerateCensus(params);
      }
      MedlineParams params;
      if (num_txns > 0) params.num_citations = num_txns;
      if (*seed >= 0) params.seed = static_cast<uint64_t>(*seed);
      return GenerateMedline(params);
    }();
    if (!generated.ok()) {
      err << "error: " << generated.status() << "\n";
      return 1;
    }
    dict = std::move(generated->dict);
    taxonomy = std::move(generated->taxonomy);
    db = std::move(generated->db);
  }

  const std::string& output = args.GetPositional("output");
  Status written =
      storage::WriteStoreFile(output, db, dict, taxonomy, *options);
  if (!written.ok()) {
    err << "error: " << written << "\n";
    return 1;
  }
  out << "wrote " << output << " (v" << options->version
      << "): " << scenario << ", "
      << FormatCount(static_cast<int64_t>(db.size()))
      << " transactions, "
      << FormatCount(static_cast<int64_t>(db.total_items())) << " items, "
      << dict.size() << " names\n";
  return 0;
}

constexpr char kTopLevelHelp[] =
    "flipper_cli — flipping-correlation mining toolkit\n"
    "\n"
    "usage:\n"
    "  flipper_cli mine <basket> <taxonomy> [flags]\n"
    "  flipper_cli mine --input <data.fdb> [flags]\n"
    "  flipper_cli convert <basket> <taxonomy> <out.fdb>\n"
    "  flipper_cli convert --from-fdb <in.fdb> <out.fdb> "
    "[--store-version N]\n"
    "  flipper_cli inspect <data.fdb>\n"
    "  flipper_cli validate <data.fdb>\n"
    "  flipper_cli repair <data.fdb> [--apply]\n"
    "  flipper_cli datagen <scenario> <out.fdb>\n"
    "  flipper_cli <basket> <taxonomy> [flags]   (legacy: mine)\n"
    "\n"
    "run `flipper_cli <command> --help` for the command's flags.\n";

}  // namespace

int RunFlipperCli(int argc, const char* const* argv, std::ostream& out,
                  std::ostream& err) {
  const auto sub_argv = [&](const char* program) {
    std::vector<const char*> sub;
    sub.push_back(program);
    for (int i = 2; i < argc; ++i) sub.push_back(argv[i]);
    return sub;
  };
  if (argc >= 2) {
    const std::string_view command(argv[1]);
    if (command == "mine") {
      return MineCommand(sub_argv("flipper_cli mine"), out, err);
    }
    if (command == "convert") {
      return ConvertCommand(sub_argv("flipper_cli convert"), out, err);
    }
    if (command == "inspect") {
      return InspectCommand(sub_argv("flipper_cli inspect"), out, err);
    }
    if (command == "validate") {
      return ValidateCommand(sub_argv("flipper_cli validate"), out, err);
    }
    if (command == "repair") {
      return RepairCommand(sub_argv("flipper_cli repair"), out, err);
    }
    if (command == "datagen") {
      return DatagenCommand(sub_argv("flipper_cli datagen"), out, err);
    }
    if (argc == 2 && (command == "--help" || command == "-h")) {
      out << kTopLevelHelp;
      return 0;
    }
  }
  // Legacy spelling: flipper_cli <basket> <taxonomy> [flags].
  std::vector<const char*> legacy(argv, argv + argc);
  return MineCommand(legacy, out, err);
}

}  // namespace flipper
