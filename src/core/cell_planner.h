// CellPlanner: the candidate-generation stage of the cell pipeline.
// For each cell Q(h,k) it selects a strategy and (for the in-memory
// routes) materializes the candidate list:
//
//   kPairs          — all 2-itemsets over row 1's frequent items;
//   kAprioriJoin    — prefix join within row 1 (whose cells are
//                     complete, so subset pruning is exact);
//   kVerticalExpand — the cartesian children product of each eligible
//                     parent itemset of Q(h-1,k);
//   kScan           — the scan-driven route (core/scan_cell.h), picked
//                     when the cartesian product estimate dwarfs the
//                     expected k-subset probes of one database scan.
//
// Planning is a pure function of completed cells plus the SIBP ban set
// of level h, which makes it safe to run speculatively on the driver
// thread while the previous cell's support scan is still counting on
// the pool: the plan records the ban-set version it read, and
// PlanValid() tells the pipeline whether the speculation survived the
// previous cell's evaluation or must be regenerated.

#ifndef FLIPPER_CORE_CELL_PLANNER_H_
#define FLIPPER_CORE_CELL_PLANNER_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/cell.h"
#include "core/config.h"
#include "core/level_views.h"
#include "data/itemset.h"
#include "taxonomy/taxonomy.h"

namespace flipper {

/// Predicate selecting parents eligible for vertical growth.
inline bool ParentEligible(const MiningConfig& config,
                           const ItemsetRecord& record) {
  return config.pruning.flipping ? record.chain_alive : record.frequent;
}

enum class CellStrategy { kPairs, kAprioriJoin, kVerticalExpand, kScan };

/// Output of the planning stage for one cell. For kScan the candidate
/// list stays empty — the scan-driven route discovers candidates and
/// supports together during its own database scan.
struct CellPlan {
  int h = 0;
  int k = 0;
  CellStrategy strategy = CellStrategy::kVerticalExpand;
  std::vector<Itemset> candidates;
  /// Generation hit MiningConfig::max_candidates_per_cell.
  bool truncated = false;
  /// Size of level h's ban set when the plan was made; bans only grow,
  /// so equality with the current size proves the plan is current.
  size_t ban_version = 0;
};

class CellPlanner {
 public:
  /// All references must outlive the planner. `freq_items[h]` holds
  /// level h's frequent single items sorted by id.
  CellPlanner(const Taxonomy& taxonomy, const MiningConfig& config,
              const LevelViews& views,
              const std::vector<std::vector<ItemId>>& freq_items,
              uint32_t num_txns)
      : tax_(taxonomy),
        config_(config),
        views_(views),
        freq_items_(freq_items),
        num_txns_(num_txns) {}

  /// Row-1 generation: pairs at k == 2, Apriori prefix join from the
  /// completed Q(1,k-1) otherwise. Row 1 ignores the ban set (SIBP
  /// never bans level-1 items), so these plans are always valid.
  CellPlan PlanRow1(int k, const Cell* prev_in_row) const;

  /// Rows >= 2: estimates the cartesian children product against the
  /// scan-enumeration cost, picks the strategy, and runs the vertical
  /// expansion for the cartesian route. Pure — reads only completed
  /// cells and `banned` (recorded as plan.ban_version).
  CellPlan PlanVertical(int h, int k, const Cell& parent_cell,
                        const std::unordered_set<ItemId>& banned) const;

  /// True while `plan` matches level `plan.h`'s current ban set.
  static bool PlanValid(const CellPlan& plan,
                        const std::unordered_set<ItemId>& banned) {
    return plan.ban_version == banned.size();
  }

 private:
  const Taxonomy& tax_;
  const MiningConfig& config_;
  const LevelViews& views_;
  const std::vector<std::vector<ItemId>>& freq_items_;
  uint32_t num_txns_ = 0;
};

}  // namespace flipper

#endif  // FLIPPER_CORE_CELL_PLANNER_H_
