// Cell: the contents of one slot Q(h,k) of the paper's two-dimensional
// search-space table M (Figure 6) — the counted (h,k)-itemsets with
// their supports, correlation values, labels and chain-alive flags.
//
// Cells register their footprint with a MemoryTracker so that the
// Figure-9(b) memory comparison can be reproduced deterministically.

#ifndef FLIPPER_CORE_CELL_H_
#define FLIPPER_CORE_CELL_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/memory_tracker.h"
#include "core/label.h"
#include "data/itemset.h"

namespace flipper {

/// Everything the algorithm knows about one counted (h,k)-itemset.
struct ItemsetRecord {
  uint32_t support = 0;
  double corr = 0.0;
  Label label = Label::kNone;
  bool frequent = false;
  /// The flipping chain from level 1 down to this record's level is
  /// unbroken: every level frequent + labeled, labels alternating.
  bool chain_alive = false;
};

class Cell {
 public:
  /// `tracker` may be null (no accounting). h/k are informational.
  Cell(int h, int k, MemoryTracker* tracker)
      : h_(h), k_(k), tracker_(tracker) {}
  ~Cell() { Release(); }

  Cell(const Cell&) = delete;
  Cell& operator=(const Cell&) = delete;
  Cell(Cell&& other) noexcept { *this = std::move(other); }
  Cell& operator=(Cell&& other) noexcept;

  int h() const { return h_; }
  int k() const { return k_; }

  /// Inserts or overwrites a record.
  void Put(const Itemset& itemset, const ItemsetRecord& record);

  /// nullptr when absent.
  const ItemsetRecord* Find(const Itemset& itemset) const;

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// Iterates over (itemset, record) pairs in unspecified order.
  void ForEach(const std::function<void(const Itemset&,
                                        const ItemsetRecord&)>& fn) const;

  /// Sorted list of itemsets satisfying a predicate (deterministic
  /// order for candidate generation and output).
  std::vector<Itemset> Select(
      const std::function<bool(const ItemsetRecord&)>& pred) const;

  /// Removes records that fail the predicate; returns how many were
  /// dropped. Used to evict chain-dead itemsets once a row completes.
  size_t Retain(const std::function<bool(const ItemsetRecord&)>& pred);

  /// True when every record is non-positive — one half of the TPG
  /// premise (Theorem 3). An empty cell is vacuously all-non-positive.
  bool AllNonPositive() const;

  /// Tracked bytes per stored record (itemset + record + hash node
  /// overhead estimate).
  static constexpr int64_t kBytesPerRecord =
      static_cast<int64_t>(sizeof(Itemset) + sizeof(ItemsetRecord) + 32);

  /// Drops all records and releases the tracked bytes.
  void Release();

 private:
  int h_ = 0;
  int k_ = 0;
  MemoryTracker* tracker_ = nullptr;
  std::unordered_map<Itemset, ItemsetRecord, ItemsetHash> records_;
};

}  // namespace flipper

#endif  // FLIPPER_CORE_CELL_H_
