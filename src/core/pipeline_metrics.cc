#include "core/pipeline_metrics.h"

#include <algorithm>
#include <cmath>
#include <ctime>

#include "common/string_util.h"
#include "common/trace.h"

namespace flipper {

namespace {

// Log2 bucket index for a millisecond value: bucket 0 holds
// (0, 2^-20] ms (~1 ns) and each bucket doubles; 64 buckets reach
// ~2^43 ms (~270 years), so clamping never matters in practice.
constexpr int kNumBuckets = 64;
constexpr int kBucketOffset = 20;

int BucketIndex(double ms) {
  if (!(ms > 0)) return 0;
  const int exp = static_cast<int>(std::floor(std::log2(ms)));
  return std::clamp(exp + kBucketOffset, 0, kNumBuckets - 1);
}

// Geometric midpoint of bucket `i` — the representative value reported
// for percentiles once the exact reservoir has overflowed.
double BucketMid(int i) {
  return std::exp2(i - kBucketOffset + 0.5);
}

double NearestRank(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

double BucketRank(const std::vector<uint64_t>& buckets, uint64_t count,
                  double q) {
  const auto rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  uint64_t seen = 0;
  for (int i = 0; i < static_cast<int>(buckets.size()); ++i) {
    seen += buckets[i];
    if (seen >= rank) return BucketMid(i);
  }
  return buckets.empty() ? 0 : BucketMid(static_cast<int>(buckets.size()) - 1);
}

void WriteJsonNumber(std::ostream& out, double v) {
  // Fixed precision keeps the report locale-independent and diffable.
  out << FormatDouble(v, 6);
}

}  // namespace

uint64_t ThreadCpuNowNanos() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

void MetricsRegistry::AddCounter(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::ObserveMs(const std::string& name, double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  Histogram& h = histograms_[name];
  if (h.count == 0) {
    h.min = ms;
    h.max = ms;
  } else {
    h.min = std::min(h.min, ms);
    h.max = std::max(h.max, ms);
  }
  ++h.count;
  h.sum += ms;
  if (h.samples.size() < kMaxExactSamples) h.samples.push_back(ms);
  if (h.buckets.empty()) h.buckets.assign(kNumBuckets, 0);
  ++h.buckets[static_cast<size_t>(BucketIndex(ms))];
}

void MetricsRegistry::OnPoolTask(uint64_t queue_ns, uint64_t run_ns) {
  pool_busy_ns_.fetch_add(run_ns, std::memory_order_relaxed);
  pool_queue_ns_.fetch_add(queue_ns, std::memory_order_relaxed);
  pool_tasks_.fetch_add(1, std::memory_order_relaxed);
  uint64_t prev = pool_max_queue_ns_.load(std::memory_order_relaxed);
  while (queue_ns > prev && !pool_max_queue_ns_.compare_exchange_weak(
                                prev, queue_ns, std::memory_order_relaxed)) {
  }
}

void MetricsRegistry::FinalizePool(double wall_ms, int num_threads) {
  const uint64_t tasks = pool_tasks_.load(std::memory_order_relaxed);
  const uint64_t busy_ns = pool_busy_ns_.load(std::memory_order_relaxed);
  const uint64_t queue_ns = pool_queue_ns_.load(std::memory_order_relaxed);
  const uint64_t max_queue_ns =
      pool_max_queue_ns_.load(std::memory_order_relaxed);
  AddCounter("pool.tasks", static_cast<int64_t>(tasks));
  SetGauge("pool.busy_ms", static_cast<double>(busy_ns) / 1e6);
  SetGauge("pool.queue_wait_ms_total", static_cast<double>(queue_ns) / 1e6);
  SetGauge("pool.queue_wait_ms_max", static_cast<double>(max_queue_ns) / 1e6);
  if (tasks > 0) {
    ObserveMs("pool.queue_wait_ms",
              static_cast<double>(queue_ns) / static_cast<double>(tasks) /
                  1e6);
  }
  const double capacity_ms = wall_ms * std::max(1, num_threads);
  SetGauge("pool.utilization",
           capacity_ms > 0
               ? std::min(1.0, static_cast<double>(busy_ns) / 1e6 /
                                   capacity_ms)
               : 0.0);
}

MetricsRegistry::HistogramSnapshot MetricsRegistry::Histogram::Snap() const {
  HistogramSnapshot snap;
  snap.count = count;
  snap.sum_ms = sum;
  snap.min_ms = min;
  snap.max_ms = max;
  if (count == 0) return snap;
  if (count <= samples.size()) {
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    snap.p50_ms = NearestRank(sorted, 0.50);
    snap.p95_ms = NearestRank(sorted, 0.95);
    snap.p99_ms = NearestRank(sorted, 0.99);
  } else {
    snap.p50_ms = BucketRank(buckets, count, 0.50);
    snap.p95_ms = BucketRank(buckets, count, 0.95);
    snap.p99_ms = BucketRank(buckets, count, 0.99);
  }
  return snap;
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.counters = counters_;
  snap.gauges = gauges_;
  for (const auto& [name, hist] : histograms_) {
    snap.histograms[name] = hist.Snap();
  }
  return snap;
}

int64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void MetricsRegistry::WriteJson(std::ostream& out) const {
  const Snapshot snap = Snap();
  out << "{\n  \"schema_version\": " << kSchemaVersion << ",\n";
  out << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
        << "\": " << value;
    first = false;
  }
  out << (first ? "},\n" : "\n  },\n");
  out << "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": ";
    WriteJsonNumber(out, value);
    first = false;
  }
  out << (first ? "},\n" : "\n  },\n");
  out << "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : snap.histograms) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
        << "\": {\"count\": " << hist.count << ", \"sum_ms\": ";
    WriteJsonNumber(out, hist.sum_ms);
    out << ", \"min_ms\": ";
    WriteJsonNumber(out, hist.min_ms);
    out << ", \"max_ms\": ";
    WriteJsonNumber(out, hist.max_ms);
    out << ", \"p50_ms\": ";
    WriteJsonNumber(out, hist.p50_ms);
    out << ", \"p95_ms\": ";
    WriteJsonNumber(out, hist.p95_ms);
    out << ", \"p99_ms\": ";
    WriteJsonNumber(out, hist.p99_ms);
    out << "}";
    first = false;
  }
  out << (first ? "}\n" : "\n  }\n");
  out << "}\n";
}

ScopedStageTimer::ScopedStageTimer(MetricsRegistry* registry,
                                   const char* stage)
    : registry_(registry), stage_(stage) {
  if (registry_ == nullptr) return;
  wall_start_ns_ = trace::NowNanos();
  cpu_start_ns_ = ThreadCpuNowNanos();
}

ScopedStageTimer::~ScopedStageTimer() {
  if (registry_ == nullptr) return;
  const double wall_ms =
      static_cast<double>(trace::NowNanos() - wall_start_ns_) / 1e6;
  const double cpu_ms =
      static_cast<double>(ThreadCpuNowNanos() - cpu_start_ns_) / 1e6;
  const std::string base = std::string("stage.") + stage_;
  registry_->ObserveMs(base + "_ms", wall_ms);
  registry_->ObserveMs(base + "_cpu_ms", cpu_ms);
}

}  // namespace flipper
