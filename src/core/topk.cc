#include "core/topk.h"

#include <algorithm>

namespace flipper {

std::vector<FlippingPattern> TopKMostFlipping(
    std::vector<FlippingPattern> patterns, size_t k) {
  SortPatterns(&patterns);  // canonical tie-break order
  std::stable_sort(patterns.begin(), patterns.end(),
                   [](const FlippingPattern& a, const FlippingPattern& b) {
                     return a.FlipGap() > b.FlipGap();
                   });
  if (patterns.size() > k) patterns.resize(k);
  return patterns;
}

}  // namespace flipper
