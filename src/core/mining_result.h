// Common result type of the mining engines.

#ifndef FLIPPER_CORE_MINING_RESULT_H_
#define FLIPPER_CORE_MINING_RESULT_H_

#include <vector>

#include "core/pattern.h"
#include "core/stats.h"

namespace flipper {

struct MiningResult {
  /// All flipping patterns, in canonical order (SortPatterns).
  std::vector<FlippingPattern> patterns;
  MiningStats stats;
};

}  // namespace flipper

#endif  // FLIPPER_CORE_MINING_RESULT_H_
