#include "core/pattern_io.h"

#include <fstream>
#include <ostream>

#include "common/csv.h"
#include "common/string_util.h"

namespace flipper {
namespace {

std::string RenderItem(ItemId item, const ItemDictionary* dict) {
  if (dict != nullptr && item < dict->size()) {
    return std::string(dict->Name(item));
  }
  return std::to_string(item);
}

std::string RenderItemset(const Itemset& itemset,
                          const ItemDictionary* dict, char sep) {
  std::string out;
  for (int i = 0; i < itemset.size(); ++i) {
    if (i > 0) out.push_back(sep);
    out += RenderItem(itemset[i], dict);
  }
  return out;
}

std::string JsonItemArray(const Itemset& itemset,
                          const ItemDictionary* dict) {
  std::string out = "[";
  for (int i = 0; i < itemset.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + JsonEscape(RenderItem(itemset[i], dict)) + "\"";
  }
  out += "]";
  return out;
}

}  // namespace

Status WritePatternsCsv(const std::vector<FlippingPattern>& patterns,
                        const ItemDictionary* dict, std::ostream& out) {
  CsvWriter csv({"pattern_id", "level", "itemset", "support", "corr",
                 "label", "flip_gap"});
  for (size_t p = 0; p < patterns.size(); ++p) {
    const FlippingPattern& pattern = patterns[p];
    for (const LevelStat& stat : pattern.chain) {
      csv.AddRow({std::to_string(p), std::to_string(stat.level),
                  RenderItemset(stat.itemset, dict, '|'),
                  std::to_string(stat.support),
                  FormatDouble(stat.corr, 6), LabelToString(stat.label),
                  FormatDouble(pattern.FlipGap(), 6)});
    }
  }
  out << csv.ToString();
  if (!out) return Status::IoError("stream error while writing CSV");
  return Status::OK();
}

Status WritePatternsCsvFile(const std::vector<FlippingPattern>& patterns,
                            const ItemDictionary* dict,
                            const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IoError("cannot open for writing: " + path);
  return WritePatternsCsv(patterns, dict, f);
}

Status WritePatternsJson(const std::vector<FlippingPattern>& patterns,
                         const ItemDictionary* dict, std::ostream& out) {
  out << "[\n";
  for (size_t p = 0; p < patterns.size(); ++p) {
    const FlippingPattern& pattern = patterns[p];
    out << "  {\"leaf\": " << JsonItemArray(pattern.leaf_itemset, dict)
        << ", \"flip_gap\": " << FormatDouble(pattern.FlipGap(), 6)
        << ", \"chain\": [";
    for (size_t i = 0; i < pattern.chain.size(); ++i) {
      const LevelStat& stat = pattern.chain[i];
      if (i > 0) out << ", ";
      out << "{\"level\": " << stat.level
          << ", \"itemset\": " << JsonItemArray(stat.itemset, dict)
          << ", \"support\": " << stat.support
          << ", \"corr\": " << FormatDouble(stat.corr, 6)
          << ", \"label\": \"" << LabelToString(stat.label) << "\"}";
    }
    out << "]}" << (p + 1 < patterns.size() ? "," : "") << "\n";
  }
  out << "]\n";
  if (!out) return Status::IoError("stream error while writing JSON");
  return Status::OK();
}

Status WritePatternsJsonFile(
    const std::vector<FlippingPattern>& patterns,
    const ItemDictionary* dict, const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IoError("cannot open for writing: " + path);
  return WritePatternsJson(patterns, dict, f);
}

}  // namespace flipper
