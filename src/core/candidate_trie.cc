#include "core/candidate_trie.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <numeric>
#include <string>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define FLIPPER_TRIE_X86 1
#endif

#include "common/env.h"
#include "common/logging.h"

namespace flipper {
namespace trie_probe {

uint32_t LowerBoundScalar(const ItemId* items, uint32_t lo, uint32_t hi,
                          ItemId target) {
  while (lo < hi && items[lo] < target) ++lo;
  return lo;
}

uint32_t LowerBoundPackedPortable(const ItemId* items, uint32_t lo,
                                  uint32_t hi, ItemId target) {
  // Eight branchless compares folded into one 64-bit mask word; the
  // first set bit names the first item >= target.
  while (lo + 8 <= hi) {
    uint64_t ge = 0;
    for (uint32_t j = 0; j < 8; ++j) {
      ge |= static_cast<uint64_t>(items[lo + j] >= target) << j;
    }
    if (ge != 0) return lo + static_cast<uint32_t>(std::countr_zero(ge));
    lo += 8;
  }
  return LowerBoundScalar(items, lo, hi, target);
}

namespace {

#if defined(FLIPPER_TRIE_X86)

uint32_t LowerBoundPackedSse2(const ItemId* items, uint32_t lo,
                              uint32_t hi, ItemId target) {
  // ItemIds are unsigned; bias both sides by 2^31 so the signed
  // compare instruction orders them correctly.
  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i t =
      _mm_xor_si128(_mm_set1_epi32(static_cast<int>(target)), bias);
  while (lo + 4 <= hi) {
    const __m128i v = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(items + lo)),
        bias);
    // lanes with item < target.
    const __m128i lt = _mm_cmpgt_epi32(t, v);
    const auto mask =
        static_cast<uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(lt)));
    if (mask != 0xfu) {
      return lo + static_cast<uint32_t>(std::countr_one(mask));
    }
    lo += 4;
  }
  return LowerBoundScalar(items, lo, hi, target);
}

// Compiled with per-function AVX2 codegen so the containing binary
// stays runnable on any x86-64 host; only the dispatcher may call it,
// and only after cpuid confirms AVX2.
__attribute__((target("avx2"))) uint32_t LowerBoundPackedAvx2(
    const ItemId* items, uint32_t lo, uint32_t hi, ItemId target) {
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i t = _mm256_xor_si256(
      _mm256_set1_epi32(static_cast<int>(target)), bias);
  while (lo + 8 <= hi) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(items + lo)),
        bias);
    const __m256i lt = _mm256_cmpgt_epi32(t, v);
    const auto mask = static_cast<uint32_t>(_mm256_movemask_ps(
        _mm256_castsi256_ps(lt)));
    if (mask != 0xffu) {
      return lo + static_cast<uint32_t>(std::countr_one(mask));
    }
    lo += 8;
  }
  return LowerBoundScalar(items, lo, hi, target);
}

bool HostHasAvx2() { return __builtin_cpu_supports("avx2") != 0; }

#endif  // FLIPPER_TRIE_X86

bool AlwaysAvailable() { return true; }

struct KernelEntry {
  const char* name;
  ProbeFn fn;
  bool (*available)();
};

// Dispatch preference order: auto-resolution picks the first entry
// whose availability check passes. "scalar" is never auto-picked — it
// exists so tests/benches can force the baseline.
constexpr KernelEntry kKernels[] = {
#if defined(FLIPPER_TRIE_X86)
    {"avx2", &LowerBoundPackedAvx2, &HostHasAvx2},
    {"sse2", &LowerBoundPackedSse2, &AlwaysAvailable},
#endif
    {"portable", &LowerBoundPackedPortable, &AlwaysAvailable},
    {"scalar", &LowerBoundScalar, &AlwaysAvailable},
};

const KernelEntry* FindKernel(std::string_view name) {
  for (const KernelEntry& kernel : kKernels) {
    if (name == kernel.name) return &kernel;
  }
  return nullptr;
}

std::string KnownKernelNames() {
  std::string out;
  for (const KernelEntry& kernel : kKernels) {
    if (!out.empty()) out += ", ";
    out += kernel.name;
  }
  return out;
}

// The resolved dispatch target; nullptr until the first probe (or
// after ResetPackedKernel). Concurrent first probes race benignly:
// both resolve to the same entry.
std::atomic<const KernelEntry*> g_packed_kernel{nullptr};

const KernelEntry* ResolvePackedKernel() {
  const std::string forced = ForcedProbeKernel();
  if (!forced.empty()) {
    const KernelEntry* kernel = FindKernel(forced);
    FLIPPER_CHECK(kernel != nullptr)
        << "FLIPPER_FORCE_PROBE_KERNEL names unknown probe kernel '"
        << forced << "' (known kernels: " << KnownKernelNames() << ")";
    FLIPPER_CHECK(kernel->available())
        << "FLIPPER_FORCE_PROBE_KERNEL='" << forced
        << "' is not supported by this CPU";
    return kernel;
  }
  for (const KernelEntry& kernel : kKernels) {
    if (kernel.available()) return &kernel;
  }
  FLIPPER_CHECK(false) << "no probe kernel available";
  return nullptr;
}

const KernelEntry* DispatchedKernel() {
  const KernelEntry* kernel =
      g_packed_kernel.load(std::memory_order_acquire);
  if (kernel == nullptr) {
    kernel = ResolvePackedKernel();
    g_packed_kernel.store(kernel, std::memory_order_release);
  }
  return kernel;
}

}  // namespace

uint32_t LowerBoundPacked(const ItemId* items, uint32_t lo, uint32_t hi,
                          ItemId target) {
  return DispatchedKernel()->fn(items, lo, hi, target);
}

ProbeFn ResolvedPackedKernel() { return DispatchedKernel()->fn; }

const char* PackedKernelName() { return DispatchedKernel()->name; }

std::vector<const char*> AvailableKernelNames() {
  std::vector<const char*> names;
  for (const KernelEntry& kernel : kKernels) {
    if (kernel.available()) names.push_back(kernel.name);
  }
  return names;
}

ProbeFn KernelByName(std::string_view name) {
  const KernelEntry* kernel = FindKernel(name);
  if (kernel == nullptr || !kernel->available()) return nullptr;
  return kernel->fn;
}

Status ForcePackedKernel(std::string_view name) {
  const KernelEntry* kernel = FindKernel(name);
  if (kernel == nullptr) {
    return Status::InvalidArgument(
        "unknown probe kernel '" + std::string(name) +
        "' (known kernels: " + KnownKernelNames() + ")");
  }
  if (!kernel->available()) {
    return Status::FailedPrecondition(
        "probe kernel '" + std::string(name) +
        "' is not supported by this CPU");
  }
  g_packed_kernel.store(kernel, std::memory_order_release);
  return Status::OK();
}

void ResetPackedKernel() {
  g_packed_kernel.store(nullptr, std::memory_order_release);
}

uint32_t LowerBoundGallop(const ItemId* items, uint32_t lo, uint32_t hi,
                          ItemId target) {
  if (lo >= hi || items[lo] >= target) return lo;
  // Exponential probe from lo, then binary search the bracketed run.
  uint32_t step = 1;
  uint32_t prev = lo;
  while (lo + step < hi && items[lo + step] < target) {
    prev = lo + step;
    step <<= 1;
  }
  const ItemId* first = items + prev + 1;
  const ItemId* last = items + std::min<uint32_t>(hi, lo + step);
  return static_cast<uint32_t>(std::lower_bound(first, last, target) -
                               items);
}

}  // namespace trie_probe

namespace {

/// Expected node-stream jump per transaction item above which the
/// galloping probe beats the packed linear scan. The sibling stream is
/// usually L1-resident, where a sequential SIMD sweep costs ~1 cycle
/// per 4 items; galloping's dependent branchy accesses only win once
/// the average skip (run / remaining txn items) is a few hundred
/// items.
constexpr size_t kGallopJumpThreshold = 256;

/// True when the sibling run is long relative to the remaining
/// transaction suffix — each txn item then expects to skip
/// kGallopJumpThreshold+ siblings and the merge-walk switches to the
/// galloping probe for this frame.
inline bool UseGallop(uint32_t run, size_t txn_remaining) {
  return static_cast<size_t>(run) >
         kGallopJumpThreshold * (txn_remaining + 1);
}

}  // namespace

void CandidateTrie::Build(std::span<const Itemset> candidates,
                          const Options& options) {
  options_ = options;
  k_ = 0;
  counts_.assign(candidates.size(), 0);
  layers_.clear();
  items_.clear();
  child_begin_.clear();
  child_end_.clear();
  leaf_index_.clear();
  layer_begin_.clear();
  prefilter_.Clear();
  if (candidates.empty()) return;
  k_ = candidates[0].size();
  assert(k_ >= 1);

  if (options_.prefilter) {
    for (const Itemset& candidate : candidates) {
      for (ItemId item : candidate) prefilter_.Add(item);
    }
  }

  // Sort candidate indices lexicographically so that each trie layer
  // can be laid out with contiguous child ranges.
  std::vector<uint32_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return candidates[a] < candidates[b];
  });

  // Exact per-layer node counts — the number of distinct depth-d
  // prefixes of the sorted candidate list — so both builders can
  // reserve precisely and MemoryBytes() stays exact (capacity == size
  // on a fresh trie).
  std::vector<uint32_t> layer_sizes(static_cast<size_t>(k_), 0);
  for (size_t i = 0; i < order.size(); ++i) {
    int first_new = 0;
    if (i > 0) {
      const Itemset& prev = candidates[order[i - 1]];
      const Itemset& cur = candidates[order[i]];
      while (first_new < k_ && prev[first_new] == cur[first_new]) {
        ++first_new;
      }
      assert(first_new < k_ && "duplicate candidate itemsets");
    }
    for (int d = first_new; d < k_; ++d) {
      ++layer_sizes[static_cast<size_t>(d)];
    }
  }

  if (options_.flat) {
    BuildFlat(candidates, order, layer_sizes);
  } else {
    BuildLegacy(candidates, order, layer_sizes);
  }
}

void CandidateTrie::BuildLegacy(std::span<const Itemset> candidates,
                                std::span<const uint32_t> order,
                                std::span<const uint32_t> layer_sizes) {
  layers_.resize(static_cast<size_t>(k_));
  for (int d = 0; d < k_; ++d) {
    layers_[static_cast<size_t>(d)].reserve(
        layer_sizes[static_cast<size_t>(d)]);
  }

  // Layer-by-layer construction. Each pending range is a slice of the
  // sorted candidate list that shares a (depth)-prefix; grouping it by
  // the item at `depth` yields the sibling nodes of one parent.
  struct Range {
    uint32_t lo;
    uint32_t hi;  // exclusive
  };
  std::vector<Range> cur = {{0, static_cast<uint32_t>(order.size())}};
  std::vector<Range> nxt;
  std::vector<uint32_t> parent_of_range = {0};  // unused at depth 0
  std::vector<uint32_t> next_parent_of_range;

  for (int depth = 0; depth < k_; ++depth) {
    auto& layer = layers_[static_cast<size_t>(depth)];
    nxt.clear();
    next_parent_of_range.clear();
    for (size_t ri = 0; ri < cur.size(); ++ri) {
      const Range r = cur[ri];
      const auto first_child = static_cast<uint32_t>(layer.size());
      uint32_t i = r.lo;
      while (i < r.hi) {
        const ItemId item = candidates[order[i]][depth];
        uint32_t j = i;
        while (j < r.hi && candidates[order[j]][depth] == item) ++j;
        Node node;
        node.item = item;
        if (depth == k_ - 1) {
          assert(j - i == 1 && "duplicate candidate itemsets");
          node.leaf_index = order[i];
        } else {
          nxt.push_back({i, j});
          next_parent_of_range.push_back(
              static_cast<uint32_t>(layer.size()));
        }
        layer.push_back(node);
        i = j;
      }
      if (depth > 0) {
        Node& parent =
            layers_[static_cast<size_t>(depth - 1)][parent_of_range[ri]];
        parent.child_begin = first_child;
        parent.child_end = static_cast<uint32_t>(layer.size());
      }
    }
    cur = nxt;
    parent_of_range = next_parent_of_range;
  }
}

void CandidateTrie::BuildFlat(std::span<const Itemset> candidates,
                              std::span<const uint32_t> order,
                              std::span<const uint32_t> layer_sizes) {
  layer_begin_.assign(static_cast<size_t>(k_) + 1, 0);
  for (int d = 0; d < k_; ++d) {
    layer_begin_[static_cast<size_t>(d) + 1] =
        layer_begin_[static_cast<size_t>(d)] +
        layer_sizes[static_cast<size_t>(d)];
  }
  const uint32_t num_nodes = layer_begin_[static_cast<size_t>(k_)];
  const uint32_t num_internal =
      layer_begin_[static_cast<size_t>(k_ - 1)];
  items_.resize(num_nodes);
  child_begin_.resize(num_internal);
  child_end_.resize(num_internal);
  leaf_index_.resize(num_nodes - num_internal);

  // Same range-grouping walk as the legacy builder, writing straight
  // into the SoA columns at per-layer cursors. Node ids are global
  // (child ranges live in the next layer's id interval); leaf slots
  // are relative to the leaf layer.
  struct Range {
    uint32_t lo;
    uint32_t hi;  // exclusive
  };
  std::vector<Range> cur = {{0, static_cast<uint32_t>(order.size())}};
  std::vector<Range> nxt;
  std::vector<uint32_t> parent_of_range = {0};  // unused at depth 0
  std::vector<uint32_t> next_parent_of_range;

  for (int depth = 0; depth < k_; ++depth) {
    uint32_t cursor = layer_begin_[static_cast<size_t>(depth)];
    nxt.clear();
    next_parent_of_range.clear();
    for (size_t ri = 0; ri < cur.size(); ++ri) {
      const Range r = cur[ri];
      const uint32_t first_child = cursor;
      uint32_t i = r.lo;
      while (i < r.hi) {
        const ItemId item = candidates[order[i]][depth];
        uint32_t j = i;
        while (j < r.hi && candidates[order[j]][depth] == item) ++j;
        items_[cursor] = item;
        if (depth == k_ - 1) {
          assert(j - i == 1 && "duplicate candidate itemsets");
          leaf_index_[cursor - num_internal] = order[i];
        } else {
          nxt.push_back({i, j});
          next_parent_of_range.push_back(cursor);
        }
        ++cursor;
        i = j;
      }
      if (depth > 0) {
        const uint32_t parent = parent_of_range[ri];
        child_begin_[parent] = first_child;
        child_end_[parent] = cursor;
      }
    }
    assert(cursor == layer_begin_[static_cast<size_t>(depth) + 1]);
    cur = nxt;
    parent_of_range = next_parent_of_range;
  }
}

size_t CandidateTrie::num_nodes() const {
  if (options_.flat) {
    return layer_begin_.empty() ? 0 : layer_begin_.back();
  }
  size_t total = 0;
  for (const auto& layer : layers_) total += layer.size();
  return total;
}

void CandidateTrie::CountTransaction(std::span<const ItemId> txn) {
  CountTransaction(txn, counts_);
}

void CandidateTrie::CountTransaction(std::span<const ItemId> txn,
                                     std::span<uint32_t> counts) const {
  // Compatibility entry point (tests, ad-hoc callers): a throwaway
  // scratch keeps the semantics of the scratch-reusing path. The
  // batch scans hold per-shard scratches instead.
  CountScratch scratch;
  CountTransaction(txn, counts, &scratch);
}

void CandidateTrie::CountTransaction(std::span<const ItemId> txn,
                                     std::span<uint32_t> counts,
                                     CountScratch* scratch) const {
  if (counts_.empty() || static_cast<int>(txn.size()) < k_) return;
  assert(counts.size() == counts_.size());
  if (options_.prefilter) {
    // Drop items that provably occur in no candidate; the walk then
    // runs on the compacted stream, and a transaction left with fewer
    // than k items cannot contain any candidate at all.
    const size_t capacity_before = scratch->filtered.capacity();
    scratch->filtered.clear();
    for (ItemId item : txn) {
      if (prefilter_.MayContain(item)) scratch->filtered.push_back(item);
    }
    if (scratch->filtered.capacity() != capacity_before) {
      ++scratch->grow_events;
    }
    if (static_cast<int>(scratch->filtered.size()) < k_) {
      ++scratch->txns_prefiltered;
      return;
    }
    txn = scratch->filtered;
  }
  if (options_.flat) {
    CountFlat(txn, counts.data());
  } else {
    CountLegacy(txn, 0, 0, 0,
                static_cast<uint32_t>(layers_[0].size()), counts.data());
  }
}

void CandidateTrie::CountLegacy(std::span<const ItemId> txn,
                                size_t txn_pos, int depth,
                                uint32_t node_begin, uint32_t node_end,
                                uint32_t* counts) const {
  const auto& layer = layers_[static_cast<size_t>(depth)];
  // Merge-walk: both the sibling nodes and the transaction are sorted
  // by item id. Stop when fewer transaction items remain than levels
  // still needed to reach a leaf.
  uint32_t ni = node_begin;
  size_t ti = txn_pos;
  const size_t needed = static_cast<size_t>(k_ - depth);
  while (ni < node_end && txn.size() - ti >= needed) {
    const ItemId node_item = layer[ni].item;
    const ItemId txn_item = txn[ti];
    if (node_item < txn_item) {
      ++ni;
    } else if (node_item > txn_item) {
      ++ti;
    } else {
      if (depth == k_ - 1) {
        ++counts[layer[ni].leaf_index];
      } else {
        CountLegacy(txn, ti + 1, depth + 1, layer[ni].child_begin,
                    layer[ni].child_end, counts);
      }
      ++ni;
      ++ti;
    }
  }
}

void CandidateTrie::CountFlat(std::span<const ItemId> txn,
                              uint32_t* counts) const {
  // Iterative DFS with one frame per depth. Each frame is a sibling
  // range paired with a transaction cursor; resuming a frame continues
  // its merge-walk right after the previous match.
  struct Frame {
    uint32_t ni;  // next sibling node (global id)
    uint32_t ne;  // sibling range end
    uint32_t ti;  // next transaction position
  };
  std::array<Frame, kMaxItemsetSize> stack;
  // One dispatch load per transaction, not per probe.
  const trie_probe::ProbeFn packed = trie_probe::ResolvedPackedKernel();
  const ItemId* items = items_.data();
  const ItemId* txn_items = txn.data();
  const auto tn = static_cast<uint32_t>(txn.size());
  const uint32_t num_internal =
      layer_begin_[static_cast<size_t>(k_ - 1)];
  const int leaf_depth = k_ - 1;

  int depth = 0;
  stack[0] = {0, layer_begin_[1], 0};
  while (depth >= 0) {
    Frame& f = stack[static_cast<size_t>(depth)];
    const auto needed = static_cast<uint32_t>(k_ - depth);
    uint32_t ni = f.ni;
    uint32_t ti = f.ti;
    // Merge-advance to the next (node, txn) item match. Both streams
    // are sorted; whichever is behind jumps forward with a probe. The
    // probe choice is made once per frame resumption — the run only
    // shrinks from here, so a packed decision stays right, and a
    // gallop frame keeps galloping.
    bool matched = false;
    const bool gallop = ni < f.ne && UseGallop(f.ne - ni, tn - ti);
    while (ni < f.ne && tn - ti >= needed) {
      const ItemId want = txn_items[ti];
      ItemId have = items[ni];
      if (have < want) {
        ni = gallop
                 ? trie_probe::LowerBoundGallop(items, ni, f.ne, want)
                 : packed(items, ni, f.ne, want);
        if (ni >= f.ne) break;
        have = items[ni];
      }
      if (have == want) {
        matched = true;
        break;
      }
      // have > want: skip transaction items below it. The suffix is
      // nearly always short, so a scalar advance beats a probe call.
      ++ti;
      while (ti < tn && txn_items[ti] < have) ++ti;
    }
    if (!matched) {
      --depth;
      continue;
    }
    // Consume the match in this frame before descending so resumption
    // continues past it.
    f.ni = ni + 1;
    f.ti = ti + 1;
    if (depth == leaf_depth) {
      ++counts[leaf_index_[ni - num_internal]];
      continue;
    }
    stack[static_cast<size_t>(depth + 1)] = {child_begin_[ni],
                                             child_end_[ni], ti + 1};
    ++depth;
  }
}

int64_t CandidateTrie::MemoryBytes() const {
  int64_t total =
      static_cast<int64_t>(counts_.capacity() * sizeof(uint32_t));
  if (options_.flat) {
    total += static_cast<int64_t>(items_.capacity() * sizeof(ItemId));
    total +=
        static_cast<int64_t>(child_begin_.capacity() * sizeof(uint32_t));
    total +=
        static_cast<int64_t>(child_end_.capacity() * sizeof(uint32_t));
    total +=
        static_cast<int64_t>(leaf_index_.capacity() * sizeof(uint32_t));
    total +=
        static_cast<int64_t>(layer_begin_.capacity() * sizeof(uint32_t));
  } else {
    for (const auto& layer : layers_) {
      total += static_cast<int64_t>(layer.capacity() * sizeof(Node));
    }
  }
  if (options_.prefilter) total += PrefilterMemoryBytes();
  return total;
}

}  // namespace flipper
