#include "core/candidate_trie.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace flipper {

CandidateTrie::CandidateTrie(std::span<const Itemset> candidates) {
  counts_.assign(candidates.size(), 0);
  if (candidates.empty()) return;
  k_ = candidates[0].size();
  assert(k_ >= 1);

  // Sort candidate indices lexicographically so that each trie layer
  // can be laid out with contiguous child ranges.
  std::vector<uint32_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return candidates[a] < candidates[b];
  });

  layers_.resize(static_cast<size_t>(k_));

  // Layer-by-layer construction. Each pending range is a slice of the
  // sorted candidate list that shares a (depth)-prefix; grouping it by
  // the item at `depth` yields the sibling nodes of one parent.
  struct Range {
    uint32_t lo;
    uint32_t hi;  // exclusive
  };
  std::vector<Range> cur = {{0, static_cast<uint32_t>(order.size())}};
  std::vector<Range> nxt;
  std::vector<uint32_t> parent_of_range = {0};  // unused at depth 0
  std::vector<uint32_t> next_parent_of_range;

  for (int depth = 0; depth < k_; ++depth) {
    auto& layer = layers_[static_cast<size_t>(depth)];
    nxt.clear();
    next_parent_of_range.clear();
    for (size_t ri = 0; ri < cur.size(); ++ri) {
      const Range r = cur[ri];
      const auto first_child = static_cast<uint32_t>(layer.size());
      uint32_t i = r.lo;
      while (i < r.hi) {
        const ItemId item = candidates[order[i]][depth];
        uint32_t j = i;
        while (j < r.hi && candidates[order[j]][depth] == item) ++j;
        Node node;
        node.item = item;
        if (depth == k_ - 1) {
          assert(j - i == 1 && "duplicate candidate itemsets");
          node.leaf_index = order[i];
        } else {
          nxt.push_back({i, j});
          next_parent_of_range.push_back(
              static_cast<uint32_t>(layer.size()));
        }
        layer.push_back(node);
        i = j;
      }
      if (depth > 0) {
        Node& parent =
            layers_[static_cast<size_t>(depth - 1)][parent_of_range[ri]];
        parent.child_begin = first_child;
        parent.child_end = static_cast<uint32_t>(layer.size());
      }
    }
    cur = nxt;
    parent_of_range = next_parent_of_range;
  }
}

void CandidateTrie::CountTransaction(std::span<const ItemId> txn) {
  CountTransaction(txn, counts_);
}

void CandidateTrie::CountTransaction(std::span<const ItemId> txn,
                                     std::span<uint32_t> counts) const {
  if (counts_.empty() || static_cast<int>(txn.size()) < k_) return;
  assert(counts.size() == counts_.size());
  Count(txn, 0, 0, 0, static_cast<uint32_t>(layers_[0].size()),
        counts.data());
}

void CandidateTrie::Count(std::span<const ItemId> txn, size_t txn_pos,
                          int depth, uint32_t node_begin,
                          uint32_t node_end, uint32_t* counts) const {
  const auto& layer = layers_[static_cast<size_t>(depth)];
  // Merge-walk: both the sibling nodes and the transaction are sorted
  // by item id. Stop when fewer transaction items remain than levels
  // still needed to reach a leaf.
  uint32_t ni = node_begin;
  size_t ti = txn_pos;
  const size_t needed = static_cast<size_t>(k_ - depth);
  while (ni < node_end && txn.size() - ti >= needed) {
    const ItemId node_item = layer[ni].item;
    const ItemId txn_item = txn[ti];
    if (node_item < txn_item) {
      ++ni;
    } else if (node_item > txn_item) {
      ++ti;
    } else {
      if (depth == k_ - 1) {
        ++counts[layer[ni].leaf_index];
      } else {
        Count(txn, ti + 1, depth + 1, layer[ni].child_begin,
              layer[ni].child_end, counts);
      }
      ++ni;
      ++ti;
    }
  }
}

int64_t CandidateTrie::MemoryBytes() const {
  int64_t total =
      static_cast<int64_t>(counts_.capacity() * sizeof(uint32_t));
  for (const auto& layer : layers_) {
    total += static_cast<int64_t>(layer.capacity() * sizeof(Node));
  }
  return total;
}

}  // namespace flipper
