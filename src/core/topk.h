// Top-K "most flipping" patterns — the paper's §7 future-work
// extension: when a data expert cannot pick gamma/epsilon, rank the
// discovered patterns by the gap between correlation values at
// different hierarchy levels and keep the K widest.

#ifndef FLIPPER_CORE_TOPK_H_
#define FLIPPER_CORE_TOPK_H_

#include <cstddef>
#include <vector>

#include "core/pattern.h"

namespace flipper {

/// The K patterns with the largest FlipGap (the smallest gap across a
/// pattern's consecutive levels — so every flip of a returned pattern
/// is at least that wide). Ties break on the canonical pattern order.
/// Returns fewer than K when fewer patterns exist.
std::vector<FlippingPattern> TopKMostFlipping(
    std::vector<FlippingPattern> patterns, size_t k);

/// Convenience: mines with deliberately loose thresholds and keeps the
/// top K. `gamma_floor`/`epsilon_ceiling` define the loosest labels
/// that still count as positive/negative.
struct TopKQuery {
  size_t k = 10;
  double gamma_floor = 0.2;
  double epsilon_ceiling = 0.15;
};

}  // namespace flipper

#endif  // FLIPPER_CORE_TOPK_H_
