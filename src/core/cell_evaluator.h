// CellEvaluator: the evaluation stage of the cell pipeline. Turns a
// counted candidate batch into a Cell of ItemsetRecords (correlation,
// label, chain-alive flag), carries the pattern chains of alive
// itemsets forward level by level, and owns the SIBP bookkeeping
// (per-level qualification walk + ban set, §4.3.2). The pipeline calls
// Evaluate / SibpUpdate / SibpBan in exactly the serial cell order, so
// all results are bit-identical to the unpipelined path; the planner
// reads banned(h) between calls to detect stale speculative plans.

#ifndef FLIPPER_CORE_CELL_EVALUATOR_H_
#define FLIPPER_CORE_CELL_EVALUATOR_H_

#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/memory_tracker.h"
#include "core/cell.h"
#include "core/config.h"
#include "core/level_views.h"
#include "core/mining_result.h"
#include "core/stats.h"
#include "data/itemset.h"
#include "taxonomy/taxonomy.h"

namespace flipper {

class CellEvaluator {
 public:
  /// All references/pointers must outlive the evaluator.
  /// `freq_items[h]` holds level h's frequent single items sorted by
  /// id; the SIBP support-ascending orders L_h are derived here.
  CellEvaluator(const Taxonomy& taxonomy, const MiningConfig& config,
                const LevelViews& views, MemoryTracker* tracker,
                const std::vector<std::vector<ItemId>>& freq_items,
                uint32_t num_txns);

  /// Builds cell Q(h,k) from the counted batch: support/correlation/
  /// label per record, the flip check against `parent_cell` (null for
  /// row 1), chain extension for alive itemsets. Updates cs->frequent/
  /// labeled/alive and stats->num_positive/num_negative.
  Cell Evaluate(int h, int k, std::span<const Itemset> candidates,
                std::span<const uint32_t> supports,
                const Cell* parent_cell, CellStats* cs,
                MiningStats* stats);

  /// SIBP per-cell bookkeeping: updates the per-item max-Corr walk of
  /// L_h and records first-qualification columns (§4.3.2).
  void SibpUpdate(int h, int k, const Cell& cell);

  /// SIBP ban step: a level-h item whose qualification column and
  /// whose parent's level-(h-1) qualification column are both <= k is
  /// excluded from all wider candidate itemsets.
  void SibpBan(int h, int k, MiningStats* stats);

  /// Level h's current ban set. Bans only grow, so its size doubles as
  /// the version the planner validates speculative plans against.
  const std::unordered_set<ItemId>& banned(int h) const {
    return banned_[static_cast<size_t>(h)];
  }

  /// Drops the chains of a retired row.
  void ReleaseChains(int h) { chains_[static_cast<size_t>(h)].clear(); }

  /// Emits patterns for the alive records of the final row (sorted).
  void AssemblePatterns(const std::vector<Cell>& last_row,
                        MiningResult* result) const;

 private:
  /// Pattern chains of the alive itemsets of one row.
  using ChainMap =
      std::unordered_map<Itemset, std::vector<LevelStat>, ItemsetHash>;

  const Taxonomy& tax_;
  const MiningConfig& config_;
  const LevelViews& views_;
  MemoryTracker* tracker_;
  uint32_t num_txns_ = 0;

  /// SIBP's L_h: frequent items sorted by ascending support.
  std::vector<std::vector<ItemId>> sibp_order_;
  /// First column at which an item entered R_h.
  std::vector<std::unordered_map<ItemId, int>> sibp_qualified_col_;
  /// Items banned from further candidates at their level.
  std::vector<std::unordered_set<ItemId>> banned_;
  /// chains_[h]: generalization chains of row h's alive itemsets.
  std::vector<ChainMap> chains_;
};

}  // namespace flipper

#endif  // FLIPPER_CORE_CELL_EVALUATOR_H_
