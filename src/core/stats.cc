#include "core/stats.h"

#include "common/string_util.h"

namespace flipper {

void MiningStats::AddCell(const CellStats& cell) {
  cells.push_back(cell);
  total_generated += cell.generated;
  total_counted += cell.counted;
  total_seconds += cell.seconds;
}

std::string MiningStats::ToString() const {
  std::string out;
  out += "cells computed:    " + FormatCount(static_cast<int64_t>(
                                     cells.size())) + "\n";
  out += "candidates gen:    " +
         FormatCount(static_cast<int64_t>(total_generated)) + "\n";
  out += "candidates cnt:    " +
         FormatCount(static_cast<int64_t>(total_counted)) + "\n";
  out += "db scans:          " +
         FormatCount(static_cast<int64_t>(db_scans)) + " (scan-cell: " +
         FormatCount(static_cast<int64_t>(scan_cell_scans)) + ")\n";
  out += "segments skipped:  " +
         FormatCount(static_cast<int64_t>(segments_skipped)) + "\n";
  out += "txns prefiltered:  " +
         FormatCount(static_cast<int64_t>(txns_prefiltered)) + "\n";
  out += "positive itemsets: " +
         FormatCount(static_cast<int64_t>(num_positive)) + "\n";
  out += "negative itemsets: " +
         FormatCount(static_cast<int64_t>(num_negative)) + "\n";
  out += "peak cand. memory: " + FormatBytes(peak_candidate_bytes) + "\n";
  out += "tpg stop column:   " +
         (tpg_stopped_at > 0 ? std::to_string(tpg_stopped_at)
                             : std::string("-")) +
         "\n";
  out += "sibp banned items: " +
         FormatCount(static_cast<int64_t>(sibp_banned_items)) + "\n";
  out += "total time:        " + FormatDouble(total_seconds, 3) + " s\n";
  return out;
}

}  // namespace flipper
