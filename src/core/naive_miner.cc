#include "core/naive_miner.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/memory_tracker.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/candidate_gen.h"
#include "core/cell.h"
#include "core/label.h"
#include "core/level_views.h"
#include "core/support_counting.h"
#include "measures/measure.h"

namespace flipper {
namespace {

/// All cells of one level, indexed by k (cells[k - 2] holds the
/// k-itemsets).
using LevelCells = std::vector<Cell>;

}  // namespace

Result<MiningResult> NaiveMiner::Run(const TransactionDb& db,
                                     const Taxonomy& taxonomy,
                                     const MiningConfig& config) {
  FLIPPER_RETURN_IF_ERROR(config.Validate());
  ThreadPool pool(config.num_threads);
  LevelViews::BuildOptions view_options;
  // The naive miner never runs scan-driven cells, so only the
  // horizontal counter can consume catalogs.
  view_options.build_catalogs = config.enable_segment_skipping &&
                                config.counter == CounterKind::kHorizontal;
  FLIPPER_ASSIGN_OR_RETURN(
      LevelViews views, LevelViews::Build(db, taxonomy, &pool,
                                          view_options));
  CounterOptions counter_options;
  counter_options.enable_segment_skipping = config.enable_segment_skipping;
  counter_options.trie.flat = config.enable_flat_trie;
  counter_options.trie.prefilter = config.enable_txn_prefilter;
  std::unique_ptr<SupportCounter> counter =
      MakeCounter(config.counter, &pool, counter_options);

  MiningResult result;
  MemoryTracker tracker;
  WallTimer total_timer;
  const int height = taxonomy.height();
  const uint32_t n = views.num_transactions();

  // Phase 1: full Apriori per level. Every frequent itemset of every
  // level stays resident until post-processing — that is the point of
  // this baseline.
  std::vector<LevelCells> levels(static_cast<size_t>(height) + 1);
  for (int h = 1; h <= height; ++h) {
    const uint32_t min_count = config.MinCount(h, n);

    // Frequent single items, sorted by id.
    std::vector<ItemId> freq_items;
    for (ItemId item : taxonomy.NodesAtLevel(h)) {
      if (views.ItemSupport(h, item) >= min_count) {
        freq_items.push_back(item);
      }
    }

    LevelCells& cells = levels[static_cast<size_t>(h)];
    const int k_cap =
        config.max_itemset_size > 0
            ? std::min(config.max_itemset_size, kMaxItemsetSize)
            : kMaxItemsetSize;
    for (int k = 2; k <= k_cap; ++k) {
      WallTimer cell_timer;
      std::vector<Itemset> candidates;
      bool truncated = false;
      if (k == 2) {
        candidates = GeneratePairs(freq_items);
        truncated = candidates.size() > config.max_candidates_per_cell;
      } else {
        const Cell& prev = cells[static_cast<size_t>(k - 3)];
        std::vector<Itemset> prev_frequent = prev.Select(
            [](const ItemsetRecord& r) { return r.frequent; });
        candidates = AprioriJoin(prev_frequent, prev,
                                 config.max_candidates_per_cell,
                                 &truncated);
      }
      if (truncated) {
        return Status::ResourceExhausted(
            "naive Apriori exceeded " +
            std::to_string(config.max_candidates_per_cell) +
            " candidates at level " + std::to_string(h) +
            ", k=" + std::to_string(k));
      }
      if (candidates.empty()) break;

      std::vector<uint32_t> supports;
      FLIPPER_RETURN_IF_ERROR(
          counter->Count(&views, h, candidates, &supports));

      Cell cell(h, k, &tracker);
      CellStats cs;
      cs.h = h;
      cs.k = k;
      cs.generated = candidates.size();
      cs.counted = candidates.size();
      std::vector<uint32_t> item_sups;
      for (size_t i = 0; i < candidates.size(); ++i) {
        const uint32_t sup = supports[i];
        const bool frequent = sup >= min_count;
        if (!frequent) continue;  // BASIC keeps frequent itemsets only
        const Itemset& itemset = candidates[i];
        item_sups.clear();
        for (ItemId item : itemset) {
          item_sups.push_back(views.ItemSupport(h, item));
        }
        ItemsetRecord record;
        record.support = sup;
        record.corr = Correlation(config.measure, sup, item_sups);
        record.frequent = true;
        record.label =
            LabelOf(record.corr, config.gamma, config.epsilon, true);
        cell.Put(itemset, record);
        ++cs.frequent;
        if (record.label != Label::kNone) ++cs.labeled;
        if (record.label == Label::kPositive) ++result.stats.num_positive;
        if (record.label == Label::kNegative) ++result.stats.num_negative;
      }
      cs.seconds = cell_timer.ElapsedSeconds();
      result.stats.AddCell(cs);
      const bool no_frequent = cell.empty();
      cells.push_back(std::move(cell));
      if (no_frequent) break;  // anti-monotonicity: no larger itemsets
    }
  }

  // Phase 2: post-hoc flipping extraction. A leaf (level-H) frequent
  // k-itemset is a flipping pattern iff its items descend from distinct
  // level-1 roots and every per-level generalization is frequent,
  // labeled, and the labels alternate (Definition 2).
  if (height >= 2) {
    const LevelCells& leaf_cells = levels[static_cast<size_t>(height)];
    for (const Cell& leaf_cell : leaf_cells) {
      const int k = leaf_cell.k();
      leaf_cell.ForEach([&](const Itemset& leaf, const ItemsetRecord&) {
        // Distinct level-1 roots.
        Itemset roots = leaf.Map(
            [&](ItemId item) { return taxonomy.RootOf(item); });
        if (roots.size() != k) return;

        FlippingPattern pattern;
        pattern.leaf_itemset = leaf;
        Label prev_label = Label::kNone;
        for (int h = 1; h <= height; ++h) {
          const Itemset gen = leaf.Map([&](ItemId item) {
            return taxonomy.AncestorAtLevel(item, h);
          });
          const LevelCells& cells = levels[static_cast<size_t>(h)];
          if (static_cast<size_t>(k - 2) >= cells.size()) return;
          const ItemsetRecord* rec =
              cells[static_cast<size_t>(k - 2)].Find(gen);
          if (rec == nullptr || !rec->frequent ||
              rec->label == Label::kNone) {
            return;
          }
          if (h > 1 && !Flips(prev_label, rec->label)) return;
          prev_label = rec->label;
          pattern.chain.push_back(
              {h, gen, rec->support, rec->corr, rec->label});
        }
        result.patterns.push_back(std::move(pattern));
      });
    }
  }
  SortPatterns(&result.patterns);

  result.stats.db_scans = counter->num_db_scans();
  result.stats.segments_skipped = counter->segments_skipped();
  result.stats.txns_prefiltered = counter->txns_prefiltered();
  result.stats.peak_candidate_bytes = tracker.peak_bytes();
  result.stats.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace flipper
