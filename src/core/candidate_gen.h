// Candidate generation for the two growth directions of the search
// space table M (paper §4.1):
//
//   horizontal — Apriori prefix join within a row (used to bootstrap
//     row 1, whose cells are complete);
//   vertical   — expanding an (h-1,k)-itemset into all combinations of
//     its items' children (rows >= 2). A leaf shallower than the target
//     level acts as its own child (Figure-3[B] self-copies).

#ifndef FLIPPER_CORE_CANDIDATE_GEN_H_
#define FLIPPER_CORE_CANDIDATE_GEN_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/cell.h"
#include "data/itemset.h"
#include "taxonomy/taxonomy.h"

namespace flipper {

/// All 2-itemsets over `items` (which must be sorted ascending).
std::vector<Itemset> GeneratePairs(std::span<const ItemId> items);

/// Classic Apriori join + subset pruning over the *complete* cell
/// `prev` (row 1): joins frequent k-itemsets sharing a (k-1)-prefix and
/// keeps results whose every k-subset is frequent in `prev`. The input
/// list must be sorted lexicographically and contain only frequent
/// itemsets. Generation stops early once `max_out` results exist;
/// `*truncated` (if non-null) reports whether that happened, so
/// callers can surface ResourceExhausted without first materializing
/// an oversized candidate vector.
std::vector<Itemset> AprioriJoin(std::span<const Itemset> prev_frequent,
                                 const Cell& prev,
                                 size_t max_out = SIZE_MAX,
                                 bool* truncated = nullptr);

/// Vertical growth: the cartesian product of the effective children of
/// each of `parent`'s items at level `h` (children of internal nodes;
/// the node itself for shallow leaves). Children failing `child_ok`
/// (e.g. infrequent singletons, SIBP-banned items) are skipped.
/// Appends to `out`, stopping once out->size() reaches `max_out`
/// (reported through `truncated` when non-null).
void VerticalExpand(const Itemset& parent, const Taxonomy& taxonomy,
                    int h, const std::function<bool(ItemId)>& child_ok,
                    std::vector<Itemset>* out,
                    size_t max_out = SIZE_MAX,
                    bool* truncated = nullptr);

/// Known-infrequent subset filter for rows >= 2 (where cells are not
/// complete): drops candidates having a (k-1)-subset that was counted
/// in `prev_in_row` and found infrequent. Absent subsets are unknown
/// and do NOT prune. Returns the filtered list.
std::vector<Itemset> FilterKnownInfrequentSubsets(
    std::vector<Itemset> candidates, const Cell& prev_in_row);

}  // namespace flipper

#endif  // FLIPPER_CORE_CANDIDATE_GEN_H_
