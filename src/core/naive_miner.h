// NaiveMiner: the paper's "BASIC" baseline (§5) and the ground-truth
// oracle for differential testing.
//
// It runs a full, unconstrained level-wise Apriori at every abstraction
// level (support pruning only), keeping every frequent itemset of every
// level in memory, then extracts flipping patterns as a post-processing
// step. This represents "all previous methods, which were computing all
// frequent patterns before ranking the correlations" and exhibits the
// candidate-memory blowup the paper reports (BASIC consumed up to 40 GB
// vs. Flipper's < 2 GB).

#ifndef FLIPPER_CORE_NAIVE_MINER_H_
#define FLIPPER_CORE_NAIVE_MINER_H_

#include "common/status.h"
#include "core/config.h"
#include "core/mining_result.h"
#include "data/transaction_db.h"
#include "taxonomy/taxonomy.h"

namespace flipper {

class NaiveMiner {
 public:
  /// Mines all flipping patterns of `db` under `taxonomy`.
  /// `config.pruning` is ignored — this miner always uses support-only
  /// pruning. Fails with ResourceExhausted when a cell exceeds
  /// config.max_candidates_per_cell.
  static Result<MiningResult> Run(const TransactionDb& db,
                                  const Taxonomy& taxonomy,
                                  const MiningConfig& config);
};

}  // namespace flipper

#endif  // FLIPPER_CORE_NAIVE_MINER_H_
