// LevelViews: per-abstraction-level generalized databases plus the
// derived structures the counting engines need (single-item supports,
// optional vertical indexes). Level h's view is the input database with
// every item replaced by its level-h generalization (paper Figure 4).

#ifndef FLIPPER_CORE_LEVEL_VIEWS_H_
#define FLIPPER_CORE_LEVEL_VIEWS_H_

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "data/segment_catalog.h"
#include "data/transaction_db.h"
#include "data/vertical_index.h"
#include "taxonomy/taxonomy.h"

namespace flipper {

/// One abstraction level's materialized state.
struct LevelData {
  int level = 0;
  TransactionDb db;
  /// sup(item) indexed by ItemId over the shared id space.
  std::vector<uint32_t> item_support;
  /// width_hist[w] = number of transactions of generalized width w.
  std::vector<uint32_t> width_hist;
  /// Built on demand (vertical counting only); mutable so the lazy
  /// build stays available through the const (shared, read-only) view
  /// the re-entrant miner borrows. Guarded by LevelViews::vertical_mu_.
  mutable std::unique_ptr<VerticalIndex> vertical;
  /// Per-segment presence metadata of this level's generalized
  /// database (scan skipping); null when catalogs are disabled.
  std::shared_ptr<const SegmentCatalog> catalog;
};

class LevelViews {
 public:
  struct BuildOptions {
    /// Build a per-level SegmentCatalog so the scan paths can skip
    /// segments that cannot contain a live candidate
    /// (MiningConfig::enable_segment_skipping). Levels reuse the leaf
    /// database's attached catalog boundaries (a segmented store's
    /// shard layout) when present, and fall back to uniform
    /// `segment_txns`-sized ranges otherwise.
    bool build_catalogs = true;
    uint64_t segment_txns = SegmentCatalog::kDefaultSegmentTxns;
  };

  /// Creates an empty view (no levels); assign from Build().
  LevelViews() = default;

  /// Materializes levels 1..taxonomy.height(). Fails if a transaction
  /// contains an item that is not a taxonomy node (every transaction
  /// item must map to a node at every level). A non-null `pool`
  /// parallelizes the per-level generalization scans; it is used only
  /// for the duration of the call — the views keep no reference to it,
  /// so they can outlive the build pool and be shared (read-only)
  /// across concurrent queries that each bring their own pool.
  static Result<LevelViews> Build(const TransactionDb& leaf_db,
                                  const Taxonomy& taxonomy,
                                  ThreadPool* pool,
                                  const BuildOptions& options);
  /// Convenience overload without catalogs: direct callers (tests,
  /// ad-hoc tools) rarely run the skipping scan paths, so they should
  /// not pay the per-level catalog pass; the miners opt in through
  /// BuildOptions.
  static Result<LevelViews> Build(const TransactionDb& leaf_db,
                                  const Taxonomy& taxonomy,
                                  ThreadPool* pool = nullptr) {
    BuildOptions options;
    options.build_catalogs = false;
    return Build(leaf_db, taxonomy, pool, options);
  }

  int height() const { return static_cast<int>(levels_.size()); }
  uint32_t num_transactions() const { return num_txns_; }

  const LevelData& Level(int h) const { return levels_[h - 1]; }

  /// Support of a single node at its level's view.
  uint32_t ItemSupport(int h, ItemId item) const {
    const auto& sup = levels_[h - 1].item_support;
    return item < sup.size() ? sup[item] : 0;
  }

  /// Ensures Level(h).vertical is built (parallelized over `pool` when
  /// non-null). Thread-safe: concurrent callers serialize on the build
  /// and all observe the same index, so shared views stay usable from
  /// concurrent queries (each passing its own pool).
  const VerticalIndex& EnsureVertical(int h, ThreadPool* pool) const;

  /// Deterministic shard count for a sharded scan of level h's
  /// generalized database on `pool`: one shard per pool thread,
  /// reduced so every shard keeps `min_txns_per_shard` transactions
  /// (1 when the pool is absent or single-threaded).
  int NumScanShards(int h, size_t min_txns_per_shard,
                    const ThreadPool* pool) const;

  /// Sharded scan of level h's generalized database: invokes
  /// fn(shard, lo, hi) for `num_shards` contiguous transaction ranges
  /// (half-open, statically split as in ShardRange), distributed over
  /// `pool` and blocking until all shards complete. This is the entry
  /// point the scan-driven cell uses; fn must confine writes to
  /// per-shard state.
  void ScanShards(int h, int num_shards,
                  const std::function<void(int shard, size_t lo,
                                           size_t hi)>& fn,
                  ThreadPool* pool) const;

  /// min over levels of the maximum generalized transaction width:
  /// no (h,k)-itemset with k beyond this bound can be frequent at
  /// every level, so it caps the number of search-space columns.
  uint32_t MaxUniversalWidth() const;

 private:
  uint32_t num_txns_ = 0;
  std::vector<LevelData> levels_;
  /// Serializes lazy vertical-index builds across sharing queries
  /// (heap-held so the views stay movable while being built).
  std::unique_ptr<std::mutex> vertical_mu_ =
      std::make_unique<std::mutex>();
};

}  // namespace flipper

#endif  // FLIPPER_CORE_LEVEL_VIEWS_H_
