#include "core/flipper_miner.h"

#include "core/cell_pipeline.h"

namespace flipper {

Result<MiningResult> FlipperMiner::Run(const TransactionDb& db,
                                       const Taxonomy& taxonomy,
                                       const MiningConfig& config) {
  CellPipeline pipeline(taxonomy, config);
  return pipeline.Execute(db);
}

Result<MiningResult> FlipperMiner::Run(const TransactionDb& db,
                                       const Taxonomy& taxonomy,
                                       const MiningConfig& config,
                                       const LevelViews* shared_views) {
  CellPipeline pipeline(taxonomy, config);
  return pipeline.Execute(db, shared_views);
}

}  // namespace flipper
