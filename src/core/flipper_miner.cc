#include "core/flipper_miner.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/logging.h"
#include "common/memory_tracker.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/candidate_gen.h"
#include "core/cell.h"
#include "core/label.h"
#include "core/level_views.h"
#include "core/support_counting.h"
#include "measures/measure.h"

namespace flipper {
namespace {

/// Pattern chains of the alive itemsets of one row.
using ChainMap =
    std::unordered_map<Itemset, std::vector<LevelStat>, ItemsetHash>;

/// One full execution of Algorithm 1.
class FlipperRun {
 public:
  FlipperRun(const Taxonomy& taxonomy, const MiningConfig& config)
      : tax_(taxonomy), config_(config) {}

  Result<MiningResult> Execute(const TransactionDb& db);

 private:
  /// A row of the search-space table: cells_[k - 2] is Q(h, k).
  using Row = std::vector<Cell>;

  /// Computes cell Q(h,k). `parent_cell` is Q(h-1,k) (null for row 1),
  /// `prev_in_row` is Q(h,k-1) (null for k == 2).
  Result<Cell> ComputeCell(int h, int k, const Cell* parent_cell,
                           const Cell* prev_in_row);

  /// Scan-driven candidate discovery for explosive cells: enumerates
  /// the k-subsets of each (filtered) generalized transaction instead
  /// of materializing the cartesian children product, so combinations
  /// that never co-occur are skipped. Sound because MinCount() is
  /// always >= 1: a zero-support itemset can never be frequent.
  /// Returns candidates with their exact supports.
  Status FillCellByScan(int h, int k, const Cell* parent_cell,
                        const Cell* prev_in_row,
                        std::vector<Itemset>* candidates,
                        std::vector<uint32_t>* supports,
                        CellStats* cs);

  /// Expected number of k-subset probes of a level-h database scan,
  /// from the width histogram.
  double ScanEnumerationCost(int h, int k) const;

  /// SIBP per-cell bookkeeping: updates the per-item max-Corr walk of
  /// L_h and records first-qualification columns (§4.3.2).
  void SibpUpdate(int h, int k, const Cell& cell);

  /// SIBP ban step: a level-h item whose qualification column and
  /// whose parent's level-(h-1) qualification column are both <= k is
  /// excluded from all wider candidate itemsets.
  void SibpBan(int h, int k);

  /// Theorem-3 premise over two vertically consecutive cells.
  bool TpgFires(const Cell& upper, const Cell& lower) const {
    return config_.pruning.tpg && upper.AllNonPositive() &&
           lower.AllNonPositive();
  }

  /// Predicate selecting parents eligible for vertical growth.
  bool ParentEligible(const ItemsetRecord& record) const {
    return config_.pruning.flipping ? record.chain_alive
                                    : record.frequent;
  }

  /// Evicts records a completed row no longer needs: chain-dead ones
  /// under flipping pruning ("eliminate non-flipping patterns"),
  /// infrequent ones always.
  void EvictCompletedRow(Row* row);

  /// Emits patterns for the alive records of the final row.
  void AssemblePatterns(const Row& last_row, MiningResult* result);

  const Taxonomy& tax_;
  const MiningConfig& config_;
  std::unique_ptr<ThreadPool> pool_;
  LevelViews views_;
  std::unique_ptr<SupportCounter> counter_;
  MemoryTracker tracker_;
  MiningStats stats_;

  uint32_t num_txns_ = 0;
  int height_ = 0;
  int max_k_ = 0;  // current column cap; TPG shrinks it

  /// Frequent single items per level (index h), sorted by id.
  std::vector<std::vector<ItemId>> freq_items_;
  /// SIBP's L_h: frequent items sorted by ascending support.
  std::vector<std::vector<ItemId>> sibp_order_;
  /// First column at which an item entered R_h.
  std::vector<std::unordered_map<ItemId, int>> sibp_qualified_col_;
  /// Items banned from further candidates at their level.
  std::vector<std::unordered_set<ItemId>> banned_;
  /// chains_[h]: generalization chains of row h's alive itemsets.
  std::vector<ChainMap> chains_;
};

Result<MiningResult> FlipperRun::Execute(const TransactionDb& db) {
  FLIPPER_RETURN_IF_ERROR(config_.Validate());
  pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  FLIPPER_ASSIGN_OR_RETURN(views_,
                           LevelViews::Build(db, tax_, pool_.get()));
  counter_ = MakeCounter(config_.counter, pool_.get());

  WallTimer total_timer;
  MiningResult result;
  height_ = tax_.height();
  num_txns_ = views_.num_transactions();

  // Column bound: itemsets are rooted in distinct level-1 nodes, and a
  // frequent (h,k)-itemset needs a transaction with k distinct level-h
  // items (paper §4.1).
  max_k_ = static_cast<int>(
      std::min<size_t>(tax_.Level1().size(), views_.MaxUniversalWidth()));
  max_k_ = std::min(max_k_, kMaxItemsetSize);
  if (config_.max_itemset_size > 0) {
    max_k_ = std::min(max_k_, config_.max_itemset_size);
  }

  // Scan 1 (line 1 of Algorithm 1): frequent single items per level.
  freq_items_.assign(static_cast<size_t>(height_) + 1, {});
  sibp_order_.assign(static_cast<size_t>(height_) + 1, {});
  sibp_qualified_col_.assign(static_cast<size_t>(height_) + 1, {});
  banned_.assign(static_cast<size_t>(height_) + 1, {});
  chains_.assign(static_cast<size_t>(height_) + 1, {});
  for (int h = 1; h <= height_; ++h) {
    const uint32_t min_count = config_.MinCount(h, num_txns_);
    auto& items = freq_items_[static_cast<size_t>(h)];
    for (ItemId item : tax_.NodesAtLevel(h)) {
      if (views_.ItemSupport(h, item) >= min_count) {
        items.push_back(item);
      }
    }
    auto& order = sibp_order_[static_cast<size_t>(h)];
    order = items;
    std::sort(order.begin(), order.end(), [&](ItemId a, ItemId b) {
      const uint32_t sa = views_.ItemSupport(h, a);
      const uint32_t sb = views_.ItemSupport(h, b);
      return sa != sb ? sa < sb : a < b;
    });
  }

  if (height_ < 2 || max_k_ < 2) {
    // No flipping is possible with a single abstraction level, and no
    // correlation is defined for single items.
    result.stats.total_seconds = total_timer.ElapsedSeconds();
    return result;
  }

  // --- Phase 1: the two ceiling rows, zigzag (lines 2-7). ---
  Row row1;
  Row row2;
  for (int k = 2; k <= max_k_; ++k) {
    const Cell* prev1 = k == 2 ? nullptr : &row1[static_cast<size_t>(k - 3)];
    FLIPPER_ASSIGN_OR_RETURN(Cell q1, ComputeCell(1, k, nullptr, prev1));
    const bool q1_has_frequent = !q1.Select([](const ItemsetRecord& r) {
                                     return r.frequent;
                                   }).empty();
    if (!q1_has_frequent) {
      // Support termination: no frequent (1,k)-itemsets means no
      // frequent (1,k')-itemsets for k' >= k, so every deeper chain is
      // broken from column k on.
      max_k_ = k - 1;
      break;
    }
    row1.push_back(std::move(q1));

    const Cell* prev2 = k == 2 ? nullptr : &row2[static_cast<size_t>(k - 3)];
    FLIPPER_ASSIGN_OR_RETURN(
        Cell q2,
        ComputeCell(2, k, &row1[static_cast<size_t>(k - 2)], prev2));
    row2.push_back(std::move(q2));

    SibpUpdate(1, k, row1[static_cast<size_t>(k - 2)]);
    SibpUpdate(2, k, row2[static_cast<size_t>(k - 2)]);
    SibpBan(2, k);

    if (TpgFires(row1[static_cast<size_t>(k - 2)],
                 row2[static_cast<size_t>(k - 2)])) {
      if (stats_.tpg_stopped_at == 0) stats_.tpg_stopped_at = k;
      max_k_ = k - 1;
      break;
    }
  }
  // Line 7: eliminate non-flipping patterns in rows 1 and 2. Row 1 is
  // no longer needed at all (chains carry its data forward).
  row1.clear();
  chains_[1].clear();
  EvictCompletedRow(&row2);

  // --- Phase 2: rows 3..H, row-wise (lines 8-15). ---
  Row prev_row = std::move(row2);
  for (int h = 3; h <= height_; ++h) {
    Row cur_row;
    for (int k = 2; k <= max_k_; ++k) {
      const Cell* parent =
          static_cast<size_t>(k - 2) < prev_row.size()
              ? &prev_row[static_cast<size_t>(k - 2)]
              : nullptr;
      const Cell* prev_in_row =
          k == 2 ? nullptr : &cur_row[static_cast<size_t>(k - 3)];
      FLIPPER_ASSIGN_OR_RETURN(Cell cell,
                               ComputeCell(h, k, parent, prev_in_row));
      cur_row.push_back(std::move(cell));

      SibpUpdate(h, k, cur_row[static_cast<size_t>(k - 2)]);
      SibpBan(h, k);

      if (parent != nullptr &&
          TpgFires(*parent, cur_row[static_cast<size_t>(k - 2)])) {
        if (stats_.tpg_stopped_at == 0) stats_.tpg_stopped_at = k;
        max_k_ = k - 1;
        break;
      }
    }
    // Line 14: eliminate non-flipping patterns; row h-1 retires.
    prev_row.clear();
    chains_[static_cast<size_t>(h - 1)].clear();
    EvictCompletedRow(&cur_row);
    prev_row = std::move(cur_row);
  }

  // Line 16: report the alive itemsets of the deepest row.
  AssemblePatterns(prev_row, &result);

  // Counter scans + scan-driven cell scans + the initial singleton scan.
  stats_.db_scans += counter_->num_db_scans() + 1;
  stats_.peak_candidate_bytes = tracker_.peak_bytes();
  stats_.total_seconds = total_timer.ElapsedSeconds();
  result.stats = std::move(stats_);
  return result;
}

Result<Cell> FlipperRun::ComputeCell(int h, int k, const Cell* parent_cell,
                                     const Cell* prev_in_row) {
  WallTimer cell_timer;
  CellStats cs;
  cs.h = h;
  cs.k = k;

  // --- Candidate generation. ---
  std::vector<Itemset> candidates;
  std::vector<uint32_t> supports;
  bool counted = false;
  bool truncated = false;
  if (h == 1) {
    if (k == 2) {
      candidates = GeneratePairs(freq_items_[1]);
      truncated = candidates.size() > config_.max_candidates_per_cell;
    } else {
      std::vector<Itemset> prev_frequent = prev_in_row->Select(
          [](const ItemsetRecord& r) { return r.frequent; });
      candidates = AprioriJoin(prev_frequent, *prev_in_row,
                               config_.max_candidates_per_cell,
                               &truncated);
    }
    cs.generated = candidates.size();
  } else if (parent_cell != nullptr) {
    const uint32_t min_count = config_.MinCount(h, num_txns_);
    const auto& banned = banned_[static_cast<size_t>(h)];
    auto child_ok = [&](ItemId child) {
      if (views_.ItemSupport(h, child) < min_count) return false;
      return banned.find(child) == banned.end();
    };
    std::vector<Itemset> parents = parent_cell->Select(
        [this](const ItemsetRecord& r) { return ParentEligible(r); });

    // Strategy selection: the cartesian children product can vastly
    // exceed the number of k-subsets actually present in the data
    // (every absent combination has support 0 and can never be
    // frequent). Estimate both and take the cheaper route.
    double cartesian_total = 0.0;
    std::unordered_map<ItemId, double> eligible_children;
    for (const Itemset& parent : parents) {
      double product = 1.0;
      for (ItemId node : parent) {
        auto [it, inserted] = eligible_children.try_emplace(node, 0.0);
        if (inserted) {
          double count = 0.0;
          if (tax_.IsLeaf(node) && tax_.LevelOf(node) < h) {
            count = child_ok(node) ? 1.0 : 0.0;
          } else {
            for (ItemId child : tax_.ChildrenOf(node)) {
              if (child_ok(child)) count += 1.0;
            }
          }
          it->second = count;
        }
        product *= it->second;
        if (product == 0.0) break;
      }
      cartesian_total += product;
      if (cartesian_total > 1e15) break;
    }
    const double scan_cost = ScanEnumerationCost(h, k);
    const bool use_scan = config_.enable_scan_cells &&
                          !parents.empty() && cartesian_total > 65536 &&
                          scan_cost < cartesian_total;
    if (use_scan) {
      FLIPPER_RETURN_IF_ERROR(FillCellByScan(
          h, k, parent_cell, prev_in_row, &candidates, &supports, &cs));
      counted = true;
    } else {
      for (const Itemset& parent : parents) {
        VerticalExpand(parent, tax_, h, child_ok, &candidates,
                       config_.max_candidates_per_cell, &truncated);
        if (truncated) break;
      }
      cs.generated = candidates.size();
      if (prev_in_row != nullptr) {
        candidates = FilterKnownInfrequentSubsets(std::move(candidates),
                                                  *prev_in_row);
      }
    }
  }
  if (truncated) {
    return Status::ResourceExhausted(
        "cell Q(" + std::to_string(h) + "," + std::to_string(k) +
        ") exceeded the candidate limit (" +
        std::to_string(config_.max_candidates_per_cell) + ")");
  }
  cs.counted = candidates.size();

  // --- Support counting (one database scan per cell, line 3/10). ---
  if (!counted) {
    FLIPPER_RETURN_IF_ERROR(
        counter_->Count(&views_, h, candidates, &supports));
  }

  // --- Evaluation: correlation, label, chain-alive flag. ---
  const uint32_t min_count = config_.MinCount(h, num_txns_);
  Cell cell(h, k, &tracker_);
  ChainMap& chains = chains_[static_cast<size_t>(h)];
  const ChainMap& parent_chains =
      chains_[static_cast<size_t>(h > 1 ? h - 1 : h)];
  std::vector<uint32_t> item_sups;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const Itemset& itemset = candidates[i];
    const uint32_t sup = supports[i];
    ItemsetRecord record;
    record.support = sup;
    record.frequent = sup >= min_count;
    item_sups.clear();
    for (ItemId item : itemset) {
      item_sups.push_back(views_.ItemSupport(h, item));
    }
    record.corr = Correlation(config_.measure, sup, item_sups);
    record.label =
        LabelOf(record.corr, config_.gamma, config_.epsilon,
                record.frequent);

    const ItemsetRecord* parent_record = nullptr;
    Itemset parent_itemset;
    if (h > 1) {
      parent_itemset = itemset.Map([&](ItemId item) {
        return tax_.AncestorAtLevel(item, h - 1);
      });
      if (parent_cell != nullptr) {
        parent_record = parent_cell->Find(parent_itemset);
      }
    }
    if (h == 1) {
      record.chain_alive =
          record.frequent && record.label != Label::kNone;
    } else {
      record.chain_alive = record.frequent &&
                           record.label != Label::kNone &&
                           parent_record != nullptr &&
                           parent_record->chain_alive &&
                           Flips(parent_record->label, record.label);
    }

    if (record.frequent) ++cs.frequent;
    if (record.label != Label::kNone) ++cs.labeled;
    if (record.label == Label::kPositive) ++stats_.num_positive;
    if (record.label == Label::kNegative) ++stats_.num_negative;
    if (record.chain_alive) {
      ++cs.alive;
      std::vector<LevelStat> chain;
      if (h > 1) {
        auto it = parent_chains.find(parent_itemset);
        FLIPPER_CHECK(it != parent_chains.end())
            << "alive itemset without parent chain";
        chain = it->second;
      }
      chain.push_back({h, itemset, sup, record.corr, record.label});
      chains.emplace(itemset, std::move(chain));
    }
    cell.Put(itemset, record);
  }
  cs.seconds = cell_timer.ElapsedSeconds();
  stats_.AddCell(cs);
  return cell;
}

double FlipperRun::ScanEnumerationCost(int h, int k) const {
  const std::vector<uint32_t>& hist =
      views_.Level(h).width_hist;
  double total = 0.0;
  for (size_t w = static_cast<size_t>(k); w < hist.size(); ++w) {
    if (hist[w] == 0) continue;
    // C(w, k), capped.
    double combos = 1.0;
    for (int i = 0; i < k; ++i) {
      combos *= static_cast<double>(w - static_cast<size_t>(i)) /
                static_cast<double>(k - i);
      if (combos > 1e15) break;
    }
    total += combos * hist[w];
    if (total > 1e15) return total;
  }
  return total;
}

namespace {

/// Calls `fn` for every k-combination of `items` (sorted).
template <typename Fn>
void ForEachCombination(std::span<const ItemId> items, int k,
                        Itemset* scratch, size_t start, const Fn& fn) {
  if (scratch->size() == k) {
    fn(*scratch);
    return;
  }
  const size_t needed = static_cast<size_t>(k - scratch->size());
  for (size_t i = start; i + needed <= items.size(); ++i) {
    Itemset next = *scratch;
    next.Insert(items[i]);
    ForEachCombination(items, k, &next, i + 1, fn);
  }
}

}  // namespace

Status FlipperRun::FillCellByScan(int h, int k, const Cell* parent_cell,
                                  const Cell* prev_in_row,
                                  std::vector<Itemset>* candidates,
                                  std::vector<uint32_t>* supports,
                                  CellStats* cs) {
  const auto& banned = banned_[static_cast<size_t>(h)];

  // Participating items: frequent at level h and not SIBP-banned.
  const LevelData& level = views_.Level(h);
  std::vector<char> ok(level.item_support.size(), 0);
  for (ItemId item : freq_items_[static_cast<size_t>(h)]) {
    if (banned.find(item) == banned.end()) ok[item] = 1;
  }

  // Phase 1: count every k-subset of participating items that occurs.
  std::unordered_map<Itemset, uint32_t, ItemsetHash> counts;
  std::vector<ItemId> buf;
  for (TxnId t = 0; t < level.db.size(); ++t) {
    buf.clear();
    for (ItemId item : level.db.Get(t)) {
      if (item < ok.size() && ok[item]) buf.push_back(item);
    }
    if (buf.size() < static_cast<size_t>(k)) continue;
    Itemset scratch;
    ForEachCombination(buf, k, &scratch, 0,
                       [&](const Itemset& combo) { ++counts[combo]; });
    if (counts.size() > config_.max_candidates_per_cell) {
      return Status::ResourceExhausted(
          "scan-driven cell Q(" + std::to_string(h) + "," +
          std::to_string(k) + ") exceeded the candidate limit");
    }
  }
  ++stats_.db_scans;
  cs->generated = counts.size();

  // Phase 2: keep combinations growable from an eligible parent that
  // pass the known-infrequent subset filter. (Combinations whose items
  // share a level-1 root generalize to fewer than k items and find no
  // parent record, so they drop out here.)
  candidates->clear();
  supports->clear();
  for (const auto& [combo, sup] : counts) {
    const Itemset parent_itemset = combo.Map(
        [&](ItemId item) { return tax_.AncestorAtLevel(item, h - 1); });
    const ItemsetRecord* parent_record =
        parent_cell->Find(parent_itemset);
    if (parent_record == nullptr || !ParentEligible(*parent_record)) {
      continue;
    }
    if (prev_in_row != nullptr) {
      bool viable = true;
      for (int drop = 0; drop < combo.size() && viable; ++drop) {
        const ItemsetRecord* rec =
            prev_in_row->Find(combo.WithoutIndex(drop));
        if (rec != nullptr && !rec->frequent) viable = false;
      }
      if (!viable) continue;
    }
    candidates->push_back(combo);
    supports->push_back(sup);
  }
  return Status::OK();
}

void FlipperRun::SibpUpdate(int h, int k, const Cell& cell) {
  if (!config_.pruning.sibp) return;
  // Max Corr per item over the cell's counted itemsets.
  std::unordered_map<ItemId, double> max_corr;
  cell.ForEach([&](const Itemset& itemset, const ItemsetRecord& record) {
    for (ItemId item : itemset) {
      auto [it, inserted] = max_corr.try_emplace(item, record.corr);
      if (!inserted && record.corr > it->second) it->second = record.corr;
    }
  });
  // Walk L_h from the smallest support; an item qualifies while its max
  // Corr stays below gamma; the first failure stops the walk
  // (Corollary 2 requires the smallest-support prefix). Banned items
  // count as removed from the database.
  auto& qualified = sibp_qualified_col_[static_cast<size_t>(h)];
  const auto& banned = banned_[static_cast<size_t>(h)];
  for (ItemId item : sibp_order_[static_cast<size_t>(h)]) {
    if (banned.find(item) != banned.end()) continue;
    auto it = max_corr.find(item);
    const double mc = it == max_corr.end() ? 0.0 : it->second;
    if (mc >= config_.gamma) break;
    qualified.try_emplace(item, k);
  }
}

void FlipperRun::SibpBan(int h, int k) {
  if (!config_.pruning.sibp || h < 2) return;
  auto& banned = banned_[static_cast<size_t>(h)];
  const auto& qualified = sibp_qualified_col_[static_cast<size_t>(h)];
  const auto& parent_qualified =
      sibp_qualified_col_[static_cast<size_t>(h - 1)];
  for (const auto& [item, col] : qualified) {
    if (col > k || banned.find(item) != banned.end()) continue;
    const ItemId parent = tax_.AncestorAtLevel(item, h - 1);
    auto it = parent_qualified.find(parent);
    if (it != parent_qualified.end() && it->second <= k) {
      banned.insert(item);
      ++stats_.sibp_banned_items;
    }
  }
}

void FlipperRun::EvictCompletedRow(Row* row) {
  for (Cell& cell : *row) {
    if (config_.pruning.flipping) {
      cell.Retain([](const ItemsetRecord& r) { return r.chain_alive; });
    } else {
      cell.Retain([](const ItemsetRecord& r) { return r.frequent; });
    }
  }
}

void FlipperRun::AssemblePatterns(const Row& last_row,
                                  MiningResult* result) {
  const ChainMap& chains = chains_[static_cast<size_t>(height_)];
  for (const Cell& cell : last_row) {
    cell.ForEach([&](const Itemset& itemset, const ItemsetRecord& record) {
      if (!record.chain_alive) return;
      auto it = chains.find(itemset);
      FLIPPER_CHECK(it != chains.end())
          << "alive leaf itemset without chain";
      FlippingPattern pattern;
      pattern.leaf_itemset = itemset;
      pattern.chain = it->second;
      result->patterns.push_back(std::move(pattern));
    });
  }
  SortPatterns(&result->patterns);
}

}  // namespace

Result<MiningResult> FlipperMiner::Run(const TransactionDb& db,
                                       const Taxonomy& taxonomy,
                                       const MiningConfig& config) {
  FlipperRun run(taxonomy, config);
  return run.Execute(db);
}

}  // namespace flipper
