// Mining statistics: per-cell candidate accounting plus run-level
// aggregates. The bench harness reports these as the paper's Figure-8
// runtime series, the Table-4 pattern counts and the Figure-9(b)
// candidate-memory comparison.

#ifndef FLIPPER_CORE_STATS_H_
#define FLIPPER_CORE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace flipper {

struct CellStats {
  int h = 0;
  int k = 0;
  uint64_t generated = 0;  // candidates produced by generation
  uint64_t counted = 0;    // candidates surviving pre-count filters
  uint64_t frequent = 0;
  uint64_t labeled = 0;    // frequent with a POS/NEG label
  uint64_t alive = 0;      // chain-alive after the flip check
  double seconds = 0.0;
};

struct MiningStats {
  std::vector<CellStats> cells;
  uint64_t total_generated = 0;
  uint64_t total_counted = 0;
  uint64_t db_scans = 0;
  /// Database scans performed by the scan-driven cell strategy alone
  /// (already included in db_scans; counted even when a scan bails
  /// mid-way with ResourceExhausted).
  uint64_t scan_cell_scans = 0;
  /// Segments proven candidate-free by the segment catalogs and
  /// skipped by the counting/scan paths (0 when
  /// MiningConfig::enable_segment_skipping is off). Each skipped
  /// segment is counted once per scan that would have touched it.
  uint64_t segments_skipped = 0;
  /// Transactions the per-batch candidate prefilter rejected before
  /// any trie walk across the horizontal counting scans (0 when
  /// MiningConfig::enable_txn_prefilter is off). Independent of the
  /// thread count: each transaction is screened once per scan.
  uint64_t txns_prefiltered = 0;
  double total_seconds = 0.0;
  int64_t peak_candidate_bytes = 0;
  /// Column at which TPG terminated growth (0 = never fired).
  int tpg_stopped_at = 0;
  /// Items banned by SIBP across all levels.
  uint64_t sibp_banned_items = 0;
  /// Frequent itemsets that carried a positive / negative label across
  /// all cells (the Pos / Neg columns of Table 4).
  uint64_t num_positive = 0;
  uint64_t num_negative = 0;

  void AddCell(const CellStats& cell);

  /// Multi-line human-readable summary.
  std::string ToString() const;
};

}  // namespace flipper

#endif  // FLIPPER_CORE_STATS_H_
