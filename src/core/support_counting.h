// Support-counting engines. Both compute sup(A) for a batch of
// candidate itemsets against one abstraction level's view:
//
//   HorizontalCounter — one sequential scan of the generalized
//     database per batch, probing a candidate prefix trie (the paper's
//     disk-scan counting model, §5);
//   VerticalCounter   — k-way TID-set intersections over the level's
//     vertical index (an ablation alternative, bench A1).
//
// Both engines accept an optional ThreadPool. The horizontal scan is
// sharded over contiguous transaction ranges with per-shard private
// counter buffers merged in shard order; the vertical engine shards the
// candidate list with per-shard intersection scratch. Either way the
// supports are bit-identical to the serial path for any thread count.

#ifndef FLIPPER_CORE_SUPPORT_COUNTING_H_
#define FLIPPER_CORE_SUPPORT_COUNTING_H_

#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/candidate_trie.h"
#include "core/config.h"
#include "core/level_views.h"
#include "data/itemset.h"

namespace flipper {

/// Handle for an asynchronous Count() started with
/// SupportCounter::StartCount. Join() blocks until the supports vector
/// is filled and returns the final status; it also runs the
/// deterministic shard-order merge on the joining thread, so supports
/// are bit-identical to the synchronous path. Default-constructed
/// handles are already complete with OK. Join() is idempotent.
class CountFuture {
 public:
  CountFuture() = default;
  /// An already-complete count with the given status.
  explicit CountFuture(Status ready) : status_(std::move(ready)) {}
  /// An in-flight count: `completion` guards the submitted shard
  /// tasks, `finalize` (may be null) merges their private buffers in
  /// shard order after they complete.
  CountFuture(ThreadPool::Completion completion,
              std::function<Status()> finalize)
      : completion_(std::move(completion)),
        finalize_(std::move(finalize)) {}

  Status Join();

 private:
  ThreadPool::Completion completion_;
  std::function<Status()> finalize_;
  Status status_ = Status::OK();
  bool joined_ = false;
};

class SupportCounter {
 public:
  virtual ~SupportCounter() = default;

  /// Fills `supports` (resized to candidates.size()) with sup of each
  /// candidate in level `h`'s view. The views are only read (the lazy
  /// vertical index is built through its thread-safe seam), so several
  /// counters — each with its own pool — may share one LevelViews.
  virtual Status Count(const LevelViews* views, int h,
                       std::span<const Itemset> candidates,
                       std::vector<uint32_t>* supports) = 0;

  /// Starts counting without blocking: shard tasks are dispatched to
  /// the pool and the calling thread is free until it joins the
  /// returned future (which fills `supports`). `candidates` and
  /// `supports` must stay valid until the join. Engines without an
  /// asynchronous path (and pool-less counters) count synchronously
  /// and return a ready future; either way one db scan is accounted
  /// per non-empty batch, exactly as in Count().
  virtual CountFuture StartCount(const LevelViews* views, int h,
                                 std::span<const Itemset> candidates,
                                 std::vector<uint32_t>* supports) {
    return CountFuture(Count(views, h, candidates, supports));
  }

  virtual const char* name() const = 0;

  /// Number of full database scans performed so far (horizontal
  /// counting only; vertical reports 0).
  uint64_t num_db_scans() const { return num_db_scans_; }

  /// Segments the level catalogs proved candidate-free and the scans
  /// skipped so far (horizontal counting with segment skipping enabled
  /// only; always 0 otherwise).
  uint64_t segments_skipped() const { return segments_skipped_; }

  /// Transactions the candidate prefilter rejected before any trie
  /// walk (horizontal counting with the txn prefilter enabled only;
  /// always 0 otherwise). Sharding-independent: every transaction is
  /// evaluated exactly once per scan.
  uint64_t txns_prefiltered() const { return txns_prefiltered_; }

 protected:
  uint64_t num_db_scans_ = 0;
  uint64_t segments_skipped_ = 0;
  uint64_t txns_prefiltered_ = 0;
};

/// Engine knobs beyond the kind itself.
struct CounterOptions {
  /// Consult level SegmentCatalogs to skip candidate-free segments
  /// (horizontal only; exact either way).
  bool enable_segment_skipping = false;
  /// Trie layout / prefilter selection for the horizontal scans.
  CandidateTrie::Options trie;
  /// Optional cooperative-cancellation token. Shard tasks poll it
  /// every few hundred transactions (horizontal) / candidates
  /// (vertical) and bail early once it fires, leaving the supports
  /// partial — the driver must discard them (CellPipeline re-checks
  /// the token before evaluating). An un-fired token changes nothing.
  const CancelToken* cancel = nullptr;
};

/// `pool` (optional, not owned, must outlive the counter) parallelizes
/// each Count() call. With `options.enable_segment_skipping` the
/// horizontal engine consults each level's SegmentCatalog to skip
/// segments that cannot contain any candidate of the batch; supports
/// are identical either way (the skip rule is exact). The horizontal
/// engine keeps one trie arena plus per-shard counter/scratch buffers
/// alive across calls (the row-level reuse seam), which requires its
/// StartCount futures to be joined one at a time — exactly the cell
/// pipeline's sequential begin/finish discipline.
std::unique_ptr<SupportCounter> MakeCounter(
    CounterKind kind, ThreadPool* pool, const CounterOptions& options);

/// Back-compat convenience overload.
inline std::unique_ptr<SupportCounter> MakeCounter(
    CounterKind kind, ThreadPool* pool = nullptr,
    bool enable_segment_skipping = false) {
  CounterOptions options;
  options.enable_segment_skipping = enable_segment_skipping;
  return MakeCounter(kind, pool, options);
}

/// `catalog` when it is usable for skipping over `db` — non-empty and
/// with boundaries spanning exactly db.size() transactions — else
/// nullptr. Every scan path (horizontal counting and the scan-driven
/// cell) must route through this guard: a stale or foreign catalog
/// steering a scan could skip live segments.
const SegmentCatalog* UsableCatalog(const SegmentCatalog* catalog,
                                    const TransactionDb& db);

/// Per-segment scan flags for one uniform batch against `catalog`:
/// flags[seg] is 0 iff every candidate contains an item provably
/// absent from segment `seg` (the segment cannot change any support).
/// Adds the number of cleared flags to *skipped when non-null.
std::vector<char> SegmentScanFlags(const SegmentCatalog& catalog,
                                   std::span<const Itemset> candidates,
                                   uint64_t* skipped);

/// Reusable state of one batch scan: the trie arena, the per-shard
/// private counter buffers, and the per-shard counting scratches. A
/// caller that keeps one instance across CountBatchWithTrie calls
/// (e.g. across a row's cells) re-counts with zero hot-loop
/// allocations once the buffers are warm.
struct CountBatchScratch {
  CandidateTrie trie;
  /// Per-shard private counters (sharded scans only).
  std::vector<std::vector<uint32_t>> partial;
  /// Per-shard counting scratch (prefilter compaction buffers).
  std::vector<CandidateTrie::CountScratch> per_shard;
};

/// Per-call knobs of CountBatchWithTrie beyond the positional
/// arguments.
struct CountBatchOptions {
  /// Trie layout / prefilter selection for this scan.
  CandidateTrie::Options trie;
  /// Reused across calls when non-null (row-level trie reuse); a
  /// private scratch is used otherwise. Must not be shared between
  /// concurrent scans.
  CountBatchScratch* scratch = nullptr;
  /// Adds the number of prefilter-rejected transactions when non-null.
  uint64_t* txns_prefiltered = nullptr;
  /// Optional cancellation token; a fired token makes the scan bail
  /// early with partial counts (see CounterOptions::cancel).
  const CancelToken* cancel = nullptr;
};

/// One sharded trie-counting scan of `db` for a uniform-arity batch
/// (all candidates the same size, distinct). Fills `supports[i]` with
/// sup(candidates[i]). This is the horizontal engine's inner scan,
/// exposed for the thread-scaling bench and the equivalence tests.
/// A non-null `catalog` (whose boundaries must span db.size()) lets
/// the scan skip segments per SegmentScanFlags, adding the skip count
/// to *segments_skipped when non-null.
void CountBatchWithTrie(const TransactionDb& db,
                        std::span<const Itemset> candidates,
                        ThreadPool* pool,
                        std::span<uint32_t> supports,
                        const SegmentCatalog* catalog = nullptr,
                        uint64_t* segments_skipped = nullptr,
                        const CountBatchOptions& options = {});

}  // namespace flipper

#endif  // FLIPPER_CORE_SUPPORT_COUNTING_H_
