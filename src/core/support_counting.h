// Support-counting engines. Both compute sup(A) for a batch of
// candidate itemsets against one abstraction level's view:
//
//   HorizontalCounter — one sequential scan of the generalized
//     database per batch, probing a candidate prefix trie (the paper's
//     disk-scan counting model, §5);
//   VerticalCounter   — k-way TID-set intersections over the level's
//     vertical index (an ablation alternative, bench A1).
//
// Both engines accept an optional ThreadPool. The horizontal scan is
// sharded over contiguous transaction ranges with per-shard private
// counter buffers merged in shard order; the vertical engine shards the
// candidate list with per-shard intersection scratch. Either way the
// supports are bit-identical to the serial path for any thread count.

#ifndef FLIPPER_CORE_SUPPORT_COUNTING_H_
#define FLIPPER_CORE_SUPPORT_COUNTING_H_

#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/config.h"
#include "core/level_views.h"
#include "data/itemset.h"

namespace flipper {

class SupportCounter {
 public:
  virtual ~SupportCounter() = default;

  /// Fills `supports` (resized to candidates.size()) with sup of each
  /// candidate in level `h`'s view.
  virtual Status Count(LevelViews* views, int h,
                       std::span<const Itemset> candidates,
                       std::vector<uint32_t>* supports) = 0;

  virtual const char* name() const = 0;

  /// Number of full database scans performed so far (horizontal
  /// counting only; vertical reports 0).
  uint64_t num_db_scans() const { return num_db_scans_; }

 protected:
  uint64_t num_db_scans_ = 0;
};

/// `pool` (optional, not owned, must outlive the counter) parallelizes
/// each Count() call.
std::unique_ptr<SupportCounter> MakeCounter(CounterKind kind,
                                            ThreadPool* pool = nullptr);

/// One sharded trie-counting scan of `db` for a uniform-arity batch
/// (all candidates the same size, distinct). Fills `supports[i]` with
/// sup(candidates[i]). This is the horizontal engine's inner scan,
/// exposed for the thread-scaling bench and the equivalence tests.
void CountBatchWithTrie(const TransactionDb& db,
                        std::span<const Itemset> candidates,
                        ThreadPool* pool,
                        std::span<uint32_t> supports);

}  // namespace flipper

#endif  // FLIPPER_CORE_SUPPORT_COUNTING_H_
