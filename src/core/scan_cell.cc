#include "core/scan_cell.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <utility>

#include "common/cancellation.h"
#include "common/trace.h"
#include "core/candidate_trie.h"
#include "core/cell_planner.h"
#include "core/support_counting.h"

namespace flipper {
namespace {

/// Transactions per scan shard below which the per-shard hash maps and
/// the merge pass cost more than the parallelism buys.
constexpr size_t kMinTxnsPerScanShard = 512;

using CountMap = ScanCellScratch::CountMap;

/// Uniform counter access so the scan loop is written once over both
/// counter families (map baseline / arena table).
inline void BumpCount(CountMap& counts, const Itemset& combo) {
  ++counts[combo];
}
inline void BumpCount(ScanCounterTable& counts, const Itemset& combo) {
  counts.Increment(combo);
}

}  // namespace

double ScanEnumerationCost(const LevelViews& views, int h, int k,
                           double live_fraction) {
  const std::vector<uint32_t>& hist = views.Level(h).width_hist;
  const double rate = std::clamp(live_fraction, 0.0, 1.0);
  double total = 0.0;
  for (size_t w = static_cast<size_t>(k); w < hist.size(); ++w) {
    if (hist[w] == 0) continue;
    // C(ew, k) with the expected filtered width ew = w * rate, capped.
    const double ew = static_cast<double>(w) * rate;
    if (ew < static_cast<double>(k)) continue;
    double combos = 1.0;
    for (int i = 0; i < k; ++i) {
      combos *= (ew - static_cast<double>(i)) /
                static_cast<double>(k - i);
      if (combos > 1e15) break;
    }
    total += combos * hist[w];
    if (total > 1e15) return total;
  }
  return total;
}

Status FillCellByScan(const LevelViews& views, const Taxonomy& taxonomy,
                      const MiningConfig& config, int h, int k,
                      const Cell& parent_cell, const Cell* prev_in_row,
                      const std::unordered_set<ItemId>& banned,
                      std::span<const ItemId> freq_items,
                      std::vector<Itemset>* candidates,
                      std::vector<uint32_t>* supports, CellStats* cs,
                      MiningStats* stats, ScanCellScratch* scratch,
                      ThreadPool* pool) {
  ScanCellScratch local;
  ScanCellScratch* s = scratch != nullptr ? scratch : &local;

  // Participating items: frequent at level h and not SIBP-banned.
  const LevelData& level = views.Level(h);
  s->ok.assign(level.item_support.size(), 0);
  s->live_items.clear();
  for (ItemId item : freq_items) {
    if (banned.find(item) == banned.end()) {
      s->ok[item] = 1;
      s->live_items.push_back(item);
    }
  }
  const std::vector<char>& ok = s->ok;
  const std::vector<ItemId>& live_items = s->live_items;

  // Cheap pre-screen in front of the ok[] confirm pass: min/max id
  // plus a 512-bit presence bitset over the participating items. The
  // bitset is one-sided, so it can only reject items ok[] would
  // reject too — cell contents are identical with it on or off.
  ItemPrefilter prefilter;
  const bool use_prefilter = config.enable_txn_prefilter;
  if (use_prefilter) {
    for (ItemId item : live_items) prefilter.Add(item);
  }

  // Segment skipping: a transaction can only contribute a k-subset if
  // its segment holds at least k distinct participating items, so a
  // segment whose catalog proves fewer possible live items is skipped
  // outright. The rule is exact — MayContain() is one-sided — so cell
  // contents are identical with skipping on or off.
  s->scan_flags.clear();
  std::span<const uint64_t> seg_boundaries;
  const SegmentCatalog* catalog =
      config.enable_segment_skipping
          ? UsableCatalog(level.catalog.get(), level.db)
          : nullptr;
  if (catalog != nullptr) {
    seg_boundaries = catalog->boundaries();
    s->scan_flags.assign(catalog->num_segments(), 1);
    for (size_t seg = 0; seg < catalog->num_segments(); ++seg) {
      size_t possible = 0;
      for (ItemId item : live_items) {
        if (catalog->MayContain(seg, item) &&
            ++possible >= static_cast<size_t>(k)) {
          break;
        }
      }
      if (possible < static_cast<size_t>(k)) {
        s->scan_flags[seg] = 0;
        ++stats->segments_skipped;
      }
    }
  }
  const std::vector<char>& scan_flags = s->scan_flags;

  // Phase 1: count every k-subset of participating items that occurs,
  // sharded over transaction ranges with one private hash counter per
  // shard. A shard whose own map exceeds the candidate cap stops early
  // and flags exhaustion: its local count already lower-bounds the
  // merged count, so the run is doomed either way. The shard maps and
  // item buffers come from the scratch, so a warm cell allocates
  // nothing per transaction (clear() keeps map buckets and vector
  // capacity).
  const bool arena_counters = config.enable_arena_scan_counters;
  const int num_shards =
      views.NumScanShards(h, kMinTxnsPerScanShard, pool);
  if (arena_counters) {
    if (s->shard_tables.size() < static_cast<size_t>(num_shards)) {
      s->shard_tables.resize(static_cast<size_t>(num_shards));
    }
    for (int i = 0; i < num_shards; ++i) {
      s->shard_tables[static_cast<size_t>(i)].Reset(k);
    }
  } else {
    if (s->shard_counts.size() < static_cast<size_t>(num_shards)) {
      s->shard_counts.resize(static_cast<size_t>(num_shards));
    }
    for (int i = 0; i < num_shards; ++i) {
      s->shard_counts[static_cast<size_t>(i)].clear();
    }
  }
  if (s->shard_buf.size() < static_cast<size_t>(num_shards)) {
    s->shard_buf.resize(static_cast<size_t>(num_shards));
  }
  for (int i = 0; i < num_shards; ++i) {
    auto& buf = s->shard_buf[static_cast<size_t>(i)];
    buf.clear();
    buf.reserve(level.db.max_width());
  }
  const CancelToken* cancel = config.cancel;
  std::atomic<bool> exhausted{false};
  views.ScanShards(h, num_shards, [&](int shard, size_t lo, size_t hi) {
    FLIPPER_TRACE_SPAN_HK("scan_shard", "task", h, k);
    std::vector<ItemId>& buf = s->shard_buf[static_cast<size_t>(shard)];
    Itemset combo_scratch;
    // Cancellation poll every 512 transactions, same early-out shape
    // as the `exhausted` flag; partial shard counts are fine because
    // the fired token fails the cell below before any merge is used.
    size_t until_cancel_check = 512;
    const auto scan_range_into = [&](auto& counts, size_t range_lo,
                                     size_t range_hi) {
      for (size_t t = range_lo; t < range_hi; ++t) {
        if (exhausted.load(std::memory_order_relaxed)) return;
        if (cancel != nullptr && --until_cancel_check == 0) {
          until_cancel_check = 512;
          if (cancel->Fired()) {
            exhausted.store(true, std::memory_order_relaxed);
            return;
          }
        }
        buf.clear();
        for (ItemId item : level.db.Get(static_cast<TxnId>(t))) {
          if (use_prefilter && !prefilter.MayContain(item)) continue;
          if (item < ok.size() && ok[item]) buf.push_back(item);
        }
        if (buf.size() < static_cast<size_t>(k)) continue;
        ForEachCombination(
            buf, k, &combo_scratch,
            [&](const Itemset& combo) { BumpCount(counts, combo); });
        if (counts.size() > config.max_candidates_per_cell) {
          exhausted.store(true, std::memory_order_relaxed);
          return;
        }
      }
    };
    const auto scan_range = [&](size_t range_lo, size_t range_hi) {
      if (arena_counters) {
        scan_range_into(s->shard_tables[static_cast<size_t>(shard)],
                        range_lo, range_hi);
      } else {
        scan_range_into(s->shard_counts[static_cast<size_t>(shard)],
                        range_lo, range_hi);
      }
    };
    ForEachScannableRange(seg_boundaries, scan_flags, lo, hi,
                          scan_range);
  }, pool);
  // The scan I/O happened whether or not it completed — account it
  // before any bail-out.
  ++stats->db_scans;
  ++stats->scan_cell_scans;

  // A fired token also trips `exhausted` (to stop the other shards),
  // so it must be classified first — cancellation, not overflow.
  if (cancel != nullptr && cancel->Fired()) {
    Status st = cancel->ToStatus();
    if (st.ok()) st = Status::Cancelled("cancelled: query abandoned");
    return st;
  }
  const Status overflow = Status::ResourceExhausted(
      "scan-driven cell Q(" + std::to_string(h) + "," +
      std::to_string(k) + ") exceeded the candidate limit");
  if (exhausted.load(std::memory_order_relaxed)) return overflow;

  // Deterministic shard-order merge of the private counters. The
  // merged counter is re-checked against the cap per shard so it never
  // grows much past it; the per-shard counters themselves are each
  // bounded by the cap above (a tighter cap / num_shards bound would
  // flag cells the serial path accepts, since shards overlap). Shard
  // 0's counter doubles as the merge target — iterated in place, not
  // moved, so its storage survives for reuse. (Counts are additive, so
  // the merged totals are shard-order independent; emission is sorted
  // below either way.)
  std::vector<std::pair<Itemset, uint32_t>> entries;
  FLIPPER_TRACE_SPAN_HK("scan_merge", "detail", h, k);
  if (arena_counters) {
    ScanCounterTable& merged = s->shard_tables[0];
    for (int i = 1; i < num_shards; ++i) {
      const ScanCounterTable& table =
          s->shard_tables[static_cast<size_t>(i)];
      for (const ScanCounterTable::Entry& entry : table.entries()) {
        merged.Increment(table.KeyOf(entry).data(), entry.count);
      }
      if (merged.size() > config.max_candidates_per_cell) {
        return overflow;
      }
    }
    if (merged.size() > config.max_candidates_per_cell) {
      return overflow;
    }
    cs->generated = merged.size();
    entries.reserve(merged.size());
    for (const ScanCounterTable::Entry& entry : merged.entries()) {
      entries.emplace_back(merged.ItemsetOf(entry), entry.count);
    }
  } else {
    CountMap merged;
    const CountMap* merged_view = &merged;
    if (num_shards == 1) {
      merged_view = &s->shard_counts[0];
    } else {
      for (int i = 0; i < num_shards; ++i) {
        CountMap& counts = s->shard_counts[static_cast<size_t>(i)];
        for (const auto& [combo, count] : counts) {
          merged[combo] += count;
        }
        counts.clear();
        if (merged.size() > config.max_candidates_per_cell) {
          return overflow;
        }
      }
    }
    if (merged_view->size() > config.max_candidates_per_cell) {
      return overflow;
    }
    cs->generated = merged_view->size();
    entries.assign(merged_view->begin(), merged_view->end());
  }

  // Phase 2: keep combinations growable from an eligible parent that
  // pass the known-infrequent subset filter. (Combinations whose items
  // share a level-1 root generalize to fewer than k items and find no
  // parent record, so they drop out here.) Sorted emission keeps the
  // cell contents reproducible across thread counts and platforms.
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  candidates->clear();
  supports->clear();
  for (const auto& [combo, sup] : entries) {
    const Itemset parent_itemset = combo.Map([&](ItemId item) {
      return taxonomy.AncestorAtLevel(item, h - 1);
    });
    const ItemsetRecord* parent_record = parent_cell.Find(parent_itemset);
    if (parent_record == nullptr ||
        !ParentEligible(config, *parent_record)) {
      continue;
    }
    if (prev_in_row != nullptr) {
      bool viable = true;
      for (int drop = 0; drop < combo.size() && viable; ++drop) {
        const ItemsetRecord* rec =
            prev_in_row->Find(combo.WithoutIndex(drop));
        if (rec != nullptr && !rec->frequent) viable = false;
      }
      if (!viable) continue;
    }
    candidates->push_back(combo);
    supports->push_back(sup);
  }
  return Status::OK();
}

}  // namespace flipper
