#include "core/scan_cell.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/cell_planner.h"
#include "core/support_counting.h"

namespace flipper {
namespace {

/// Transactions per scan shard below which the per-shard hash maps and
/// the merge pass cost more than the parallelism buys.
constexpr size_t kMinTxnsPerScanShard = 512;

using CountMap = std::unordered_map<Itemset, uint32_t, ItemsetHash>;

}  // namespace

double ScanEnumerationCost(const LevelViews& views, int h, int k) {
  const std::vector<uint32_t>& hist = views.Level(h).width_hist;
  double total = 0.0;
  for (size_t w = static_cast<size_t>(k); w < hist.size(); ++w) {
    if (hist[w] == 0) continue;
    // C(w, k), capped.
    double combos = 1.0;
    for (int i = 0; i < k; ++i) {
      combos *= static_cast<double>(w - static_cast<size_t>(i)) /
                static_cast<double>(k - i);
      if (combos > 1e15) break;
    }
    total += combos * hist[w];
    if (total > 1e15) return total;
  }
  return total;
}

Status FillCellByScan(const LevelViews& views, const Taxonomy& taxonomy,
                      const MiningConfig& config, int h, int k,
                      const Cell& parent_cell, const Cell* prev_in_row,
                      const std::unordered_set<ItemId>& banned,
                      std::span<const ItemId> freq_items,
                      std::vector<Itemset>* candidates,
                      std::vector<uint32_t>* supports, CellStats* cs,
                      MiningStats* stats) {
  // Participating items: frequent at level h and not SIBP-banned.
  const LevelData& level = views.Level(h);
  std::vector<char> ok(level.item_support.size(), 0);
  std::vector<ItemId> live_items;
  for (ItemId item : freq_items) {
    if (banned.find(item) == banned.end()) {
      ok[item] = 1;
      live_items.push_back(item);
    }
  }

  // Segment skipping: a transaction can only contribute a k-subset if
  // its segment holds at least k distinct participating items, so a
  // segment whose catalog proves fewer possible live items is skipped
  // outright. The rule is exact — MayContain() is one-sided — so cell
  // contents are identical with skipping on or off.
  std::vector<char> scan_flags;
  std::span<const uint64_t> seg_boundaries;
  const SegmentCatalog* catalog =
      config.enable_segment_skipping
          ? UsableCatalog(level.catalog.get(), level.db)
          : nullptr;
  if (catalog != nullptr) {
    seg_boundaries = catalog->boundaries();
    scan_flags.assign(catalog->num_segments(), 1);
    for (size_t seg = 0; seg < catalog->num_segments(); ++seg) {
      size_t possible = 0;
      for (ItemId item : live_items) {
        if (catalog->MayContain(seg, item) &&
            ++possible >= static_cast<size_t>(k)) {
          break;
        }
      }
      if (possible < static_cast<size_t>(k)) {
        scan_flags[seg] = 0;
        ++stats->segments_skipped;
      }
    }
  }

  // Phase 1: count every k-subset of participating items that occurs,
  // sharded over transaction ranges with one private hash counter per
  // shard. A shard whose own map exceeds the candidate cap stops early
  // and flags exhaustion: its local count already lower-bounds the
  // merged count, so the run is doomed either way.
  const int num_shards = views.NumScanShards(h, kMinTxnsPerScanShard);
  std::vector<CountMap> shard_counts(static_cast<size_t>(num_shards));
  std::atomic<bool> exhausted{false};
  views.ScanShards(h, num_shards, [&](int shard, size_t lo, size_t hi) {
    CountMap& counts = shard_counts[static_cast<size_t>(shard)];
    std::vector<ItemId> buf;
    Itemset scratch;
    const auto scan_range = [&](size_t range_lo, size_t range_hi) {
      for (size_t t = range_lo; t < range_hi; ++t) {
        if (exhausted.load(std::memory_order_relaxed)) return;
        buf.clear();
        for (ItemId item : level.db.Get(static_cast<TxnId>(t))) {
          if (item < ok.size() && ok[item]) buf.push_back(item);
        }
        if (buf.size() < static_cast<size_t>(k)) continue;
        ForEachCombination(buf, k, &scratch,
                           [&](const Itemset& combo) { ++counts[combo]; });
        if (counts.size() > config.max_candidates_per_cell) {
          exhausted.store(true, std::memory_order_relaxed);
          return;
        }
      }
    };
    ForEachScannableRange(seg_boundaries, scan_flags, lo, hi,
                          scan_range);
  });
  // The scan I/O happened whether or not it completed — account it
  // before any bail-out.
  ++stats->db_scans;
  ++stats->scan_cell_scans;

  const Status overflow = Status::ResourceExhausted(
      "scan-driven cell Q(" + std::to_string(h) + "," +
      std::to_string(k) + ") exceeded the candidate limit");
  if (exhausted.load(std::memory_order_relaxed)) return overflow;

  // Deterministic shard-order merge of the private counters. The
  // merged map is re-checked against the cap per shard so it never
  // grows much past it; the per-shard maps themselves are each
  // bounded by the cap above (a tighter cap / num_shards bound would
  // flag cells the serial path accepts, since shards overlap).
  CountMap merged;
  if (num_shards == 1) {
    merged = std::move(shard_counts[0]);
  } else {
    for (CountMap& counts : shard_counts) {
      for (const auto& [combo, count] : counts) {
        merged[combo] += count;
      }
      counts.clear();
      if (merged.size() > config.max_candidates_per_cell) {
        return overflow;
      }
    }
  }
  if (merged.size() > config.max_candidates_per_cell) return overflow;
  cs->generated = merged.size();

  // Phase 2: keep combinations growable from an eligible parent that
  // pass the known-infrequent subset filter. (Combinations whose items
  // share a level-1 root generalize to fewer than k items and find no
  // parent record, so they drop out here.) Sorted emission keeps the
  // cell contents reproducible across thread counts and platforms.
  std::vector<std::pair<Itemset, uint32_t>> entries(merged.begin(),
                                                    merged.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  candidates->clear();
  supports->clear();
  for (const auto& [combo, sup] : entries) {
    const Itemset parent_itemset = combo.Map([&](ItemId item) {
      return taxonomy.AncestorAtLevel(item, h - 1);
    });
    const ItemsetRecord* parent_record = parent_cell.Find(parent_itemset);
    if (parent_record == nullptr ||
        !ParentEligible(config, *parent_record)) {
      continue;
    }
    if (prev_in_row != nullptr) {
      bool viable = true;
      for (int drop = 0; drop < combo.size() && viable; ++drop) {
        const ItemsetRecord* rec =
            prev_in_row->Find(combo.WithoutIndex(drop));
        if (rec != nullptr && !rec->frequent) viable = false;
      }
      if (!viable) continue;
    }
    candidates->push_back(combo);
    supports->push_back(sup);
  }
  return Status::OK();
}

}  // namespace flipper
