// CellPipeline: the staged cell-execution driver of the Flipper
// algorithm (Algorithm 1). Each cell Q(h,k) runs through three
// explicit stages —
//
//   plan     (CellPlanner)   candidate generation, strategy selection
//   count    (SupportCounter) one sharded database scan on the pool,
//                             or the scan-driven route (scan_cell.h)
//   evaluate (CellEvaluator)  correlation, labels, chains, SIBP
//
// — and the driver overlaps stages across cells: while Q(h,k)'s
// support scan runs asynchronously on the thread pool
// (SupportCounter::StartCount), the driver thread speculatively plans
// Q(h,k+1). That is sound because planning reads only *completed*
// cells (the parent row for vertical growth, the finished Q(1,k) for
// the row-1 prefix join) plus level h's SIBP ban set; the driver joins
// the per-cell count future before evaluation, and a speculative plan
// whose ban-set version went stale (or that survives a TPG stop) is
// simply discarded and regenerated, so mining output is bit-identical
// to the staged-serial order for any thread count
// (MiningConfig::enable_pipelining toggles the overlap).
//
// Processing order, pruning semantics and memory policy are unchanged
// from the paper: the two ceiling rows zigzag so TPG always sees two
// vertically consecutive cells, rows 3..H run left to right, only two
// rows are resident, and completed rows evict chain-dead itemsets.

#ifndef FLIPPER_CORE_CELL_PIPELINE_H_
#define FLIPPER_CORE_CELL_PIPELINE_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/memory_tracker.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/cell.h"
#include "core/cell_evaluator.h"
#include "core/cell_planner.h"
#include "core/config.h"
#include "core/level_views.h"
#include "core/mining_result.h"
#include "core/scan_cell.h"
#include "core/support_counting.h"
#include "data/transaction_db.h"
#include "taxonomy/taxonomy.h"

namespace flipper {

class CellPipeline {
 public:
  CellPipeline(const Taxonomy& taxonomy, const MiningConfig& config)
      : tax_(taxonomy), config_(config) {}

  /// One full mining run over `db`.
  Result<MiningResult> Execute(const TransactionDb& db);

 private:
  /// A row of the search-space table: row[k - 2] is Q(h, k).
  using Row = std::vector<Cell>;

  /// One cell travelling through the stages. Candidates and supports
  /// must stay put while the count future is in flight.
  struct CellWork {
    CellStats cs;
    WallTimer timer;
    std::vector<Itemset> candidates;
    std::vector<uint32_t> supports;
    CountFuture future;
    /// The scan-driven route counted during generation; no count
    /// stage remains and therefore nothing overlaps this cell.
    bool counted_by_scan = false;
  };

  /// Stage 1 (+ count dispatch) for a vertical cell Q(h,k), h >= 2:
  /// uses `spec` when it is still valid, replans otherwise; applies
  /// the within-row known-infrequent filter; dispatches the count or
  /// runs the scan-driven route inline. `work` is filled in place —
  /// its address must stay stable until FinishCell, because the
  /// in-flight count writes into work->supports.
  Status BeginVerticalCell(int h, int k, const Cell* parent,
                           const Cell* prev_in_row,
                           std::optional<CellPlan> spec, CellWork* work);

  /// Stage 1 (+ count dispatch) for a row-1 cell.
  Status BeginRow1Cell(int k, const Cell* prev_in_row,
                       std::optional<CellPlan> spec, CellWork* work);

  /// Joins the count, runs evaluation, commits the cell's stats.
  Result<Cell> FinishCell(CellWork* work, const Cell* parent);

  Status TruncatedError(int h, int k) const;

  /// Theorem-3 premise over two vertically consecutive cells.
  bool TpgFires(const Cell& upper, const Cell& lower) const {
    return config_.pruning.tpg && upper.AllNonPositive() &&
           lower.AllNonPositive();
  }

  /// Evicts records a completed row no longer needs: chain-dead ones
  /// under flipping pruning ("eliminate non-flipping patterns"),
  /// infrequent ones always.
  void EvictCompletedRow(Row* row);

  const Taxonomy& tax_;
  const MiningConfig& config_;
  std::unique_ptr<ThreadPool> pool_;
  LevelViews views_;
  std::unique_ptr<SupportCounter> counter_;
  std::unique_ptr<CellPlanner> planner_;
  std::unique_ptr<CellEvaluator> evaluator_;
  MemoryTracker tracker_;
  MiningStats stats_;
  /// Shard buffers of the scan-driven cells, reused across cells (the
  /// scan-cell analogue of the counter's trie-reuse scratch).
  ScanCellScratch scan_scratch_;

  uint32_t num_txns_ = 0;
  int height_ = 0;
  int max_k_ = 0;  // current column cap; TPG shrinks it
  bool pipelining_ = true;

  /// Frequent single items per level (index h), sorted by id.
  std::vector<std::vector<ItemId>> freq_items_;
};

}  // namespace flipper

#endif  // FLIPPER_CORE_CELL_PIPELINE_H_
