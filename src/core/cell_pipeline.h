// CellPipeline: the staged cell-execution driver of the Flipper
// algorithm (Algorithm 1). Each cell Q(h,k) runs through three
// explicit stages —
//
//   plan     (CellPlanner)   candidate generation, strategy selection
//   count    (SupportCounter) one sharded database scan on the pool,
//                             or the scan-driven route (scan_cell.h)
//   evaluate (CellEvaluator)  correlation, labels, chains, SIBP
//
// — and the driver overlaps stages across cells: while Q(h,k)'s
// support scan runs asynchronously on the thread pool
// (SupportCounter::StartCount), the driver thread speculatively plans
// Q(h,k+1). That is sound because planning reads only *completed*
// cells (the parent row for vertical growth, the finished Q(1,k) for
// the row-1 prefix join) plus level h's SIBP ban set; the driver joins
// the per-cell count future before evaluation, and a speculative plan
// whose ban-set version went stale (or that survives a TPG stop) is
// simply discarded and regenerated, so mining output is bit-identical
// to the staged-serial order for any thread count
// (MiningConfig::enable_pipelining toggles the overlap).
//
// With MiningConfig::enable_row_overlap the speculation window also
// spans row boundaries — the pool's idle gap at every level
// transition. At a row's last column the driver plans Q(h+1,2) from
// the completed Q(h,2) while Q(h,max_k) still counts, then starts
// Q(h+1,2)'s scan the moment Q(h,max_k) joins, so the pool counts
// Q(h+1,2) while the driver evaluates the row tail, runs the SIBP/TPG
// bookkeeping, and evicts the finished row. This preserves both
// invariants the intra-row speculation relies on: counts begin/join
// strictly one at a time (the counter's pooled-scratch discipline),
// and the plan is revalidated against level h+1's SIBP ban version at
// adoption — that set cannot change before row h+1 starts (SibpBan(h)
// only bans level-h items), and eviction retains exactly the
// ParentEligible records planning reads, so output stays
// bit-identical. Scan-strategy and truncated cross plans are carried
// un-started and consumed in exact serial position instead.
//
// Processing order, pruning semantics and memory policy are unchanged
// from the paper: the two ceiling rows zigzag so TPG always sees two
// vertically consecutive cells, rows 3..H run left to right, only two
// rows are resident, and completed rows evict chain-dead itemsets.

#ifndef FLIPPER_CORE_CELL_PIPELINE_H_
#define FLIPPER_CORE_CELL_PIPELINE_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/cancellation.h"
#include "common/memory_tracker.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/cell.h"
#include "core/cell_evaluator.h"
#include "core/cell_planner.h"
#include "core/config.h"
#include "core/level_views.h"
#include "core/mining_result.h"
#include "core/scan_cell.h"
#include "core/support_counting.h"
#include "data/transaction_db.h"
#include "taxonomy/taxonomy.h"

namespace flipper {

class CellPipeline {
 public:
  CellPipeline(const Taxonomy& taxonomy, const MiningConfig& config)
      : tax_(taxonomy), config_(config) {}

  /// One full mining run over `db`.
  Result<MiningResult> Execute(const TransactionDb& db) {
    return Execute(db, nullptr);
  }

  /// Same run over pre-built (shared, read-only) level views of `db`.
  /// A non-null `shared_views` skips the per-run views build: the
  /// pipeline only reads them (their lazy vertical index goes through
  /// its thread-safe seam), so any number of concurrent pipelines may
  /// borrow one LevelViews instance, each with its own pool. Results
  /// are bit-identical to the owned-views path — shard counts derive
  /// from this run's pool, never from whoever built the views. The
  /// views must describe exactly `db` and outlive the call.
  Result<MiningResult> Execute(const TransactionDb& db,
                               const LevelViews* shared_views);

 private:
  /// A row of the search-space table: row[k - 2] is Q(h, k).
  using Row = std::vector<Cell>;

  /// One cell travelling through the stages. Candidates and supports
  /// must stay put while the count future is in flight, so cross-row
  /// works live behind unique_ptr; the destructor joins any still
  /// in-flight count (idempotent) so an error-path unwind can never
  /// free buffers a pool task is writing.
  struct CellWork {
    CellStats cs;
    WallTimer timer;
    std::vector<Itemset> candidates;
    std::vector<uint32_t> supports;
    CountFuture future;
    /// The scan-driven route counted during generation; no count
    /// stage remains and therefore nothing overlaps this cell.
    bool counted_by_scan = false;

    CellWork() = default;
    ~CellWork() { future.Join(); }
    CellWork(const CellWork&) = delete;
    CellWork& operator=(const CellWork&) = delete;
  };

  /// Cross-row speculation in flight between a row's last column and
  /// the next row's first. Exactly one of the members is set: a
  /// started count for the in-memory strategies, or a carried
  /// (un-started) plan for the scan/truncated routes.
  struct CrossRowState {
    /// Q(h+1,2) with its count already dispatched.
    std::unique_ptr<CellWork> started;
    /// banned(h+1) size the started plan read, revalidated at
    /// adoption.
    size_t ban_version = 0;
    /// Scan-strategy or truncated plan, consumed as the next row's
    /// first spec so errors and scans happen in serial position.
    std::optional<CellPlan> carried;
  };

  /// Stage 1 (+ count dispatch) for a vertical cell Q(h,k), h >= 2:
  /// uses `spec` when it is still valid, replans otherwise; applies
  /// the within-row known-infrequent filter; dispatches the count or
  /// runs the scan-driven route inline. `work` is filled in place —
  /// its address must stay stable until FinishCell, because the
  /// in-flight count writes into work->supports.
  Status BeginVerticalCell(int h, int k, const Cell* parent,
                           const Cell* prev_in_row,
                           std::optional<CellPlan> spec, CellWork* work);

  /// Stage 1 (+ count dispatch) for a row-1 cell.
  Status BeginRow1Cell(int k, const Cell* prev_in_row,
                       std::optional<CellPlan> spec, CellWork* work);

  /// Joins the count, runs evaluation, commits the cell's stats.
  Result<Cell> FinishCell(CellWork* work, const Cell* parent);

  /// Evaluation half of FinishCell: requires the count joined.
  Result<Cell> EvaluateCell(CellWork* work, const Cell* parent);

  /// Row-overlap join: plans Q(next_h,2) from `cross_parent` while
  /// `work`'s count is still in flight, joins `work`, then dispatches
  /// the cross count (in-memory strategies) or stows the plan
  /// (scan/truncated) into `cross`. With a null `cross_parent` this
  /// degenerates to a plain join.
  Status JoinWithCrossStart(CellWork* work, int next_h,
                            const Cell* cross_parent,
                            CrossRowState* cross);

  Status TruncatedError(int h, int k) const;

  /// Cooperative-cancellation poll point. OK while config_.cancel is
  /// null or un-fired (one relaxed load — the hot case); once the
  /// token fires this records the partial-run MiningStats into the
  /// metrics sink and returns the token's DeadlineExceeded/Cancelled
  /// status, which unwinds Execute through the normal error path
  /// (CellWork destructors join in-flight counts, counter scratch
  /// returns to its pool via the count finalizer).
  Status CheckCancel();

  /// Theorem-3 premise over two vertically consecutive cells.
  bool TpgFires(const Cell& upper, const Cell& lower) const {
    return config_.pruning.tpg && upper.AllNonPositive() &&
           lower.AllNonPositive();
  }

  /// Evicts records a completed row no longer needs: chain-dead ones
  /// under flipping pruning ("eliminate non-flipping patterns"),
  /// infrequent ones always.
  void EvictCompletedRow(Row* row);

  /// Absorbs the run's counters, stage histograms, speculation rates
  /// and pool utilization into config_.metrics (no-op when null).
  void RecordRunMetrics(const MiningStats& stats, double wall_ms);

  const Taxonomy& tax_;
  const MiningConfig& config_;
  /// == config_.metrics; cached so every stage scope is one member
  /// read. Null means "record nothing".
  MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<ThreadPool> pool_;
  /// Built per run when Execute gets no shared views; unused otherwise.
  LevelViews owned_views_;
  /// The views this run reads: &owned_views_ or the borrowed instance.
  const LevelViews* views_ = nullptr;
  std::unique_ptr<SupportCounter> counter_;
  std::unique_ptr<CellPlanner> planner_;
  std::unique_ptr<CellEvaluator> evaluator_;
  MemoryTracker tracker_;
  MiningStats stats_;
  /// Whole-run stopwatch (member so the cancellation unwind can stamp
  /// partial stats from any stage).
  WallTimer run_timer_;
  /// Shard buffers of the scan-driven cells, reused across cells (the
  /// scan-cell analogue of the counter's trie-reuse scratch).
  ScanCellScratch scan_scratch_;

  uint32_t num_txns_ = 0;
  int height_ = 0;
  int max_k_ = 0;  // current column cap; TPG shrinks it
  bool pipelining_ = true;
  bool row_overlap_ = true;  // cross-row speculation (needs pipelining_)

  /// Speculation outcome tallies (always tracked — they are plain
  /// increments — and exported via RecordRunMetrics).
  uint64_t spec_used_ = 0;        // intra-row plan adopted as-is
  uint64_t spec_discarded_ = 0;   // intra-row plan went stale, replanned
  uint64_t cross_adopted_ = 0;    // cross-row count adopted in flight
  uint64_t cross_discarded_ = 0;  // cross-row count joined + dropped
  uint64_t cross_carried_ = 0;    // cross-row plan carried un-started

  /// Frequent single items per level (index h), sorted by id.
  std::vector<std::vector<ItemId>> freq_items_;
};

}  // namespace flipper

#endif  // FLIPPER_CORE_CELL_PIPELINE_H_
