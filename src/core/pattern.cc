#include "core/pattern.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"

namespace flipper {

double FlippingPattern::FlipGap() const {
  if (chain.size() < 2) return 0.0;
  double gap = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i + 1 < chain.size(); ++i) {
    gap = std::min(gap, std::fabs(chain[i].corr - chain[i + 1].corr));
  }
  return gap;
}

bool FlippingPattern::IsValidFlip() const {
  if (chain.empty()) return false;
  for (size_t i = 0; i < chain.size(); ++i) {
    if (chain[i].label == Label::kNone) return false;
    if (i > 0 && !Flips(chain[i - 1].label, chain[i].label)) return false;
  }
  return true;
}

std::string FlippingPattern::ToString(const ItemDictionary* dict) const {
  std::string out;
  for (const LevelStat& stat : chain) {
    out += "  L" + std::to_string(stat.level) + " ";
    out += dict != nullptr ? dict->Render(stat.itemset)
                           : stat.itemset.ToString();
    out += "  sup=" + std::to_string(stat.support);
    out += "  corr=" + FormatDouble(stat.corr, 4);
    out += "  ";
    out += LabelToString(stat.label);
    out += "\n";
  }
  return out;
}

void SortPatterns(std::vector<FlippingPattern>* patterns) {
  std::sort(patterns->begin(), patterns->end(),
            [](const FlippingPattern& a, const FlippingPattern& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a.leaf_itemset < b.leaf_itemset;
            });
}

bool SamePatterns(const std::vector<FlippingPattern>& a,
                  const std::vector<FlippingPattern>& b) {
  if (a.size() != b.size()) return false;
  std::vector<FlippingPattern> sa = a;
  std::vector<FlippingPattern> sb = b;
  SortPatterns(&sa);
  SortPatterns(&sb);
  for (size_t i = 0; i < sa.size(); ++i) {
    if (sa[i].leaf_itemset != sb[i].leaf_itemset) return false;
    if (sa[i].chain.size() != sb[i].chain.size()) return false;
    for (size_t h = 0; h < sa[i].chain.size(); ++h) {
      const LevelStat& x = sa[i].chain[h];
      const LevelStat& y = sb[i].chain[h];
      if (x.itemset != y.itemset || x.label != y.label ||
          x.support != y.support) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace flipper
