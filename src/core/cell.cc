#include "core/cell.h"

#include <algorithm>

namespace flipper {

Cell& Cell::operator=(Cell&& other) noexcept {
  if (this != &other) {
    Release();
    h_ = other.h_;
    k_ = other.k_;
    tracker_ = other.tracker_;
    records_ = std::move(other.records_);
    other.records_.clear();
    other.tracker_ = nullptr;
  }
  return *this;
}

void Cell::Put(const Itemset& itemset, const ItemsetRecord& record) {
  auto [it, inserted] = records_.insert_or_assign(itemset, record);
  (void)it;
  if (inserted && tracker_ != nullptr) tracker_->Add(kBytesPerRecord);
}

const ItemsetRecord* Cell::Find(const Itemset& itemset) const {
  auto it = records_.find(itemset);
  return it == records_.end() ? nullptr : &it->second;
}

void Cell::ForEach(const std::function<void(const Itemset&,
                                            const ItemsetRecord&)>& fn)
    const {
  for (const auto& [itemset, record] : records_) fn(itemset, record);
}

std::vector<Itemset> Cell::Select(
    const std::function<bool(const ItemsetRecord&)>& pred) const {
  std::vector<Itemset> out;
  for (const auto& [itemset, record] : records_) {
    if (pred(record)) out.push_back(itemset);
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t Cell::Retain(
    const std::function<bool(const ItemsetRecord&)>& pred) {
  size_t dropped = 0;
  for (auto it = records_.begin(); it != records_.end();) {
    if (pred(it->second)) {
      ++it;
    } else {
      it = records_.erase(it);
      ++dropped;
    }
  }
  if (tracker_ != nullptr && dropped > 0) {
    tracker_->Sub(static_cast<int64_t>(dropped) * kBytesPerRecord);
  }
  return dropped;
}

bool Cell::AllNonPositive() const {
  for (const auto& [itemset, record] : records_) {
    (void)itemset;
    if (record.label == Label::kPositive) return false;
  }
  return true;
}

void Cell::Release() {
  if (tracker_ != nullptr && !records_.empty()) {
    tracker_->Sub(static_cast<int64_t>(records_.size()) * kBytesPerRecord);
  }
  records_.clear();
}

}  // namespace flipper
