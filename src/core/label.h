// Correlation labels (Definition 1) and the flip predicate
// (Definition 2).

#ifndef FLIPPER_CORE_LABEL_H_
#define FLIPPER_CORE_LABEL_H_

namespace flipper {

/// Label of a frequent itemset under thresholds (gamma, epsilon):
/// positive when Corr >= gamma, negative when Corr <= epsilon,
/// otherwise none (non-correlated, "not interesting"). Infrequent
/// itemsets always carry kNone: Definition 1 only labels frequent
/// itemsets.
enum class Label : signed char {
  kNegative = -1,
  kNone = 0,
  kPositive = 1,
};

inline Label LabelOf(double corr, double gamma, double epsilon,
                     bool frequent) {
  if (!frequent) return Label::kNone;
  if (corr >= gamma) return Label::kPositive;
  if (corr <= epsilon) return Label::kNegative;
  return Label::kNone;
}

/// Two consecutive levels flip iff one is positive and the other
/// negative.
inline bool Flips(Label parent, Label child) {
  return (parent == Label::kPositive && child == Label::kNegative) ||
         (parent == Label::kNegative && child == Label::kPositive);
}

inline const char* LabelToString(Label label) {
  switch (label) {
    case Label::kPositive:
      return "POS";
    case Label::kNegative:
      return "NEG";
    case Label::kNone:
      return "---";
  }
  return "?";
}

}  // namespace flipper

#endif  // FLIPPER_CORE_LABEL_H_
