#include "core/candidate_gen.h"

#include <algorithm>
#include <array>
#include <cassert>

namespace flipper {

std::vector<Itemset> GeneratePairs(std::span<const ItemId> items) {
  assert(std::is_sorted(items.begin(), items.end()));
  std::vector<Itemset> out;
  out.reserve(items.size() * (items.size() - 1) / 2);
  for (size_t i = 0; i < items.size(); ++i) {
    for (size_t j = i + 1; j < items.size(); ++j) {
      out.push_back(Itemset::Pair(items[i], items[j]));
    }
  }
  return out;
}

std::vector<Itemset> AprioriJoin(std::span<const Itemset> prev_frequent,
                                 const Cell& prev, size_t max_out,
                                 bool* truncated) {
  std::vector<Itemset> out;
  if (truncated != nullptr) *truncated = false;
  for (size_t i = 0; i < prev_frequent.size(); ++i) {
    if (out.size() >= max_out) {
      if (truncated != nullptr) *truncated = true;
      return out;
    }
    for (size_t j = i + 1; j < prev_frequent.size(); ++j) {
      std::optional<Itemset> joined =
          Itemset::PrefixJoin(prev_frequent[i], prev_frequent[j]);
      if (!joined.has_value()) {
        // The list is sorted lexicographically, so once the prefix of
        // j diverges from i's no later j will share it.
        break;
      }
      // Subset pruning: every (k-1)-subset must be frequent in the
      // complete previous cell. The two join operands are subsets by
      // construction; check the remaining k-1 subsets.
      bool all_frequent = true;
      for (int drop = 0; drop + 2 < joined->size() && all_frequent;
           ++drop) {
        const ItemsetRecord* rec = prev.Find(joined->WithoutIndex(drop));
        if (rec == nullptr || !rec->frequent) all_frequent = false;
      }
      if (all_frequent) out.push_back(*joined);
    }
  }
  return out;
}

void VerticalExpand(const Itemset& parent, const Taxonomy& taxonomy,
                    int h, const std::function<bool(ItemId)>& child_ok,
                    std::vector<Itemset>* out, size_t max_out,
                    bool* truncated) {
  const int k = parent.size();
  assert(k >= 1);

  // Effective children per parent item.
  std::array<std::vector<ItemId>, kMaxItemsetSize> options;
  for (int i = 0; i < k; ++i) {
    const ItemId node = parent[i];
    std::vector<ItemId>& opts = options[static_cast<size_t>(i)];
    if (taxonomy.IsLeaf(node) && taxonomy.LevelOf(node) < h) {
      // Shallow leaf: represents itself at level h (Figure-3[B]).
      if (child_ok(node)) opts.push_back(node);
    } else {
      for (ItemId child : taxonomy.ChildrenOf(node)) {
        if (child_ok(child)) opts.push_back(child);
      }
    }
    if (opts.empty()) return;  // no viable combination
  }

  // Cartesian product via odometer enumeration. Children of distinct
  // parents are distinct nodes, so every combination is a k-itemset.
  std::array<size_t, kMaxItemsetSize> idx{};
  for (;;) {
    if (out->size() >= max_out) {
      if (truncated != nullptr) *truncated = true;
      return;
    }
    Itemset candidate;
    for (int i = 0; i < k; ++i) {
      candidate.Insert(options[static_cast<size_t>(i)]
                              [idx[static_cast<size_t>(i)]]);
    }
    assert(candidate.size() == k);
    out->push_back(candidate);

    int pos = k - 1;
    while (pos >= 0) {
      const auto upos = static_cast<size_t>(pos);
      if (++idx[upos] < options[upos].size()) break;
      idx[upos] = 0;
      --pos;
    }
    if (pos < 0) break;
  }
}

std::vector<Itemset> FilterKnownInfrequentSubsets(
    std::vector<Itemset> candidates, const Cell& prev_in_row) {
  if (prev_in_row.empty()) return candidates;
  std::vector<Itemset> out;
  out.reserve(candidates.size());
  for (const Itemset& cand : candidates) {
    bool viable = true;
    for (int drop = 0; drop < cand.size() && viable; ++drop) {
      const ItemsetRecord* rec = prev_in_row.Find(cand.WithoutIndex(drop));
      if (rec != nullptr && !rec->frequent) viable = false;
    }
    if (viable) out.push_back(cand);
  }
  return out;
}

}  // namespace flipper
