#include "core/cell_pipeline.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/trace.h"
#include "core/candidate_gen.h"
#include "core/pipeline_metrics.h"
#include "core/scan_cell.h"

namespace flipper {
namespace {

// One pipeline stage on the driver thread: a cat="stage" trace span
// plus (when a registry is attached) "stage.<name>_ms" /
// "stage.<name>_cpu_ms" histogram samples. Stage scopes are laid out
// so they never nest — the trace coverage check sums them against the
// root "mine" span.
class StageScope {
 public:
  StageScope(MetricsRegistry* metrics, const char* name)
      : timer_(metrics, name), span_(name, "stage") {}
  StageScope(MetricsRegistry* metrics, const char* name, int h, int k)
      : timer_(metrics, name), span_(name, "stage", h, k) {}

 private:
  ScopedStageTimer timer_;
  trace::ScopedSpan span_;
};

}  // namespace

Result<MiningResult> CellPipeline::Execute(const TransactionDb& db,
                                           const LevelViews* shared_views) {
  FLIPPER_RETURN_IF_ERROR(config_.Validate());
  metrics_ = config_.metrics;
  if (trace::Enabled()) trace::SetThreadName("driver");
  // Root span of the run; every driver-side stage scope below lands
  // strictly inside it and the coverage check compares against it.
  FLIPPER_TRACE_SPAN("mine", "run");
  run_timer_.Restart();
  {
    StageScope stage(metrics_, "pool_start");
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
    // Before the first Submit — the pool's queue mutex publishes the
    // observer to the workers.
    if (metrics_ != nullptr) pool_->set_observer(metrics_);
  }
  if (shared_views != nullptr) {
    // Borrowed store views (the serving path): read-only, possibly
    // shared with concurrent pipelines. Extra catalogs they may carry
    // are inert unless this config enables skipping, so results match
    // the owned build bit for bit.
    views_ = shared_views;
  } else {
    StageScope stage(metrics_, "views_build");
    LevelViews::BuildOptions view_options;
    // Catalogs have exactly two consumers — the horizontal counting
    // scan and the scan-driven cell — so skip the per-level build pass
    // when neither can run.
    view_options.build_catalogs =
        config_.enable_segment_skipping &&
        (config_.counter == CounterKind::kHorizontal ||
         config_.enable_scan_cells);
    FLIPPER_ASSIGN_OR_RETURN(
        owned_views_,
        LevelViews::Build(db, tax_, pool_.get(), view_options));
    views_ = &owned_views_;
  }
  CounterOptions counter_options;
  counter_options.enable_segment_skipping =
      config_.enable_segment_skipping;
  counter_options.trie.flat = config_.enable_flat_trie;
  counter_options.trie.prefilter = config_.enable_txn_prefilter;
  counter_options.cancel = config_.cancel;
  counter_ = MakeCounter(config_.counter, pool_.get(), counter_options);
  pipelining_ = config_.enable_pipelining;
  row_overlap_ = pipelining_ && config_.enable_row_overlap;

  MiningResult result;
  height_ = tax_.height();
  num_txns_ = views_->num_transactions();

  // Column bound: itemsets are rooted in distinct level-1 nodes, and a
  // frequent (h,k)-itemset needs a transaction with k distinct level-h
  // items (paper §4.1).
  max_k_ = static_cast<int>(std::min<size_t>(
      tax_.Level1().size(), views_->MaxUniversalWidth()));
  max_k_ = std::min(max_k_, kMaxItemsetSize);
  if (config_.max_itemset_size > 0) {
    max_k_ = std::min(max_k_, config_.max_itemset_size);
  }

  {
    StageScope stage(metrics_, "singletons");
    // Scan 1 (line 1 of Algorithm 1): frequent single items per level.
    freq_items_.assign(static_cast<size_t>(height_) + 1, {});
    for (int h = 1; h <= height_; ++h) {
      const uint32_t min_count = config_.MinCount(h, num_txns_);
      auto& items = freq_items_[static_cast<size_t>(h)];
      for (ItemId item : tax_.NodesAtLevel(h)) {
        if (views_->ItemSupport(h, item) >= min_count) {
          items.push_back(item);
        }
      }
    }
    planner_ = std::make_unique<CellPlanner>(tax_, config_, *views_,
                                             freq_items_, num_txns_);
    evaluator_ = std::make_unique<CellEvaluator>(
        tax_, config_, *views_, &tracker_, freq_items_, num_txns_);
  }

  if (height_ < 2 || max_k_ < 2) {
    // No flipping is possible with a single abstraction level, and no
    // correlation is defined for single items.
    result.stats.total_seconds = run_timer_.ElapsedSeconds();
    RecordRunMetrics(result.stats, run_timer_.ElapsedSeconds() * 1e3);
    return result;
  }

  // Deadline may already have passed (e.g. spent queued in a server's
  // waiting room) — fail before the first candidate is generated.
  FLIPPER_RETURN_IF_ERROR(CheckCancel());

  // Cross-row speculation handed from one row's last column to the
  // next row's first cell (enable_row_overlap). Declared ahead of both
  // phases: phase 1's last column seeds row 3.
  CrossRowState cross;

  // --- Phase 1: the two ceiling rows, zigzag (lines 2-7). ---
  Row row1;
  Row row2;
  std::optional<CellPlan> spec;
  for (int k = 2; k <= max_k_; ++k) {
    FLIPPER_RETURN_IF_ERROR(CheckCancel());
    CellWork work1;
    const Cell* prev1 =
        k == 2 ? nullptr : &row1[static_cast<size_t>(k - 3)];
    FLIPPER_RETURN_IF_ERROR(
        BeginRow1Cell(k, prev1, std::move(spec), &work1));
    spec.reset();
    FLIPPER_ASSIGN_OR_RETURN(Cell q1, FinishCell(&work1, nullptr));
    const bool q1_has_frequent = !q1.Select([](const ItemsetRecord& r) {
                                     return r.frequent;
                                   }).empty();
    if (!q1_has_frequent) {
      // Support termination: no frequent (1,k)-itemsets means no
      // frequent (1,k')-itemsets for k' >= k, so every deeper chain is
      // broken from column k on.
      max_k_ = k - 1;
      break;
    }
    row1.push_back(std::move(q1));

    CellWork work2;
    const Cell& parent = row1[static_cast<size_t>(k - 2)];
    const Cell* prev2 =
        k == 2 ? nullptr : &row2[static_cast<size_t>(k - 3)];
    FLIPPER_RETURN_IF_ERROR(
        BeginVerticalCell(2, k, &parent, prev2, std::nullopt, &work2));
    // Overlap: while Q(2,k) counts on the pool, the driver plans
    // Q(1,k+1) — the prefix join reads only the completed Q(1,k).
    if (pipelining_ && k < max_k_ && !work2.counted_by_scan) {
      StageScope stage(metrics_, "plan", 1, k + 1);
      spec = planner_->PlanRow1(k + 1, &parent);
    }
    // Row overlap: at the last column, plan (and start counting)
    // Q(3,2) from the completed Q(2,2) while Q(2,max_k) finishes.
    const Cell* cross_parent =
        row_overlap_ && k == max_k_ && height_ >= 3 && !row2.empty()
            ? &row2[0]
            : nullptr;
    FLIPPER_RETURN_IF_ERROR(
        JoinWithCrossStart(&work2, 3, cross_parent, &cross));
    FLIPPER_ASSIGN_OR_RETURN(Cell q2, EvaluateCell(&work2, &parent));
    row2.push_back(std::move(q2));

    {
      StageScope stage(metrics_, "sibp", 2, k);
      evaluator_->SibpUpdate(1, k, row1[static_cast<size_t>(k - 2)]);
      evaluator_->SibpUpdate(2, k, row2[static_cast<size_t>(k - 2)]);
      evaluator_->SibpBan(2, k, &stats_);
    }

    if (TpgFires(row1[static_cast<size_t>(k - 2)],
                 row2[static_cast<size_t>(k - 2)])) {
      if (stats_.tpg_stopped_at == 0) stats_.tpg_stopped_at = k;
      max_k_ = k - 1;
      break;
    }
  }
  spec.reset();
  {
    StageScope stage(metrics_, "evict");
    // Line 7: eliminate non-flipping patterns in rows 1 and 2. Row 1
    // is no longer needed at all (chains carry its data forward).
    row1.clear();
    evaluator_->ReleaseChains(1);
    EvictCompletedRow(&row2);
  }

  // --- Phase 2: rows 3..H, row-wise (lines 8-15). ---
  Row prev_row = std::move(row2);
  for (int h = 3; h <= height_; ++h) {
    Row cur_row;
    std::optional<CellPlan> vspec;
    // A carried cross-row plan (scan route / truncated) becomes the
    // row's first spec, so its scan or error lands in serial position.
    if (cross.carried.has_value()) {
      ++cross_carried_;
      vspec = std::move(cross.carried);
      cross.carried.reset();
    }
    for (int k = 2; k <= max_k_; ++k) {
      FLIPPER_RETURN_IF_ERROR(CheckCancel());
      const Cell* parent =
          static_cast<size_t>(k - 2) < prev_row.size()
              ? &prev_row[static_cast<size_t>(k - 2)]
              : nullptr;
      const Cell* prev_in_row =
          k == 2 ? nullptr : &cur_row[static_cast<size_t>(k - 3)];
      std::unique_ptr<CellWork> work;
      if (k == 2 && cross.started != nullptr) {
        StageScope stage(metrics_, "cross_adopt", h, k);
        std::unique_ptr<CellWork> started = std::move(cross.started);
        if (evaluator_->banned(h).size() == cross.ban_version) {
          // Adopt the cross-row count already in flight. Provably
          // always taken — SibpBan(h-1,·) bans only level-(h-1) items,
          // so banned(h) cannot have grown since the plan read it.
          ++cross_adopted_;
          work = std::move(started);
        } else {
          // Defensive stale path: join, discard, replan serially.
          ++cross_discarded_;
          FLIPPER_RETURN_IF_ERROR(started->future.Join());
        }
      }
      if (work == nullptr) {
        work = std::make_unique<CellWork>();
        FLIPPER_RETURN_IF_ERROR(BeginVerticalCell(
            h, k, parent, prev_in_row, std::move(vspec), work.get()));
      }
      vspec.reset();
      // Overlap: while Q(h,k)'s scan counts on the pool, the driver
      // plans Q(h,k+1) from the completed parent row. The plan records
      // the SIBP ban version it read; if evaluating Q(h,k) bans more
      // items, BeginVerticalCell discards it and replans.
      if (pipelining_ && k < max_k_ && !work->counted_by_scan) {
        const Cell* next_parent =
            static_cast<size_t>(k - 1) < prev_row.size()
                ? &prev_row[static_cast<size_t>(k - 1)]
                : nullptr;
        if (next_parent != nullptr) {
          StageScope stage(metrics_, "plan", h, k + 1);
          vspec = planner_->PlanVertical(h, k + 1, *next_parent,
                                         evaluator_->banned(h));
        }
      }
      // Row overlap at the last column: plan and start Q(h+1,2) from
      // the completed Q(h,2) while Q(h,max_k)'s count drains.
      const Cell* cross_parent =
          row_overlap_ && k == max_k_ && h < height_ && !cur_row.empty()
              ? &cur_row[0]
              : nullptr;
      FLIPPER_RETURN_IF_ERROR(
          JoinWithCrossStart(work.get(), h + 1, cross_parent, &cross));
      FLIPPER_ASSIGN_OR_RETURN(Cell cell,
                               EvaluateCell(work.get(), parent));
      cur_row.push_back(std::move(cell));

      {
        StageScope stage(metrics_, "sibp", h, k);
        evaluator_->SibpUpdate(h, k, cur_row[static_cast<size_t>(k - 2)]);
        evaluator_->SibpBan(h, k, &stats_);
      }

      if (parent != nullptr &&
          TpgFires(*parent, cur_row[static_cast<size_t>(k - 2)])) {
        if (stats_.tpg_stopped_at == 0) stats_.tpg_stopped_at = k;
        max_k_ = k - 1;
        break;
      }
    }
    // Line 14: eliminate non-flipping patterns; row h-1 retires.
    StageScope stage(metrics_, "evict");
    prev_row.clear();
    evaluator_->ReleaseChains(h - 1);
    EvictCompletedRow(&cur_row);
    prev_row = std::move(cur_row);
  }

  {
    StageScope stage(metrics_, "assemble");
    // Line 16: report the alive itemsets of the deepest row.
    evaluator_->AssemblePatterns(prev_row, &result);

    // Counter scans + scan-driven cell scans + the initial singleton
    // scan.
    stats_.db_scans += counter_->num_db_scans() + 1;
    stats_.segments_skipped += counter_->segments_skipped();
    stats_.txns_prefiltered += counter_->txns_prefiltered();
    stats_.peak_candidate_bytes = tracker_.peak_bytes();
    stats_.total_seconds = run_timer_.ElapsedSeconds();
    result.stats = std::move(stats_);
  }
  RecordRunMetrics(result.stats, run_timer_.ElapsedSeconds() * 1e3);
  return result;
}

Status CellPipeline::CheckCancel() {
  const CancelToken* token = config_.cancel;
  if (token == nullptr || !token->Fired()) return Status::OK();
  // The cancelled run still reports whatever it counted: stamp the
  // partial MiningStats into the metrics sink before unwinding.
  stats_.total_seconds = run_timer_.ElapsedSeconds();
  RecordRunMetrics(stats_, run_timer_.ElapsedSeconds() * 1e3);
  Status fired = token->ToStatus();
  // Fired tokens stay fired (the flag is sticky and deadlines are
  // monotone); the fallback only guards a misbehaving token.
  if (fired.ok()) fired = Status::Cancelled("cancelled: query abandoned");
  return fired;
}

void CellPipeline::RecordRunMetrics(const MiningStats& stats,
                                    double wall_ms) {
  if (metrics_ == nullptr) return;
  MetricsRegistry& m = *metrics_;
  m.AddCounter("mine.cells", static_cast<int64_t>(stats.cells.size()));
  m.AddCounter("mine.candidates_generated",
               static_cast<int64_t>(stats.total_generated));
  m.AddCounter("mine.candidates_counted",
               static_cast<int64_t>(stats.total_counted));
  m.AddCounter("mine.db_scans", static_cast<int64_t>(stats.db_scans));
  m.AddCounter("mine.scan_cell_scans",
               static_cast<int64_t>(stats.scan_cell_scans));
  m.AddCounter("mine.segments_skipped",
               static_cast<int64_t>(stats.segments_skipped));
  m.AddCounter("mine.txns_prefiltered",
               static_cast<int64_t>(stats.txns_prefiltered));
  m.AddCounter("mine.positive_itemsets",
               static_cast<int64_t>(stats.num_positive));
  m.AddCounter("mine.negative_itemsets",
               static_cast<int64_t>(stats.num_negative));
  m.AddCounter("mine.sibp_banned_items",
               static_cast<int64_t>(stats.sibp_banned_items));
  m.AddCounter("mine.tpg_stop_column",
               static_cast<int64_t>(stats.tpg_stopped_at));
  m.AddCounter("mine.peak_candidate_bytes",
               static_cast<int64_t>(stats.peak_candidate_bytes));
  m.SetGauge("mine.total_ms", wall_ms);

  m.AddCounter("pipeline.spec_used", static_cast<int64_t>(spec_used_));
  m.AddCounter("pipeline.spec_discarded",
               static_cast<int64_t>(spec_discarded_));
  m.AddCounter("pipeline.cross_row_adopted",
               static_cast<int64_t>(cross_adopted_));
  m.AddCounter("pipeline.cross_row_discarded",
               static_cast<int64_t>(cross_discarded_));
  m.AddCounter("pipeline.cross_row_carried",
               static_cast<int64_t>(cross_carried_));
  const uint64_t spec_total = spec_used_ + spec_discarded_;
  if (spec_total > 0) {
    m.SetGauge("pipeline.spec_adoption_rate",
               static_cast<double>(spec_used_) /
                   static_cast<double>(spec_total));
  }
  const uint64_t cross_total = cross_adopted_ + cross_discarded_;
  if (cross_total > 0) {
    m.SetGauge("pipeline.cross_adoption_rate",
               static_cast<double>(cross_adopted_) /
                   static_cast<double>(cross_total));
  }

  uint64_t arena_grow = 0;
  for (const ScanCounterTable& table : scan_scratch_.shard_tables) {
    arena_grow += table.grow_events();
  }
  m.AddCounter("scan.arena_grow_events", static_cast<int64_t>(arena_grow));

  // The pool is quiet here: every count future joined before this.
  if (pool_ != nullptr) {
    m.FinalizePool(wall_ms, pool_->num_threads());
  }
}

Status CellPipeline::BeginRow1Cell(int k, const Cell* prev_in_row,
                                   std::optional<CellPlan> spec,
                                   CellWork* work) {
  work->cs.h = 1;
  work->cs.k = k;
  CellPlan plan;
  if (spec.has_value() && spec->k == k) {
    ++spec_used_;
    plan = std::move(*spec);
  } else {
    if (spec.has_value()) ++spec_discarded_;
    StageScope stage(metrics_, "plan", 1, k);
    plan = planner_->PlanRow1(k, prev_in_row);
  }
  if (plan.truncated) return TruncatedError(1, k);
  work->cs.generated = plan.candidates.size();
  work->candidates = std::move(plan.candidates);
  work->cs.counted = work->candidates.size();
  StageScope stage(metrics_, "count_start", 1, k);
  work->future =
      counter_->StartCount(views_, 1, work->candidates, &work->supports);
  return Status::OK();
}

Status CellPipeline::BeginVerticalCell(int h, int k, const Cell* parent,
                                       const Cell* prev_in_row,
                                       std::optional<CellPlan> spec,
                                       CellWork* work) {
  work->cs.h = h;
  work->cs.k = k;
  if (parent == nullptr) {
    // No parent cell to grow from: the cell is empty (the ready future
    // leaves the supports empty without accounting a scan).
    work->future = counter_->StartCount(views_, h, work->candidates,
                                        &work->supports);
    return Status::OK();
  }
  const auto& banned = evaluator_->banned(h);
  CellPlan plan;
  if (spec.has_value() && spec->h == h && spec->k == k &&
      CellPlanner::PlanValid(*spec, banned)) {
    ++spec_used_;
    plan = std::move(*spec);
  } else {
    if (spec.has_value()) ++spec_discarded_;
    StageScope stage(metrics_, "plan", h, k);
    plan = planner_->PlanVertical(h, k, *parent, banned);
  }
  if (plan.strategy == CellStrategy::kScan) {
    StageScope stage(metrics_, "scan_cell", h, k);
    FLIPPER_RETURN_IF_ERROR(FillCellByScan(
        *views_, tax_, config_, h, k, *parent, prev_in_row, banned,
        freq_items_[static_cast<size_t>(h)], &work->candidates,
        &work->supports, &work->cs, &stats_, &scan_scratch_,
        pool_.get()));
    work->counted_by_scan = true;
    work->cs.counted = work->candidates.size();
    return Status::OK();
  }
  work->cs.generated = plan.candidates.size();
  work->candidates = std::move(plan.candidates);
  if (prev_in_row != nullptr) {
    StageScope stage(metrics_, "subset_filter", h, k);
    work->candidates = FilterKnownInfrequentSubsets(
        std::move(work->candidates), *prev_in_row);
  }
  if (plan.truncated) return TruncatedError(h, k);
  work->cs.counted = work->candidates.size();
  StageScope stage(metrics_, "count_start", h, k);
  work->future =
      counter_->StartCount(views_, h, work->candidates, &work->supports);
  return Status::OK();
}

Result<Cell> CellPipeline::FinishCell(CellWork* work, const Cell* parent) {
  {
    StageScope stage(metrics_, "count_wait", work->cs.h, work->cs.k);
    FLIPPER_RETURN_IF_ERROR(work->future.Join());
  }
  return EvaluateCell(work, parent);
}

Result<Cell> CellPipeline::EvaluateCell(CellWork* work,
                                        const Cell* parent) {
  // A token that fired mid-count made the shard loops bail early, so
  // work->supports may be partial — never evaluate them. (An un-fired
  // token implies complete, exact supports.)
  FLIPPER_RETURN_IF_ERROR(CheckCancel());
  StageScope stage(metrics_, "evaluate", work->cs.h, work->cs.k);
  Cell cell =
      evaluator_->Evaluate(work->cs.h, work->cs.k, work->candidates,
                           work->supports, parent, &work->cs, &stats_);
  work->cs.seconds = work->timer.ElapsedSeconds();
  stats_.AddCell(work->cs);
  return cell;
}

Status CellPipeline::JoinWithCrossStart(CellWork* work, int next_h,
                                        const Cell* cross_parent,
                                        CrossRowState* cross) {
  if (cross_parent == nullptr) {
    StageScope stage(metrics_, "count_wait", work->cs.h, work->cs.k);
    return work->future.Join();
  }
  // Plan Q(next_h,2) while this cell's count is still in flight. The
  // plan reads only the completed cross parent (Q(next_h-1,2)) and
  // level next_h's SIBP ban set — evaluating the in-flight cell bans
  // level-(next_h-1) items only, so the plan cannot go stale before
  // row next_h adopts it (the version is still revalidated there).
  CellPlan plan;
  {
    StageScope stage(metrics_, "plan", next_h, 2);
    plan = planner_->PlanVertical(next_h, 2, *cross_parent,
                                  evaluator_->banned(next_h));
  }
  {
    StageScope stage(metrics_, "count_wait", work->cs.h, work->cs.k);
    FLIPPER_RETURN_IF_ERROR(work->future.Join());
  }
  if (plan.strategy == CellStrategy::kScan || plan.truncated) {
    // The scan route counts inline on the driver thread and truncation
    // must raise its error in serial position — carry the plan to the
    // next row's first spec instead of starting anything here.
    cross->carried = std::move(plan);
    return Status::OK();
  }
  auto started = std::make_unique<CellWork>();
  started->cs.h = next_h;
  started->cs.k = 2;
  started->cs.generated = plan.candidates.size();
  started->candidates = std::move(plan.candidates);
  started->cs.counted = started->candidates.size();
  cross->ban_version = plan.ban_version;
  // The previous count is joined, so the counter's pooled scratch is
  // free: begin the cross count before the row tail evaluates.
  StageScope stage(metrics_, "count_start", next_h, 2);
  started->future = counter_->StartCount(views_, next_h,
                                         started->candidates,
                                         &started->supports);
  cross->started = std::move(started);
  return Status::OK();
}

Status CellPipeline::TruncatedError(int h, int k) const {
  return Status::ResourceExhausted(
      "cell Q(" + std::to_string(h) + "," + std::to_string(k) +
      ") exceeded the candidate limit (" +
      std::to_string(config_.max_candidates_per_cell) + ")");
}

void CellPipeline::EvictCompletedRow(Row* row) {
  for (Cell& cell : *row) {
    if (config_.pruning.flipping) {
      cell.Retain([](const ItemsetRecord& r) { return r.chain_alive; });
    } else {
      cell.Retain([](const ItemsetRecord& r) { return r.frequent; });
    }
  }
}

}  // namespace flipper
