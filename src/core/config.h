// Mining configuration: thresholds, measure, pruning stack, counting
// engine.

#ifndef FLIPPER_CORE_CONFIG_H_
#define FLIPPER_CORE_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "measures/measure.h"

namespace flipper {

class CancelToken;
class MetricsRegistry;

/// Which support-counting engine evaluates candidates.
enum class CounterKind {
  kHorizontal,  // database scan + candidate prefix trie (paper's model)
  kVertical,    // per-item TID-set intersection
};

const char* CounterKindToString(CounterKind kind);

/// Pruning layers on top of support-based pruning. The paper's
/// evaluation series map to:
///   BASIC                 -> NaiveMiner (per-level Apriori, §5)
///   FLIPPING PRUNING      -> {flipping=true}
///   FLIPPING+TPG          -> {flipping=true, tpg=true}
///   FLIPPING+TPG+SIBP     -> {flipping=true, tpg=true, sibp=true}
struct PruningOptions {
  /// Grow rows >= 2 only from frequent, labeled, chain-alive parents
  /// (§4.2.2). When false, rows grow from every frequent parent.
  bool flipping = true;
  /// Termination of pattern growth, Theorem 3 (§4.3.1).
  bool tpg = true;
  /// Single-item based pruning, Theorem 2 + Corollary 2 (§4.3.2).
  bool sibp = true;

  static PruningOptions Basic() { return {false, false, false}; }
  static PruningOptions FlippingOnly() { return {true, false, false}; }
  static PruningOptions FlippingTpg() { return {true, true, false}; }
  static PruningOptions Full() { return {true, true, true}; }

  std::string ToString() const;
};

struct MiningConfig {
  /// Positive / negative correlation thresholds (Definition 1).
  double gamma = 0.3;
  double epsilon = 0.1;

  /// Per-level minimum supports as fractions of |D|; index 0 is level 1.
  /// Must be non-increasing (paper §2.2). If fewer entries than H are
  /// given the last one is reused for deeper levels.
  std::vector<double> min_support;

  /// Null-invariant correlation measure; Kulczynski throughout the
  /// paper's experiments.
  MeasureKind measure = MeasureKind::kKulczynski;

  PruningOptions pruning = PruningOptions::Full();

  CounterKind counter = CounterKind::kHorizontal;

  /// Worker threads for support counting and view materialization;
  /// 0 means "all hardware threads". Results are identical for any
  /// value (sharded work reduces deterministically).
  int num_threads = 0;

  /// Upper bound on itemset size; 0 means "auto" (number of level-1
  /// nodes, max generalized transaction width and kMaxItemsetSize).
  int max_itemset_size = 0;

  /// Safety valve: a cell generating more candidates than this aborts
  /// with ResourceExhausted (mirrors the paper's BASIC memory blowups
  /// without taking the host down).
  uint64_t max_candidates_per_cell = 50'000'000;

  /// Allow the scan-driven cell strategy (enumerate the k-subsets the
  /// data actually contains) when the cartesian children product would
  /// be larger. Disable to force pure cartesian generation — used by
  /// the strategy ablation bench; results are identical either way.
  bool enable_scan_cells = true;

  /// Overlap the cell stages across cells: while cell Q(h,k)'s support
  /// scan runs on the thread pool, the driver thread speculatively
  /// generates Q(h,k+1)'s candidates (revalidated against the SIBP ban
  /// state before use). Mining output is bit-identical either way; off
  /// gives the staged-serial execution order.
  bool enable_pipelining = true;

  /// Extend the speculation window across taxonomy rows: at a row's
  /// last column the driver plans — and starts counting — Q(h+1,2)
  /// against row h's completed Q(h,2) while Q(h,max_k) still counts /
  /// evaluates, keeping the pool fed across the level transition. The
  /// cross-row plan is revalidated against the SIBP ban version of
  /// level h+1 exactly like the intra-row speculation (that set cannot
  /// change before row h+1 starts, so the speculation never misses);
  /// output is bit-identical either way. Only effective together with
  /// enable_pipelining.
  bool enable_row_overlap = true;

  /// Count the scan-driven cell's k-subsets in the open-addressed
  /// bump-arena counter table (core/scan_counter.h) instead of the
  /// unordered_map baseline. Counts and emission order are exact and
  /// sorted either way, so mining output is bit-identical; off keeps
  /// the map path for A/B benchmarks and differential tests.
  bool enable_arena_scan_counters = true;

  /// Consult per-segment catalogs (min/max item, presence bitset,
  /// tracked supports) in the horizontal counting scan and the
  /// scan-driven cell, skipping segments that provably contain no
  /// live candidate. Skipping is exact — a skipped segment contributes
  /// zero to every candidate by construction — so supports and mining
  /// output are bit-identical with it on or off. Off also disables
  /// catalog construction in LevelViews (MiningStats::segments_skipped
  /// stays 0).
  bool enable_segment_skipping = true;

  /// Use the flat SoA candidate-trie layout (single arena, packed /
  /// galloping probe kernels, iterative walk) in the horizontal
  /// counting scans. Off falls back to the legacy per-layer AoS trie.
  /// Supports and mining output are bit-identical either way — the
  /// layouts only differ in memory traversal order.
  bool enable_flat_trie = true;

  /// Reject/compact transactions through a per-batch candidate-item
  /// prefilter (min/max id + 512-bit presence bitset) before the trie
  /// walk, and pre-screen the scan-driven cell's per-transaction item
  /// filter the same way. The filter is one-sided (a collision only
  /// costs a missed reject), so supports and mining output are
  /// bit-identical with it on or off.
  bool enable_txn_prefilter = true;

  /// Optional metrics sink (core/pipeline_metrics.h). When set, the
  /// pipeline records per-stage wall/CPU histograms, pool utilization
  /// and the MiningStats counters into it; null (the default) records
  /// nothing and costs nothing. Not owned; must outlive the run.
  /// Mining output is byte-identical with or without it.
  MetricsRegistry* metrics = nullptr;

  /// Optional cooperative-cancellation token (common/cancellation.h).
  /// The pipeline, counters and scan cells poll it at segment/batch
  /// granularity; when it fires the run unwinds through the error path
  /// (futures joined, pooled scratch returned) and Run returns the
  /// token's DeadlineExceeded/Cancelled status. Not owned; must outlive
  /// the run. An un-fired token never changes mining output — results
  /// are byte-identical with or without one (fuzz-enforced).
  const CancelToken* cancel = nullptr;

  /// Checks gamma/epsilon ordering, threshold monotonicity and ranges.
  Status Validate() const;

  /// Minimum support count at `level` (1-based) for a database of
  /// `num_txns` transactions: ceil(theta_h * |D|), at least 1.
  uint32_t MinCount(int level, uint32_t num_txns) const;
};

}  // namespace flipper

#endif  // FLIPPER_CORE_CONFIG_H_
