#include "core/scan_counter.h"

#include <algorithm>

namespace flipper {
namespace {

/// Slots a fresh table starts with; small enough to stay L1-resident
/// for narrow cells, large enough that typical cells never rehash more
/// than a few times before the scratch is warm.
constexpr size_t kInitialSlots = 1024;

/// 64-bit mix over the k key items. Shared by Itemset and raw-key
/// increments so both probe identically.
inline uint64_t HashKey(const ItemId* key, int k) {
  uint64_t h = 0x2545f4914f6cdd1dULL;
  for (int i = 0; i < k; ++i) {
    h ^= key[i];
    h *= 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
  }
  return h;
}

}  // namespace

void ScanCounterTable::Reset(int k) {
  assert(k >= 1 && k <= kMaxItemsetSize);
  k_ = k;
  entries_.clear();
  arena_.clear();
  if (slots_.empty()) {
    // The one allocation outside Increment(): a cold table's initial
    // slot array, paid per pooled instance, not per transaction.
    slots_.assign(kInitialSlots, 0);
  } else {
    std::fill(slots_.begin(), slots_.end(), 0);
  }
  mask_ = static_cast<uint32_t>(slots_.size() - 1);
}

void ScanCounterTable::Increment(const ItemId* key, uint32_t delta) {
  assert(!slots_.empty() && "Reset() before counting");
  const size_t key_bytes = sizeof(ItemId) * static_cast<size_t>(k_);
  uint32_t slot = static_cast<uint32_t>(HashKey(key, k_)) & mask_;
  for (uint32_t ref = slots_[slot]; ref != 0;
       ref = slots_[slot = (slot + 1) & mask_]) {
    Entry& entry = entries_[ref - 1];
    if (std::memcmp(arena_.data() + entry.key_pos, key, key_bytes) == 0) {
      entry.count += delta;
      return;
    }
  }
  if (arena_.size() + static_cast<size_t>(k_) > arena_.capacity()) {
    ++grow_events_;
  }
  const auto key_pos = static_cast<uint32_t>(arena_.size());
  arena_.insert(arena_.end(), key, key + k_);
  if (entries_.size() == entries_.capacity()) ++grow_events_;
  entries_.push_back({key_pos, delta});
  slots_[slot] = static_cast<uint32_t>(entries_.size());
  // Keep the load factor below 1/2 so probe runs stay short.
  if (entries_.size() * 2 >= slots_.size()) Rehash(slots_.size() * 2);
}

void ScanCounterTable::Rehash(size_t new_slot_count) {
  ++grow_events_;
  slots_.assign(new_slot_count, 0);
  mask_ = static_cast<uint32_t>(new_slot_count - 1);
  for (uint32_t i = 0; i < entries_.size(); ++i) {
    uint32_t slot = static_cast<uint32_t>(
                        HashKey(arena_.data() + entries_[i].key_pos, k_)) &
                    mask_;
    while (slots_[slot] != 0) slot = (slot + 1) & mask_;
    slots_[slot] = i + 1;
  }
}

}  // namespace flipper
