// CandidateTrie: the Apriori "hash-tree" role. Stores all candidate
// k-itemsets of one cell as a prefix trie over sorted item ids, so that
// a transaction can increment exactly the candidates it contains
// without enumerating all of its k-subsets blindly.
//
// Two layouts are maintained behind one API:
//
//   flat (default) — a single arena with SoA columns per node
//     (items[] / child_begin[] / child_end[] / leaf_index[]), walked
//     iteratively with an explicit frame stack. The txn∩children
//     merge-walk runs over the dense items[] stream with a packed
//     lower-bound probe — selected at *runtime* from one binary:
//     AVX2 when cpuid reports it, SSE2 on x86-64, a 64-bit mask +
//     std::countr_zero word kernel otherwise — and switches to a
//     galloping probe when the sibling list is long relative to the
//     remaining transaction suffix;
//   legacy — the original per-layer vector<Node> AoS layout with the
//     recursive merge-walk, kept behind Options::flat = false as the
//     A/B baseline for benchmarks and differential tests.
//
// In front of either walk an optional per-trie prefilter (min/max
// candidate item + a 512-bit presence bitset, sharing
// SegmentCatalog::HashBit) drops transaction items that provably occur
// in no candidate and rejects transactions left with fewer than k
// items. The filter is one-sided — a hash collision only keeps an item
// that the walk then ignores — so counts are bit-identical with it on
// or off.
//
// Both layouts produce identical counts for identical candidate sets;
// MiningConfig::enable_flat_trie / enable_txn_prefilter select them at
// run time.

#ifndef FLIPPER_CORE_CANDIDATE_TRIE_H_
#define FLIPPER_CORE_CANDIDATE_TRIE_H_

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "data/itemset.h"
#include "data/segment_catalog.h"
#include "data/types.h"

namespace flipper {

/// Lower-bound probe kernels over a sorted ItemId stream: first index
/// in [lo, hi) whose item is >= target, hi when none. Exposed for the
/// probe-kernel micro-bench and the kernel-agreement unit tests; the
/// trie walk dispatches between them internally.
namespace trie_probe {

/// Signature shared by every lower-bound kernel.
using ProbeFn = uint32_t (*)(const ItemId* items, uint32_t lo,
                             uint32_t hi, ItemId target);

/// Baseline: one compare per element.
uint32_t LowerBoundScalar(const ItemId* items, uint32_t lo, uint32_t hi,
                          ItemId target);

/// Portable packed probe: 8-wide compare masks folded into one 64-bit
/// word, resolved with std::countr_zero. Always built; also the tail
/// kernel of the vectorized variants.
uint32_t LowerBoundPackedPortable(const ItemId* items, uint32_t lo,
                                  uint32_t hi, ItemId target);

/// Runtime-dispatched packed probe. One binary carries every kernel;
/// the first call resolves the best one the host CPU supports (AVX2
/// via cpuid, else SSE2 on x86-64, else the portable word kernel),
/// honouring the FLIPPER_FORCE_PROBE_KERNEL override — an unknown or
/// unsupported forced name aborts with an explicit message rather
/// than silently falling back. Hot loops should hoist
/// ResolvedPackedKernel() once instead of paying the dispatch load
/// per probe.
uint32_t LowerBoundPacked(const ItemId* items, uint32_t lo, uint32_t hi,
                          ItemId target);

/// The function pointer LowerBoundPacked dispatches through,
/// resolving it first if needed.
ProbeFn ResolvedPackedKernel();

/// Galloping (exponential + binary) probe for long streams.
uint32_t LowerBoundGallop(const ItemId* items, uint32_t lo, uint32_t hi,
                          ItemId target);

/// Name of the kernel LowerBoundPacked currently resolves to ("avx2",
/// "sse2", "portable" or "scalar") — reported by the bench JSON.
const char* PackedKernelName();

/// Kernel names this host can run, dispatch-preferred first.
std::vector<const char*> AvailableKernelNames();

/// The kernel registered under `name`, independent of the dispatch
/// state; nullptr when the name is unknown or the host CPU cannot run
/// it. For the kernel-agreement tests.
ProbeFn KernelByName(std::string_view name);

/// Pins LowerBoundPacked to the named kernel (tests/benches — the env
/// override is the production path). InvalidArgument on unknown
/// names, FailedPrecondition when the host CPU lacks the kernel.
Status ForcePackedKernel(std::string_view name);

/// Restores cpuid auto-dispatch; FLIPPER_FORCE_PROBE_KERNEL is
/// re-read at the next resolution.
void ResetPackedKernel();

}  // namespace trie_probe

/// Small exact-reject item filter: min/max id plus a fixed 512-bit
/// presence bitset hashed with SegmentCatalog::HashBit. MayContain is
/// one-sided: false proves the item was never added, true may be a
/// collision. Shared by the candidate trie's transaction prefilter and
/// the scan-driven cell's participating-item filter.
class ItemPrefilter {
 public:
  static constexpr uint32_t kBits = 512;

  void Add(ItemId item) {
    if (item < min_) min_ = item;
    if (item > max_) max_ = item;
    const uint32_t bit = SegmentCatalog::HashBit(item, kBits);
    bits_[bit / 64] |= uint64_t{1} << (bit % 64);
  }

  bool MayContain(ItemId item) const {
    if (item < min_ || item > max_) return false;
    const uint32_t bit = SegmentCatalog::HashBit(item, kBits);
    return (bits_[bit / 64] >> (bit % 64)) & 1;
  }

  void Clear() {
    min_ = kInvalidItem;
    max_ = 0;
    bits_.fill(0);
  }

 private:
  ItemId min_ = kInvalidItem;
  ItemId max_ = 0;
  std::array<uint64_t, kBits / 64> bits_{};
};

class CandidateTrie {
 public:
  struct Options {
    /// Flat SoA arena + iterative probe walk (false: legacy AoS
    /// layers + recursion). Counts are identical either way.
    bool flat = true;
    /// Reject/compact transactions through the candidate-item
    /// prefilter before the walk. Exact: results are identical.
    bool prefilter = true;
  };

  /// Reusable per-caller counting scratch. One instance per thread
  /// (shards each own one); Reserve() up front so the per-transaction
  /// loop never allocates — grow_events counts the reallocation the
  /// debug assertions require to stay at zero.
  struct CountScratch {
    /// Prefilter-compacted transaction buffer.
    std::vector<ItemId> filtered;
    /// Times `filtered` had to grow inside CountTransaction. With a
    /// correct Reserve this stays 0 — asserted by the batch scan.
    uint64_t grow_events = 0;
    /// Transactions of length >= k rejected by the prefilter before
    /// any walk (informational; reset by each batch scan).
    uint64_t txns_prefiltered = 0;

    void Reserve(size_t max_txn_width) {
      if (max_txn_width > filtered.capacity()) {
        filtered.reserve(max_txn_width);
      }
    }
  };

  /// An empty trie (no candidates); fill with Build().
  CandidateTrie() = default;

  /// Builds the trie over candidates (all of equal size k >= 1).
  /// The candidate order defines the counter indexing.
  explicit CandidateTrie(std::span<const Itemset> candidates) {
    Build(candidates);
  }
  CandidateTrie(std::span<const Itemset> candidates,
                const Options& options) {
    Build(candidates, options);
  }

  /// Rebuilds over a new candidate batch, reusing the arena and
  /// counter allocations of previous builds (the row-level trie-reuse
  /// seam: one trie object serves every cell of a row).
  void Build(std::span<const Itemset> candidates,
             const Options& options);
  inline void Build(std::span<const Itemset> candidates);

  int k() const { return k_; }
  size_t num_candidates() const { return counts_.size(); }
  const Options& options() const { return options_; }

  /// Total trie nodes across all layers (either layout).
  size_t num_nodes() const;

  /// Feeds one (sorted, deduped) transaction through the trie,
  /// incrementing every contained candidate.
  void CountTransaction(std::span<const ItemId> txn);

  /// External-counter variant: increments into `counts` (size
  /// num_candidates(), same input-order indexing) instead of the
  /// built-in counters. The trie itself is untouched, so concurrent
  /// callers with private buffers can share one trie.
  void CountTransaction(std::span<const ItemId> txn,
                        std::span<uint32_t> counts) const;

  /// Scratch-reusing variant: `scratch` provides the prefilter
  /// compaction buffer, so a warmed-up caller performs no
  /// per-transaction allocation (the hot-path entry point).
  void CountTransaction(std::span<const ItemId> txn,
                        std::span<uint32_t> counts,
                        CountScratch* scratch) const;

  /// Counter of candidate `i` (input order).
  uint32_t CountOf(size_t i) const { return counts_[i]; }

  std::span<const uint32_t> counts() const { return counts_; }

  /// Heap bytes of the active layout (nodes + SoA columns + counters)
  /// plus the prefilter bitset when enabled. Exact for a freshly
  /// constructed trie: the flat builder sizes every column ahead of
  /// time, so capacity == size.
  int64_t MemoryBytes() const;

  /// Bytes the prefilter contributes to MemoryBytes() when enabled.
  static constexpr int64_t PrefilterMemoryBytes() {
    return static_cast<int64_t>(sizeof(ItemPrefilter));
  }

 private:
  struct Node {
    ItemId item;
    // Children are stored contiguously: [child_begin, child_end) in
    // nodes_ of the next depth layer; for depth k-1 nodes, leaf_index
    // points into counts_.
    uint32_t child_begin = 0;
    uint32_t child_end = 0;
    uint32_t leaf_index = 0;
  };

  void BuildLegacy(std::span<const Itemset> candidates,
                   std::span<const uint32_t> order,
                   std::span<const uint32_t> layer_sizes);
  void BuildFlat(std::span<const Itemset> candidates,
                 std::span<const uint32_t> order,
                 std::span<const uint32_t> layer_sizes);

  void CountLegacy(std::span<const ItemId> txn, size_t txn_pos, int depth,
                   uint32_t node_begin, uint32_t node_end,
                   uint32_t* counts) const;
  void CountFlat(std::span<const ItemId> txn, uint32_t* counts) const;

  int k_ = 0;
  Options options_;

  // --- legacy layout: nodes per depth layer (layer d holds the d-th
  // items of candidates), recursive merge-walk.
  std::vector<std::vector<Node>> layers_;

  // --- flat layout: one arena in layer-major order. Node ids are
  // global; layer d occupies [layer_begin_[d], layer_begin_[d + 1]).
  // Internal nodes (depth < k-1, global id < layer_begin_[k_-1]) carry
  // child ranges of global ids in the next layer; leaf-layer nodes
  // carry leaf_index_[id - layer_begin_[k_-1]] into counts_.
  std::vector<ItemId> items_;
  std::vector<uint32_t> child_begin_;
  std::vector<uint32_t> child_end_;
  std::vector<uint32_t> leaf_index_;
  std::vector<uint32_t> layer_begin_;
  ItemPrefilter prefilter_;

  std::vector<uint32_t> counts_;
};

inline void CandidateTrie::Build(std::span<const Itemset> candidates) {
  Build(candidates, Options{});
}

}  // namespace flipper

#endif  // FLIPPER_CORE_CANDIDATE_TRIE_H_
