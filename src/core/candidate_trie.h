// CandidateTrie: the Apriori "hash-tree" role. Stores all candidate
// k-itemsets of one cell as a prefix trie over sorted item ids, so that
// a transaction can increment exactly the candidates it contains
// without enumerating all of its k-subsets blindly.

#ifndef FLIPPER_CORE_CANDIDATE_TRIE_H_
#define FLIPPER_CORE_CANDIDATE_TRIE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/itemset.h"
#include "data/types.h"

namespace flipper {

class CandidateTrie {
 public:
  /// Builds the trie over candidates (all of equal size k >= 1).
  /// The candidate order defines the counter indexing.
  explicit CandidateTrie(std::span<const Itemset> candidates);

  int k() const { return k_; }
  size_t num_candidates() const { return counts_.size(); }

  /// Feeds one (sorted, deduped) transaction through the trie,
  /// incrementing every contained candidate.
  void CountTransaction(std::span<const ItemId> txn);

  /// External-counter variant: increments into `counts` (size
  /// num_candidates(), same input-order indexing) instead of the
  /// built-in counters. The trie itself is untouched, so concurrent
  /// callers with private buffers can share one trie.
  void CountTransaction(std::span<const ItemId> txn,
                        std::span<uint32_t> counts) const;

  /// Counter of candidate `i` (input order).
  uint32_t CountOf(size_t i) const { return counts_[i]; }

  std::span<const uint32_t> counts() const { return counts_; }

  /// Approximate heap bytes (nodes + counters).
  int64_t MemoryBytes() const;

 private:
  struct Node {
    ItemId item;
    // Children are stored contiguously: [child_begin, child_end) in
    // nodes_ of the next depth layer; for depth k-1 nodes, leaf_index
    // points into counts_.
    uint32_t child_begin = 0;
    uint32_t child_end = 0;
    uint32_t leaf_index = 0;
  };

  void Count(std::span<const ItemId> txn, size_t txn_pos, int depth,
             uint32_t node_begin, uint32_t node_end,
             uint32_t* counts) const;

  int k_ = 0;
  // nodes per depth layer; layer d holds the d-th items of candidates.
  std::vector<std::vector<Node>> layers_;
  std::vector<uint32_t> counts_;
};

}  // namespace flipper

#endif  // FLIPPER_CORE_CANDIDATE_TRIE_H_
