// Machine-readable export of mined patterns: CSV (one row per pattern
// level) and JSON (one object per pattern). Names resolve through the
// dictionary when provided, ids otherwise.

#ifndef FLIPPER_CORE_PATTERN_IO_H_
#define FLIPPER_CORE_PATTERN_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/pattern.h"
#include "data/item_dictionary.h"

namespace flipper {

/// CSV with header
/// pattern_id,level,itemset,support,corr,label,flip_gap —
/// one row per (pattern, level).
Status WritePatternsCsv(const std::vector<FlippingPattern>& patterns,
                        const ItemDictionary* dict, std::ostream& out);

Status WritePatternsCsvFile(const std::vector<FlippingPattern>& patterns,
                            const ItemDictionary* dict,
                            const std::string& path);

/// JSON array; each pattern is
/// {"leaf": [...], "flip_gap": g, "chain": [{"level": h,
///  "itemset": [...], "support": s, "corr": c, "label": "POS"}...]}.
Status WritePatternsJson(const std::vector<FlippingPattern>& patterns,
                         const ItemDictionary* dict, std::ostream& out);

Status WritePatternsJsonFile(
    const std::vector<FlippingPattern>& patterns,
    const ItemDictionary* dict, const std::string& path);

}  // namespace flipper

#endif  // FLIPPER_CORE_PATTERN_IO_H_
