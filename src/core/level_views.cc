#include "core/level_views.h"

#include <algorithm>
#include <limits>

#include "common/trace.h"

namespace flipper {

Result<LevelViews> LevelViews::Build(const TransactionDb& leaf_db,
                                     const Taxonomy& taxonomy,
                                     ThreadPool* pool,
                                     const BuildOptions& options) {
  // Every transaction item must be a taxonomy node with a defined
  // generalization at every level (leaves, or shallow leaves acting as
  // their own copies).
  for (TxnId t = 0; t < leaf_db.size(); ++t) {
    for (ItemId it : leaf_db.Get(t)) {
      if (!taxonomy.IsNode(it)) {
        return Status::InvalidArgument(
            "transaction " + std::to_string(t) + " contains item " +
            std::to_string(it) + " that is not a taxonomy node");
      }
      if (!taxonomy.IsLeaf(it)) {
        return Status::InvalidArgument(
            "transaction " + std::to_string(t) + " contains item " +
            std::to_string(it) +
            " that is an internal taxonomy node; transactions must "
            "contain leaves only");
      }
    }
  }

  LevelViews views;
  views.num_txns_ = leaf_db.size();
  const int height = taxonomy.height();
  views.levels_.resize(static_cast<size_t>(height));

  // Catalog boundaries: the leaf database's own segmentation (the
  // store's shard layout) when it carries one, uniform ranges
  // otherwise. Generalization preserves transaction indexes, so the
  // same boundaries describe every level.
  std::vector<uint64_t> boundaries;
  if (options.build_catalogs && !leaf_db.empty()) {
    if (leaf_db.segment_catalog() != nullptr) {
      const auto leaf_boundaries =
          leaf_db.segment_catalog()->boundaries();
      boundaries.assign(leaf_boundaries.begin(), leaf_boundaries.end());
    } else {
      boundaries = SegmentCatalog::UniformBoundaries(
          leaf_db.size(), options.segment_txns);
    }
  }

  for (int h = 1; h <= height; ++h) {
    FLIPPER_TRACE_SPAN_HK("level_build", "detail", h, 0);
    LevelData& data = views.levels_[static_cast<size_t>(h - 1)];
    data.level = h;
    const std::vector<ItemId> lut =
        taxonomy.LevelMap(h, leaf_db.alphabet_size());
    data.db = leaf_db.Generalize(lut, pool);
    const std::vector<uint32_t> freq = data.db.ItemFrequencies();
    data.item_support.assign(
        std::max<size_t>(freq.size(), taxonomy.id_space()), 0);
    std::copy(freq.begin(), freq.end(), data.item_support.begin());
    data.width_hist.assign(data.db.max_width() + 1, 0);
    for (TxnId t = 0; t < data.db.size(); ++t) {
      ++data.width_hist[data.db.Get(t).size()];
    }
    if (!boundaries.empty()) {
      // The deepest level's view is the leaf database itself (every
      // transaction item is a leaf), so a store-provided catalog is
      // reused as-is there instead of being rebuilt.
      if (h == height && leaf_db.segment_catalog() != nullptr) {
        data.catalog = leaf_db.segment_catalog();
      } else {
        data.catalog = std::make_shared<SegmentCatalog>(
            SegmentCatalog::Build(data.db, boundaries,
                                  SegmentCatalog::kDefaultTrackedItems,
                                  SegmentCatalog::kDefaultBitsetWords,
                                  pool));
      }
    }
  }
  return views;
}

const VerticalIndex& LevelViews::EnsureVertical(int h,
                                                ThreadPool* pool) const {
  const LevelData& data = levels_[static_cast<size_t>(h - 1)];
  // Serialize the lazy build; losers of the race reuse the winner's
  // index (whichever pool built it — the index content is
  // pool-independent).
  std::lock_guard<std::mutex> lock(*vertical_mu_);
  if (data.vertical == nullptr) {
    data.vertical = std::make_unique<VerticalIndex>(data.db, pool);
  }
  return *data.vertical;
}

int LevelViews::NumScanShards(int h, size_t min_txns_per_shard,
                              const ThreadPool* pool) const {
  return ShardCount(Level(h).db.size(), pool, min_txns_per_shard);
}

void LevelViews::ScanShards(
    int h, int num_shards,
    const std::function<void(int shard, size_t lo, size_t hi)>& fn,
    ThreadPool* pool) const {
  ParallelFor(pool, 0, Level(h).db.size(), num_shards, fn);
}

uint32_t LevelViews::MaxUniversalWidth() const {
  uint32_t bound = std::numeric_limits<uint32_t>::max();
  for (const LevelData& data : levels_) {
    bound = std::min(bound, data.db.max_width());
  }
  return levels_.empty() ? 0 : bound;
}

}  // namespace flipper
