// MetricsRegistry: named counters, gauges and latency histograms for
// machine-readable run reports. The registry supersedes the ad-hoc
// MiningStats counters as the export surface: CellPipeline absorbs
// MiningStats into it at the end of a run, adds per-stage wall/CPU
// histograms and pool utilization, and the CLI / bench_micro emit the
// registry as a stable-schema JSON report that tools/compare_bench.py
// diffs per stage.
//
// Thread-safety: all mutating calls are safe from any thread (one
// registry mutex; the PoolTaskObserver path is atomics-only so pool
// workers never contend on it). A registry is plugged into a run via
// MiningConfig::metrics (nullptr — the default — costs nothing).
//
// Histograms are latency histograms in milliseconds: samples are kept
// exactly up to a reservoir cap (percentiles are then exact
// nearest-rank values, the common case for per-stage timings), and
// log2 buckets take over beyond it (percentiles become bucket
// midpoints, still monotone and within 2x).

#ifndef FLIPPER_CORE_PIPELINE_METRICS_H_
#define FLIPPER_CORE_PIPELINE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/thread_pool.h"

namespace flipper {

class MetricsRegistry : public PoolTaskObserver {
 public:
  /// Version of the JSON report layout written by WriteJson. Bump only
  /// on breaking changes; additive fields keep the version.
  static constexpr int kSchemaVersion = 1;

  /// Exact-percentile reservoir size per histogram; log2 buckets take
  /// over past this many samples.
  static constexpr size_t kMaxExactSamples = 4096;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `delta` to the named monotone counter (created at 0).
  void AddCounter(const std::string& name, int64_t delta);

  /// Sets the named gauge to `value` (last write wins).
  void SetGauge(const std::string& name, double value);

  /// Records one latency sample, in milliseconds, into the named
  /// histogram.
  void ObserveMs(const std::string& name, double ms);

  /// PoolTaskObserver: accumulates queue-wait and busy time from every
  /// pool task. Lock-free (relaxed atomics); folded into the
  /// "pool.queue_wait_ms" histogram and "pool.*" counters by
  /// FinalizePool().
  void OnPoolTask(uint64_t queue_ns, uint64_t run_ns) override;

  /// Total task execution time observed via OnPoolTask, nanoseconds.
  uint64_t pool_busy_ns() const {
    return pool_busy_ns_.load(std::memory_order_relaxed);
  }
  /// Number of tasks observed via OnPoolTask.
  uint64_t pool_tasks() const {
    return pool_tasks_.load(std::memory_order_relaxed);
  }

  /// Converts the accumulated pool atomics into exported metrics:
  /// counters pool.tasks / pool.busy_ms / pool.queue_wait_ms_total and
  /// gauge pool.utilization = busy / (wall_ms * threads). Call once,
  /// after the pool has gone quiet.
  void FinalizePool(double wall_ms, int num_threads);

  struct HistogramSnapshot {
    uint64_t count = 0;
    double sum_ms = 0;
    double min_ms = 0;
    double max_ms = 0;
    double p50_ms = 0;
    double p95_ms = 0;
    double p99_ms = 0;
  };

  struct Snapshot {
    std::map<std::string, int64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
  };

  /// Consistent copy of everything recorded so far.
  Snapshot Snap() const;

  /// Reads a counter (0 when absent) — test/bench convenience.
  int64_t counter(const std::string& name) const;
  /// Reads a gauge (0 when absent).
  double gauge(const std::string& name) const;

  /// Writes the run report:
  ///   {"schema_version":1,
  ///    "counters":{name:int,...},
  ///    "gauges":{name:float,...},
  ///    "histograms":{name:{count,sum_ms,min_ms,max_ms,
  ///                        p50_ms,p95_ms,p99_ms},...}}
  /// Keys sorted, two-space indent — stable enough to diff textually.
  void WriteJson(std::ostream& out) const;

 private:
  struct Histogram {
    uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    std::vector<double> samples;   // exact reservoir (first kMaxExact)
    std::vector<uint64_t> buckets; // log2(ms) buckets, lazily sized
    HistogramSnapshot Snap() const;
  };

  mutable std::mutex mu_;
  std::map<std::string, int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;

  std::atomic<uint64_t> pool_busy_ns_{0};
  std::atomic<uint64_t> pool_queue_ns_{0};
  std::atomic<uint64_t> pool_tasks_{0};
  std::atomic<uint64_t> pool_max_queue_ns_{0};
};

/// RAII stage timer: on destruction records wall time into
/// "stage.<name>_ms" and thread CPU time into "stage.<name>_cpu_ms".
/// Null registry => completely inert.
class ScopedStageTimer {
 public:
  ScopedStageTimer(MetricsRegistry* registry, const char* stage);
  ~ScopedStageTimer();

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  MetricsRegistry* registry_;
  const char* stage_;
  uint64_t wall_start_ns_ = 0;
  uint64_t cpu_start_ns_ = 0;
};

/// Current thread's consumed CPU time in nanoseconds (0 where
/// unsupported).
uint64_t ThreadCpuNowNanos();

}  // namespace flipper

#endif  // FLIPPER_CORE_PIPELINE_METRICS_H_
