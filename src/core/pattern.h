// FlippingPattern: the mining output — a leaf itemset together with
// its full generalization chain (one entry per abstraction level, each
// frequent and labeled, labels alternating).

#ifndef FLIPPER_CORE_PATTERN_H_
#define FLIPPER_CORE_PATTERN_H_

#include <string>
#include <vector>

#include "core/label.h"
#include "data/item_dictionary.h"
#include "data/itemset.h"

namespace flipper {

/// One abstraction level of a pattern's chain.
struct LevelStat {
  int level = 0;
  Itemset itemset;
  uint32_t support = 0;
  double corr = 0.0;
  Label label = Label::kNone;
};

struct FlippingPattern {
  /// The most specific itemset (level H).
  Itemset leaf_itemset;
  /// chain[0] is level 1, chain.back() is level H.
  std::vector<LevelStat> chain;

  int size() const { return leaf_itemset.size(); }

  /// The flip amplitude: the smallest |corr(h) - corr(h+1)| over
  /// consecutive levels. A pattern whose every flip is wide scores
  /// high; this is the ranking key suggested by the paper's §7
  /// future-work ("patterns with the largest gap between correlation
  /// values at different hierarchy levels").
  double FlipGap() const;

  /// Checks the Definition-2 invariants (labels alternate, every level
  /// labeled); used by tests and debug assertions.
  bool IsValidFlip() const;

  /// Multi-line rendering; resolves names through `dict` when non-null,
  /// otherwise prints ids.
  std::string ToString(const ItemDictionary* dict = nullptr) const;
};

/// Canonical output order: by itemset size, then leaf itemset.
void SortPatterns(std::vector<FlippingPattern>* patterns);

/// True when both lists contain exactly the same (leaf itemset, chain
/// labels) patterns — the differential-test comparison.
bool SamePatterns(const std::vector<FlippingPattern>& a,
                  const std::vector<FlippingPattern>& b);

}  // namespace flipper

#endif  // FLIPPER_CORE_PATTERN_H_
