// ScanCounterTable: the scan-driven cell's hash counter, rebuilt as an
// open-addressed table whose keys live in a bump arena instead of an
// std::unordered_map<Itemset, uint32_t> of per-node allocations.
//
// Layout: a power-of-two slot array of entry references (linear
// probing), an insertion-ordered entry column {key_pos, count}, and a
// key arena holding each key as k consecutive ItemIds. All three are
// reset — never freed — between cells, so a warm table counts a whole
// scan with zero heap allocations inside Increment(); any growth that
// does happen (cold table, or a cell with more distinct combinations
// than ever seen) is counted in grow_events() for the debug
// zero-allocation assertions, mirroring CandidateTrie::CountScratch.
//
// Counts are exact and emission order is derived by sorting the
// entries, so cell contents are bit-identical to the unordered_map
// path (MiningConfig::enable_arena_scan_counters selects them).

#ifndef FLIPPER_CORE_SCAN_COUNTER_H_
#define FLIPPER_CORE_SCAN_COUNTER_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "data/itemset.h"
#include "data/types.h"

namespace flipper {

class ScanCounterTable {
 public:
  /// One counted key: `key_pos` indexes the k consecutive ItemIds of
  /// the key inside the arena.
  struct Entry {
    uint32_t key_pos;
    uint32_t count;
  };

  /// Prepares the table for a new cell of subset size `k`. Keeps every
  /// allocation (slots, entries, arena) for reuse.
  void Reset(int k);

  /// Number of distinct keys counted so far.
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  int k() const { return k_; }

  /// Adds `delta` to the counter of `combo` (must have size k),
  /// inserting it at zero first when absent.
  void Increment(const Itemset& combo, uint32_t delta = 1) {
    assert(combo.size() == k_);
    Increment(combo.begin(), delta);
  }

  /// Raw-key variant for the shard merge: `key` points at k sorted
  /// ItemIds (e.g. another table's KeyOf span).
  void Increment(const ItemId* key, uint32_t delta);

  /// Counted keys in insertion order.
  const std::vector<Entry>& entries() const { return entries_; }

  /// The k ItemIds of an entry's key.
  std::span<const ItemId> KeyOf(const Entry& entry) const {
    return {arena_.data() + entry.key_pos, static_cast<size_t>(k_)};
  }

  /// The entry's key as an Itemset (keys are stored sorted).
  Itemset ItemsetOf(const Entry& entry) const {
    Itemset out;
    for (ItemId item : KeyOf(entry)) out.PushBack(item);
    return out;
  }

  /// Heap allocations performed inside Increment() since construction:
  /// slot-array rehashes plus entry/arena growth. A warm table
  /// (Reset() after a previous cell of at least this cardinality)
  /// stays at its previous value for a whole scan — asserted by the
  /// zero-allocation tests.
  uint64_t grow_events() const { return grow_events_; }

  /// Heap bytes currently held (capacity, all three columns).
  int64_t MemoryBytes() const {
    return static_cast<int64_t>(slots_.capacity() * sizeof(uint32_t) +
                                entries_.capacity() * sizeof(Entry) +
                                arena_.capacity() * sizeof(ItemId));
  }

 private:
  void Rehash(size_t new_slot_count);

  int k_ = 0;
  uint32_t mask_ = 0;
  /// 1-based entry references; 0 = empty slot. Power-of-two sized.
  std::vector<uint32_t> slots_;
  std::vector<Entry> entries_;
  /// Bump arena of keys: entry i's key occupies
  /// [entries_[i].key_pos, entries_[i].key_pos + k_).
  std::vector<ItemId> arena_;
  uint64_t grow_events_ = 0;
};

}  // namespace flipper

#endif  // FLIPPER_CORE_SCAN_COUNTER_H_
