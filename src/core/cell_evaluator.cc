#include "core/cell_evaluator.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "core/label.h"
#include "core/pattern.h"
#include "measures/measure.h"

namespace flipper {

CellEvaluator::CellEvaluator(
    const Taxonomy& taxonomy, const MiningConfig& config,
    const LevelViews& views, MemoryTracker* tracker,
    const std::vector<std::vector<ItemId>>& freq_items, uint32_t num_txns)
    : tax_(taxonomy),
      config_(config),
      views_(views),
      tracker_(tracker),
      num_txns_(num_txns) {
  const auto slots = static_cast<size_t>(tax_.height()) + 1;
  sibp_order_.assign(slots, {});
  sibp_qualified_col_.assign(slots, {});
  banned_.assign(slots, {});
  chains_.assign(slots, {});
  for (int h = 1; h <= tax_.height(); ++h) {
    auto& order = sibp_order_[static_cast<size_t>(h)];
    order = freq_items[static_cast<size_t>(h)];
    std::sort(order.begin(), order.end(), [&](ItemId a, ItemId b) {
      const uint32_t sa = views_.ItemSupport(h, a);
      const uint32_t sb = views_.ItemSupport(h, b);
      return sa != sb ? sa < sb : a < b;
    });
  }
}

Cell CellEvaluator::Evaluate(int h, int k,
                             std::span<const Itemset> candidates,
                             std::span<const uint32_t> supports,
                             const Cell* parent_cell, CellStats* cs,
                             MiningStats* stats) {
  const uint32_t min_count = config_.MinCount(h, num_txns_);
  Cell cell(h, k, tracker_);
  ChainMap& chains = chains_[static_cast<size_t>(h)];
  const ChainMap& parent_chains =
      chains_[static_cast<size_t>(h > 1 ? h - 1 : h)];
  std::vector<uint32_t> item_sups;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const Itemset& itemset = candidates[i];
    const uint32_t sup = supports[i];
    ItemsetRecord record;
    record.support = sup;
    record.frequent = sup >= min_count;
    item_sups.clear();
    for (ItemId item : itemset) {
      item_sups.push_back(views_.ItemSupport(h, item));
    }
    record.corr = Correlation(config_.measure, sup, item_sups);
    record.label = LabelOf(record.corr, config_.gamma, config_.epsilon,
                           record.frequent);

    const ItemsetRecord* parent_record = nullptr;
    Itemset parent_itemset;
    if (h > 1) {
      parent_itemset = itemset.Map([&](ItemId item) {
        return tax_.AncestorAtLevel(item, h - 1);
      });
      if (parent_cell != nullptr) {
        parent_record = parent_cell->Find(parent_itemset);
      }
    }
    if (h == 1) {
      record.chain_alive =
          record.frequent && record.label != Label::kNone;
    } else {
      record.chain_alive = record.frequent &&
                           record.label != Label::kNone &&
                           parent_record != nullptr &&
                           parent_record->chain_alive &&
                           Flips(parent_record->label, record.label);
    }

    if (record.frequent) ++cs->frequent;
    if (record.label != Label::kNone) ++cs->labeled;
    if (record.label == Label::kPositive) ++stats->num_positive;
    if (record.label == Label::kNegative) ++stats->num_negative;
    if (record.chain_alive) {
      ++cs->alive;
      std::vector<LevelStat> chain;
      if (h > 1) {
        auto it = parent_chains.find(parent_itemset);
        FLIPPER_CHECK(it != parent_chains.end())
            << "alive itemset without parent chain";
        chain = it->second;
      }
      chain.push_back({h, itemset, sup, record.corr, record.label});
      chains.emplace(itemset, std::move(chain));
    }
    cell.Put(itemset, record);
  }
  return cell;
}

void CellEvaluator::SibpUpdate(int h, int k, const Cell& cell) {
  if (!config_.pruning.sibp) return;
  // Max Corr per item over the cell's counted itemsets.
  std::unordered_map<ItemId, double> max_corr;
  cell.ForEach([&](const Itemset& itemset, const ItemsetRecord& record) {
    for (ItemId item : itemset) {
      auto [it, inserted] = max_corr.try_emplace(item, record.corr);
      if (!inserted && record.corr > it->second) it->second = record.corr;
    }
  });
  // Walk L_h from the smallest support; an item qualifies while its max
  // Corr stays below gamma; the first failure stops the walk
  // (Corollary 2 requires the smallest-support prefix). Banned items
  // count as removed from the database.
  auto& qualified = sibp_qualified_col_[static_cast<size_t>(h)];
  const auto& banned = banned_[static_cast<size_t>(h)];
  for (ItemId item : sibp_order_[static_cast<size_t>(h)]) {
    if (banned.find(item) != banned.end()) continue;
    auto it = max_corr.find(item);
    const double mc = it == max_corr.end() ? 0.0 : it->second;
    if (mc >= config_.gamma) break;
    qualified.try_emplace(item, k);
  }
}

void CellEvaluator::SibpBan(int h, int k, MiningStats* stats) {
  if (!config_.pruning.sibp || h < 2) return;
  auto& banned = banned_[static_cast<size_t>(h)];
  const auto& qualified = sibp_qualified_col_[static_cast<size_t>(h)];
  const auto& parent_qualified =
      sibp_qualified_col_[static_cast<size_t>(h - 1)];
  for (const auto& [item, col] : qualified) {
    if (col > k || banned.find(item) != banned.end()) continue;
    const ItemId parent = tax_.AncestorAtLevel(item, h - 1);
    auto it = parent_qualified.find(parent);
    if (it != parent_qualified.end() && it->second <= k) {
      banned.insert(item);
      ++stats->sibp_banned_items;
    }
  }
}

void CellEvaluator::AssemblePatterns(const std::vector<Cell>& last_row,
                                     MiningResult* result) const {
  const ChainMap& chains = chains_[static_cast<size_t>(tax_.height())];
  for (const Cell& cell : last_row) {
    cell.ForEach([&](const Itemset& itemset, const ItemsetRecord& record) {
      if (!record.chain_alive) return;
      auto it = chains.find(itemset);
      FLIPPER_CHECK(it != chains.end())
          << "alive leaf itemset without chain";
      FlippingPattern pattern;
      pattern.leaf_itemset = itemset;
      pattern.chain = it->second;
      result->patterns.push_back(std::move(pattern));
    });
  }
  SortPatterns(&result->patterns);
}

}  // namespace flipper
