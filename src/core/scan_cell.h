// Scan-driven cell stage: candidate discovery for explosive cells by
// enumerating the k-subsets of each (filtered) generalized transaction
// instead of materializing the cartesian children product, so
// combinations that never co-occur are skipped. Sound because
// MinCount() is always >= 1: a zero-support itemset can never be
// frequent.
//
// The counting scan is sharded over contiguous transaction ranges via
// LevelViews::ScanShards — each shard fills a private hash counter,
// and the shard maps are merged deterministically in shard order.
// Candidates are emitted in sorted itemset order, so cell contents are
// reproducible across thread counts and platforms.

#ifndef FLIPPER_CORE_SCAN_CELL_H_
#define FLIPPER_CORE_SCAN_CELL_H_

#include <array>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "core/cell.h"
#include "core/config.h"
#include "core/level_views.h"
#include "core/scan_counter.h"
#include "core/stats.h"
#include "data/itemset.h"
#include "taxonomy/taxonomy.h"

namespace flipper {

/// Expected number of k-subset probes of a level-h database scan,
/// from the level's transaction-width histogram. `live_fraction` is
/// the expected rate at which the per-transaction item filter keeps
/// an item (participating items / level vocabulary): the enumeration
/// runs over filtered transactions, so widths scale by it before the
/// C(w, k) estimate. 1.0 reproduces the unfiltered upper bound. The
/// planner compares this against the cartesian children product to
/// pick the strategy.
double ScanEnumerationCost(const LevelViews& views, int h, int k,
                           double live_fraction = 1.0);

/// Reusable state of the scan-driven cell: per-shard counters and
/// item buffers, plus the flag vectors of the filtering passes. The
/// pipeline keeps one instance alive across a run's scan cells, so a
/// warm cell re-counts without reallocating — unordered_map clear()
/// keeps the bucket arrays, and the arena tables' Reset() keeps their
/// slot/entry/key storage. Which counter family a scan fills is
/// MiningConfig::enable_arena_scan_counters; both live here so an A/B
/// flip mid-run reuses whichever is warm.
struct ScanCellScratch {
  using CountMap = std::unordered_map<Itemset, uint32_t, ItemsetHash>;
  std::vector<CountMap> shard_counts;
  std::vector<ScanCounterTable> shard_tables;
  std::vector<std::vector<ItemId>> shard_buf;
  std::vector<char> ok;
  std::vector<char> scan_flags;
  std::vector<ItemId> live_items;
};

/// Calls `fn(itemset)` for every k-combination of `items` (sorted
/// ascending, duplicate-free), in lexicographic order. Iterative —
/// an explicit index stack plus the caller's single scratch itemset,
/// pushed/popped in place — so probing a wide transaction performs no
/// allocation and no per-level itemset copies. `scratch` is cleared
/// on entry and left empty on return.
template <typename Fn>
void ForEachCombination(std::span<const ItemId> items, int k,
                        Itemset* scratch, const Fn& fn) {
  const size_t n = items.size();
  scratch->Clear();
  if (k <= 0 || n < static_cast<size_t>(k)) return;
  // idx[d] = index into `items` chosen at depth d; scratch holds the
  // items of depths [0, depth) at the top of the loop.
  std::array<size_t, kMaxItemsetSize> idx;
  int depth = 0;
  idx[0] = 0;
  while (true) {
    const size_t tail = static_cast<size_t>(k - depth);
    if (idx[static_cast<size_t>(depth)] + tail > n) {
      // No room for the remaining positions — backtrack.
      if (depth == 0) break;
      --depth;
      scratch->PopBack();
      ++idx[static_cast<size_t>(depth)];
      continue;
    }
    scratch->PushBack(items[idx[static_cast<size_t>(depth)]]);
    if (depth + 1 == k) {
      fn(*scratch);
      scratch->PopBack();
      ++idx[static_cast<size_t>(depth)];
    } else {
      idx[static_cast<size_t>(depth + 1)] =
          idx[static_cast<size_t>(depth)] + 1;
      ++depth;
    }
  }
}

/// Fills cell Q(h,k) by scanning level h's view: counts every
/// occurring k-subset of the participating items (frequent at level h,
/// not SIBP-banned), then keeps combinations growable from an eligible
/// parent in `parent_cell` that pass the known-infrequent subset
/// filter against `prev_in_row` (may be null). Emits `candidates`
/// (sorted) with their exact `supports`; sets cs->generated and
/// increments stats->db_scans / stats->scan_cell_scans — even when the
/// scan bails mid-way with ResourceExhausted, since the I/O happened
/// either way. With config.enable_txn_prefilter the per-item filter is
/// pre-screened through an ItemPrefilter over the participating items
/// (exact: the bitset pass only rejects items the ok[] confirm pass
/// would reject too). `scratch` (may be null for a one-shot call)
/// carries the reusable shard buffers across cells. The scan is
/// sharded over `pool` (null runs it inline); the views are only
/// read, so concurrent queries may share them, each with its own pool.
Status FillCellByScan(const LevelViews& views, const Taxonomy& taxonomy,
                      const MiningConfig& config, int h, int k,
                      const Cell& parent_cell, const Cell* prev_in_row,
                      const std::unordered_set<ItemId>& banned,
                      std::span<const ItemId> freq_items,
                      std::vector<Itemset>* candidates,
                      std::vector<uint32_t>* supports, CellStats* cs,
                      MiningStats* stats,
                      ScanCellScratch* scratch = nullptr,
                      ThreadPool* pool = nullptr);

}  // namespace flipper

#endif  // FLIPPER_CORE_SCAN_CELL_H_
