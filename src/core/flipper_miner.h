// FlipperMiner: the paper's Flipper algorithm (§4, Algorithm 1).
//
// This is the public entry point; the implementation is the staged
// cell-execution pipeline under src/core:
//
//   cell_planner.h    — candidate generation + strategy selection
//                       (pairs / apriori-join / vertical-expand /
//                       scan-driven);
//   support_counting.h — the sharded counting engines, with an
//                       asynchronous StartCount seam;
//   scan_cell.h       — the scan-driven cell (sharded hash counting
//                       over transaction ranges);
//   cell_evaluator.h  — correlation, labels, chain-alive flags,
//                       pattern chains, SIBP bookkeeping;
//   cell_pipeline.h   — the driver walking the Q(h,k) table, which
//                       overlaps Q(h,k+1)'s planning with Q(h,k)'s
//                       support scan (MiningConfig::enable_pipelining).
//
// Processing order follows the paper exactly: the two ceiling rows
// zigzag Q(1,2) -> Q(2,2) -> Q(1,3) -> ... so the TPG termination test
// (Theorem 3) always sees two vertically consecutive cells, then rows
// 3..H run one row at a time, left to right. Pruning layers (all
// individually switchable through MiningConfig::pruning):
//
//   support  — infrequent itemsets are neither extended nor kept;
//   flipping — rows >= 2 grow only from chain-alive parents, and
//              chain-dead itemsets are evicted once a row completes;
//   TPG      — if every itemset of two vertically consecutive cells is
//              non-positive, all columns >= k die globally (Theorem 3);
//   SIBP     — per level, items whose every counted k-itemset stays
//              below gamma (walking the support-ascending item list)
//              and whose parent item qualified one level up are banned
//              from wider itemsets (Theorem 2 + Corollary 2).
//
// Memory: only two rows are resident at any time; pattern chains are
// carried forward separately. A MemoryTracker records the candidate
// store's peak footprint (Figure 9(b)). Mining output is bit-identical
// for any thread count and with pipelining on or off.

#ifndef FLIPPER_CORE_FLIPPER_MINER_H_
#define FLIPPER_CORE_FLIPPER_MINER_H_

#include "common/status.h"
#include "core/config.h"
#include "core/level_views.h"
#include "core/mining_result.h"
#include "data/transaction_db.h"
#include "taxonomy/taxonomy.h"

namespace flipper {

class FlipperMiner {
 public:
  /// Mines all flipping patterns of `db` under `taxonomy` with the
  /// configured thresholds, measure and pruning stack.
  static Result<MiningResult> Run(const TransactionDb& db,
                                  const Taxonomy& taxonomy,
                                  const MiningConfig& config);

  /// Re-entrant variant over pre-built level views of `db` (see
  /// CellPipeline::Execute): the views are only read, so concurrent
  /// runs — each with its own config and pool — may borrow the same
  /// instance. Results are bit-identical to the plain Run.
  static Result<MiningResult> Run(const TransactionDb& db,
                                  const Taxonomy& taxonomy,
                                  const MiningConfig& config,
                                  const LevelViews* shared_views);
};

}  // namespace flipper

#endif  // FLIPPER_CORE_FLIPPER_MINER_H_
