// FlipperMiner: the paper's Flipper algorithm (§4, Algorithm 1).
//
// The search space is the two-dimensional table M of (h,k)-cells
// (Figure 6). Processing order follows the paper exactly:
//
//   1. the two ceiling rows are computed in zigzag order
//      Q(1,2) -> Q(2,2) -> Q(1,3) -> Q(2,3) -> ... so that the TPG
//      termination test (Theorem 3) always sees two vertically
//      consecutive cells (Figure 7(b));
//   2. rows 3..H are computed one row at a time, left to right.
//
// Candidate generation: row 1 bootstraps with the Apriori prefix join
// (its cells are complete); every deeper row grows vertically — each
// surviving (frequent + labeled + chain-alive) parent itemset expands
// into the combinations of its items' children — plus known-infrequent
// subset filtering within the row. Pruning layers (all individually
// switchable through MiningConfig::pruning):
//
//   support  — infrequent itemsets are neither extended nor kept;
//   flipping — rows >= 2 grow only from chain-alive parents, and
//              chain-dead itemsets are evicted once a row completes;
//   TPG      — if every itemset of two vertically consecutive cells is
//              non-positive, all columns >= k die globally (Theorem 3);
//   SIBP     — per level, items whose every counted k-itemset stays
//              below gamma (walking the support-ascending item list)
//              and whose parent item qualified one level up are banned
//              from wider itemsets (Theorem 2 + Corollary 2).
//
// Memory: only two rows are resident at any time; pattern chains are
// carried forward separately. A MemoryTracker records the candidate
// store's peak footprint (Figure 9(b)).

#ifndef FLIPPER_CORE_FLIPPER_MINER_H_
#define FLIPPER_CORE_FLIPPER_MINER_H_

#include "common/status.h"
#include "core/config.h"
#include "core/mining_result.h"
#include "data/transaction_db.h"
#include "taxonomy/taxonomy.h"

namespace flipper {

class FlipperMiner {
 public:
  /// Mines all flipping patterns of `db` under `taxonomy` with the
  /// configured thresholds, measure and pruning stack.
  static Result<MiningResult> Run(const TransactionDb& db,
                                  const Taxonomy& taxonomy,
                                  const MiningConfig& config);
};

}  // namespace flipper

#endif  // FLIPPER_CORE_FLIPPER_MINER_H_
